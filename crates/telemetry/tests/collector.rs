//! Behavioral tests for the global collector: cross-thread span trees,
//! level gating, macro laziness, reset safety, and the event-buffer cap.
//!
//! Every test mutates process-global telemetry state, so they serialize on
//! one mutex and restore the disabled default before releasing it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use telemetry::Level;

static LOCK: Mutex<()> = Mutex::new(());

/// Serialize a test and leave telemetry disabled and empty afterwards.
struct TelemetryTest {
    _guard: MutexGuard<'static, ()>,
}

impl TelemetryTest {
    fn begin() -> TelemetryTest {
        let guard = LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        telemetry::set_log_level(Level::Off);
        telemetry::set_collect(true);
        telemetry::reset();
        TelemetryTest { _guard: guard }
    }
}

impl Drop for TelemetryTest {
    fn drop(&mut self) {
        telemetry::reset();
        telemetry::set_collect(false);
        telemetry::set_log_level(Level::Off);
    }
}

#[test]
fn scoped_workers_build_one_deterministic_tree() {
    let _t = TelemetryTest::begin();
    let worker_names = ["pearson", "spearman", "j-index", "forest", "boosting"];

    {
        let fanout = telemetry::span!("rankers", total = worker_names.len());
        let parent = fanout.id();
        std::thread::scope(|scope| {
            for name in worker_names {
                scope.spawn(move || {
                    let span = telemetry::span_child_of(parent, name);
                    span.record("rows", 60usize);
                    telemetry::counter_add("rankers.completed", 1);
                });
            }
        });
    }

    let report = telemetry::snapshot("scoped");
    report.validate_tree().expect("tree invariants");
    assert_eq!(report.spans.len(), 1 + worker_names.len());

    let roots = report.roots();
    assert_eq!(roots.len(), 1);
    assert_eq!(roots[0].name, "rankers");
    assert!(roots[0].duration_us > 0, "root span closed");

    // Structure is deterministic even though arrival order is not: every
    // worker span is a child of the fan-out root, names are exactly the
    // worker set, and each carries its recorded field.
    let children = report.children_of(roots[0].id);
    let mut child_names: Vec<&str> = children.iter().map(|s| s.name.as_str()).collect();
    child_names.sort_unstable();
    let mut expected = worker_names.to_vec();
    expected.sort_unstable();
    assert_eq!(child_names, expected);
    for child in &children {
        assert_eq!(child.fields.len(), 1);
        assert_eq!(child.fields[0].0, "rows");
    }
    assert_eq!(report.counters.len(), 1);
    assert_eq!(report.counters[0].name, "rankers.completed");
    assert_eq!(report.counters[0].value, worker_names.len() as u64);
}

#[test]
fn nested_spans_follow_the_thread_stack() {
    let _t = TelemetryTest::begin();
    {
        let _outer = telemetry::span!("select");
        {
            let _inner = telemetry::span!("ensemble");
            telemetry::info!("ensemble", "kept all rankings", kept = 5usize);
        }
        let _sibling = telemetry::span!("threshold_scan");
    }
    let report = telemetry::snapshot("nested");
    report.validate_tree().expect("tree invariants");
    assert_eq!(
        report.stage_names(),
        vec!["select", "ensemble", "threshold_scan"]
    );
    let select_id = report.spans_named("select")[0].id;
    assert_eq!(report.spans_named("ensemble")[0].parent, Some(select_id));
    assert_eq!(
        report.spans_named("threshold_scan")[0].parent,
        Some(select_id)
    );
    // The event landed on the innermost span open at emit time.
    assert_eq!(report.events.len(), 1);
    assert_eq!(
        report.events[0].span,
        Some(report.spans_named("ensemble")[0].id)
    );
}

#[test]
fn level_filtering_gates_events_and_macro_arguments() {
    let _t = TelemetryTest::begin();
    telemetry::set_collect(false);

    // With collection off, the recording side is inert at every level.
    assert!(telemetry::span!("ghost").id().is_none());
    for level in [Level::Error, Level::Info, Level::Debug] {
        assert!(!telemetry::event_active(level));
    }

    // The stderr sink admits exactly the levels at or below WEFR_LOG.
    telemetry::set_log_level(Level::Error);
    assert!(telemetry::log_enabled(Level::Error));
    assert!(!telemetry::log_enabled(Level::Info));
    assert!(!telemetry::log_enabled(Level::Debug));
    telemetry::set_log_level(Level::Debug);
    assert!(telemetry::log_enabled(Level::Info));
    assert!(telemetry::log_enabled(Level::Debug));
    telemetry::set_log_level(Level::Off);
    assert!(!telemetry::log_enabled(Level::Error));

    // Inactive events must not even evaluate their arguments.
    static EVALUATED: AtomicUsize = AtomicUsize::new(0);
    fn expensive_message() -> String {
        EVALUATED.fetch_add(1, Ordering::Relaxed);
        "computed".to_string()
    }
    telemetry::debug!("test", expensive_message());
    assert_eq!(EVALUATED.load(Ordering::Relaxed), 0, "debug! was not lazy");

    // Re-enable collection: now the argument is evaluated and recorded.
    telemetry::set_collect(true);
    telemetry::debug!("test", expensive_message());
    assert_eq!(EVALUATED.load(Ordering::Relaxed), 1);
    let report = telemetry::snapshot("levels");
    assert_eq!(report.events.len(), 1);
    assert_eq!(report.events[0].message, "computed");
    assert_eq!(report.events[0].level, Level::Debug);
}

#[test]
fn reset_under_an_open_guard_is_safe() {
    let _t = TelemetryTest::begin();
    let stale = telemetry::span!("doomed");
    telemetry::reset();
    // The next span must not be corrupted by the stale guard closing.
    let fresh = telemetry::span!("fresh");
    stale.record("ignored", true);
    drop(stale);
    // Keep `fresh` open long enough to register a non-zero duration: a
    // snapshot writes 0 for *open* spans, so `> 0` below means "closed".
    std::thread::sleep(std::time::Duration::from_millis(1));
    drop(fresh);
    let report = telemetry::snapshot("reset");
    report.validate_tree().expect("tree invariants");
    assert_eq!(report.spans.len(), 1);
    assert_eq!(report.spans[0].name, "fresh");
    assert!(report.spans[0].fields.is_empty());
    assert!(
        report.spans[0].duration_us > 0,
        "fresh span closed normally"
    );
}

#[test]
fn event_buffer_caps_and_counts_drops() {
    let _t = TelemetryTest::begin();
    const OVERFLOW: usize = 100;
    for i in 0..65_536 + OVERFLOW {
        telemetry::emit(
            Level::Debug,
            "flood",
            String::new(),
            vec![("i".to_string(), telemetry::FieldValue::U64(i as u64))],
        );
    }
    let report = telemetry::snapshot("flood");
    assert_eq!(report.events.len(), 65_536);
    assert_eq!(report.dropped_events, OVERFLOW as u64);
}
