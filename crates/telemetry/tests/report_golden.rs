//! Golden test: the run-report JSON schema is pinned byte-for-byte, a
//! report round-trips through `crates/json` without loss, and reports
//! written under the previous schema (`wefr.telemetry.v1`) still parse.

use telemetry::{
    CounterSnapshot, EventRecord, FieldValue, GaugeSnapshot, HistogramSnapshot, Level, RunReport,
    SpanRecord, SCHEMA, SCHEMA_V1,
};

fn fixture_report() -> RunReport {
    RunReport {
        schema: SCHEMA.to_string(),
        run: "golden".to_string(),
        spans: vec![
            SpanRecord {
                id: 0,
                parent: None,
                name: "select".to_string(),
                start_us: 10,
                duration_us: 5000,
                fields: vec![("features".to_string(), FieldValue::U64(21))],
                alloc_bytes: 2048,
                alloc_count: 3,
            },
            SpanRecord {
                id: 1,
                parent: Some(0),
                name: "rankers".to_string(),
                start_us: 20,
                duration_us: 3000,
                fields: vec![
                    ("total".to_string(), FieldValue::U64(5)),
                    (
                        "slowest".to_string(),
                        FieldValue::Str("boosting".to_string()),
                    ),
                ],
                alloc_bytes: 0,
                alloc_count: 0,
            },
        ],
        events: vec![EventRecord {
            level: Level::Info,
            target: "ensemble".to_string(),
            message: "discarded outlier ranking".to_string(),
            at_us: 40,
            span: Some(0),
            fields: vec![
                ("ranker".to_string(), FieldValue::Str("j-index".to_string())),
                ("z".to_string(), FieldValue::F64(2.5)),
                ("kept".to_string(), FieldValue::Bool(false)),
                ("delta".to_string(), FieldValue::I64(-3)),
            ],
        }],
        dropped_events: 0,
        counters: vec![CounterSnapshot {
            name: "rankers.completed".to_string(),
            value: 5,
        }],
        gauges: vec![GaugeSnapshot {
            name: "wearout.threshold_days".to_string(),
            value: 120.0,
        }],
        // 8 observations in [4, 8), 2 in [8, 16): p50 = 6.5, p90 = 12.0,
        // p99 clamps to the observed max.
        histograms: vec![HistogramSnapshot {
            name: "ensemble.pair_distance".to_string(),
            count: 10,
            sum: 80.0,
            min: 4.0,
            max: 15.0,
            buckets: vec![(2, 8), (3, 2)],
            p50: 6.5,
            p90: 12.0,
            p99: 15.0,
        }],
    }
}

const GOLDEN: &str = r#"{
  "schema": "wefr.telemetry.v2",
  "run": "golden",
  "spans": [
    {
      "id": 0,
      "parent": null,
      "name": "select",
      "start_us": 10,
      "duration_us": 5000,
      "fields": [
        [
          "features",
          21
        ]
      ],
      "alloc_bytes": 2048,
      "alloc_count": 3
    },
    {
      "id": 1,
      "parent": 0,
      "name": "rankers",
      "start_us": 20,
      "duration_us": 3000,
      "fields": [
        [
          "total",
          5
        ],
        [
          "slowest",
          "boosting"
        ]
      ],
      "alloc_bytes": 0,
      "alloc_count": 0
    }
  ],
  "events": [
    {
      "level": "info",
      "target": "ensemble",
      "message": "discarded outlier ranking",
      "at_us": 40,
      "span": 0,
      "fields": [
        [
          "ranker",
          "j-index"
        ],
        [
          "z",
          2.5
        ],
        [
          "kept",
          false
        ],
        [
          "delta",
          -3
        ]
      ]
    }
  ],
  "dropped_events": 0,
  "counters": [
    {
      "name": "rankers.completed",
      "value": 5
    }
  ],
  "gauges": [
    {
      "name": "wearout.threshold_days",
      "value": 120.0
    }
  ],
  "histograms": [
    {
      "name": "ensemble.pair_distance",
      "count": 10,
      "sum": 80.0,
      "min": 4.0,
      "max": 15.0,
      "buckets": [
        [
          2,
          8
        ],
        [
          3,
          2
        ]
      ],
      "p50": 6.5,
      "p90": 12.0,
      "p99": 15.0
    }
  ]
}"#;

/// A report exactly as PR 6 and earlier wrote it: no `schema`, no per-span
/// `alloc_bytes`/`alloc_count`, no histogram quantiles. Must keep parsing.
const GOLDEN_V1: &str = r#"{
  "run": "golden",
  "spans": [
    {
      "id": 0,
      "parent": null,
      "name": "select",
      "start_us": 10,
      "duration_us": 5000,
      "fields": [
        [
          "features",
          21
        ]
      ]
    }
  ],
  "events": [],
  "dropped_events": 2,
  "counters": [],
  "gauges": [],
  "histograms": [
    {
      "name": "ensemble.pair_distance",
      "count": 10,
      "sum": 80.0,
      "min": 4.0,
      "max": 15.0,
      "buckets": [
        [
          2,
          8
        ],
        [
          3,
          2
        ]
      ]
    }
  ]
}"#;

#[test]
fn report_serializes_to_the_golden_schema() {
    let report = fixture_report();
    assert_eq!(json::to_string_pretty(&report), GOLDEN);
}

#[test]
fn golden_text_parses_back_to_the_same_report() {
    let parsed: RunReport = json::from_str(GOLDEN).expect("golden must parse");
    assert_eq!(parsed, fixture_report());
    parsed.validate_tree().expect("golden tree invariants");
}

#[test]
fn round_trip_is_lossless_for_a_fresh_serialization() {
    let report = fixture_report();
    let compact = json::to_string(&report);
    let back: RunReport = json::from_str(&compact).expect("compact parse");
    assert_eq!(back, report);
}

#[test]
fn v1_reports_parse_with_v2_fields_defaulted() {
    let parsed: RunReport = json::from_str(GOLDEN_V1).expect("v1 golden must parse");
    assert_eq!(parsed.schema, SCHEMA_V1);
    assert_eq!(parsed.run, "golden");
    assert_eq!(parsed.spans[0].alloc_bytes, 0);
    assert_eq!(parsed.spans[0].alloc_count, 0);
    assert_eq!(parsed.dropped_events, 2);
    let h = &parsed.histograms[0];
    assert_eq!((h.p50, h.p90, h.p99), (0.0, 0.0, 0.0));
    // The quantile estimator still works on v1 data.
    assert!((h.quantile(0.5) - 6.5).abs() < 1e-12);
    parsed.validate_tree().expect("v1 golden tree invariants");
}
