//! The human-readable stderr sink.
//!
//! One line per record, prefixed `[wefr <level>]`. Span close lines read
//! `span <name> <duration> k=v …`; event lines read `<target>: <message>
//! k=v …`. Callers gate on [`crate::log_enabled`] before formatting.

use crate::{Field, Level};

/// Render a duration in the friendliest unit: µs below 1 ms, ms below 1 s,
/// seconds above.
pub(crate) fn fmt_duration(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{:.3}s", us as f64 / 1e6)
    }
}

fn fmt_fields(fields: &[Field]) -> String {
    let mut out = String::new();
    for (key, value) in fields {
        out.push(' ');
        out.push_str(key);
        out.push('=');
        out.push_str(&value.to_string());
    }
    out
}

/// Print a span close line at info level.
pub(crate) fn span_line(name: &str, duration_us: u64, fields: &[Field]) {
    eprintln!(
        "[wefr info] span {name} {}{}",
        fmt_duration(duration_us),
        fmt_fields(fields)
    );
}

/// Print an event line at its own level.
pub(crate) fn event_line(level: Level, target: &str, message: &str, fields: &[Field]) {
    eprintln!("[wefr {level}] {target}: {message}{}", fmt_fields(fields));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FieldValue;

    #[test]
    fn durations_pick_a_readable_unit() {
        assert_eq!(fmt_duration(0), "0us");
        assert_eq!(fmt_duration(999), "999us");
        assert_eq!(fmt_duration(1_500), "1.50ms");
        assert_eq!(fmt_duration(2_345_678), "2.346s");
    }

    #[test]
    fn fields_render_as_kv_pairs() {
        let fields = vec![
            ("kept".to_string(), FieldValue::U64(4)),
            ("reason".to_string(), FieldValue::Str("worsened".into())),
        ];
        assert_eq!(fmt_fields(&fields), " kept=4 reason=worsened");
        assert_eq!(fmt_fields(&[]), "");
    }
}
