//! Feature-gated counting allocator for per-span resource attribution
//! (DESIGN.md §6).
//!
//! With the `obs-alloc` cargo feature compiled in, this module installs a
//! `#[global_allocator]` that wraps the system allocator and bumps
//! thread-local byte/call counters on every allocation — *when armed* via
//! `WEFR_OBS_ALLOC` (or [`set_tracking`]). Span guards snapshot the
//! counters at open and record the delta as `alloc_bytes`/`alloc_count`
//! on close, so the run report attributes allocation pressure to stages
//! the same way it attributes wall-clock.
//!
//! Caveats, by construction:
//!
//! * Attribution is *thread-inclusive*: a span sees every allocation made
//!   on its opening thread while it was open, including those of nested
//!   child spans on the same thread; allocations on other threads belong
//!   to the spans open *there* (cross-thread ingest/ranker workers open
//!   their own child spans, so fan-outs still attribute correctly).
//! * Frees are not subtracted — the counters measure allocation traffic
//!   (a churn/pressure signal), not live heap. Peak-RSS style numbers
//!   would need an OS-specific probe, which the zero-dep policy rules out.
//! * Without the feature, [`thread_totals`] is a constant `(0, 0)` and
//!   every span records zeros; the default build keeps the plain system
//!   allocator and pays nothing.

// lint:allow(sync-hygiene) allocator hot path: every allocation takes this
// load, and the model scheduler must never interpose on the global
// allocator (see the crate-root imports)
use std::sync::atomic::{AtomicBool, Ordering};

/// Environment knob: set to `1`/`true`/`on` to arm allocation tracking at
/// startup (no effect unless the `obs-alloc` feature is compiled in).
pub const ENV_OBS_ALLOC: &str = "WEFR_OBS_ALLOC";

static TRACKING: AtomicBool = AtomicBool::new(false);

/// Parse a `WEFR_OBS_ALLOC` value: `1`, `true`, `on`, `yes` (any case)
/// arm tracking; everything else (including unset) leaves it off.
pub fn env_requests_tracking(spec: Option<&str>) -> bool {
    matches!(
        spec.map(|s| s.trim().to_ascii_lowercase()).as_deref(),
        Some("1" | "true" | "on" | "yes")
    )
}

/// Arm or disarm allocation counting at runtime. A no-op signal unless the
/// `obs-alloc` feature is compiled in — the flag flips either way, but
/// nothing reads the counters without the feature.
pub fn set_tracking(enabled: bool) {
    // lint:allow(atomic-ordering) advisory arm/disarm flag; counters are per-thread and need no edge with it
    TRACKING.store(enabled, Ordering::Relaxed);
}

/// Whether allocation deltas are actually being attributed: the feature is
/// compiled in *and* tracking is armed.
pub fn tracking_active() -> bool {
    // lint:allow(atomic-ordering) advisory flag read; a stale value only delays attribution by one allocation
    cfg!(feature = "obs-alloc") && TRACKING.load(Ordering::Relaxed)
}

#[cfg(feature = "obs-alloc")]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;
    // lint:allow(sync-hygiene) same allocator-hot-path argument as the module imports
    use std::sync::atomic::Ordering;

    thread_local! {
        static BYTES: Cell<u64> = const { Cell::new(0) };
        static CALLS: Cell<u64> = const { Cell::new(0) };
    }

    /// Monotonic `(bytes, calls)` allocated on this thread since it
    /// started, while tracking was armed.
    pub fn thread_totals() -> (u64, u64) {
        (
            BYTES.try_with(Cell::get).unwrap_or(0),
            CALLS.try_with(Cell::get).unwrap_or(0),
        )
    }

    fn count(size: usize) {
        // lint:allow(atomic-ordering) checked on every allocation; Relaxed keeps the disabled path to one uncontended load
        if !super::TRACKING.load(Ordering::Relaxed) {
            return;
        }
        // try_with: the thread may be tearing its locals down; losing a
        // count there beats aborting the process.
        let _ = BYTES.try_with(|b| b.set(b.get().saturating_add(size as u64)));
        let _ = CALLS.try_with(|c| c.set(c.get().saturating_add(1)));
    }

    /// System-allocator wrapper that counts allocation traffic. `Cell` ops
    /// never allocate, so the counting path cannot recurse.
    pub struct CountingAlloc;

    // Safety: every method delegates verbatim to `System`, which upholds
    // the GlobalAlloc contract; the counters are plain thread-local Cells
    // touched outside the delegated call.
    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            count(layout.size());
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            count(layout.size());
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // Count only growth: shrinks and failures are not new pressure.
            count(new_size.saturating_sub(layout.size()));
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

#[cfg(not(feature = "obs-alloc"))]
mod counting {
    /// Without the `obs-alloc` feature there is no counting allocator;
    /// totals are a constant zero and spans record zero deltas.
    pub fn thread_totals() -> (u64, u64) {
        (0, 0)
    }
}

pub use counting::thread_totals;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_spec_parses_conservatively() {
        assert!(env_requests_tracking(Some("1")));
        assert!(env_requests_tracking(Some(" TRUE ")));
        assert!(env_requests_tracking(Some("on")));
        assert!(!env_requests_tracking(Some("0")));
        assert!(!env_requests_tracking(Some("off")));
        assert!(!env_requests_tracking(Some("")));
        assert!(!env_requests_tracking(None));
    }

    #[test]
    #[cfg(feature = "obs-alloc")]
    fn armed_counters_observe_allocations() {
        set_tracking(true);
        let (bytes_before, calls_before) = thread_totals();
        let block = vec![0u8; 4096];
        let (bytes_after, calls_after) = thread_totals();
        drop(block);
        set_tracking(false);
        assert!(bytes_after >= bytes_before + 4096);
        assert!(calls_after > calls_before);
    }

    #[test]
    #[cfg(not(feature = "obs-alloc"))]
    fn without_the_feature_totals_stay_zero() {
        set_tracking(true);
        let _block = vec![0u8; 4096];
        assert_eq!(thread_totals(), (0, 0));
        assert!(!tracking_active());
        set_tracking(false);
    }
}
