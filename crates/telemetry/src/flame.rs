//! Flamegraph export: collapsed stacks and a self-contained SVG renderer
//! (DESIGN.md §6).
//!
//! [`RunReport::to_collapsed`] folds the span tree into Brendan Gregg's
//! collapsed-stack format (`root;child;leaf <weight>` lines), which any
//! external flamegraph tooling accepts. [`render_svg`] then turns collapsed
//! text into a dependency-free interactive-enough SVG (hover titles carry
//! the exact weight and percentage) without shelling out to anything.
//!
//! Two weightings:
//!
//! * [`Weight::TimeUs`] — *self* wall-clock microseconds per frame (the
//!   classic profile view). Wall-clock varies run to run, so this mode is
//!   for humans, not for golden files.
//! * [`Weight::Count`] — one unit per span. Identical stacks merge, so the
//!   output depends only on the *multiset* of stack paths — which the
//!   deterministic pipeline reproduces exactly — making this the mode for
//!   committed, byte-identical artifacts like `results/flame_quickstart.svg`.
//!
//! Determinism, by construction: stacks aggregate and render in `BTreeMap`
//! order, colors are a hash of the frame name, and no timestamp or random
//! state enters the output.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::{collecting, snapshot, RunReport};

/// How a span contributes weight to its collapsed stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weight {
    /// Self wall-clock microseconds (duration minus child durations).
    /// Human profiling view; not reproducible across runs.
    TimeUs,
    /// One unit per span. Reproducible whenever the span *structure* is.
    Count,
}

impl Weight {
    fn label(self) -> &'static str {
        match self {
            Weight::TimeUs => "self-time µs",
            Weight::Count => "span count",
        }
    }
}

impl RunReport {
    /// Collapsed stacks weighted by self wall-clock microseconds. Frames
    /// whose self time rounds to zero are omitted (their children still
    /// carry the full path), matching the usual collapsed-format behavior.
    pub fn to_collapsed(&self) -> String {
        collapsed(self, Weight::TimeUs)
    }

    /// Collapsed stacks weighted one unit per span — the deterministic
    /// variant used for committed flamegraphs.
    pub fn to_collapsed_counts(&self) -> String {
        collapsed(self, Weight::Count)
    }
}

/// A frame name made safe for the collapsed format: `;` (stack separator)
/// and whitespace (weight separator) become `_`.
fn frame_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

/// Fold `report`'s span tree into collapsed-stack lines, sorted by stack
/// path, identical stacks merged.
pub fn collapsed(report: &RunReport, weight: Weight) -> String {
    let spans = &report.spans;
    let mut child_time: Vec<u64> = vec![0; spans.len()];
    for s in spans {
        if let Some(p) = s.parent {
            child_time[p as usize] = child_time[p as usize].saturating_add(s.duration_us);
        }
    }
    let mut paths: Vec<String> = Vec::with_capacity(spans.len());
    let mut lines: BTreeMap<String, u64> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let path = match s.parent {
            Some(p) => format!("{};{}", paths[p as usize], frame_name(&s.name)),
            None => frame_name(&s.name),
        };
        let w = match weight {
            Weight::Count => 1,
            Weight::TimeUs => s.duration_us.saturating_sub(child_time[i]),
        };
        if w > 0 {
            *lines.entry(path.clone()).or_insert(0) += w;
        }
        paths.push(path);
    }
    let mut out = String::new();
    for (stack, w) in &lines {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&w.to_string());
        out.push('\n');
    }
    out
}

/// One merged frame in the stack trie.
#[derive(Default)]
struct Node {
    self_weight: u64,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn total(&self) -> u64 {
        self.self_weight + self.children.values().map(Node::total).sum::<u64>()
    }

    fn depth(&self) -> usize {
        1 + self.children.values().map(Node::depth).max().unwrap_or(0)
    }
}

fn parse_collapsed(text: &str) -> Node {
    let mut root = Node::default();
    for line in text.lines() {
        let Some((stack, weight)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(weight) = weight.parse::<u64>() else {
            continue;
        };
        let mut node = &mut root;
        for frame in stack.split(';') {
            node = node.children.entry(frame.to_string()).or_default();
        }
        node.self_weight += weight;
    }
    root
}

const IMAGE_W: f64 = 1200.0;
const ROW_H: f64 = 18.0;
const PAD: f64 = 10.0;
const TOP: f64 = 36.0;
/// Approximate monospace advance at font-size 12 — only used to decide
/// how much label text fits, so "approximate" is fine.
const CHAR_W: f64 = 7.2;

fn xml_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// FNV-1a, the usual zero-dep stable string hash.
fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// flamegraph.pl-style warm color, chosen by name hash so the same stage is
/// the same color in every run and every report.
fn frame_color(name: &str) -> String {
    let h = fnv1a(name);
    let r = 205 + (h % 50);
    let g = (h >> 8) % 230;
    let b = (h >> 16) % 55;
    format!("rgb({r},{g},{b})")
}

/// Render collapsed-stack text as a self-contained SVG flamegraph. Output
/// is a pure function of the input text and title: frames in `BTreeMap`
/// order, hash colors, no timestamps.
pub fn render_svg(collapsed_text: &str, title: &str) -> String {
    let root = parse_collapsed(collapsed_text);
    let grand_total = root.total();
    let depth = root.depth().saturating_sub(1); // the synthetic root is not drawn
    let height = TOP + depth.max(1) as f64 * ROW_H + PAD;
    let mut svg = String::new();
    svg.push_str(&format!(
        "<?xml version=\"1.0\" standalone=\"no\"?>\n\
         <svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{IMAGE_W}\" height=\"{height:.2}\" \
         font-family=\"monospace\" font-size=\"12\">\n\
         <rect x=\"0\" y=\"0\" width=\"{IMAGE_W}\" height=\"{height:.2}\" fill=\"#f8f8f8\"/>\n\
         <text x=\"{PAD}\" y=\"22\" fill=\"#333\">{}</text>\n",
        xml_escape(title)
    ));
    if grand_total == 0 {
        svg.push_str(&format!(
            "<text x=\"{PAD}\" y=\"{:.2}\" fill=\"#999\">no spans recorded</text>\n</svg>\n",
            TOP + ROW_H - 4.0
        ));
        return svg;
    }
    let px_per_unit = (IMAGE_W - 2.0 * PAD) / grand_total as f64;
    // Explicit work stack, children pushed in reverse so frames emit in
    // BTreeMap order. The synthetic root's children are the report's root
    // spans, drawn at depth 0, each subtree as wide as its total weight.
    let mut frames: Vec<(String, usize, f64, f64, u64)> = Vec::new();
    let mut pending: Vec<(&str, &Node, usize, f64)> = Vec::new();
    {
        let mut x = PAD;
        for (name, child) in &root.children {
            pending.push((name.as_str(), child, 0, x));
            x += child.total() as f64 * px_per_unit;
        }
        pending.reverse();
    }
    while let Some((name, node, depth, x)) = pending.pop() {
        let width = node.total() as f64 * px_per_unit;
        frames.push((name.to_string(), depth, x, width, node.total()));
        let mut cx = x;
        let mut kids: Vec<(&str, &Node, usize, f64)> = Vec::new();
        for (child_name, child) in &node.children {
            kids.push((child_name.as_str(), child, depth + 1, cx));
            cx += child.total() as f64 * px_per_unit;
        }
        kids.reverse();
        pending.extend(kids);
    }
    for (name, depth, x, width, weight) in frames {
        let y = TOP + depth as f64 * ROW_H;
        let pct = weight as f64 / grand_total as f64 * 100.0;
        let hover = format!("{name} ({weight} units, {pct:.1}%)");
        svg.push_str(&format!(
            "<g><title>{}</title><rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{width:.2}\" \
             height=\"{:.2}\" fill=\"{}\" stroke=\"#f8f8f8\" stroke-width=\"0.5\"/>",
            xml_escape(&hover),
            ROW_H - 1.0,
            frame_color(&name)
        ));
        let fit = ((width - 4.0) / CHAR_W).max(0.0) as usize;
        if fit >= 3 {
            let label = if name.chars().count() <= fit {
                name.clone()
            } else {
                let prefix: String = name.chars().take(fit.saturating_sub(2)).collect();
                format!("{prefix}..")
            };
            svg.push_str(&format!(
                "<text x=\"{:.2}\" y=\"{:.2}\" fill=\"#222\">{}</text>",
                x + 2.0,
                y + ROW_H - 5.0,
                xml_escape(&label)
            ));
        }
        svg.push_str("</g>\n");
    }
    svg.push_str("</svg>\n");
    svg
}

/// Render `report` directly to an SVG string with the given weighting.
pub fn report_svg(report: &RunReport, weight: Weight) -> String {
    let title = format!("wefr flamegraph: run '{}' ({})", report.run, weight.label());
    render_svg(&collapsed(report, weight), &title)
}

/// Write `flame_<run>.svg` under `dir` (created if needed). Returns the
/// written path.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn write_flamegraph_to(
    report: &RunReport,
    weight: Weight,
    dir: &Path,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!(
        "flame_{}.svg",
        crate::report::sanitize(&report.run)
    ));
    std::fs::write(&path, report_svg(report, weight))?;
    Ok(path)
}

/// Snapshot the collector and write a [`Weight::Count`] flamegraph next to
/// the run report (the `WEFR_TELEMETRY_OUT` directory, default `results/`)
/// — but only when telemetry is collecting, mirroring
/// [`crate::write_run_report`]. Returns `Ok(None)` when skipped.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn write_flamegraph(run: &str) -> std::io::Result<Option<PathBuf>> {
    if !collecting() {
        return Ok(None);
    }
    let dir = match std::env::var("WEFR_TELEMETRY_OUT") {
        Ok(dir) if !dir.trim().is_empty() => PathBuf::from(dir),
        _ => PathBuf::from("results"),
    };
    write_flamegraph_to(&snapshot(run), Weight::Count, &dir).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanRecord;

    fn span(id: u64, parent: Option<u64>, name: &str, us: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.into(),
            start_us: 0,
            duration_us: us,
            fields: vec![],
            alloc_bytes: 0,
            alloc_count: 0,
        }
    }

    fn report(spans: Vec<SpanRecord>) -> RunReport {
        RunReport {
            schema: crate::SCHEMA.into(),
            run: "flame-test".into(),
            spans,
            events: vec![],
            dropped_events: 0,
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
        }
    }

    #[test]
    fn collapsed_self_time_subtracts_children() {
        let r = report(vec![
            span(0, None, "select", 100),
            span(1, Some(0), "rankers", 60),
            span(2, Some(1), "pearson", 25),
            span(3, Some(1), "pearson", 15),
        ]);
        let text = r.to_collapsed();
        assert_eq!(
            text,
            "select 40\nselect;rankers 20\nselect;rankers;pearson 40\n"
        );
    }

    #[test]
    fn collapsed_counts_merge_identical_stacks_deterministically() {
        let r = report(vec![
            span(0, None, "ingest", 0),
            span(1, Some(0), "worker", 10),
            span(2, Some(0), "worker", 999),
            span(3, Some(0), "merge", 5),
        ]);
        // Count mode ignores durations entirely.
        assert_eq!(
            r.to_collapsed_counts(),
            "ingest 1\ningest;merge 1\ningest;worker 2\n"
        );
    }

    #[test]
    fn collapsed_sanitizes_separator_characters() {
        let r = report(vec![span(0, None, "odd name;here", 7)]);
        assert_eq!(r.to_collapsed(), "odd_name_here 7\n");
    }

    #[test]
    fn svg_is_a_pure_function_of_the_collapsed_input() {
        let text = "a 10\na;b 5\na;c 5\n";
        let once = render_svg(text, "t");
        let twice = render_svg(text, "t");
        assert_eq!(once, twice);
        assert!(once.starts_with("<?xml"));
        assert!(once.ends_with("</svg>\n"));
        assert!(once.contains("<title>a (20 units, 100.0%)</title>"));
        assert!(once.contains("<title>b (5 units, 25.0%)</title>"));
    }

    #[test]
    fn svg_handles_empty_input_and_escapes_names() {
        let empty = render_svg("", "t");
        assert!(empty.contains("no spans recorded"));
        let escaped = render_svg("a<b&c 3\n", "ti<tle");
        assert!(escaped.contains("a&lt;b&amp;c"));
        assert!(escaped.contains("ti&lt;tle"));
        assert!(!escaped.contains("a<b"));
    }

    #[test]
    fn count_weighted_svg_ignores_sibling_duration_jitter() {
        let jitter_a = report(vec![
            span(0, None, "ingest", 0),
            span(1, Some(0), "worker", 10),
            span(2, Some(0), "worker", 90),
        ]);
        let jitter_b = report(vec![
            span(0, None, "ingest", 0),
            span(1, Some(0), "worker", 55),
            span(2, Some(0), "worker", 44),
        ]);
        assert_eq!(
            report_svg(&jitter_a, Weight::Count),
            report_svg(&jitter_b, Weight::Count)
        );
    }
}
