//! Metrics primitives: counters, gauges, and log₂-bucketed histograms.
//!
//! All three live in name-keyed registries on the global collector, so any
//! crate can contribute to the same metric. Histograms bucket by the floor
//! of `log₂(value)` — exponential buckets that keep wildly skewed
//! distributions (per-pair Kendall distances, per-stage microseconds)
//! summarizable in a handful of sparse entries.

use std::collections::BTreeMap;

use crate::{collecting, collector};

/// Smallest (and, negated, largest) histogram bucket exponent. Values at or
/// below `2^-64` — including zero, negatives, and NaN — land in the bottom
/// bucket; values at or above `2^64` land in the top one.
pub(crate) const MIN_EXP: i32 = -64;
pub(crate) const MAX_EXP: i32 = 64;

/// Running state of one histogram.
#[derive(Debug, Clone, Default)]
pub(crate) struct HistogramData {
    pub(crate) count: u64,
    pub(crate) sum: f64,
    pub(crate) min: f64,
    pub(crate) max: f64,
    /// Sparse buckets: exponent `e` counts observations in `[2^e, 2^(e+1))`.
    pub(crate) buckets: BTreeMap<i32, u64>,
}

/// The bucket exponent for an observation.
pub(crate) fn bucket_exponent(value: f64) -> i32 {
    if value > 0.0 {
        (value.log2().floor() as i32).clamp(MIN_EXP, MAX_EXP)
    } else {
        MIN_EXP
    }
}

/// Add `delta` to the named counter (created at 0 on first use).
pub fn counter_add(name: &str, delta: u64) {
    if !collecting() {
        return;
    }
    let mut counters = collector()
        .counters
        .lock()
        .expect("telemetry counters lock");
    *counters.entry(name.to_string()).or_insert(0) += delta;
}

/// Set the named gauge to `value` (last write wins).
pub fn gauge_set(name: &str, value: f64) {
    if !collecting() {
        return;
    }
    let mut gauges = collector().gauges.lock().expect("telemetry gauges lock");
    gauges.insert(name.to_string(), value);
}

/// Record one observation in the named histogram.
pub fn histogram_observe(name: &str, value: f64) {
    if !collecting() {
        return;
    }
    let mut histograms = collector()
        .histograms
        .lock()
        .expect("telemetry histograms lock");
    let h = histograms.entry(name.to_string()).or_default();
    if h.count == 0 {
        h.min = value;
        h.max = value;
    } else {
        h.min = h.min.min(value);
        h.max = h.max.max(value);
    }
    h.count += 1;
    h.sum += value;
    *h.buckets.entry(bucket_exponent(value)).or_insert(0) += 1;
}

/// A counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

json::impl_json!(CounterSnapshot { name, value });

/// A gauge's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Last written value.
    pub value: f64,
}

json::impl_json!(GaugeSnapshot { name, value });

/// A histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sparse `(exponent, count)` pairs, ascending by exponent; bucket `e`
    /// covers `[2^e, 2^(e+1))`.
    pub buckets: Vec<(i32, u64)>,
    /// Median estimate, [`HistogramSnapshot::quantile`] at 0.5. New in
    /// `wefr.telemetry.v2`; parses as 0 from v1 reports.
    pub p50: f64,
    /// 90th-percentile estimate (v2; defaults to 0 from v1 reports).
    pub p90: f64,
    /// 99th-percentile estimate (v2; defaults to 0 from v1 reports).
    pub p99: f64,
}

json::impl_json!(HistogramSnapshot {
    name,
    count,
    sum,
    min,
    max,
    buckets
} defaults {
    p50: 0.0,
    p90: 0.0,
    p99: 0.0,
});

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`q` clamped to `[0, 1]`) from the log₂
    /// buckets by linear interpolation inside the covering bucket, clamped
    /// to the observed `[min, max]` range — so degenerate buckets (the
    /// bottom catch-all for zeros and negatives, the top catch-all for
    /// huge values) cannot report a value no observation had. Returns 0
    /// when the histogram is empty.
    ///
    /// The estimate is exact at the bucket boundaries and within one
    /// bucket's width (a factor of 2) everywhere else — the usual
    /// exponential-histogram error bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cumulative = 0u64;
        for &(exp, bucket_count) in &self.buckets {
            let before = cumulative as f64;
            cumulative += bucket_count;
            if cumulative as f64 >= target {
                let lo = pow2(exp);
                let hi = pow2(exp + 1);
                let fraction = if bucket_count == 0 {
                    0.0
                } else {
                    ((target - before) / bucket_count as f64).clamp(0.0, 1.0)
                };
                let estimate = lo + (hi - lo) * fraction;
                return estimate.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// `2^exp` as f64 — exact for the whole bucket exponent range.
fn pow2(exp: i32) -> f64 {
    2f64.powi(exp)
}

/// Read the current value of a gauge, if it has ever been set. Used by the
/// watchdog to fold sampled gauges into histograms.
pub fn gauge_value(name: &str) -> Option<f64> {
    let gauges = collector().gauges.lock().expect("telemetry gauges lock");
    gauges.get(name).copied()
}

pub(crate) fn snapshot_counters() -> Vec<CounterSnapshot> {
    let counters = collector()
        .counters
        .lock()
        .expect("telemetry counters lock");
    counters
        .iter()
        .map(|(name, &value)| CounterSnapshot {
            name: name.clone(),
            value,
        })
        .collect()
}

pub(crate) fn snapshot_gauges() -> Vec<GaugeSnapshot> {
    let gauges = collector().gauges.lock().expect("telemetry gauges lock");
    gauges
        .iter()
        .map(|(name, &value)| GaugeSnapshot {
            name: name.clone(),
            value,
        })
        .collect()
}

pub(crate) fn snapshot_histograms() -> Vec<HistogramSnapshot> {
    let histograms = collector()
        .histograms
        .lock()
        .expect("telemetry histograms lock");
    histograms
        .iter()
        .map(|(name, h)| {
            let mut snap = HistogramSnapshot {
                name: name.clone(),
                count: h.count,
                sum: h.sum,
                min: h.min,
                max: h.max,
                buckets: h.buckets.iter().map(|(&e, &c)| (e, c)).collect(),
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
            };
            snap.p50 = snap.quantile(0.50);
            snap.p90 = snap.quantile(0.90);
            snap.p99 = snap.quantile(0.99);
            snap
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_exponents_are_log2_floors() {
        assert_eq!(bucket_exponent(1.0), 0);
        assert_eq!(bucket_exponent(1.5), 0);
        assert_eq!(bucket_exponent(2.0), 1);
        assert_eq!(bucket_exponent(1000.0), 9);
        assert_eq!(bucket_exponent(0.25), -2);
    }

    #[test]
    fn degenerate_observations_hit_the_bottom_bucket() {
        assert_eq!(bucket_exponent(0.0), MIN_EXP);
        assert_eq!(bucket_exponent(-3.0), MIN_EXP);
        assert_eq!(bucket_exponent(f64::NAN), MIN_EXP);
        assert_eq!(bucket_exponent(f64::MIN_POSITIVE), MIN_EXP);
        assert_eq!(bucket_exponent(f64::INFINITY), MAX_EXP);
        assert_eq!(bucket_exponent(1e300), MAX_EXP);
    }

    #[test]
    fn snapshot_mean_handles_empty() {
        let empty = HistogramSnapshot {
            name: "x".into(),
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: vec![],
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
        };
        assert_eq!(empty.mean(), 0.0);
        let one = HistogramSnapshot {
            count: 4,
            sum: 10.0,
            ..empty
        };
        assert_eq!(one.mean(), 2.5);
    }

    fn histogram(count: u64, min: f64, max: f64, buckets: Vec<(i32, u64)>) -> HistogramSnapshot {
        HistogramSnapshot {
            name: "q".into(),
            count,
            sum: 0.0,
            min,
            max,
            buckets,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
        }
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        // 8 observations in [4, 8), 2 in [8, 16).
        let h = histogram(10, 4.0, 15.0, vec![(2, 8), (3, 2)]);
        assert_eq!(h.quantile(0.0), 4.0);
        // target = 5 of 10 → 5/8 through the [4, 8) bucket: 4 + 4 * 5/8.
        assert!((h.quantile(0.5) - 6.5).abs() < 1e-12);
        // target = 9 of 10 → 1/2 through the [8, 16) bucket = 12.
        assert!((h.quantile(0.9) - 12.0).abs() < 1e-12);
        // The top of the last bucket clamps to the observed max.
        assert_eq!(h.quantile(1.0), 15.0);
    }

    #[test]
    fn quantile_handles_degenerate_histograms() {
        assert_eq!(histogram(0, 0.0, 0.0, vec![]).quantile(0.5), 0.0);
        // All observations identical: every quantile is that value.
        let single = histogram(5, 7.0, 7.0, vec![(2, 5)]);
        assert_eq!(single.quantile(0.01), 7.0);
        assert_eq!(single.quantile(0.99), 7.0);
        // Zeros and negatives land in the bottom catch-all; the clamp to
        // [min, max] keeps the estimate in the observed range.
        let degenerate = histogram(3, -2.0, 1.5, vec![(MIN_EXP, 2), (0, 1)]);
        let q = degenerate.quantile(0.5);
        assert!((-2.0..=1.5).contains(&q));
        // Out-of-range q clamps instead of panicking.
        assert_eq!(degenerate.quantile(-1.0), degenerate.quantile(0.0));
        assert_eq!(degenerate.quantile(2.0), degenerate.quantile(1.0));
    }

    #[test]
    fn quantiles_match_against_observed_snapshots() {
        // Pinned against a hand-checked distribution: 4 obs in [2,4),
        // 6 in [256, 512).
        let h = histogram(10, 2.5, 400.0, vec![(1, 4), (8, 6)]);
        // p50: target 5 → second bucket, fraction (5-4)/6.
        let expected_p50 = 256.0 + 256.0 * (1.0 / 6.0);
        assert!((h.quantile(0.5) - expected_p50).abs() < 1e-9);
        assert_eq!(h.quantile(0.99), 400.0); // clamped to max
    }
}
