//! Metrics primitives: counters, gauges, and log₂-bucketed histograms.
//!
//! All three live in name-keyed registries on the global collector, so any
//! crate can contribute to the same metric. Histograms bucket by the floor
//! of `log₂(value)` — exponential buckets that keep wildly skewed
//! distributions (per-pair Kendall distances, per-stage microseconds)
//! summarizable in a handful of sparse entries.

use std::collections::BTreeMap;

use crate::{collecting, collector};

/// Smallest (and, negated, largest) histogram bucket exponent. Values at or
/// below `2^-64` — including zero, negatives, and NaN — land in the bottom
/// bucket; values at or above `2^64` land in the top one.
pub(crate) const MIN_EXP: i32 = -64;
pub(crate) const MAX_EXP: i32 = 64;

/// Running state of one histogram.
#[derive(Debug, Clone, Default)]
pub(crate) struct HistogramData {
    pub(crate) count: u64,
    pub(crate) sum: f64,
    pub(crate) min: f64,
    pub(crate) max: f64,
    /// Sparse buckets: exponent `e` counts observations in `[2^e, 2^(e+1))`.
    pub(crate) buckets: BTreeMap<i32, u64>,
}

/// The bucket exponent for an observation.
pub(crate) fn bucket_exponent(value: f64) -> i32 {
    if value > 0.0 {
        (value.log2().floor() as i32).clamp(MIN_EXP, MAX_EXP)
    } else {
        MIN_EXP
    }
}

/// Add `delta` to the named counter (created at 0 on first use).
pub fn counter_add(name: &str, delta: u64) {
    if !collecting() {
        return;
    }
    let mut counters = collector()
        .counters
        .lock()
        .expect("telemetry counters lock");
    *counters.entry(name.to_string()).or_insert(0) += delta;
}

/// Set the named gauge to `value` (last write wins).
pub fn gauge_set(name: &str, value: f64) {
    if !collecting() {
        return;
    }
    let mut gauges = collector().gauges.lock().expect("telemetry gauges lock");
    gauges.insert(name.to_string(), value);
}

/// Record one observation in the named histogram.
pub fn histogram_observe(name: &str, value: f64) {
    if !collecting() {
        return;
    }
    let mut histograms = collector()
        .histograms
        .lock()
        .expect("telemetry histograms lock");
    let h = histograms.entry(name.to_string()).or_default();
    if h.count == 0 {
        h.min = value;
        h.max = value;
    } else {
        h.min = h.min.min(value);
        h.max = h.max.max(value);
    }
    h.count += 1;
    h.sum += value;
    *h.buckets.entry(bucket_exponent(value)).or_insert(0) += 1;
}

/// A counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

json::impl_json!(CounterSnapshot { name, value });

/// A gauge's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Last written value.
    pub value: f64,
}

json::impl_json!(GaugeSnapshot { name, value });

/// A histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sparse `(exponent, count)` pairs, ascending by exponent; bucket `e`
    /// covers `[2^e, 2^(e+1))`.
    pub buckets: Vec<(i32, u64)>,
}

json::impl_json!(HistogramSnapshot {
    name,
    count,
    sum,
    min,
    max,
    buckets
});

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

pub(crate) fn snapshot_counters() -> Vec<CounterSnapshot> {
    let counters = collector()
        .counters
        .lock()
        .expect("telemetry counters lock");
    counters
        .iter()
        .map(|(name, &value)| CounterSnapshot {
            name: name.clone(),
            value,
        })
        .collect()
}

pub(crate) fn snapshot_gauges() -> Vec<GaugeSnapshot> {
    let gauges = collector().gauges.lock().expect("telemetry gauges lock");
    gauges
        .iter()
        .map(|(name, &value)| GaugeSnapshot {
            name: name.clone(),
            value,
        })
        .collect()
}

pub(crate) fn snapshot_histograms() -> Vec<HistogramSnapshot> {
    let histograms = collector()
        .histograms
        .lock()
        .expect("telemetry histograms lock");
    histograms
        .iter()
        .map(|(name, h)| HistogramSnapshot {
            name: name.clone(),
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            buckets: h.buckets.iter().map(|(&e, &c)| (e, c)).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_exponents_are_log2_floors() {
        assert_eq!(bucket_exponent(1.0), 0);
        assert_eq!(bucket_exponent(1.5), 0);
        assert_eq!(bucket_exponent(2.0), 1);
        assert_eq!(bucket_exponent(1000.0), 9);
        assert_eq!(bucket_exponent(0.25), -2);
    }

    #[test]
    fn degenerate_observations_hit_the_bottom_bucket() {
        assert_eq!(bucket_exponent(0.0), MIN_EXP);
        assert_eq!(bucket_exponent(-3.0), MIN_EXP);
        assert_eq!(bucket_exponent(f64::NAN), MIN_EXP);
        assert_eq!(bucket_exponent(f64::MIN_POSITIVE), MIN_EXP);
        assert_eq!(bucket_exponent(f64::INFINITY), MAX_EXP);
        assert_eq!(bucket_exponent(1e300), MAX_EXP);
    }

    #[test]
    fn snapshot_mean_handles_empty() {
        let empty = HistogramSnapshot {
            name: "x".into(),
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: vec![],
        };
        assert_eq!(empty.mean(), 0.0);
        let one = HistogramSnapshot {
            count: 4,
            sum: 10.0,
            ..empty
        };
        assert_eq!(one.mean(), 2.5);
    }
}
