//! Live metrics exposition over plain TCP (DESIGN.md §6): the first brick
//! of the `smart-serve` daemon (ROADMAP item 1).
//!
//! [`start`] binds a std-only listener and answers two read-only routes:
//!
//! * `GET /metrics` — Prometheus-style text exposition: every counter and
//!   gauge, each histogram as cumulative `_bucket{le="..."}` lines plus
//!   `_sum`/`_count` and `_p50`/`_p90`/`_p99` quantile estimate lines, and
//!   the `wefr_telemetry_events_dropped` drop counter (always present, so
//!   scrapers can alert on buffer saturation).
//! * `GET /report` — the full smart-json run-report snapshot, exactly what
//!   [`crate::write_run_report`] would write, but captured mid-run.
//!
//! Off by default: nothing binds unless [`start`] (or [`start_from_env`]
//! with `WEFR_METRICS_ADDR` set) is called. Responses are snapshots — the
//! server never mutates collector state — and the listener thread shuts
//! down through an explicit handshake in [`MetricsServer::stop`] (also run
//! on drop), so runs stay clean-exiting and stdout stays untouched.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use sync::atomic::{AtomicBool, Ordering};

use crate::{snapshot, RunReport};

/// Environment knob: bind address for the metrics listener (e.g.
/// `127.0.0.1:9184`; port 0 picks a free port). Unset means no listener.
pub const ENV_METRICS_ADDR: &str = "WEFR_METRICS_ADDR";

/// How long a connection may dawdle before the server gives up on it.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);

/// Handle to a running metrics listener. Stop it explicitly with
/// [`MetricsServer::stop`]; dropping the handle performs the same clean
/// shutdown.
pub struct MetricsServer {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address — useful when started on port 0.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shut the listener down: flag the accept loop, wake it with a
    /// loopback connection, and join the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stopping.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); a throwaway connection is the
        // portable way to wake it so the stop flag is observed promptly.
        if let Ok(stream) = TcpStream::connect_timeout(&self.addr, CLIENT_TIMEOUT) {
            drop(stream);
        }
        let _ = thread.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` and serve `/metrics` and `/report` snapshots labeled `run`
/// from a background thread until the returned handle is stopped or
/// dropped.
///
/// # Errors
///
/// Propagates bind and thread-spawn failures.
pub fn start(addr: &str, run: &str) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stopping = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stopping);
    let run = run.to_string();
    let thread = std::thread::Builder::new()
        .name("wefr-metrics".to_string())
        .spawn(move || {
            for connection in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = connection {
                    // One slow or broken client must not take the endpoint
                    // down; errors just close that connection.
                    let _ = handle_connection(stream, &run);
                }
            }
        })?;
    Ok(MetricsServer {
        addr,
        stopping,
        thread: Some(thread),
    })
}

/// [`start`] on the address named by `WEFR_METRICS_ADDR`. Returns `None`
/// when the variable is unset or empty; bind failures are reported as a
/// telemetry error event (and `None`) rather than aborting the run.
pub fn start_from_env(run: &str) -> Option<MetricsServer> {
    let addr = std::env::var(ENV_METRICS_ADDR).ok()?;
    let addr = addr.trim();
    if addr.is_empty() {
        return None;
    }
    match start(addr, run) {
        Ok(server) => Some(server),
        Err(e) => {
            crate::error!(
                "serve",
                format!("failed to bind metrics listener on {addr}: {e}"),
            );
            None
        }
    }
}

fn handle_connection(mut stream: TcpStream, run: &str) -> std::io::Result<()> {
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let path = read_request_path(&mut stream)?;
    let (status, content_type, body) = match path.as_deref() {
        Some("/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            render_metrics(&snapshot(run)),
        ),
        Some("/report") => {
            let mut body = json::to_string_pretty(&snapshot(run));
            body.push('\n');
            ("200 OK", "application/json; charset=utf-8", body)
        }
        Some(_) => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; routes: /metrics /report\n".to_string(),
        ),
        None => (
            "400 Bad Request",
            "text/plain; charset=utf-8",
            "malformed request\n".to_string(),
        ),
    };
    stream.write_all(http_response(status, content_type, &body).as_bytes())?;
    stream.flush()
}

/// Assemble a minimal `HTTP/1.1` response: status line, `Content-Type`,
/// `Content-Length`, `Connection: close`, then `body`. Shared with the
/// smart-serve listener so both endpoints speak identical framing.
pub fn http_response(status: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Read up to the end of the request headers and return the path of a
/// `GET <path> ...` request line, or `None` when the line is not a GET.
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 256];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8 * 1024 {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let text = String::from_utf8_lossy(&buf);
    let request_line = text.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.to_string())),
        _ => Ok(None),
    }
}

/// A metric name in exposition form: `wefr_` prefix, every character
/// outside `[a-zA-Z0-9_]` mapped to `_` (dots become underscores).
fn expo_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("wefr_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Format a float the way the exposition format expects: finite values via
/// shortest-repr `Display`, non-finite as `NaN`/`+Inf`/`-Inf`.
fn expo_f64(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value.is_infinite() {
        if value > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{value}")
    }
}

/// Render the snapshot as Prometheus-style text exposition.
pub fn render_metrics(report: &RunReport) -> String {
    let mut out = String::new();
    let mut dropped_listed = false;
    for counter in &report.counters {
        let name = expo_name(&counter.name);
        dropped_listed |= counter.name == "telemetry.events_dropped";
        out.push_str(&format!(
            "# TYPE {name} counter\n{name} {}\n",
            counter.value
        ));
    }
    if !dropped_listed {
        // Always exposed, even at zero: scrapers alert on its slope, so the
        // series must exist before the buffer ever saturates.
        out.push_str(&format!(
            "# TYPE wefr_telemetry_events_dropped counter\nwefr_telemetry_events_dropped {}\n",
            report.dropped_events
        ));
    }
    for gauge in &report.gauges {
        let name = expo_name(&gauge.name);
        out.push_str(&format!(
            "# TYPE {name} gauge\n{name} {}\n",
            expo_f64(gauge.value)
        ));
    }
    for histogram in &report.histograms {
        let name = expo_name(&histogram.name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for &(exp, count) in &histogram.buckets {
            cumulative += count;
            let le = expo_f64(2f64.powi(exp + 1));
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!(
            "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
            histogram.count,
            expo_f64(histogram.sum),
            histogram.count
        ));
        for (suffix, value) in [
            ("p50", histogram.p50),
            ("p90", histogram.p90),
            ("p99", histogram.p99),
        ] {
            out.push_str(&format!("{name}_{suffix} {}\n", expo_f64(value)));
        }
    }
    out
}
