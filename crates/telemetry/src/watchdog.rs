//! Stall watchdog: a background monitor for runs that stop making progress
//! (DESIGN.md §6).
//!
//! [`start`] spawns one thread that wakes every quarter-deadline and
//!
//! * samples the `ingest.queue_depth` gauge into the
//!   `ingest.queue_depth.sampled` histogram, turning the instantaneous
//!   backpressure reading into a distribution over the run;
//! * samples the age of the oldest still-open span into the
//!   `telemetry.watchdog.open_span_us` histogram;
//! * emits one `warn` event per span that has been open longer than the
//!   deadline (deduplicated — a stalled span warns once, not once per
//!   tick) and bumps the `telemetry.watchdog.stalls` counter.
//!
//! The watchdog only observes: it never cancels work, and warnings go to
//! the event buffer plus (at `WEFR_LOG=warn` or lower) stderr — stdout is
//! untouched, so pipeline output stays bit-identical with the watchdog on
//! or off. Shutdown is a condvar handshake through
//! [`sync::shutdown::StopFlag`]: [`Watchdog::stop`] (or drop) wakes the
//! thread and joins it, so no tick can fire mid-teardown. The handshake is
//! model-checked in smart-sync's `watchdog_shutdown_always_terminates`
//! scenario.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use sync::atomic::Ordering;
use sync::shutdown::StopFlag;

use crate::span::OPEN;
use crate::{collector, metrics, now_us};

/// Environment knob: span-stall deadline in (possibly fractional) seconds.
/// Unset or non-positive means no watchdog.
pub const ENV_WATCHDOG_SECS: &str = "WEFR_WATCHDOG_SECS";

/// Counter bumped once per detected stalled span.
pub const STALL_COUNTER: &str = "telemetry.watchdog.stalls";

/// Handle to a running watchdog thread. Stop it explicitly with
/// [`Watchdog::stop`]; dropping the handle performs the same clean
/// shutdown.
pub struct Watchdog {
    flag: Arc<StopFlag>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Shut the monitor down: flag it, wake it, join it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.flag.stop();
        let _ = thread.join();
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Parse a `WEFR_WATCHDOG_SECS` value into a deadline. Fractional seconds
/// are honored; unset, unparsable, or non-positive values disable the
/// watchdog.
pub fn env_deadline(spec: Option<&str>) -> Option<Duration> {
    let secs: f64 = spec?.trim().parse().ok()?;
    if secs > 0.0 && secs.is_finite() {
        Some(Duration::from_secs_f64(secs))
    } else {
        None
    }
}

/// [`start`] with the deadline named by `WEFR_WATCHDOG_SECS`; `None` when
/// the variable is unset or does not parse to a positive duration.
pub fn start_from_env() -> Option<Watchdog> {
    let deadline = env_deadline(std::env::var(ENV_WATCHDOG_SECS).ok().as_deref())?;
    Some(start(deadline))
}

/// Spawn the monitor thread with the given span-stall deadline. The poll
/// period is a quarter of the deadline, clamped to `[10ms, 1s]`, so stalls
/// are reported promptly without busy-waiting on long deadlines.
pub fn start(deadline: Duration) -> Watchdog {
    let poll = (deadline / 4).clamp(Duration::from_millis(10), Duration::from_secs(1));
    let flag = Arc::new(StopFlag::new());
    let handle = Arc::clone(&flag);
    let thread = std::thread::Builder::new()
        .name("wefr-watchdog".to_string())
        .spawn(move || {
            let mut warned: HashSet<(u64, u64)> = HashSet::new();
            // The timed wait doubles as the tick timer; a stop() notify
            // interrupts the sleep so shutdown never waits a full poll.
            // This exact handshake is model-checked in smart-sync's
            // `watchdog_shutdown_always_terminates` scenario.
            while !handle.wait_timeout(poll) {
                tick(deadline, &mut warned);
            }
        })
        .expect("spawn watchdog thread");
    Watchdog {
        flag,
        thread: Some(thread),
    }
}

/// One monitor pass. Split out (and crate-visible) so tests can drive the
/// scan deterministically without waiting on real poll timing.
pub(crate) fn tick(deadline: Duration, warned: &mut HashSet<(u64, u64)>) {
    if let Some(depth) = metrics::gauge_value("ingest.queue_depth") {
        metrics::histogram_observe("ingest.queue_depth.sampled", depth);
    }
    let deadline_us = deadline.as_micros() as u64;
    let now = now_us();
    let c = collector();
    // lint:allow(atomic-ordering) generation is a staleness hint for dedup keys; the spans lock below is the ordering edge
    let generation = c.generation.load(Ordering::Relaxed);
    // Collect stalls under the spans lock, then release it before emitting:
    // warn!/counter_add take other collector locks, and the logger may
    // block on stderr — neither belongs under the arena lock.
    let mut oldest_open_us = None::<u64>;
    let stalls: Vec<(u64, String, u64)> = {
        let spans = c.spans.lock().expect("telemetry spans lock");
        spans
            .iter()
            .filter(|s| s.duration_us == OPEN)
            .filter_map(|s| {
                let age_us = now.saturating_sub(s.start_us);
                oldest_open_us = Some(oldest_open_us.unwrap_or(0).max(age_us));
                (age_us > deadline_us && warned.insert((generation, s.id)))
                    .then(|| (s.id, s.name.clone(), age_us))
            })
            .collect()
    };
    if let Some(age_us) = oldest_open_us {
        metrics::histogram_observe("telemetry.watchdog.open_span_us", age_us as f64);
    }
    for (id, name, age_us) in stalls {
        metrics::counter_add(STALL_COUNTER, 1);
        crate::warn!(
            "watchdog",
            format!(
                "span '{name}' open for {:.1}s (deadline {:.1}s)",
                age_us as f64 / 1e6,
                deadline_us as f64 / 1e6
            ),
            span_id = id,
            open_us = age_us,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_deadline_parses_conservatively() {
        assert_eq!(env_deadline(Some("2")), Some(Duration::from_secs(2)));
        assert_eq!(
            env_deadline(Some(" 0.25 ")),
            Some(Duration::from_millis(250))
        );
        assert_eq!(env_deadline(Some("0")), None);
        assert_eq!(env_deadline(Some("-3")), None);
        assert_eq!(env_deadline(Some("inf")), None);
        assert_eq!(env_deadline(Some("soon")), None);
        assert_eq!(env_deadline(None), None);
    }

    #[test]
    fn poll_period_clamps() {
        // Indirectly pin the clamp arithmetic used by start().
        let quarter =
            |d: Duration| (d / 4).clamp(Duration::from_millis(10), Duration::from_secs(1));
        assert_eq!(quarter(Duration::from_millis(8)), Duration::from_millis(10));
        assert_eq!(quarter(Duration::from_secs(2)), Duration::from_millis(500));
        assert_eq!(quarter(Duration::from_secs(3600)), Duration::from_secs(1));
    }
}
