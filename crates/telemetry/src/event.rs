//! Structured, leveled events.
//!
//! Events are point-in-time records — a level, a target (the subsystem that
//! emitted it), a message, and key/value fields — attributed to the
//! innermost open span on the emitting thread. They flow to both sinks:
//! the stderr logger (when `WEFR_LOG` admits the level) and the run-report
//! buffer (when collecting). Prefer the [`crate::error!`], [`crate::info!`],
//! and [`crate::debug!`] macros, which skip argument evaluation entirely
//! when the event would go nowhere.

use crate::{collecting, collector, current_span, log_enabled, logger, now_us, Field, Level};

/// Cap on buffered events per run; beyond it events are counted as dropped
/// rather than recorded, bounding memory on debug-level runs.
pub(crate) const MAX_EVENTS: usize = 65_536;

/// One recorded event, as exported in the run report.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Severity of the event.
    pub level: Level,
    /// Subsystem that emitted it (e.g. `"ensemble"`).
    pub target: String,
    /// Human-readable message.
    pub message: String,
    /// Microseconds since the collector epoch.
    pub at_us: u64,
    /// Id of the span open on the emitting thread, if any.
    pub span: Option<u64>,
    /// Key/value fields.
    pub fields: Vec<Field>,
}

json::impl_json!(EventRecord {
    level,
    target,
    message,
    at_us,
    span,
    fields
});

/// Record (and/or log) an event. This is the expanded form behind the event
/// macros; callers are expected to have checked [`crate::event_active`]
/// first, but calling it cold is safe — it re-checks both sinks.
pub fn emit(level: Level, target: &str, message: String, fields: Vec<Field>) {
    if log_enabled(level) {
        logger::event_line(level, target, &message, &fields);
    }
    if !collecting() {
        return;
    }
    let c = collector();
    // lint:allow(sync-hygiene, atomic-ordering) telemetry substrate (see crate root); generation is a staleness hint, the events lock is the edge
    let generation = c.generation.load(std::sync::atomic::Ordering::Relaxed);
    let span = current_span()
        .filter(|id| id.generation() == generation)
        .map(|id| id.arena_index() as u64);
    let record = EventRecord {
        level,
        target: target.to_string(),
        message,
        at_us: now_us(),
        span,
        fields,
    };
    let mut events = c.events.lock().expect("telemetry events lock");
    if events.records.len() < MAX_EVENTS {
        events.records.push(record);
    } else {
        events.dropped += 1;
    }
}
