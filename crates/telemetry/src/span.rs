//! Hierarchical tracing spans.
//!
//! Spans live in a flat, mutex-guarded arena on the global collector;
//! parent links (indices into the arena) encode the tree. Each thread keeps
//! a stack of open spans so nesting is implicit within a thread, while
//! [`span_child_of`] lets scoped worker threads attach to a parent opened
//! on another thread — the pattern used by the parallel ranker fan-out.

use std::cell::RefCell;
// lint:allow(sync-hygiene) telemetry substrate: its atomics must not become
// model-scheduler yield points (see the crate-root imports)
use std::sync::atomic::Ordering;

use crate::{collecting, collector, logger, now_us, Field, FieldValue, Level};

/// Sentinel stored in [`SpanRecord::duration_us`] while the span is open.
/// [`crate::snapshot`] reports still-open spans as duration 0.
pub(crate) const OPEN: u64 = u64::MAX;

/// Opaque handle to a span in the collector arena. Copyable so it can be
/// moved into scoped worker closures for [`span_child_of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId {
    index: usize,
    generation: u64,
}

/// One recorded span, as exported in the run report.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Arena index of this span; stable within one run report.
    pub id: u64,
    /// Arena index of the parent span, `None` for roots. Parents always
    /// precede children, so `parent < id`.
    pub parent: Option<u64>,
    /// Stage name (e.g. `"ensemble"`).
    pub name: String,
    /// Microseconds since the collector epoch when the span opened.
    pub start_us: u64,
    /// Wall-clock duration in microseconds (0 if never closed).
    pub duration_us: u64,
    /// Key/value fields recorded on the span.
    pub fields: Vec<Field>,
    /// Bytes allocated on the opening thread while the span was open
    /// (inclusive of child spans on the same thread). Zero unless the
    /// `obs-alloc` counting allocator is compiled in and armed via
    /// `WEFR_OBS_ALLOC` (DESIGN.md §6). New in `wefr.telemetry.v2`.
    pub alloc_bytes: u64,
    /// Allocation calls on the opening thread while the span was open
    /// (same gating and caveats as `alloc_bytes`).
    pub alloc_count: u64,
}

json::impl_json!(SpanRecord {
    id,
    parent,
    name,
    start_us,
    duration_us,
    fields
} defaults {
    alloc_bytes: 0,
    alloc_count: 0,
});

thread_local! {
    /// Stack of spans opened (and not yet dropped) on this thread.
    static STACK: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
}

/// The innermost open span on the current thread, if any. Events attribute
/// themselves to this span; [`start_span`] uses it as the parent.
pub fn current_span() -> Option<SpanId> {
    STACK.with(|stack| stack.borrow().last().copied())
}

/// Open a span as a child of the current thread's innermost open span (or
/// as a root). Returns an inert guard when collection is off.
pub fn start_span(name: &str) -> SpanGuard {
    open_span(name, current_span())
}

/// Open a span under an explicit parent — the cross-thread variant for
/// scoped workers, which inherit no thread-local stack from the spawning
/// thread. `parent: None` opens a root.
pub fn span_child_of(parent: Option<SpanId>, name: &str) -> SpanGuard {
    open_span(name, parent)
}

fn open_span(name: &str, parent: Option<SpanId>) -> SpanGuard {
    if !collecting() {
        return SpanGuard {
            id: None,
            open_alloc: (0, 0),
        };
    }
    let c = collector();
    // lint:allow(atomic-ordering) generation is a staleness hint; the spans lock below is the real ordering edge
    let generation = c.generation.load(Ordering::Relaxed);
    let parent_index = parent
        .filter(|p| p.generation == generation)
        .map(|p| p.index as u64);
    let start_us = now_us();
    let index = {
        let mut spans = c.spans.lock().expect("telemetry spans lock");
        let id = spans.len() as u64;
        spans.push(SpanRecord {
            id,
            parent: parent_index,
            name: name.to_string(),
            start_us,
            duration_us: OPEN,
            fields: Vec::new(),
            alloc_bytes: 0,
            alloc_count: 0,
        });
        spans.len() - 1
    };
    let id = SpanId { index, generation };
    STACK.with(|stack| stack.borrow_mut().push(id));
    SpanGuard {
        id: Some(id),
        open_alloc: crate::alloc::thread_totals(),
    }
}

/// RAII guard for an open span: records the wall-clock duration (and logs a
/// stage line at `info`) when dropped. Inert — every method a no-op — when
/// collection was off at open time.
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct SpanGuard {
    id: Option<SpanId>,
    /// Thread-local `(bytes, count)` allocation totals at open time; the
    /// drop handler records the delta. Always `(0, 0)` unless the
    /// `obs-alloc` counting allocator is active.
    open_alloc: (u64, u64),
}

impl SpanId {
    pub(crate) fn arena_index(&self) -> usize {
        self.index
    }

    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }
}

impl SpanGuard {
    /// Handle for parenting spans from other threads via [`span_child_of`].
    /// `None` when collection is off.
    pub fn id(&self) -> Option<SpanId> {
        self.id
    }

    /// Attach a key/value field to the span.
    pub fn record(&self, key: &str, value: impl Into<FieldValue>) {
        let Some(id) = self.id else { return };
        let c = collector();
        // lint:allow(atomic-ordering) staleness hint only; re-checked under the spans lock
        if c.generation.load(Ordering::Relaxed) != id.generation {
            return; // the arena was reset under us; the record is gone
        }
        let mut spans = c.spans.lock().expect("telemetry spans lock");
        if let Some(record) = spans.get_mut(id.index) {
            record.fields.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|open| *open == id) {
                stack.remove(pos);
            }
        });
        let c = collector();
        // lint:allow(atomic-ordering) staleness hint only; re-checked under the spans lock
        if c.generation.load(Ordering::Relaxed) != id.generation {
            return;
        }
        let end_us = now_us();
        let (alloc_bytes, alloc_count) = {
            let (bytes, count) = crate::alloc::thread_totals();
            (
                bytes.saturating_sub(self.open_alloc.0),
                count.saturating_sub(self.open_alloc.1),
            )
        };
        let logged = {
            let mut spans = c.spans.lock().expect("telemetry spans lock");
            spans.get_mut(id.index).map(|record| {
                record.duration_us = end_us.saturating_sub(record.start_us);
                record.alloc_bytes = alloc_bytes;
                record.alloc_count = alloc_count;
                (
                    record.name.clone(),
                    record.duration_us,
                    record.fields.clone(),
                )
            })
        };
        if let Some((name, duration_us, fields)) = logged {
            if crate::log_enabled(Level::Info) {
                logger::span_line(&name, duration_us, &fields);
            }
        }
    }
}
