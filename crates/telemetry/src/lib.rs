// The only unsafe in the workspace is the feature-gated counting
// allocator (alloc.rs): `impl GlobalAlloc` is an unsafe trait, so with
// `obs-alloc` on, forbid must relax to deny + a scoped allow there. The
// lint rule `forbid-unsafe` pins this exact cfg_attr form to this crate.
#![cfg_attr(not(feature = "obs-alloc"), forbid(unsafe_code))]
#![cfg_attr(feature = "obs-alloc", deny(unsafe_code))]
//! Zero-dependency observability for the WEFR pipeline (DESIGN.md §6).
//!
//! Three primitives, one process-global collector, two sinks:
//!
//! * **Spans** ([`span!`], [`start_span`], [`span_child_of`]) — hierarchical
//!   wall-clock timings. Guards record on drop; worker threads attach to an
//!   explicit parent handle so scoped fan-outs (e.g. the parallel rankers)
//!   build one tree across threads.
//! * **Metrics** ([`counter_add`], [`gauge_set`], [`histogram_observe`]) —
//!   named counters, gauges, and log₂-bucketed histograms in a global
//!   registry.
//! * **Events** ([`error!`], [`info!`], [`debug!`]) — leveled, structured
//!   key/value messages attributed to the current span.
//!
//! Sinks: a human-readable stderr logger gated by the `WEFR_LOG` env var
//! (`off`/`error`/`info`/`debug`), and a JSON run report
//! (`telemetry_<run>.json`, written by [`write_run_report`] to
//! `WEFR_TELEMETRY_OUT`, default `results/`) containing the full span tree,
//! metric snapshots, and events.
//!
//! **Zero overhead when off.** Collection activates only when `WEFR_LOG` is
//! set to a non-`off` level or `WEFR_TELEMETRY_OUT` is set (or a harness
//! calls [`set_collect`]). Disabled, every entry point is a single relaxed
//! atomic load; the macros do not evaluate their message or field
//! expressions. Instrumentation never alters computation — selections are
//! bit-identical with telemetry on or off.
//!
//! ```
//! telemetry::set_collect(true);
//! telemetry::reset();
//! {
//!     let span = telemetry::span!("stage", items = 3usize);
//!     telemetry::counter_add("stage.items", 3);
//!     telemetry::info!("stage", "processed a batch", batch = 1usize);
//!     span.record("outcome", "ok");
//! }
//! let report = telemetry::snapshot("doctest");
//! assert_eq!(report.spans.len(), 1);
//! assert_eq!(report.spans[0].name, "stage");
//! # telemetry::reset();
//! # telemetry::set_collect(false);
//! ```

use std::collections::BTreeMap;
// lint:allow(sync-hygiene) telemetry is the substrate *under* the model
// checker: its global collector must never contribute scheduler yield
// points to an exploration, and must keep recording while a model run is
// unwinding — so its internals stay on raw std primitives
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
// lint:allow(sync-hygiene) same substrate argument as the atomics above
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

pub mod alloc;
mod event;
pub mod flame;
pub(crate) mod logger;
mod metrics;
mod report;
pub mod serve;
mod span;
pub mod watchdog;

pub use event::{emit, EventRecord};
pub use metrics::{
    counter_add, gauge_set, gauge_value, histogram_observe, CounterSnapshot, GaugeSnapshot,
    HistogramSnapshot,
};
pub use report::{snapshot, write_run_report, write_run_report_to, RunReport, SCHEMA, SCHEMA_V1};
pub use span::{current_span, span_child_of, start_span, SpanGuard, SpanId, SpanRecord};

/// Verbosity of the stderr logger (and the floor for event recording).
///
/// Ordered: `Off < Error < Warn < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// No stderr logging.
    Off = 0,
    /// Failures only.
    Error = 1,
    /// Degraded-but-continuing conditions (watchdog stalls, saturated
    /// buffers).
    Warn = 2,
    /// Stage-level span lines and notable decisions.
    Info = 3,
    /// Everything, including per-step traces.
    Debug = 4,
}

json::impl_json_enum!(Level {
    Off => "off",
    Error => "error",
    Warn => "warn",
    Info => "info",
    Debug => "debug",
});

impl Level {
    /// Parse a `WEFR_LOG` specification. `None` (unset) and `"off"`/`"0"`/
    /// empty mean [`Level::Off`]; unknown spellings fall back to
    /// [`Level::Info`] rather than silently disabling telemetry.
    pub fn from_spec(spec: Option<&str>) -> Level {
        match spec.map(|s| s.trim().to_ascii_lowercase()).as_deref() {
            None | Some("" | "off" | "0" | "none" | "false") => Level::Off,
            Some("error") => Level::Error,
            Some("warn" | "warning") => Level::Warn,
            Some("info" | "on" | "true" | "1") => Level::Info,
            Some("debug" | "trace" | "2") => Level::Debug,
            Some(_) => Level::Info,
        }
    }

    fn from_u8(raw: u8) -> Level {
        match raw {
            0 => Level::Off,
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            _ => Level::Debug,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        })
    }
}

/// One key/value payload attached to a span or event.
///
/// Signed integers normalize to [`FieldValue::U64`] when non-negative so
/// values round-trip identically through JSON (which cannot distinguish a
/// positive `i64` from a `u64`).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float (non-finite values serialize as `null`).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
}

impl json::ToJson for FieldValue {
    fn to_json(&self) -> json::Value {
        match self {
            FieldValue::U64(v) => json::Value::Number(json::Number::PosInt(*v)),
            FieldValue::I64(v) => json::Value::Number(json::Number::NegInt(*v)),
            FieldValue::F64(v) => json::Value::Number(json::Number::Float(*v)),
            FieldValue::Bool(v) => json::Value::Bool(*v),
            FieldValue::Str(v) => json::Value::String(v.clone()),
        }
    }
}

impl json::FromJson for FieldValue {
    fn from_json(value: &json::Value) -> Result<FieldValue, json::JsonError> {
        match value {
            json::Value::Number(json::Number::PosInt(v)) => Ok(FieldValue::U64(*v)),
            json::Value::Number(json::Number::NegInt(v)) => Ok(FieldValue::I64(*v)),
            json::Value::Number(json::Number::Float(v)) => Ok(FieldValue::F64(*v)),
            json::Value::Null => Ok(FieldValue::F64(f64::NAN)),
            json::Value::Bool(v) => Ok(FieldValue::Bool(*v)),
            json::Value::String(v) => Ok(FieldValue::Str(v.clone())),
            other => Err(json::JsonError::type_error("scalar field value", other)),
        }
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.4}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! field_from_uint {
    ($($ty:ty),+) => {$(
        impl From<$ty> for FieldValue {
            fn from(v: $ty) -> FieldValue {
                FieldValue::U64(v as u64)
            }
        }
    )+};
}
field_from_uint!(u8, u16, u32, u64, usize);

macro_rules! field_from_sint {
    ($($ty:ty),+) => {$(
        impl From<$ty> for FieldValue {
            fn from(v: $ty) -> FieldValue {
                let v = v as i64;
                if v >= 0 {
                    FieldValue::U64(v as u64)
                } else {
                    FieldValue::I64(v)
                }
            }
        }
    )+};
}
field_from_sint!(i8, i16, i32, i64, isize);

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}

impl From<f32> for FieldValue {
    fn from(v: f32) -> FieldValue {
        FieldValue::F64(f64::from(v))
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// A key/value pair on a span or event.
pub type Field = (String, FieldValue);

// ---------------------------------------------------------------------------
// Process-global state
// ---------------------------------------------------------------------------

pub(crate) struct EventBuffer {
    pub(crate) records: Vec<EventRecord>,
    pub(crate) dropped: u64,
}

pub(crate) struct Collector {
    pub(crate) epoch: Instant,
    pub(crate) spans: Mutex<Vec<SpanRecord>>,
    pub(crate) events: Mutex<EventBuffer>,
    pub(crate) counters: Mutex<BTreeMap<String, u64>>,
    pub(crate) gauges: Mutex<BTreeMap<String, f64>>,
    pub(crate) histograms: Mutex<BTreeMap<String, metrics::HistogramData>>,
    /// Bumped by [`reset`] so guards from a previous epoch cannot close
    /// records of the next one.
    pub(crate) generation: AtomicU64,
}

static INIT: Once = Once::new();
static COLLECT: AtomicBool = AtomicBool::new(false);
static LOG_LEVEL: AtomicU8 = AtomicU8::new(0);
static COLLECTOR: OnceLock<Collector> = OnceLock::new();

pub(crate) fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(|| Collector {
        epoch: Instant::now(),
        spans: Mutex::new(Vec::new()),
        events: Mutex::new(EventBuffer {
            records: Vec::new(),
            dropped: 0,
        }),
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        generation: AtomicU64::new(0),
    })
}

fn ensure_init() {
    INIT.call_once(|| {
        let level = Level::from_spec(std::env::var("WEFR_LOG").ok().as_deref());
        // lint:allow(atomic-ordering) write-once-at-init log level; readers need the value, not an ordering edge
        LOG_LEVEL.store(level as u8, Ordering::Relaxed);
        // Any live-plane knob implies collection: a scrape endpoint or
        // watchdog with nothing recorded would observe only silence.
        let report_requested = std::env::var_os("WEFR_TELEMETRY_OUT").is_some();
        let metrics_requested = std::env::var_os(serve::ENV_METRICS_ADDR).is_some();
        let watchdog_requested = std::env::var_os(watchdog::ENV_WATCHDOG_SECS).is_some();
        COLLECT.store(
            level > Level::Off || report_requested || metrics_requested || watchdog_requested,
            // lint:allow(atomic-ordering) advisory collection flag set once at init; a stale read drops at most the first record
            Ordering::Relaxed,
        );
        alloc::set_tracking(alloc::env_requests_tracking(
            std::env::var(alloc::ENV_OBS_ALLOC).ok().as_deref(),
        ));
    });
}

/// Whether spans, metrics, and events are being recorded.
pub fn collecting() -> bool {
    ensure_init();
    // lint:allow(atomic-ordering) advisory flag: a stale read only delays when recording starts or stops by one observation
    COLLECT.load(Ordering::Relaxed)
}

/// The active stderr log level.
pub fn log_level() -> Level {
    ensure_init();
    // lint:allow(atomic-ordering) advisory log level; a stale read misroutes at most one record's verbosity
    Level::from_u8(LOG_LEVEL.load(Ordering::Relaxed))
}

/// Whether the stderr sink prints records at `level`.
pub fn log_enabled(level: Level) -> bool {
    level > Level::Off && log_level() >= level
}

/// Whether an event at `level` would go anywhere (collector or stderr).
/// The event macros check this before evaluating their message and field
/// expressions.
pub fn event_active(level: Level) -> bool {
    collecting() || log_enabled(level)
}

/// Force collection on or off, overriding the environment. For benches and
/// tests that want span trees without configuring `WEFR_LOG`.
pub fn set_collect(enabled: bool) {
    ensure_init();
    // lint:allow(atomic-ordering) advisory flag flip for tests/benches; no data is published under it
    COLLECT.store(enabled, Ordering::Relaxed);
}

/// Override the stderr log level (normally taken from `WEFR_LOG`).
pub fn set_log_level(level: Level) {
    ensure_init();
    // lint:allow(atomic-ordering) advisory log level override; same argument as the init store
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Clear all recorded spans, events, and metrics (configuration is kept).
/// Guards still open across a reset close without recording anything.
pub fn reset() {
    let c = collector();
    // lint:allow(atomic-ordering) generation is a monotonic staleness hint; guards re-check it under the spans lock, which is the real edge
    c.generation.fetch_add(1, Ordering::Relaxed);
    c.spans.lock().expect("telemetry spans lock").clear();
    {
        let mut events = c.events.lock().expect("telemetry events lock");
        events.records.clear();
        events.dropped = 0;
    }
    c.counters.lock().expect("telemetry counters lock").clear();
    c.gauges.lock().expect("telemetry gauges lock").clear();
    c.histograms
        .lock()
        .expect("telemetry histograms lock")
        .clear();
}

pub(crate) fn now_us() -> u64 {
    collector().epoch.elapsed().as_micros() as u64
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Open a span: `span!("stage")` or `span!("stage", key = value, ...)`.
/// Returns a [`SpanGuard`] that records the span's duration when dropped.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::start_span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let __span = $crate::start_span($name);
        $(__span.record(stringify!($key), $value);)+
        __span
    }};
}

/// Emit a structured event at an explicit [`Level`]:
/// `event!(Level::Info, "target", "message", key = value, ...)`.
/// Message and field expressions are only evaluated when the event is
/// active (recorded or logged).
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr, $message:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::event_active($level) {
            $crate::emit(
                $level,
                $target,
                ::std::string::String::from($message),
                ::std::vec![$((
                    ::std::string::String::from(stringify!($key)),
                    $crate::FieldValue::from($value),
                )),*],
            );
        }
    };
}

/// Emit an [`Level::Error`] event. See [`event!`].
#[macro_export]
macro_rules! error {
    ($($args:tt)*) => { $crate::event!($crate::Level::Error, $($args)*) };
}

/// Emit a [`Level::Warn`] event. See [`event!`].
#[macro_export]
macro_rules! warn {
    ($($args:tt)*) => { $crate::event!($crate::Level::Warn, $($args)*) };
}

/// Emit an [`Level::Info`] event. See [`event!`].
#[macro_export]
macro_rules! info {
    ($($args:tt)*) => { $crate::event!($crate::Level::Info, $($args)*) };
}

/// Emit a [`Level::Debug`] event. See [`event!`].
#[macro_export]
macro_rules! debug {
    ($($args:tt)*) => { $crate::event!($crate::Level::Debug, $($args)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_spec_parses_and_falls_back() {
        assert_eq!(Level::from_spec(None), Level::Off);
        assert_eq!(Level::from_spec(Some("")), Level::Off);
        assert_eq!(Level::from_spec(Some("off")), Level::Off);
        assert_eq!(Level::from_spec(Some("0")), Level::Off);
        assert_eq!(Level::from_spec(Some("error")), Level::Error);
        assert_eq!(Level::from_spec(Some("warn")), Level::Warn);
        assert_eq!(Level::from_spec(Some("warning")), Level::Warn);
        assert_eq!(Level::from_spec(Some("INFO")), Level::Info);
        assert_eq!(Level::from_spec(Some(" debug ")), Level::Debug);
        assert_eq!(Level::from_spec(Some("1")), Level::Info);
        // Unknown spellings mean "the user wanted logging": default to info.
        assert_eq!(Level::from_spec(Some("verbose")), Level::Info);
    }

    #[test]
    fn level_orders_and_round_trips() {
        assert!(Level::Off < Level::Error);
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        for level in [
            Level::Off,
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
        ] {
            let back: Level = json::from_str(&json::to_string(&level)).unwrap();
            assert_eq!(back, level);
            assert_eq!(Level::from_u8(level as u8), level);
        }
    }

    #[test]
    fn field_values_normalize_signed_integers() {
        assert_eq!(FieldValue::from(5i64), FieldValue::U64(5));
        assert_eq!(FieldValue::from(-5i64), FieldValue::I64(-5));
        assert_eq!(FieldValue::from(7usize), FieldValue::U64(7));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".to_string()));
    }

    #[test]
    fn field_values_round_trip_through_json() {
        let fields = vec![
            FieldValue::U64(u64::MAX),
            FieldValue::I64(-42),
            FieldValue::F64(0.25),
            FieldValue::Bool(false),
            FieldValue::Str("wear".to_string()),
        ];
        for field in fields {
            let back: FieldValue = json::from_str(&json::to_string(&field)).unwrap();
            assert_eq!(back, field);
        }
        assert!(json::from_str::<FieldValue>("[1]").is_err());
    }
}
