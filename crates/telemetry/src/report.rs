//! The JSON run-report sink.
//!
//! [`snapshot`] captures the collector's state as a [`RunReport`];
//! [`write_run_report`] serializes it via `smart-json` to
//! `<WEFR_TELEMETRY_OUT>/telemetry_<run>.json` (default `results/`). The
//! report is self-contained: full span tree (flat records with parent
//! links), every event, and all metric snapshots.

use std::path::{Path, PathBuf};

use crate::span::OPEN;
use crate::{
    collecting, collector, metrics, CounterSnapshot, EventRecord, GaugeSnapshot, HistogramSnapshot,
    SpanRecord,
};

/// Schema identifier written into every new report. v2 adds `schema`
/// itself, per-span `alloc_bytes`/`alloc_count`, per-histogram
/// p50/p90/p99, and the `telemetry.events_dropped` counter.
pub const SCHEMA: &str = "wefr.telemetry.v2";

/// Schema identifier assumed for reports written before the version field
/// existed; such reports still parse, with v2 fields defaulted.
pub const SCHEMA_V1: &str = "wefr.telemetry.v1";

/// A complete telemetry capture for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Report schema version ([`SCHEMA`]); defaults to [`SCHEMA_V1`] when
    /// parsing a report that predates the field.
    pub schema: String,
    /// Run label (becomes the `telemetry_<run>.json` file stem).
    pub run: String,
    /// All spans, in open order; parents precede children.
    pub spans: Vec<SpanRecord>,
    /// All buffered events, in emit order.
    pub events: Vec<EventRecord>,
    /// Events discarded after the buffer cap was reached.
    pub dropped_events: u64,
    /// Counter values, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histogram states, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

json::impl_to_json!(RunReport {
    schema,
    run,
    spans,
    events,
    dropped_events,
    counters,
    gauges,
    histograms
});

json::impl_from_json!(RunReport {
    run,
    spans,
    events,
    dropped_events,
    counters,
    gauges,
    histograms
} defaults {
    schema: String::from(SCHEMA_V1),
});

impl RunReport {
    /// Spans with no parent.
    pub fn roots(&self) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent.is_none()).collect()
    }

    /// Direct children of the span with id `id`, in open order.
    pub fn children_of(&self, id: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }

    /// Spans named `name`, in open order.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// Number of spans named `name`.
    pub fn count(&self, name: &str) -> usize {
        self.spans_named(name).len()
    }

    /// Total wall-clock seconds across all spans named `name`. Nested spans
    /// both count, so only sum non-overlapping names.
    pub fn total_seconds(&self, name: &str) -> f64 {
        self.spans_named(name)
            .iter()
            .map(|s| s.duration_us as f64 / 1e6)
            .sum()
    }

    /// Distinct span names in first-open order.
    pub fn stage_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for span in &self.spans {
            if !names.contains(&span.name.as_str()) {
                names.push(&span.name);
            }
        }
        names
    }

    /// Check structural invariants: ids match positions, every parent
    /// exists and precedes its child, and event span references resolve.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate_tree(&self) -> Result<(), String> {
        for (pos, span) in self.spans.iter().enumerate() {
            if span.id != pos as u64 {
                return Err(format!("span at position {pos} has id {}", span.id));
            }
            if let Some(parent) = span.parent {
                if parent >= span.id {
                    return Err(format!(
                        "span {} ({}) has non-preceding parent {parent}",
                        span.id, span.name
                    ));
                }
            }
        }
        for (pos, event) in self.events.iter().enumerate() {
            if let Some(span) = event.span {
                if span >= self.spans.len() as u64 {
                    return Err(format!(
                        "event {pos} ({}) references missing span {span}",
                        event.target
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Capture the collector's current state under the label `run`. Still-open
/// spans appear with duration 0.
pub fn snapshot(run: &str) -> RunReport {
    let c = collector();
    let spans = {
        let spans = c.spans.lock().expect("telemetry spans lock");
        spans
            .iter()
            .map(|s| {
                let mut s = s.clone();
                if s.duration_us == OPEN {
                    s.duration_us = 0;
                }
                s
            })
            .collect()
    };
    let (events, dropped_events) = {
        let events = c.events.lock().expect("telemetry events lock");
        (events.records.clone(), events.dropped)
    };
    let mut counters = metrics::snapshot_counters();
    // Surface drop accounting as a counter too, so scrapers that only read
    // the counter list (e.g. the /metrics endpoint) cannot miss saturation.
    if dropped_events > 0 {
        let snap = CounterSnapshot {
            name: "telemetry.events_dropped".to_string(),
            value: dropped_events,
        };
        match counters.binary_search_by(|c| c.name.as_str().cmp(&snap.name)) {
            Ok(pos) => counters[pos] = snap,
            Err(pos) => counters.insert(pos, snap),
        }
    }
    RunReport {
        schema: SCHEMA.to_string(),
        run: run.to_string(),
        spans,
        events,
        dropped_events,
        counters,
        gauges: metrics::snapshot_gauges(),
        histograms: metrics::snapshot_histograms(),
    }
}

/// Reduce a run label to a safe file stem: alphanumerics, `-`, `_`, `.`
/// pass through; everything else becomes `-`.
pub(crate) fn sanitize(run: &str) -> String {
    let cleaned: String = run
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '-'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "run".to_string()
    } else {
        cleaned
    }
}

/// Write `telemetry_<run>.json` under `dir` (created if needed),
/// unconditionally — even when collection is off, in which case the report
/// is empty. Returns the written path.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn write_run_report_to(run: &str, dir: &Path) -> std::io::Result<PathBuf> {
    let report = snapshot(run);
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("telemetry_{}.json", sanitize(run)));
    let mut text = json::to_string_pretty(&report);
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Write the run report to the directory named by `WEFR_TELEMETRY_OUT`
/// (default `results/`) — but only when telemetry is collecting, so
/// uninstrumented runs produce no files. Returns `Ok(None)` when skipped.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn write_run_report(run: &str) -> std::io::Result<Option<PathBuf>> {
    if !collecting() {
        return Ok(None);
    }
    let dir = match std::env::var("WEFR_TELEMETRY_OUT") {
        Ok(dir) if !dir.trim().is_empty() => PathBuf::from(dir),
        _ => PathBuf::from("results"),
    };
    write_run_report_to(run, &dir).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_keeps_safe_chars() {
        assert_eq!(sanitize("quickstart"), "quickstart");
        assert_eq!(sanitize("exp4/wefr run"), "exp4-wefr-run");
        assert_eq!(sanitize("a.b-c_1"), "a.b-c_1");
        assert_eq!(sanitize(""), "run");
    }

    #[test]
    fn validate_tree_flags_bad_links() {
        let span = |id: u64, parent: Option<u64>| SpanRecord {
            id,
            parent,
            name: format!("s{id}"),
            start_us: 0,
            duration_us: 1,
            fields: vec![],
            alloc_bytes: 0,
            alloc_count: 0,
        };
        let mut report = RunReport {
            schema: SCHEMA.into(),
            run: "t".into(),
            spans: vec![span(0, None), span(1, Some(0))],
            events: vec![],
            dropped_events: 0,
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
        };
        assert!(report.validate_tree().is_ok());
        report.spans[1].parent = Some(1); // self-parent
        assert!(report.validate_tree().is_err());
        report.spans[1].parent = Some(0);
        report.spans[1].id = 5; // id out of step with position
        assert!(report.validate_tree().is_err());
    }

    #[test]
    fn helpers_walk_the_tree() {
        let span = |id: u64, parent: Option<u64>, name: &str, us: u64| SpanRecord {
            id,
            parent,
            name: name.into(),
            start_us: 0,
            duration_us: us,
            fields: vec![],
            alloc_bytes: 0,
            alloc_count: 0,
        };
        let report = RunReport {
            schema: SCHEMA.into(),
            run: "t".into(),
            spans: vec![
                span(0, None, "select", 100),
                span(1, Some(0), "rankers", 40),
                span(2, Some(1), "pearson", 10),
                span(3, Some(1), "spearman", 12),
                span(4, Some(0), "ensemble", 30),
            ],
            events: vec![],
            dropped_events: 0,
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
        };
        assert_eq!(report.roots().len(), 1);
        assert_eq!(report.children_of(1).len(), 2);
        assert_eq!(report.count("ensemble"), 1);
        assert!((report.total_seconds("rankers") - 40e-6).abs() < 1e-12);
        assert_eq!(
            report.stage_names(),
            vec!["select", "rankers", "pearson", "spearman", "ensemble"]
        );
    }
}
