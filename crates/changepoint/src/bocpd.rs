//! Bayesian online change-point detection (Adams & MacKay style) with a
//! Normal-Gamma observation model.
//!
//! The paper computes, for each point of the survival-rate sequence, "the
//! change probability (i.e., the posterior distribution of the sequence up
//! to a survival rate given the sequence before the point)" [§III-C]. BOCPD
//! provides exactly that quantity: `P(run length = 0 | x₁..xₜ)` — the
//! posterior probability that a new segment starts at `t`.

use crate::error::ChangepointError;
use crate::normal_gamma::NormalGamma;
use smart_stats::descriptive::{mean, population_std};

/// BOCPD configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BocpdConfig {
    /// Constant hazard: prior probability of a change at each step
    /// (`1 / expected run length`).
    pub hazard: f64,
    /// Prior over segment parameters.
    pub prior: NormalGamma,
    /// Standardize the series (z-score) before detection so the default
    /// prior fits any scale. On by default.
    pub standardize: bool,
    /// Run-length probabilities below this are pruned for speed.
    pub prune_threshold: f64,
}

impl Default for BocpdConfig {
    fn default() -> Self {
        BocpdConfig {
            hazard: 1.0 / 50.0,
            prior: NormalGamma::default(),
            standardize: true,
            prune_threshold: 1e-9,
        }
    }
}

/// Per-position change probabilities for `series`: element `i` is the
/// posterior probability that a new segment *started at observation `i`*.
///
/// With a constant hazard, `P(rₜ = 0)` equals the hazard identically (the
/// normalizer cancels the likelihoods), so the informative statistic is the
/// run-length posterior one step later: `P(r_{i+1} = 1 | x₁..x_{i+1})` — the
/// probability that the run began at `xᵢ`, evaluated once the next
/// observation has had a chance to confirm the new regime. The first and
/// last positions carry no such evidence (a segment trivially starts at 0;
/// the last point has no follow-up) and are reported as 0.
///
/// # Errors
///
/// Returns [`ChangepointError::SeriesTooShort`] for fewer than 3 points,
/// [`ChangepointError::NonFinite`] for NaN/∞ inputs, and
/// [`ChangepointError::InvalidParameter`] for a hazard outside `(0, 1)`.
pub fn change_probabilities(
    series: &[f64],
    config: &BocpdConfig,
) -> Result<Vec<f64>, ChangepointError> {
    if series.len() < 3 {
        return Err(ChangepointError::SeriesTooShort {
            len: series.len(),
            required: 3,
        });
    }
    if series.iter().any(|x| !x.is_finite()) {
        return Err(ChangepointError::NonFinite);
    }
    if !(config.hazard > 0.0 && config.hazard < 1.0) {
        return Err(ChangepointError::InvalidParameter {
            message: "hazard must be in (0, 1)".to_string(),
        });
    }

    let span = telemetry::span!(
        "bocpd",
        n = series.len(),
        standardize = config.standardize,
        hazard = config.hazard,
    );

    let standardized: Vec<f64>;
    let xs: &[f64] = if config.standardize {
        let m = mean(series)?;
        let s = population_std(series)?;
        let s = if s > 0.0 { s } else { 1.0 };
        standardized = series.iter().map(|x| (x - m) / s).collect();
        &standardized
    } else {
        series
    };
    let n = xs.len();

    // run_probs[r] = P(current run began at observation t-r | x₀..xₜ);
    // models[r] = posterior for that run (lagging by its first observation,
    // the standard online simplification).
    let mut run_probs: Vec<f64> = vec![1.0];
    let mut models: Vec<NormalGamma> = vec![config.prior];
    let mut cp_probs = vec![0.0; n];

    for (t, &x) in xs.iter().enumerate().skip(1) {
        let predictive: Vec<f64> = models.iter().map(|m| m.log_predictive(x).exp()).collect();

        // Growth: run continues. Change: any run ends, a new one starts.
        let mut grown: Vec<f64> = run_probs
            .iter()
            .zip(&predictive)
            .map(|(p, like)| p * like * (1.0 - config.hazard))
            .collect();
        let changed: f64 = run_probs
            .iter()
            .zip(&predictive)
            .map(|(p, like)| p * like * config.hazard)
            .sum();

        let mut next_probs = Vec::with_capacity(grown.len() + 1);
        next_probs.push(changed);
        next_probs.append(&mut grown);

        let total: f64 = next_probs.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            // Numerical underflow across the board: restart mass at r = 0.
            telemetry::counter_add("bocpd.underflow_restarts", 1);
            run_probs = vec![1.0];
            models = vec![config.prior];
            cp_probs[t] = 1.0;
            continue;
        }
        for p in &mut next_probs {
            *p /= total;
        }

        // Posterior update: run r at t extends run r-1's model with x; run 0
        // restarts from the prior (it will absorb x at the next step).
        let mut next_models = Vec::with_capacity(models.len() + 1);
        next_models.push(config.prior);
        for m in &models {
            next_models.push(m.update(x));
        }

        run_probs = next_probs;
        models = next_models;

        // Tail pruning: drop negligible long run lengths (tail-only, so the
        // short-run indices the statistic reads stay aligned).
        let last_kept = run_probs
            .iter()
            .rposition(|&p| p > config.prune_threshold)
            .unwrap_or(0);
        let keep_len = (last_kept + 1).max(2).min(run_probs.len());
        run_probs.truncate(keep_len);
        models.truncate(keep_len);
        let renorm: f64 = run_probs.iter().sum();
        if renorm > 0.0 {
            for p in &mut run_probs {
                *p /= renorm;
            }
        }

        // P(run began at x_{t-1}) — attribute it to position t-1. Skip the
        // trivial attribution to position 0.
        if t >= 2 {
            cp_probs[t - 1] = run_probs.get(1).copied().unwrap_or(0.0);
        }
    }
    let peak = cp_probs.iter().copied().fold(0.0f64, f64::max);
    span.record("peak_probability", peak);
    Ok(cp_probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::rngs::StdRng;
    use rng::SeedableRng;
    use smart_stats::gaussian::sample_normal;

    fn step_series(n1: usize, mu1: f64, n2: usize, mu2: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n1 + n2);
        for _ in 0..n1 {
            xs.push(sample_normal(&mut rng, mu1, 0.3));
        }
        for _ in 0..n2 {
            xs.push(sample_normal(&mut rng, mu2, 0.3));
        }
        xs
    }

    #[test]
    fn detects_obvious_step() {
        let xs = step_series(40, 0.0, 40, 5.0, 1);
        let probs = change_probabilities(&xs, &BocpdConfig::default()).unwrap();
        // The change probability at the step (index 40, ±2) must dominate.
        let peak = (38..=42).map(|i| probs[i]).fold(0.0, f64::max);
        let elsewhere = probs[10..30].iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(peak > 0.5, "peak = {peak}");
        assert!(
            peak > 5.0 * elsewhere,
            "peak {peak} vs elsewhere {elsewhere}"
        );
    }

    #[test]
    fn flat_series_has_low_probabilities() {
        let xs = step_series(80, 1.0, 0, 0.0, 2);
        let probs = change_probabilities(&xs, &BocpdConfig::default()).unwrap();
        // After burn-in, change probability should hover near the hazard.
        let late_max = probs[10..].iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(late_max < 0.4, "late_max = {late_max}");
    }

    #[test]
    fn probabilities_are_probabilities() {
        let xs = step_series(30, 0.0, 30, 2.0, 3);
        let probs = change_probabilities(&xs, &BocpdConfig::default()).unwrap();
        assert_eq!(probs.len(), xs.len());
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert_eq!(probs[0], 0.0);
    }

    #[test]
    fn rejects_degenerate_input() {
        let config = BocpdConfig::default();
        assert!(matches!(
            change_probabilities(&[1.0], &config),
            Err(ChangepointError::SeriesTooShort { .. })
        ));
        assert!(matches!(
            change_probabilities(&[1.0, f64::NAN, 2.0], &config),
            Err(ChangepointError::NonFinite)
        ));
        let bad = BocpdConfig {
            hazard: 1.5,
            ..config
        };
        assert!(change_probabilities(&[1.0, 2.0], &bad).is_err());
    }

    #[test]
    fn constant_series_is_stable() {
        let xs = vec![0.7; 60];
        let probs = change_probabilities(&xs, &BocpdConfig::default()).unwrap();
        assert!(probs.iter().all(|p| p.is_finite()));
        let late_max = probs[10..].iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(late_max < 0.5, "late_max = {late_max}");
    }

    #[test]
    fn detects_variance_change_too() {
        // Same mean, variance jumps 0.1 -> 3.0: a mean-only detector misses
        // this; the Normal-Gamma model must not.
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs: Vec<f64> = (0..50).map(|_| sample_normal(&mut rng, 0.0, 0.1)).collect();
        xs.extend((0..50).map(|_| sample_normal(&mut rng, 0.0, 3.0)));
        let probs = change_probabilities(&xs, &BocpdConfig::default()).unwrap();
        let peak = (48..=56).map(|i| probs[i]).fold(0.0, f64::max);
        let baseline = probs[10..40].iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(peak > baseline, "peak {peak} vs baseline {baseline}");
    }

    #[test]
    fn without_standardization_scale_matters_but_works() {
        let xs = step_series(40, 100.0, 40, 200.0, 7);
        let config = BocpdConfig {
            standardize: false,
            // Wide prior to cope with unscaled data.
            prior: NormalGamma {
                mu: 150.0,
                kappa: 0.01,
                alpha: 1.0,
                beta: 100.0,
            },
            ..BocpdConfig::default()
        };
        let probs = change_probabilities(&xs, &config).unwrap();
        let peak = (38..=42).map(|i| probs[i]).fold(0.0, f64::max);
        assert!(peak > 0.2, "peak = {peak}");
    }
}
