//! Least-squares binary segmentation — the ablation baseline against
//! Bayesian online change-point detection (see DESIGN.md §4).

use crate::error::ChangepointError;

/// A change point found by binary segmentation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegBoundary {
    /// First index of the right-hand segment.
    pub index: usize,
    /// Sum-of-squared-error reduction achieved by splitting here.
    pub gain: f64,
}

/// The single best split of `series` by SSE reduction, requiring at least
/// `min_segment` points on each side. Returns `None` when no admissible
/// split reduces SSE.
///
/// # Errors
///
/// Returns [`ChangepointError::SeriesTooShort`] when the series cannot hold
/// two segments, [`ChangepointError::NonFinite`] for NaN/∞ input, and
/// [`ChangepointError::InvalidParameter`] when `min_segment == 0`.
pub fn best_split(
    series: &[f64],
    min_segment: usize,
) -> Result<Option<SegBoundary>, ChangepointError> {
    if min_segment == 0 {
        return Err(ChangepointError::InvalidParameter {
            message: "min_segment must be positive".to_string(),
        });
    }
    let n = series.len();
    if n < 2 * min_segment {
        return Err(ChangepointError::SeriesTooShort {
            len: n,
            required: 2 * min_segment,
        });
    }
    if series.iter().any(|x| !x.is_finite()) {
        return Err(ChangepointError::NonFinite);
    }

    let total: f64 = series.iter().sum();
    let base = total * total / n as f64;
    let mut best: Option<SegBoundary> = None;
    let mut left_sum = 0.0;
    for k in min_segment..=(n - min_segment) {
        left_sum = if k == min_segment {
            series[..k].iter().sum()
        } else {
            left_sum + series[k - 1]
        };
        let right_sum = total - left_sum;
        let gain = left_sum * left_sum / k as f64 + right_sum * right_sum / (n - k) as f64 - base;
        if gain > best.map_or(1e-12, |b| b.gain) {
            best = Some(SegBoundary { index: k, gain });
        }
    }
    Ok(best)
}

/// Recursive binary segmentation: repeatedly split the segment whose best
/// split has the largest gain, until no split clears `penalty`. Returns the
/// boundaries sorted ascending.
///
/// # Errors
///
/// Same conditions as [`best_split`] for the initial series.
pub fn segment(
    series: &[f64],
    min_segment: usize,
    penalty: f64,
) -> Result<Vec<SegBoundary>, ChangepointError> {
    // Validate eagerly on the whole series.
    if series.iter().any(|x| !x.is_finite()) {
        return Err(ChangepointError::NonFinite);
    }
    if min_segment == 0 {
        return Err(ChangepointError::InvalidParameter {
            message: "min_segment must be positive".to_string(),
        });
    }
    let mut boundaries = Vec::new();
    let mut stack = vec![(0usize, series.len())];
    while let Some((start, end)) = stack.pop() {
        if end - start < 2 * min_segment {
            continue;
        }
        if let Some(b) = best_split(&series[start..end], min_segment)? {
            if b.gain > penalty {
                let split = start + b.index;
                boundaries.push(SegBoundary {
                    index: split,
                    gain: b.gain,
                });
                stack.push((start, split));
                stack.push((split, end));
            }
        }
    }
    boundaries.sort_by_key(|b| b.index);
    Ok(boundaries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(n1: usize, v1: f64, n2: usize, v2: f64) -> Vec<f64> {
        let mut xs = vec![v1; n1];
        xs.extend(vec![v2; n2]);
        xs
    }

    #[test]
    fn finds_clean_step() {
        let xs = step(20, 0.0, 30, 4.0);
        let b = best_split(&xs, 2).unwrap().unwrap();
        assert_eq!(b.index, 20);
        assert!(b.gain > 0.0);
    }

    #[test]
    fn constant_series_has_no_split() {
        let xs = vec![3.0; 40];
        assert!(best_split(&xs, 2).unwrap().is_none());
    }

    #[test]
    fn min_segment_is_respected() {
        let xs = step(3, 0.0, 37, 4.0);
        let b = best_split(&xs, 5).unwrap().unwrap();
        assert!(b.index >= 5 && b.index <= 35);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(best_split(&[1.0, 2.0], 2).is_err());
        assert!(best_split(&[1.0, f64::NAN, 2.0, 3.0], 1).is_err());
        assert!(best_split(&[1.0, 2.0, 3.0, 4.0], 0).is_err());
    }

    #[test]
    fn segment_finds_two_steps() {
        let mut xs = step(30, 0.0, 30, 5.0);
        xs.extend(vec![-3.0; 30]);
        let bounds = segment(&xs, 5, 1.0).unwrap();
        let idxs: Vec<usize> = bounds.iter().map(|b| b.index).collect();
        assert!(idxs.contains(&30), "bounds = {idxs:?}");
        assert!(idxs.contains(&60), "bounds = {idxs:?}");
    }

    #[test]
    fn segment_penalty_suppresses_noise_splits() {
        let xs: Vec<f64> = (0..60).map(|i| (i % 3) as f64 * 0.01).collect();
        let bounds = segment(&xs, 5, 10.0).unwrap();
        assert!(bounds.is_empty());
    }

    #[test]
    fn segment_empty_for_short_series() {
        let xs = vec![1.0, 2.0];
        assert!(segment(&xs, 5, 0.1).unwrap().is_empty());
    }
}
