//! Error type for change-point detection.

use std::fmt;

/// Errors produced by change-point routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ChangepointError {
    /// The input series was too short for the requested analysis.
    SeriesTooShort {
        /// Observed length.
        len: usize,
        /// Minimum required length.
        required: usize,
    },
    /// The input contained a non-finite value.
    NonFinite,
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Description of the violation.
        message: String,
    },
}

impl fmt::Display for ChangepointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChangepointError::SeriesTooShort { len, required } => {
                write!(
                    f,
                    "series of length {len} is too short (need at least {required})"
                )
            }
            ChangepointError::NonFinite => write!(f, "series contains a non-finite value"),
            ChangepointError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
        }
    }
}

impl std::error::Error for ChangepointError {}

impl From<smart_stats::StatsError> for ChangepointError {
    fn from(e: smart_stats::StatsError) -> ChangepointError {
        ChangepointError::InvalidParameter {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ChangepointError::SeriesTooShort {
            len: 2,
            required: 8,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('8'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ChangepointError>();
    }
}
