//! Survival-rate curves over the wear-out indicator `MWI_N` and change-point
//! detection on them (the paper's Fig. 1 machinery).
//!
//! The survival rate at a value `v` of `MWI_N` is the fraction of drives
//! whose final `MWI_N` equals `v` that were still healthy at the end of the
//! dataset (§III-C).

use crate::bocpd::{change_probabilities, BocpdConfig};
use crate::error::ChangepointError;
use crate::significance::{most_significant_point, PAPER_Z_THRESHOLD};

/// One point of a survival curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurvivalPoint {
    /// The `MWI_N` value (integer bucket, 1..=100).
    pub mwi: u32,
    /// Number of drives whose final `MWI_N` falls in this bucket.
    pub total: usize,
    /// How many of them survived the window.
    pub survivors: usize,
    /// `survivors / total`.
    pub rate: f64,
}

/// A survival curve over `MWI_N`, ordered by *descending* `MWI_N` (the
/// direction of wear progression, matching how the paper reads Fig. 1).
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivalCurve {
    points: Vec<SurvivalPoint>,
}

/// A change point detected on a survival curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearoutChangePoint {
    /// The `MWI_N` value at which the survival behaviour changes — the
    /// threshold WEFR uses to split low- and high-wear groups.
    pub mwi_threshold: u32,
    /// Change probability at the point.
    pub probability: f64,
    /// Z-score of the change probability.
    pub z_score: f64,
}

impl SurvivalCurve {
    /// Build a curve from per-drive `(final MWI_N, failed)` pairs. Buckets
    /// with fewer than `min_count` drives are dropped (tiny buckets make the
    /// rate estimate meaningless). `MWI_N` values are rounded to integers
    /// and clamped to `1..=100`.
    pub fn from_drives<I>(drives: I, min_count: usize) -> SurvivalCurve
    where
        I: IntoIterator<Item = (f64, bool)>,
    {
        let mut total = [0usize; 101];
        let mut survivors = [0usize; 101];
        for (mwi, failed) in drives {
            let bucket = mwi.round().clamp(1.0, 100.0) as usize;
            total[bucket] += 1;
            if !failed {
                survivors[bucket] += 1;
            }
        }
        let points = (1..=100u32)
            .rev()
            .filter(|&v| total[v as usize] >= min_count.max(1))
            .map(|v| SurvivalPoint {
                mwi: v,
                total: total[v as usize],
                survivors: survivors[v as usize],
                rate: survivors[v as usize] as f64 / total[v as usize] as f64,
            })
            .collect();
        SurvivalCurve { points }
    }

    /// The curve's points, ordered by descending `MWI_N`.
    pub fn points(&self) -> &[SurvivalPoint] {
        &self.points
    }

    /// The survival rates alone, in curve order.
    pub fn rates(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.rate).collect()
    }

    /// The span of observed `MWI_N` values `(min, max)`, or `None` for an
    /// empty curve.
    pub fn mwi_range(&self) -> Option<(u32, u32)> {
        let max = self.points.first()?.mwi;
        let min = self.points.last()?.mwi;
        Some((min, max))
    }

    /// Whether the curve spans at least `width` distinct `MWI_N` values —
    /// the paper skips change-point analysis for MB1/MB2 because their
    /// `MWI_N` range is too small.
    pub fn has_meaningful_range(&self, width: u32) -> bool {
        self.mwi_range()
            .is_some_and(|(min, max)| max - min >= width)
    }

    /// Detect the most significant change point of the survival rate using
    /// Bayesian change-point detection plus the paper's z-score rule.
    ///
    /// Returns `Ok(None)` when the curve is too short / too narrow or no
    /// point crosses the significance threshold.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the BOCPD pass.
    pub fn detect_change_point(
        &self,
        config: &BocpdConfig,
        z_threshold: f64,
    ) -> Result<Option<WearoutChangePoint>, ChangepointError> {
        // Need a handful of points for the z-score over change
        // probabilities to mean anything.
        const MIN_POINTS: usize = 8;
        const MIN_RANGE: u32 = 10;
        /// Minimum drives per analyzed point (sparser buckets are pooled).
        const MIN_DRIVES_PER_POINT: usize = 25;
        // A z-score outlier among uniformly tiny change probabilities is
        // burn-in noise, not a regime change; require real posterior mass.
        const MIN_PROBABILITY: f64 = 0.03;
        let span = telemetry::span!("change_point", points = self.points.len());
        let work = self.coarsened(MIN_DRIVES_PER_POINT);
        if work.points.len() < MIN_POINTS || !work.has_meaningful_range(MIN_RANGE) {
            span.record("outcome", "skipped");
            telemetry::info!(
                "change_point",
                "survival curve too short or narrow for detection",
                coarse_points = work.points.len(),
            );
            return Ok(None);
        }
        // Smooth with a short centered moving average: small fleets have
        // sparse MWI buckets whose binomial noise would otherwise out-spike
        // the real regime change (the paper's 500K-drive buckets are dense
        // enough not to need this).
        let rates = smooth3(&work.rates());
        let probs = change_probabilities(&rates, config)?;
        if telemetry::event_active(telemetry::Level::Debug) {
            for (point, prob) in work.points().iter().zip(&probs) {
                telemetry::debug!(
                    "change_point",
                    format!("mwi {}: change probability {prob:.4}", point.mwi),
                    mwi = point.mwi,
                    rate = point.rate,
                    probability = *prob,
                );
            }
        }
        let candidate = most_significant_point(&probs, z_threshold)?;
        if let Some(p) = &candidate {
            span.record("probability", p.probability);
            span.record("z_score", p.z_score);
        }
        let result = candidate
            .filter(|p| p.probability >= MIN_PROBABILITY)
            .map(|p| WearoutChangePoint {
                mwi_threshold: work.points[p.index].mwi,
                probability: p.probability,
                z_score: p.z_score,
            });
        match &result {
            Some(cp) => {
                span.record("outcome", "detected");
                span.record("mwi_threshold", cp.mwi_threshold);
                telemetry::info!(
                    "change_point",
                    format!("survival change point at MWI {}", cp.mwi_threshold),
                    mwi_threshold = cp.mwi_threshold,
                    probability = cp.probability,
                    z_score = cp.z_score,
                );
            }
            None => span.record("outcome", "insignificant"),
        }
        Ok(result)
    }

    /// Rates after the 3-point smoothing used by change-point detection.
    pub fn smoothed_rates(&self) -> Vec<f64> {
        smooth3(&self.rates())
    }

    /// Merge adjacent points (in wear order) until every merged point
    /// covers at least `min_total` drives. Sparse `MWI_N` buckets have
    /// binomial noise large enough to out-spike a real regime change;
    /// coarsening pools them while leaving dense regions untouched.
    ///
    /// The merged point keeps the population-weighted mean `MWI_N`
    /// (rounded).
    pub fn coarsened(&self, min_total: usize) -> SurvivalCurve {
        let mut points: Vec<SurvivalPoint> = Vec::new();
        let mut acc: Option<(f64, usize, usize)> = None; // (Σ mwi·n, total, survivors)
        for p in &self.points {
            let (mwi_weighted, total, survivors) = match acc.take() {
                None => (p.mwi as f64 * p.total as f64, p.total, p.survivors),
                Some((w, t, s)) => (
                    w + p.mwi as f64 * p.total as f64,
                    t + p.total,
                    s + p.survivors,
                ),
            };
            if total >= min_total {
                points.push(SurvivalPoint {
                    mwi: (mwi_weighted / total as f64).round() as u32,
                    total,
                    survivors,
                    rate: survivors as f64 / total as f64,
                });
            } else {
                acc = Some((mwi_weighted, total, survivors));
            }
        }
        // A trailing under-populated group folds into the last emitted
        // point (or becomes the only point).
        if let Some((w, t, s)) = acc {
            match points.last_mut() {
                Some(last) => {
                    let total = last.total + t;
                    let survivors = last.survivors + s;
                    last.mwi =
                        ((last.mwi as f64 * last.total as f64 + w) / total as f64).round() as u32;
                    last.total = total;
                    last.survivors = survivors;
                    last.rate = survivors as f64 / total as f64;
                }
                None if t > 0 => points.push(SurvivalPoint {
                    mwi: (w / t as f64).round() as u32,
                    total: t,
                    survivors: s,
                    rate: s as f64 / t as f64,
                }),
                None => {}
            }
        }
        SurvivalCurve { points }
    }

    /// Convenience: detection with default BOCPD settings and the paper's
    /// ±2.5 z-score threshold.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SurvivalCurve::detect_change_point`].
    pub fn detect_change_point_default(
        &self,
    ) -> Result<Option<WearoutChangePoint>, ChangepointError> {
        self.detect_change_point(&BocpdConfig::default(), PAPER_Z_THRESHOLD)
    }
}

/// Centered 3-point moving average (endpoints average their two neighbours).
fn smooth3(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    if n < 3 {
        return xs.to_vec();
    }
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(1);
            let hi = (i + 1).min(n - 1);
            xs[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic fleet: survival high above the knee, dropping below it.
    fn kneed_drives(knee: u32, per_bucket: usize) -> Vec<(f64, bool)> {
        let mut drives = Vec::new();
        for mwi in 5..=95u32 {
            for i in 0..per_bucket {
                let fail_rate = if mwi < knee { 0.5 } else { 0.05 };
                let failed = (i as f64 / per_bucket as f64) < fail_rate;
                drives.push((mwi as f64, failed));
            }
        }
        drives
    }

    #[test]
    fn curve_orders_descending() {
        let curve = SurvivalCurve::from_drives(kneed_drives(40, 10), 3);
        let mwis: Vec<u32> = curve.points().iter().map(|p| p.mwi).collect();
        for w in mwis.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert_eq!(curve.mwi_range(), Some((5, 95)));
    }

    #[test]
    fn rates_match_construction() {
        let drives = vec![(80.0, false), (80.0, false), (80.0, true), (80.0, false)];
        let curve = SurvivalCurve::from_drives(drives, 1);
        assert_eq!(curve.points().len(), 1);
        let p = curve.points()[0];
        assert_eq!(p.total, 4);
        assert_eq!(p.survivors, 3);
        assert!((p.rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn min_count_drops_sparse_buckets() {
        let drives = vec![(80.0, false), (80.0, false), (30.0, true)];
        let curve = SurvivalCurve::from_drives(drives, 2);
        assert_eq!(curve.points().len(), 1);
        assert_eq!(curve.points()[0].mwi, 80);
    }

    #[test]
    fn detects_knee_near_truth() {
        let curve = SurvivalCurve::from_drives(kneed_drives(40, 30), 3);
        let cp = curve.detect_change_point_default().unwrap().unwrap();
        assert!(
            (35..=45).contains(&cp.mwi_threshold),
            "threshold = {}",
            cp.mwi_threshold
        );
        assert!(cp.z_score.abs() >= PAPER_Z_THRESHOLD);
    }

    #[test]
    fn narrow_range_yields_none() {
        // All drives end with MWI in 97..=100 (the MB1/MB2 situation).
        let mut drives = Vec::new();
        for mwi in 97..=100u32 {
            for i in 0..20 {
                drives.push((mwi as f64, i < 1));
            }
        }
        let curve = SurvivalCurve::from_drives(drives, 3);
        assert!(curve.detect_change_point_default().unwrap().is_none());
        assert!(!curve.has_meaningful_range(10));
    }

    #[test]
    fn flat_curve_yields_none() {
        let mut drives = Vec::new();
        for mwi in 10..=90u32 {
            for i in 0..20 {
                drives.push((mwi as f64, i < 2)); // uniform 10% failures
            }
        }
        let curve = SurvivalCurve::from_drives(drives, 3);
        assert!(curve.detect_change_point_default().unwrap().is_none());
    }

    #[test]
    fn clamps_out_of_range_mwi() {
        let drives = vec![(150.0, false), (-5.0, true)];
        let curve = SurvivalCurve::from_drives(drives, 1);
        let mwis: Vec<u32> = curve.points().iter().map(|p| p.mwi).collect();
        assert_eq!(mwis, vec![100, 1]);
    }

    #[test]
    fn coarsen_pools_sparse_buckets() {
        // 10 buckets of 10 drives each, alternating failures.
        let drives: Vec<(f64, bool)> = (50..60)
            .flat_map(|mwi| (0..10).map(move |i| (mwi as f64, i < 2)))
            .collect();
        let curve = SurvivalCurve::from_drives(drives, 1);
        assert_eq!(curve.points().len(), 10);
        let coarse = curve.coarsened(25);
        // Total population is preserved.
        let total: usize = coarse.points().iter().map(|p| p.total).sum();
        assert_eq!(total, 100);
        // Every merged point has at least 25 drives.
        assert!(coarse.points().iter().all(|p| p.total >= 25));
        // Pooled rate matches construction (2 of 10 fail everywhere).
        for p in coarse.points() {
            assert!((p.rate - 0.8).abs() < 1e-12);
        }
    }

    #[test]
    fn coarsen_keeps_dense_buckets_intact() {
        let drives: Vec<(f64, bool)> = (70..73)
            .flat_map(|mwi| (0..50).map(move |i| (mwi as f64, i < 5)))
            .collect();
        let curve = SurvivalCurve::from_drives(drives, 1);
        let coarse = curve.coarsened(25);
        assert_eq!(coarse.points().len(), 3);
        assert_eq!(coarse.points(), curve.points());
    }

    #[test]
    fn coarsen_folds_trailing_remainder() {
        // 30 drives at MWI 90, then a sparse tail of 5 at MWI 10.
        let mut drives: Vec<(f64, bool)> = (0..30).map(|i| (90.0, i < 3)).collect();
        drives.extend((0..5).map(|i| (10.0, i < 1)));
        let curve = SurvivalCurve::from_drives(drives, 1);
        let coarse = curve.coarsened(25);
        // The 5-drive tail folds into the previous point.
        assert_eq!(coarse.points().len(), 1);
        let p = coarse.points()[0];
        assert_eq!(p.total, 35);
        assert_eq!(p.survivors, 31);
        // Weighted-mean MWI sits between the sources, nearer the big bucket.
        assert!((70..=90).contains(&p.mwi), "mwi = {}", p.mwi);
    }

    #[test]
    fn coarsen_of_empty_curve_is_empty() {
        let curve = SurvivalCurve::from_drives(Vec::<(f64, bool)>::new(), 1);
        assert!(curve.coarsened(25).points().is_empty());
    }

    #[test]
    fn empty_curve_behaves() {
        let curve = SurvivalCurve::from_drives(Vec::<(f64, bool)>::new(), 1);
        assert!(curve.points().is_empty());
        assert_eq!(curve.mwi_range(), None);
        assert!(curve.detect_change_point_default().unwrap().is_none());
    }
}
