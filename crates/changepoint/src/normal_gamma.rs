//! Normal-Gamma conjugate model for Gaussian sequences with unknown mean
//! and precision, including the Student-t posterior-predictive density that
//! Bayesian online change-point detection needs.

/// Parameters of a Normal-Gamma distribution over (mean, precision).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalGamma {
    /// Prior mean.
    pub mu: f64,
    /// Pseudo-observations backing the mean.
    pub kappa: f64,
    /// Gamma shape.
    pub alpha: f64,
    /// Gamma rate.
    pub beta: f64,
}

impl Default for NormalGamma {
    /// A weakly informative prior suited to z-scored inputs.
    fn default() -> Self {
        NormalGamma {
            mu: 0.0,
            kappa: 1.0,
            alpha: 1.0,
            beta: 1.0,
        }
    }
}

impl NormalGamma {
    /// Posterior after observing `x` (standard conjugate update).
    pub fn update(&self, x: f64) -> NormalGamma {
        let kappa1 = self.kappa + 1.0;
        NormalGamma {
            mu: (self.kappa * self.mu + x) / kappa1,
            kappa: kappa1,
            alpha: self.alpha + 0.5,
            beta: self.beta + self.kappa * (x - self.mu) * (x - self.mu) / (2.0 * kappa1),
        }
    }

    /// Log posterior-predictive density of the next observation `x`: a
    /// Student-t with `2α` degrees of freedom, location `μ`, and scale²
    /// `β(κ+1)/(ακ)`.
    pub fn log_predictive(&self, x: f64) -> f64 {
        let df = 2.0 * self.alpha;
        let scale2 = self.beta * (self.kappa + 1.0) / (self.alpha * self.kappa);
        student_t_log_pdf(x, df, self.mu, scale2.sqrt())
    }
}

/// Log-pdf of a location-scale Student-t distribution.
pub fn student_t_log_pdf(x: f64, df: f64, loc: f64, scale: f64) -> f64 {
    let z = (x - loc) / scale;
    ln_gamma((df + 1.0) / 2.0)
        - ln_gamma(df / 2.0)
        - 0.5 * (df * std::f64::consts::PI).ln()
        - scale.ln()
        - (df + 1.0) / 2.0 * (1.0 + z * z / df).ln()
}

/// Log-gamma via the Lanczos approximation (g = 7, 9 coefficients);
/// accurate to ~1e-13 over the positive reals.
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x·Γ(x).
        for x in [0.7, 1.3, 2.9, 7.5, 20.0] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-9, "x = {x}");
        }
    }

    #[test]
    fn student_t_matches_cauchy_at_df_one() {
        // t(df=1) is standard Cauchy: pdf(0) = 1/π.
        let lp = student_t_log_pdf(0.0, 1.0, 0.0, 1.0);
        assert!((lp.exp() - 1.0 / std::f64::consts::PI).abs() < 1e-10);
    }

    #[test]
    fn student_t_approaches_normal_at_high_df() {
        let lp = student_t_log_pdf(1.0, 1e6, 0.0, 1.0);
        let normal = smart_stats::gaussian::std_normal_pdf(1.0).ln();
        assert!((lp - normal).abs() < 1e-3);
    }

    #[test]
    fn update_shifts_mean_toward_observation() {
        let prior = NormalGamma::default();
        let post = prior.update(10.0);
        assert!(post.mu > prior.mu);
        assert_eq!(post.kappa, 2.0);
        assert_eq!(post.alpha, 1.5);
        assert!(post.beta > prior.beta);
    }

    #[test]
    fn repeated_updates_concentrate() {
        let mut ng = NormalGamma::default();
        for _ in 0..100 {
            ng = ng.update(3.0);
        }
        assert!((ng.mu - 3.0).abs() < 0.1);
        // Predictive mass at the data value beats the prior's.
        assert!(ng.log_predictive(3.0) > NormalGamma::default().log_predictive(3.0));
    }

    #[test]
    fn predictive_is_normalized_enough() {
        // Numerically integrate the predictive over a wide grid.
        let ng = NormalGamma::default().update(0.5).update(-0.2);
        let step = 0.01;
        let total: f64 = (-4000..4000)
            .map(|i| ng.log_predictive(i as f64 * step).exp() * step)
            .sum();
        assert!((total - 1.0).abs() < 1e-3, "total = {total}");
    }
}
