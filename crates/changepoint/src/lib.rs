#![forbid(unsafe_code)]
//! Change-point detection substrate for the WEFR reproduction.
//!
//! WEFR's wear-out-updating step needs to know whether — and where — the
//! survival rate of a drive model changes as a function of the wear-out
//! indicator `MWI_N` (§III-C / §IV-D of the paper). This crate provides:
//!
//! * [`bocpd`] — Bayesian online change-point detection with a Normal-Gamma
//!   observation model, yielding a change probability per position.
//! * [`significance`] — the paper's ±2.5 z-score rule over change
//!   probabilities and most-significant-point selection.
//! * [`survival`] — survival-rate curves over `MWI_N` and end-to-end
//!   change-point detection on them.
//! * [`binseg`] — least-squares binary segmentation, the ablation baseline.
//!
//! # Example
//!
//! ```
//! use smart_changepoint::survival::SurvivalCurve;
//!
//! # fn main() -> Result<(), smart_changepoint::ChangepointError> {
//! // (final MWI_N, failed) pairs with a survival knee at MWI 40.
//! let drives = (5..=95).flat_map(|mwi| {
//!     (0..30).map(move |i| (mwi as f64, i < if mwi < 40 { 15 } else { 1 }))
//! });
//! let curve = SurvivalCurve::from_drives(drives, 3);
//! let cp = curve.detect_change_point_default()?.expect("knee is detectable");
//! assert!((35..=45).contains(&cp.mwi_threshold));
//! # Ok(())
//! # }
//! ```

pub mod binseg;
pub mod bocpd;
pub mod error;
pub mod normal_gamma;
pub mod significance;
pub mod survival;

pub use bocpd::{change_probabilities, BocpdConfig};
pub use error::ChangepointError;
pub use normal_gamma::NormalGamma;
pub use significance::{
    most_significant_point, significant_points, SignificantPoint, PAPER_Z_THRESHOLD,
};
pub use survival::{SurvivalCurve, SurvivalPoint, WearoutChangePoint};
