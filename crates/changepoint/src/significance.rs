//! The paper's z-score significance rule over change probabilities: a point
//! is a significant change when its change probability sits `±2.5` standard
//! deviations from the mean (confidence ≈ 98.76%); among significant points
//! the most significant one is selected (§III-C).

use crate::error::ChangepointError;
use smart_stats::descriptive::z_scores;

/// The paper's z-score threshold.
pub const PAPER_Z_THRESHOLD: f64 = 2.5;

/// A significant change point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignificantPoint {
    /// Index into the analyzed series.
    pub index: usize,
    /// Change probability at the point.
    pub probability: f64,
    /// Z-score of the change probability.
    pub z_score: f64,
}

/// All indices whose change probability deviates at least `z_threshold`
/// standard deviations from the mean, ordered by descending |z|.
///
/// # Errors
///
/// Returns [`ChangepointError::SeriesTooShort`] for an empty input and
/// [`ChangepointError::InvalidParameter`] for a non-positive threshold.
pub fn significant_points(
    change_probs: &[f64],
    z_threshold: f64,
) -> Result<Vec<SignificantPoint>, ChangepointError> {
    if change_probs.is_empty() {
        return Err(ChangepointError::SeriesTooShort {
            len: 0,
            required: 1,
        });
    }
    if z_threshold <= 0.0 {
        return Err(ChangepointError::InvalidParameter {
            message: "z threshold must be positive".to_string(),
        });
    }
    let zs = z_scores(change_probs)?;
    let mut points: Vec<SignificantPoint> = zs
        .iter()
        .enumerate()
        .filter(|(_, z)| z.abs() >= z_threshold)
        .map(|(index, &z)| SignificantPoint {
            index,
            probability: change_probs[index],
            z_score: z,
        })
        .collect();
    points.sort_by(|a, b| {
        b.z_score
            .abs()
            .total_cmp(&a.z_score.abs())
            .then(a.index.cmp(&b.index))
    });
    Ok(points)
}

/// The single most significant change point, if any crosses the threshold —
/// "if we detect multiple change points, we select the point with the most
/// significant change" (§III-C).
///
/// # Errors
///
/// Same conditions as [`significant_points`].
pub fn most_significant_point(
    change_probs: &[f64],
    z_threshold: f64,
) -> Result<Option<SignificantPoint>, ChangepointError> {
    Ok(significant_points(change_probs, z_threshold)?
        .into_iter()
        .next())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_spike_is_significant() {
        let mut probs = vec![0.01; 60];
        probs[30] = 0.9;
        let points = significant_points(&probs, PAPER_Z_THRESHOLD).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].index, 30);
        assert!(points[0].z_score > PAPER_Z_THRESHOLD);
    }

    #[test]
    fn flat_series_has_no_significant_points() {
        let probs = vec![0.02; 40];
        assert!(significant_points(&probs, PAPER_Z_THRESHOLD)
            .unwrap()
            .is_empty());
        assert!(most_significant_point(&probs, PAPER_Z_THRESHOLD)
            .unwrap()
            .is_none());
    }

    #[test]
    fn most_significant_wins_among_several() {
        let mut probs = vec![0.01; 100];
        probs[20] = 0.5;
        probs[70] = 0.9;
        let best = most_significant_point(&probs, PAPER_Z_THRESHOLD)
            .unwrap()
            .unwrap();
        assert_eq!(best.index, 70);
    }

    #[test]
    fn ordering_is_by_absolute_z() {
        let mut probs = vec![0.01; 100];
        probs[20] = 0.5;
        probs[70] = 0.9;
        let points = significant_points(&probs, 2.0).unwrap();
        assert!(points.len() >= 2);
        assert_eq!(points[0].index, 70);
        assert_eq!(points[1].index, 20);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(significant_points(&[], 2.5).is_err());
        assert!(significant_points(&[0.1, 0.2], 0.0).is_err());
        assert!(significant_points(&[0.1, 0.2], -1.0).is_err());
    }

    #[test]
    fn threshold_gates_detection() {
        let mut probs = vec![0.1; 20];
        probs[5] = 0.3; // mild bump
        let strict = significant_points(&probs, 5.0).unwrap();
        assert!(strict.is_empty());
        let lax = significant_points(&probs, 1.0).unwrap();
        assert!(!lax.is_empty());
    }
}
