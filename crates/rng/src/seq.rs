//! Sequence operations over an [`crate::Rng`]: in-place shuffling and
//! the bootstrap-sampling shims used by `smart-stats` and the tree learners.

use crate::Rng;

/// In-place random reordering of slices (Fisher–Yates).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffle the slice uniformly in place. Deterministic for a fixed
    /// generator state.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` when empty.
    fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

/// `n` indices drawn uniformly with replacement from `[0, n)` — one
/// bootstrap resample, as used by bagged trees and stability selection.
pub fn bootstrap_indices<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    (0..n).map(|_| rng.random_range(0..n)).collect()
}

/// `k` distinct indices drawn uniformly from `[0, n)`, in random order
/// (partial Fisher–Yates).
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_without_replacement<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot draw {k} distinct items from {n}");
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_deterministic() {
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut xs: Vec<usize> = (0..20).collect();
            xs.shuffle(&mut rng);
            xs
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*xs.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn bootstrap_indices_in_range_with_repeats() {
        let mut rng = StdRng::seed_from_u64(3);
        let idx = bootstrap_indices(&mut rng, 100);
        assert_eq!(idx.len(), 100);
        assert!(idx.iter().all(|&i| i < 100));
        let distinct: std::collections::BTreeSet<_> = idx.iter().collect();
        assert!(distinct.len() < 100, "bootstrap should repeat some indices");
    }

    #[test]
    fn swor_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let idx = sample_without_replacement(&mut rng, 30, 10);
        assert_eq!(idx.len(), 10);
        assert!(idx.iter().all(|&i| i < 30));
        let distinct: std::collections::BTreeSet<_> = idx.iter().collect();
        assert_eq!(distinct.len(), 10);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn swor_rejects_oversized_k() {
        let mut rng = StdRng::seed_from_u64(5);
        sample_without_replacement(&mut rng, 3, 4);
    }
}
