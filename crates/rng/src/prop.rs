//! A seeded property-test harness: the in-repo replacement for `proptest!`.
//!
//! A property is an ordinary closure over a [`Gen`]; the harness runs it for
//! `PROP_CASES` generated inputs (default 64) and, when a case panics,
//! prints the exact environment variables that replay that single case
//! before re-raising the panic:
//!
//! ```text
//! property failed on case 17 (case seed 0x53a9...)
//! replay with: PROP_SEED=0x53a9... PROP_CASES=1 cargo test -q <test name>
//! ```
//!
//! Unlike `proptest` there is no shrinking — inputs are kept small by
//! construction instead (generators take explicit bounds), which has proven
//! enough for the numeric properties this workspace checks.
//!
//! ```
//! rng::prop_check!(|g| {
//!     let mut xs = g.vec_f64(1, 50, -10.0, 10.0);
//!     xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
//!     assert!(xs.windows(2).all(|w| w[0] <= w[1]));
//! });
//! ```

use crate::seq::SliceRandom;
use crate::{derive_seed, Rng, SeedableRng, StdRng};

/// Default number of generated cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Default base seed — fixed so CI runs are reproducible end to end.
pub const DEFAULT_SEED: u64 = 0x5EED_CAFE_F00D_D15C;

fn env_u64(name: &str) -> Option<u64> {
    // lint:allow(side-effects) the PROP_CASES/PROP_SEED replay knobs are
    // this harness's documented interface; they only affect tests
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be a u64 (decimal or 0x-hex), got {raw:?}"),
    }
}

/// Run `property` against generated inputs; panics (after printing replay
/// instructions) on the first failing case.
///
/// Honours two environment variables: `PROP_CASES` (number of cases) and
/// `PROP_SEED` (base seed; case 0 uses it verbatim, so
/// `PROP_SEED=<case seed> PROP_CASES=1` replays one exact case).
pub fn run_cases<F: Fn(&mut Gen)>(property: F) {
    let cases = env_u64("PROP_CASES").unwrap_or(u64::from(DEFAULT_CASES));
    let base = env_u64("PROP_SEED").unwrap_or(DEFAULT_SEED);
    for case in 0..cases {
        let case_seed = if case == 0 {
            base
        } else {
            derive_seed(base, case)
        };
        let mut gen = Gen::new(case_seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut gen)));
        if let Err(payload) = outcome {
            // lint:allow(side-effects) replay instructions must reach the
            // failing test's stderr, next to the panic message itself
            eprintln!("property failed on case {case} (case seed {case_seed:#x})");
            // lint:allow(side-effects) second line of the same replay hint
            eprintln!("replay with: PROP_SEED={case_seed:#x} PROP_CASES=1 cargo test -q");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Declare a property test body: `prop_check!(|g| { ... })`.
///
/// `g` is a [`Gen`]. The macro simply forwards to
/// [`run_cases`] — it exists so property tests read declaratively at the
/// call site, mirroring the old `proptest!` blocks.
#[macro_export]
macro_rules! prop_check {
    (|$g:ident| $body:expr) => {
        $crate::prop::run_cases(|$g: &mut $crate::prop::Gen| $body)
    };
}

/// A bounded-input generator handed to each property case.
///
/// Every helper draws from the case's own deterministically seeded
/// [`StdRng`], so a case is fully reproduced by its seed alone.
pub struct Gen {
    rng: StdRng,
}

impl Gen {
    /// Build the generator for one case seed.
    pub fn new(seed: u64) -> Gen {
        Gen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Direct access to the underlying RNG for draws the helpers don't
    /// cover.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.random_range(lo..hi)
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive, like proptest's `lo..=hi`).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.random_range(lo..=hi)
    }

    /// Uniform `u64` in `[lo, hi]`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.random_range(lo..=hi)
    }

    /// Uniform `i64` in `[lo, hi]`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.random_range(lo..=hi)
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.random()
    }

    /// `true` with probability `p`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.rng.random_bool(p)
    }

    /// Vector of `f64` in `[lo, hi)` with length in `[min_len, max_len]`.
    pub fn vec_f64(&mut self, min_len: usize, max_len: usize, lo: f64, hi: f64) -> Vec<f64> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }

    /// Vector of fair coins with length in `[min_len, max_len]`.
    pub fn vec_bool(&mut self, min_len: usize, max_len: usize) -> Vec<bool> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| self.bool()).collect()
    }

    /// Vector of fair coins guaranteed to contain at least one `true` and
    /// one `false` (replaces `prop_assume!` filters on mixed-class labels).
    pub fn vec_bool_mixed(&mut self, min_len: usize, max_len: usize) -> Vec<bool> {
        let len = self.usize_in(min_len.max(2), max_len.max(2));
        let mut labels: Vec<bool> = (0..len).map(|_| self.bool()).collect();
        let i = self.usize_in(0, len - 1);
        let mut j = self.usize_in(0, len - 1);
        if j == i {
            j = (j + 1) % len;
        }
        labels[i] = true;
        labels[j] = false;
        labels
    }

    /// A uniformly random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut self.rng);
        perm
    }

    /// Shuffle an existing vector in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        xs.shuffle(&mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn properties_run_and_pass() {
        prop_check!(|g| {
            let xs = g.vec_f64(1, 30, -5.0, 5.0);
            assert!(xs.iter().all(|x| (-5.0..5.0).contains(x)));
        });
    }

    #[test]
    fn mixed_labels_always_have_both_classes() {
        prop_check!(|g| {
            let labels = g.vec_bool_mixed(1, 40);
            assert!(labels.iter().any(|&l| l));
            assert!(labels.iter().any(|&l| !l));
        });
    }

    #[test]
    fn permutation_is_complete() {
        prop_check!(|g| {
            let n = g.usize_in(1, 25);
            let mut perm = g.permutation(n);
            perm.sort_unstable();
            assert_eq!(perm, (0..n).collect::<Vec<_>>());
        });
    }

    #[test]
    fn failing_property_panics_with_payload() {
        let outcome = std::panic::catch_unwind(|| {
            prop_check!(|g| {
                let x = g.f64_in(0.0, 1.0);
                assert!(x < 0.0, "always fails");
            });
        });
        assert!(outcome.is_err());
    }

    #[test]
    fn cases_are_deterministic_for_fixed_seed() {
        let draw = |seed| {
            let mut g = Gen::new(seed);
            (g.f64_in(0.0, 1.0), g.usize_in(0, 100), g.vec_bool(1, 10))
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }
}
