#![forbid(unsafe_code)]
//! Deterministic, dependency-free random numbers for the WEFR workspace.
//!
//! The workspace builds hermetically (no registry crates — DESIGN.md §5), so
//! this crate replaces the external `rand` crate with the two primitives the
//! simulation and learners actually need:
//!
//! * **SplitMix64** — seed expansion from a single `u64` (Steele, Lea &
//!   Flood, OOPSLA 2014). Used only to initialize generator state, never as
//!   the stream generator itself.
//! * **xoshiro256++** — the stream generator (Blackman & Vigna 2019):
//!   256 bits of state, period 2²⁵⁶−1, passes BigCrush, and is fast enough
//!   to disappear inside fleet simulation.
//!
//! The API mirrors the subset of `rand` the call sites used
//! ([`SeedableRng::seed_from_u64`], [`Rng::random`], [`Rng::random_range`],
//! [`seq::SliceRandom::shuffle`]) so the migration is a re-import, not a
//! rewrite. Determinism is the contract: for a fixed seed, every method
//! yields the identical value sequence on every platform — identical seeds
//! must yield identical rankings (EFSIS; Zhang & Jonassen 2018).

pub mod prop;
pub mod seq;

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seed expansion and for decorrelating derived seeds (e.g. one
/// seed per tree from a forest seed plus a tree index).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose full state is derived from `seed` by
    /// SplitMix64 expansion. Equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of uniformly distributed random bits plus the derived draws the
/// workspace uses.
///
/// The only required method is [`Rng::next_u64`]; everything else is
/// provided. Generic draws work through [`Sample`] (whole-type draws) and
/// [`SampleRange`] (range draws), both implemented for the primitive types
/// the call sites need.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of
    /// [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value of `T` (`f64`/`f32` in `[0, 1)`,
    /// integers over their whole domain, `bool` fair).
    fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly distributed value in `range` (half-open `lo..hi` or
    /// inclusive `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p.clamp(0.0, 1.0)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Alias of [`Rng`] kept for call-site compatibility with the old `rand`
/// import style — `use rng::RngExt` brings the same methods into scope.
pub use self::Rng as RngExt;

/// The xoshiro256++ generator — the workspace's standard RNG.
///
/// # Example
///
/// ```
/// use rng::{Rng, SeedableRng, StdRng};
///
/// let mut a = StdRng::seed_from_u64(42);
/// let mut b = StdRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x: f64 = a.random();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Build from raw state. At least one word must be non-zero; an
    /// all-zero state is replaced by SplitMix64 expansion of 0 (the
    /// all-zero state is the one fixed point of the generator).
    pub fn from_state(state: [u64; 4]) -> StdRng {
        if state == [0; 4] {
            StdRng::seed_from_u64(0)
        } else {
            StdRng { s: state }
        }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Generators named like the `rand` module the call sites imported from.
pub mod rngs {
    pub use super::StdRng;
}

/// A type drawable uniformly from its natural domain via [`Rng::random`].
pub trait Sample: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Sample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_sample_int {
    ($($ty:ty),+) => {$(
        impl Sample for $ty {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform draw in `[0, n)` (Lemire's multiply-with-rejection).
///
/// # Panics
///
/// Panics if `n == 0`.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    let mut m = u128::from(rng.next_u64()) * u128::from(n);
    if (m as u64) < n {
        // Rejection threshold: 2^64 mod n.
        let threshold = n.wrapping_neg() % n;
        while (m as u64) < threshold {
            m = u128::from(rng.next_u64()) * u128::from(n);
        }
    }
    (m >> 64) as u64
}

/// A range drawable uniformly via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($ty:ty),+) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in random_range");
                let span = u64::from(self.end - self.start);
                self.start + uniform_below(rng, span) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = u64::from(hi - lo) + 1;
                // span never overflows: hi - lo <= u32::MAX here.
                lo + uniform_below(rng, span) as $ty
            }
        }
    )+};
}

impl_range_uint!(u8, u16, u32);

macro_rules! impl_range_wide_uint {
    ($($ty:ty),+) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                match (hi - lo).checked_add(1) {
                    Some(span) => lo + uniform_below(rng, span as u64) as $ty,
                    // Full-domain inclusive range: raw 64 bits are uniform.
                    None => rng.next_u64() as $ty,
                }
            }
        }
    )+};
}

impl_range_wide_uint!(u64, usize);

macro_rules! impl_range_sint {
    ($($ty:ty => $uty:ty),+) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $uty).wrapping_sub(self.start as $uty) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $ty)
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as $uty).wrapping_sub(lo as $uty) as u64;
                match span.checked_add(1) {
                    Some(span) => lo.wrapping_add(uniform_below(rng, span) as $ty),
                    None => rng.next_u64() as $ty,
                }
            }
        }
    )+};
}

impl_range_sint!(i32 => u32, i64 => u64);

macro_rules! impl_range_float {
    ($($ty:ty),+) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in random_range");
                let unit: $ty = rng.random();
                self.start + unit * (self.end - self.start)
            }
        }
    )+};
}

impl_range_float!(f64, f32);

/// Derive a decorrelated seed from a base seed and a stream index
/// (SplitMix64 over the pair) — the standard per-tree / per-drive seeding
/// pattern across the workspace.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut state = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vector() {
        // First outputs from state 0, per the reference implementation
        // (Steele, Lea & Flood; widely published test vector).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_state_is_rescued() {
        let mut rng = StdRng::from_state([0; 4]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn f64_in_unit_interval_with_plausible_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let a: usize = rng.random_range(3..17);
            assert!((3..17).contains(&a));
            let b: u32 = rng.random_range(0..=6);
            assert!(b <= 6);
            let c: i64 = rng.random_range(-50..50);
            assert!((-50..50).contains(&c));
            let d: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&d));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen = {seen:?}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(13);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(42, 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: usize = rng.random_range(5..5);
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
