#![forbid(unsafe_code)]
//! Dependency-free JSON for the WEFR workspace: a recursive-descent parser,
//! compact and pretty writers, and [`ToJson`]/[`FromJson`] conversion traits
//! with `macro_rules!` helpers that replace the `serde`/`serde_json` derive
//! stack (DESIGN.md §5).
//!
//! Design points:
//!
//! * Objects preserve insertion order (`Vec<(String, Value)>`), so written
//!   reports are stable and diffable run to run.
//! * Numbers keep their integer identity ([`Number::PosInt`] /
//!   [`Number::NegInt`] / [`Number::Float`]) so `u64` seeds survive
//!   round-trips exactly — an `f64`-only representation would silently
//!   corrupt seeds above 2⁵³.
//! * Non-finite floats (`NaN`, `±∞`) are written as `null`, matching what
//!   `serde_json` did for the metrics reports; reading `null` back into an
//!   `f64` yields `NaN`.
//! * The pretty writer emits the same 2-space-indent layout `serde_json`'s
//!   `to_string_pretty` produced, so existing `results/*.json` and
//!   `BENCH_*.json` consumers keep working.
//!
//! ```
//! let value = json::parse(r#"{"name": "wefr", "features": [1, 2, 3]}"#).unwrap();
//! assert_eq!(value.field("name").and_then(json::Value::as_str), Some("wefr"));
//! let text = json::to_string_pretty_value(&value);
//! assert_eq!(json::parse(&text).unwrap(), value);
//! ```

mod convert;
mod parser;
mod writer;

pub use convert::{from_str, from_value, to_string, to_string_pretty, FromJson, ToJson};
pub use parser::parse;
pub use writer::{to_string_pretty_value, to_string_value};

/// A parsed JSON number, preserving integer identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer (anything that fits `u64`).
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A number with a fractional part or exponent, or outside integer
    /// range.
    Float(f64),
}

impl Number {
    /// The value as `f64` (always possible, possibly lossy for huge ints).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The value as `u64` if it is a non-negative integer (floats with an
    /// exact non-negative integral value included).
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(_) => None,
            Number::Float(v) => {
                if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 {
                    Some(v as u64)
                } else {
                    None
                }
            }
        }
    }

    /// The value as `i64` if it is an integer in `i64` range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v) => {
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v < i64::MAX as f64 {
                    Some(v as i64)
                } else {
                    None
                }
            }
        }
    }
}

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (see [`Number`]).
    Number(Number),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object by key; `None` for missing keys or
    /// non-objects.
    pub fn field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`; `null` reads as `NaN` (the write-side policy
    /// maps non-finite floats to `null`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The number as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The string slice, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Human-readable name of the node kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A parse or conversion failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    /// Byte offset in the input for parse errors; `None` for conversion
    /// errors.
    position: Option<usize>,
}

impl JsonError {
    /// A parse error at `position` (byte offset).
    pub fn at(position: usize, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            position: Some(position),
        }
    }

    /// A conversion (typed-decode) error.
    pub fn conversion(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            position: None,
        }
    }

    /// A missing-object-field conversion error.
    pub fn missing_field(field: &str) -> JsonError {
        JsonError::conversion(format!("missing field {field:?}"))
    }

    /// A wrong-node-kind conversion error.
    pub fn type_error(expected: &str, got: &Value) -> JsonError {
        JsonError::conversion(format!("expected {expected}, got {}", got.kind()))
    }

    /// The byte offset of a parse error, when known.
    pub fn position(&self) -> Option<usize> {
        self.position
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.position {
            Some(pos) => write!(f, "{} at byte {pos}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_lookup_and_accessors() {
        let value = parse(r#"{"a": 1, "b": [true, null], "c": "x"}"#).unwrap();
        assert_eq!(value.field("a").and_then(Value::as_u64), Some(1));
        assert_eq!(value.field("c").and_then(Value::as_str), Some("x"));
        let b = value.field("b").and_then(Value::as_array).unwrap();
        assert_eq!(b[0].as_bool(), Some(true));
        assert!(b[1].as_f64().unwrap().is_nan());
        assert!(value.field("missing").is_none());
    }

    #[test]
    fn number_identity_preserved() {
        let big = u64::MAX - 1;
        let value = parse(&big.to_string()).unwrap();
        assert_eq!(value.as_u64(), Some(big));
        let neg = parse("-42").unwrap();
        assert_eq!(neg.as_i64(), Some(-42));
        assert_eq!(neg.as_u64(), None);
        let fraction = parse("1.5").unwrap();
        assert_eq!(fraction.as_f64(), Some(1.5));
        assert_eq!(fraction.as_u64(), None);
    }

    #[test]
    fn errors_render_with_position() {
        let err = parse("[1,").unwrap_err();
        assert!(err.position().is_some());
        assert!(err.to_string().contains("at byte"));
    }
}
