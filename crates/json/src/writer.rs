//! Compact and pretty JSON writers.
//!
//! The pretty layout matches what `serde_json::to_string_pretty` produced
//! (2-space indent, `"key": value`, empty containers on one line) so the
//! `results/*.json` and `BENCH_*.json` artifacts keep their shape across the
//! migration. Non-finite floats are written as `null` — JSON has no NaN.

use crate::{Number, Value};

/// Serialize compactly (no whitespace).
pub fn to_string_value(value: &Value) -> String {
    let mut out = String::new();
    write_compact(value, &mut out);
    out
}

/// Serialize with 2-space-indent pretty layout.
pub fn to_string_pretty_value(value: &Value) -> String {
    let mut out = String::new();
    write_pretty(value, 0, &mut out);
    out
}

fn write_number(number: Number, out: &mut String) {
    match number {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if !v.is_finite() {
                out.push_str("null");
            } else if v.fract() == 0.0 && v.abs() < 1e16 {
                // Keep the decimal point so floats stay floats on re-parse.
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&format!("{v}"));
            }
        }
    }
}

fn write_string(text: &str, out: &mut String) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn push_indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_pretty(value: &Value, depth: usize, out: &mut String) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            push_indent(depth, out);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(depth + 1, out);
                write_string(key, out);
                out.push_str(": ");
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            push_indent(depth, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_round_trips() {
        let text = r#"{"a":[1,2.5,null,true],"b":{"c":"d\ne"}}"#;
        let value = parse(text).unwrap();
        assert_eq!(to_string_value(&value), text);
    }

    #[test]
    fn pretty_matches_expected_layout() {
        let value =
            parse(r#"{"name": "wefr", "scores": [1, 2], "empty": {}, "none": []}"#).unwrap();
        let expected = "{\n  \"name\": \"wefr\",\n  \"scores\": [\n    1,\n    2\n  ],\n  \"empty\": {},\n  \"none\": []\n}";
        assert_eq!(to_string_pretty_value(&value), expected);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let value = Value::Array(vec![
            Value::Number(Number::Float(f64::NAN)),
            Value::Number(Number::Float(f64::INFINITY)),
            Value::Number(Number::Float(f64::NEG_INFINITY)),
            Value::Number(Number::Float(1.5)),
        ]);
        assert_eq!(to_string_value(&value), "[null,null,null,1.5]");
    }

    #[test]
    fn floats_keep_their_decimal_point() {
        let value = Value::Number(Number::Float(4.0));
        assert_eq!(to_string_value(&value), "4.0");
        let reparsed = parse("4.0").unwrap();
        assert_eq!(reparsed, value);
        assert_eq!(to_string_value(&Value::Number(Number::Float(-0.0))), "-0.0");
    }

    #[test]
    fn escapes_are_written_and_reparsed() {
        let original = Value::String("quote \" slash \\ newline \n tab \t ctrl \u{0001} é".into());
        let text = to_string_value(&original);
        assert!(text.contains("\\u0001"));
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn integers_round_trip_exactly() {
        for raw in ["0", "-1", "9007199254740993", "18446744073709551615"] {
            let value = parse(raw).unwrap();
            assert_eq!(to_string_value(&value), raw);
        }
    }
}
