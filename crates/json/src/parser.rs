//! Recursive-descent JSON parser.
//!
//! Accepts RFC 8259 documents: any value at the top level, full escape
//! handling including `\uXXXX` surrogate pairs, and integer/float
//! distinction (see [`Number`]). Trailing garbage after the document is an
//! error. Recursion depth is capped so adversarial inputs fail cleanly
//! instead of overflowing the stack.

use crate::{JsonError, Number, Value};

/// Maximum nesting depth before the parser bails out.
const MAX_DEPTH: usize = 128;

/// Parse one JSON document from `input`.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(JsonError::at(
            parser.pos,
            "trailing characters after JSON document",
        ));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(
                self.pos,
                format!("expected {:?}", byte as char),
            ))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(JsonError::at(self.pos, format!("expected {literal:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::at(self.pos, "nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError::at(
                self.pos,
                format!("unexpected character {:?}", other as char),
            )),
            None => Err(JsonError::at(self.pos, "unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::at(self.pos, "unescaped control character"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are guaranteed valid).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::at(self.pos, "invalid UTF-8"))?
                        .chars()
                        .next()
                        .expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let byte = self
            .peek()
            .ok_or_else(|| JsonError::at(self.pos, "unterminated escape"))?;
        self.pos += 1;
        Ok(match byte {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{0008}',
            b'f' => '\u{000C}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => return self.unicode_escape(),
            other => {
                return Err(JsonError::at(
                    self.pos - 1,
                    format!("invalid escape character {:?}", other as char),
                ))
            }
        })
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let start = self.pos;
        let chunk = self
            .bytes
            .get(start..start + 4)
            .ok_or_else(|| JsonError::at(start, "truncated \\u escape"))?;
        let text =
            std::str::from_utf8(chunk).map_err(|_| JsonError::at(start, "invalid \\u escape"))?;
        let code = u16::from_str_radix(text, 16)
            .map_err(|_| JsonError::at(start, "invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: must be followed by \uXXXX low surrogate.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let combined = 0x10000
                        + ((u32::from(first) - 0xD800) << 10)
                        + (u32::from(second) - 0xDC00);
                    return char::from_u32(combined)
                        .ok_or_else(|| JsonError::at(self.pos, "invalid surrogate pair"));
                }
            }
            return Err(JsonError::at(self.pos, "unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&first) {
            return Err(JsonError::at(self.pos, "unpaired low surrogate"));
        }
        char::from_u32(u32::from(first))
            .ok_or_else(|| JsonError::at(self.pos, "invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0, or 1-9 followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(JsonError::at(self.pos, "invalid number")),
        }
        let mut is_integer = true;
        if self.peek() == Some(b'.') {
            is_integer = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at(self.pos, "invalid number: missing fraction"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_integer = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at(self.pos, "invalid number: missing exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans ASCII bytes");
        let number = if is_integer {
            if let Ok(v) = text.parse::<u64>() {
                Number::PosInt(v)
            } else if let Ok(v) = text.parse::<i64>() {
                Number::NegInt(v)
            } else {
                // Integer literal outside 64-bit range: keep as float.
                Number::Float(
                    text.parse::<f64>()
                        .map_err(|_| JsonError::at(start, "invalid number"))?,
                )
            }
        } else {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| JsonError::at(start, "invalid number"))?,
            )
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("0").unwrap(), Value::Number(Number::PosInt(0)));
        assert_eq!(parse("-7").unwrap(), Value::Number(Number::NegInt(-7)));
        assert_eq!(
            parse("2.5e-3").unwrap(),
            Value::Number(Number::Float(0.0025))
        );
        assert_eq!(parse("  \"hi\"  ").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let value = parse(r#"{"a": [1, {"b": []}], "c": {}}"#).unwrap();
        let a = value.field("a").and_then(Value::as_array).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(
            a[1].field("b")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(0)
        );
        assert_eq!(
            value.field("c").and_then(Value::as_object).map(<[_]>::len),
            Some(0)
        );
    }

    #[test]
    fn object_preserves_insertion_order() {
        let value = parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = value
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn decodes_escapes() {
        let value = parse(r#""a\"b\\c\/d\b\f\n\r\t""#).unwrap();
        assert_eq!(value.as_str(), Some("a\"b\\c/d\u{8}\u{c}\n\r\t"));
    }

    #[test]
    fn decodes_unicode_escapes_and_surrogate_pairs() {
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        assert_eq!(parse(r#""✓""#).unwrap().as_str(), Some("✓"));
        // U+1F600 as a surrogate pair.
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            r#"{"a" 1}"#,
            r#"{"a": }"#,
            "01",
            "1.",
            "1e",
            "nul",
            "truee",
            r#""unterminated"#,
            r#""bad \q escape""#,
            r#""\u12""#,
            r#""\ud800""#,
            r#""\udc00""#,
            "[1] extra",
            "\"ctrl \u{0001} char\"",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_fails_cleanly() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn huge_integers_degrade_to_float() {
        let value = parse("123456789012345678901234567890").unwrap();
        assert!(matches!(value, Value::Number(Number::Float(_))));
    }
}
