//! Error type for statistical computations.

use std::fmt;

/// Errors produced by statistical routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// An input slice was empty where at least one element is required.
    EmptyInput {
        /// Name of the routine that rejected the input.
        context: &'static str,
    },
    /// Two paired inputs had different lengths.
    LengthMismatch {
        /// Name of the routine that rejected the input.
        context: &'static str,
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// An input contained a NaN or infinite value.
    NonFinite {
        /// Name of the routine that rejected the input.
        context: &'static str,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the routine that rejected the parameter.
        context: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput { context } => {
                write!(f, "{context}: input must not be empty")
            }
            StatsError::LengthMismatch {
                context,
                left,
                right,
            } => write!(
                f,
                "{context}: paired inputs have mismatched lengths ({left} vs {right})"
            ),
            StatsError::NonFinite { context } => {
                write!(f, "{context}: input contains a non-finite value")
            }
            StatsError::InvalidParameter { context, message } => {
                write!(f, "{context}: invalid parameter: {message}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

impl StatsError {
    /// Shorthand for [`StatsError::EmptyInput`].
    pub fn empty(context: &'static str) -> Self {
        StatsError::EmptyInput { context }
    }

    /// Shorthand for [`StatsError::LengthMismatch`].
    pub fn mismatch(context: &'static str, left: usize, right: usize) -> Self {
        StatsError::LengthMismatch {
            context,
            left,
            right,
        }
    }

    /// Shorthand for [`StatsError::InvalidParameter`].
    pub fn invalid(context: &'static str, message: impl Into<String>) -> Self {
        StatsError::InvalidParameter {
            context,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StatsError::empty("pearson");
        assert!(e.to_string().contains("pearson"));
        let e = StatsError::mismatch("spearman", 3, 4);
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('4'));
        let e = StatsError::invalid("quantile", "q must be in [0, 1]");
        assert!(e.to_string().contains("[0, 1]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
