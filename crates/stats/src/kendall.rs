//! Kendall-tau rank distance between two rankings.
//!
//! WEFR measures the similarity of two feature-selection approaches by the
//! Kendall-tau rank distance between their feature rankings: the number of
//! feature pairs ordered differently by the two rankings (§IV-B of the
//! paper).

use crate::{Result, StatsError};

/// Kendall-tau rank distance between two rankings given as orderings
/// (permutations of `0..n`, best item first).
///
/// Counts the pairs `(i, j)` of items whose relative order differs between
/// the two rankings. The maximum possible distance is `n·(n−1)/2`.
///
/// ```
/// # use smart_stats::kendall::kendall_tau_distance;
/// // Identical rankings have distance 0.
/// assert_eq!(kendall_tau_distance(&[0, 1, 2], &[0, 1, 2]).unwrap(), 0);
/// // Fully reversed rankings have the maximum distance n(n-1)/2 = 3.
/// assert_eq!(kendall_tau_distance(&[0, 1, 2], &[2, 1, 0]).unwrap(), 3);
/// ```
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] when the rankings have different
/// lengths and [`StatsError::InvalidParameter`] when either input is not a
/// permutation of `0..n`.
pub fn kendall_tau_distance(order_a: &[usize], order_b: &[usize]) -> Result<u64> {
    if order_a.len() != order_b.len() {
        return Err(StatsError::mismatch(
            "kendall_tau_distance",
            order_a.len(),
            order_b.len(),
        ));
    }
    checked_positions(order_a)?;
    let pos_b = checked_positions(order_b)?;
    // Walk a's ranking and record where b placed each item: the discordant
    // pairs are exactly the inversions of that sequence, countable in
    // O(n log n) by merge sort instead of the O(n²) all-pairs scan.
    let mut seq: Vec<usize> = order_a.iter().map(|&item| pos_b[item]).collect();
    let mut buf = vec![0usize; seq.len()];
    Ok(count_inversions(&mut seq, &mut buf))
}

/// Count inversions of `seq` by bottom-up merge sort (`seq` ends sorted;
/// `buf` is scratch of the same length).
fn count_inversions(seq: &mut [usize], buf: &mut [usize]) -> u64 {
    let n = seq.len();
    let mut inversions = 0u64;
    let mut width = 1;
    while width < n {
        for start in (0..n).step_by(2 * width) {
            let mid = (start + width).min(n);
            let end = (start + 2 * width).min(n);
            if mid == end {
                continue;
            }
            // Merge seq[start..mid] and seq[mid..end] into buf, counting
            // how many left elements each right element jumps over.
            let (mut i, mut j, mut k) = (start, mid, start);
            while i < mid && j < end {
                if seq[i] <= seq[j] {
                    buf[k] = seq[i];
                    i += 1;
                } else {
                    inversions += (mid - i) as u64;
                    buf[k] = seq[j];
                    j += 1;
                }
                k += 1;
            }
            buf[k..k + (mid - i)].copy_from_slice(&seq[i..mid]);
            buf[k + (mid - i)..end].copy_from_slice(&seq[j..end]);
            seq[start..end].copy_from_slice(&buf[start..end]);
        }
        width *= 2;
    }
    inversions
}

/// Reference all-pairs implementation of [`kendall_tau_distance`] — O(n²),
/// kept as the property-test oracle for the merge-sort version.
pub fn kendall_tau_distance_naive(order_a: &[usize], order_b: &[usize]) -> Result<u64> {
    if order_a.len() != order_b.len() {
        return Err(StatsError::mismatch(
            "kendall_tau_distance",
            order_a.len(),
            order_b.len(),
        ));
    }
    let pos_a = checked_positions(order_a)?;
    let pos_b = checked_positions(order_b)?;
    let n = order_a.len();
    let mut discordant = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            let same = (pos_a[i] < pos_a[j]) == (pos_b[i] < pos_b[j]);
            if !same {
                discordant += 1;
            }
        }
    }
    Ok(discordant)
}

/// Kendall-tau distance normalized to `[0, 1]` by the maximum `n(n-1)/2`.
///
/// Rankings of zero or one item have distance `0.0` (no pairs to disagree
/// on).
///
/// # Errors
///
/// Same conditions as [`kendall_tau_distance`].
pub fn normalized_kendall_tau_distance(order_a: &[usize], order_b: &[usize]) -> Result<f64> {
    let d = kendall_tau_distance(order_a, order_b)?;
    let n = order_a.len() as u64;
    if n < 2 {
        return Ok(0.0);
    }
    Ok(d as f64 / (n * (n - 1) / 2) as f64)
}

fn checked_positions(order: &[usize]) -> Result<Vec<usize>> {
    let n = order.len();
    let mut positions = vec![usize::MAX; n];
    for (pos, &item) in order.iter().enumerate() {
        if item >= n || positions[item] != usize::MAX {
            return Err(StatsError::invalid(
                "kendall_tau_distance",
                "ranking must be a permutation of 0..n",
            ));
        }
        positions[item] = pos;
    }
    Ok(positions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_swap_costs_one() {
        assert_eq!(
            kendall_tau_distance(&[0, 1, 2, 3], &[1, 0, 2, 3]).unwrap(),
            1
        );
    }

    #[test]
    fn known_distance() {
        // a: 0<1<2<3<4 ; b: [3,1,2,4,0]
        // Discordant pairs: (0,1),(0,2),(0,3),(0,4) reversed? positions in b:
        // pos_b = [4,1,2,0,3]. Pairs discordant: (0,1),(0,2),(0,3),(0,4),(1,3),(2,3) = 6
        assert_eq!(
            kendall_tau_distance(&[0, 1, 2, 3, 4], &[3, 1, 2, 4, 0]).unwrap(),
            6
        );
    }

    #[test]
    fn rejects_non_permutation() {
        assert!(kendall_tau_distance(&[0, 0, 1], &[0, 1, 2]).is_err());
        assert!(kendall_tau_distance(&[0, 1, 5], &[0, 1, 2]).is_err());
    }

    #[test]
    fn rejects_length_mismatch() {
        assert!(kendall_tau_distance(&[0, 1], &[0, 1, 2]).is_err());
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(
            normalized_kendall_tau_distance(&[0, 1, 2], &[2, 1, 0]).unwrap(),
            1.0
        );
        assert_eq!(normalized_kendall_tau_distance(&[0], &[0]).unwrap(), 0.0);
    }

    #[test]
    fn prop_distance_symmetric() {
        rng::prop_check!(|g| {
            let n = g.usize_in(2, 11);
            let a: Vec<usize> = (0..n).collect();
            // Derive b from a by rotating.
            let rot = g.usize_in(0, n - 1);
            let b: Vec<usize> = (0..n).map(|i| (i + rot) % n).collect();
            assert_eq!(
                kendall_tau_distance(&a, &b).unwrap(),
                kendall_tau_distance(&b, &a).unwrap()
            );
        });
    }

    #[test]
    fn prop_distance_zero_iff_equal() {
        rng::prop_check!(|g| {
            let a = g.permutation(8);
            assert_eq!(kendall_tau_distance(&a, &a).unwrap(), 0);
        });
    }

    #[test]
    fn prop_triangle_inequality() {
        rng::prop_check!(|g| {
            let a = g.permutation(7);
            let b = g.permutation(7);
            let c = g.permutation(7);
            let ab = kendall_tau_distance(&a, &b).unwrap();
            let bc = kendall_tau_distance(&b, &c).unwrap();
            let ac = kendall_tau_distance(&a, &c).unwrap();
            assert!(ac <= ab + bc);
        });
    }

    #[test]
    fn prop_distance_bounded() {
        rng::prop_check!(|g| {
            let a = g.permutation(9);
            let b = g.permutation(9);
            let d = kendall_tau_distance(&a, &b).unwrap();
            assert!(d <= 9 * 8 / 2);
        });
    }

    #[test]
    fn prop_merge_sort_matches_naive_oracle() {
        rng::prop_check!(|g| {
            let n = g.usize_in(0, 40);
            let a = g.permutation(n);
            let b = g.permutation(n);
            assert_eq!(
                kendall_tau_distance(&a, &b).unwrap(),
                kendall_tau_distance_naive(&a, &b).unwrap(),
            );
        });
    }

    #[test]
    fn merge_sort_matches_naive_up_to_n_1000() {
        // Deterministic large cases, including the worst case (full
        // reversal, the maximum n(n-1)/2 inversions).
        use rng::prop::Gen;
        let mut g = Gen::new(0xD15C0);
        for n in [1usize, 2, 3, 10, 100, 537, 1000] {
            let a: Vec<usize> = (0..n).collect();
            let reversed: Vec<usize> = (0..n).rev().collect();
            assert_eq!(
                kendall_tau_distance(&a, &reversed).unwrap(),
                (n * n.saturating_sub(1) / 2) as u64
            );
            let b = g.permutation(n);
            assert_eq!(
                kendall_tau_distance(&a, &b).unwrap(),
                kendall_tau_distance_naive(&a, &b).unwrap(),
            );
            let c = g.permutation(n);
            assert_eq!(
                kendall_tau_distance(&c, &b).unwrap(),
                kendall_tau_distance_naive(&c, &b).unwrap(),
            );
        }
    }
}
