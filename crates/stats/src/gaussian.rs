//! Normal distribution utilities: pdf, cdf, erf approximation, and seeded
//! Box–Muller sampling (used by the fleet simulator, which deliberately
//! avoids extra distribution crates).

use rng::Rng;

/// Standard normal probability density at `x`.
pub fn std_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, max absolute
/// error ~1.5e-7 — ample for significance filtering).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal cumulative distribution function at `x`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Draw one sample from `N(mean, std²)` using the Box–Muller transform.
///
/// `std` may be zero (returns `mean`); a negative `std` is treated as its
/// absolute value.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    let std = std.abs();
    if std == 0.0 {
        return mean;
    }
    // Box–Muller: u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std * z
}

/// Draw one sample from a log-normal distribution whose *underlying* normal
/// has the given mean and std.
pub fn sample_log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    sample_normal(rng, mu, sigma).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::rngs::StdRng;
    use rng::SeedableRng;

    #[test]
    fn pdf_peak_at_zero() {
        assert!((std_normal_pdf(0.0) - 0.398_942_280_401_432_7).abs() < 1e-12);
        assert!(std_normal_pdf(1.0) < std_normal_pdf(0.0));
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_909_503_001_4).abs() < 1e-6);
    }

    #[test]
    fn cdf_symmetry_and_tails() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((std_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(std_normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn sampling_matches_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn zero_std_returns_mean() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sample_normal(&mut rng, 5.0, 0.0), 5.0);
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(sample_log_normal(&mut rng, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert_eq!(
                sample_normal(&mut a, 0.0, 1.0).to_bits(),
                sample_normal(&mut b, 0.0, 1.0).to_bits()
            );
        }
    }
}
