//! Column-major feature matrix shared by the rankers and tree learners.

use crate::{Result, StatsError};

/// A dense, column-major matrix of learning features.
///
/// Each column is one learning feature (e.g. `OCE_R`, the raw value of the
/// Offline-scan Uncorrectable Error count); each row is one sample (one
/// drive-day). Column-major storage suits both the correlation rankers
/// (which scan one feature at a time) and CART split search (which sorts one
/// feature at a time).
///
/// # Example
///
/// ```
/// use smart_stats::FeatureMatrix;
///
/// # fn main() -> Result<(), smart_stats::StatsError> {
/// let m = FeatureMatrix::from_columns(
///     vec!["a".into(), "b".into()],
///     vec![vec![1.0, 2.0], vec![3.0, 4.0]],
/// )?;
/// assert_eq!(m.n_rows(), 2);
/// assert_eq!(m.column(1), &[3.0, 4.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    names: Vec<String>,
    columns: Vec<Vec<f64>>,
    n_rows: usize,
}

json::impl_json!(FeatureMatrix {
    names,
    columns,
    n_rows
});

impl FeatureMatrix {
    /// Build a matrix from named columns.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::LengthMismatch`] if `names` and `columns`
    /// differ in length or any two columns differ in length, and
    /// [`StatsError::NonFinite`] if any value is NaN or infinite.
    pub fn from_columns(names: Vec<String>, columns: Vec<Vec<f64>>) -> Result<Self> {
        Self::build(names, columns, "FeatureMatrix::from_columns", false)
    }

    /// Build a matrix from named columns, permitting NaN cells.
    ///
    /// NaN marks a *missing* measurement — an attribute a vendor batch never
    /// reports (DESIGN.md §11). Infinities are still rejected: they are
    /// arithmetic accidents, never telemetry.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::LengthMismatch`] on ragged input and
    /// [`StatsError::NonFinite`] if any value is infinite.
    pub fn from_columns_with_missing(names: Vec<String>, columns: Vec<Vec<f64>>) -> Result<Self> {
        Self::build(
            names,
            columns,
            "FeatureMatrix::from_columns_with_missing",
            true,
        )
    }

    fn build(
        names: Vec<String>,
        columns: Vec<Vec<f64>>,
        context: &'static str,
        allow_nan: bool,
    ) -> Result<Self> {
        if names.len() != columns.len() {
            return Err(StatsError::mismatch(context, names.len(), columns.len()));
        }
        let n_rows = columns.first().map_or(0, Vec::len);
        for col in &columns {
            if col.len() != n_rows {
                return Err(StatsError::mismatch(context, n_rows, col.len()));
            }
            let bad = |v: &f64| {
                if allow_nan {
                    v.is_infinite()
                } else {
                    !v.is_finite()
                }
            };
            if col.iter().any(bad) {
                return Err(StatsError::NonFinite { context });
            }
        }
        Ok(FeatureMatrix {
            names,
            columns,
            n_rows,
        })
    }

    /// True if any cell is NaN (a missing measurement).
    pub fn has_missing(&self) -> bool {
        self.columns
            .iter()
            .any(|col| col.iter().any(|v| v.is_nan()))
    }

    /// Build a matrix from rows (each row one sample, in column order).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::LengthMismatch`] if any row's length differs
    /// from `names.len()` and [`StatsError::NonFinite`] for NaN/infinite
    /// values.
    pub fn from_rows(names: Vec<String>, rows: &[Vec<f64>]) -> Result<Self> {
        let columns = Self::rows_to_columns(&names, rows, "FeatureMatrix::from_rows")?;
        FeatureMatrix::from_columns(names, columns)
    }

    /// [`FeatureMatrix::from_rows`] permitting NaN cells (missing
    /// measurements), with the same infinity rejection as
    /// [`FeatureMatrix::from_columns_with_missing`].
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::LengthMismatch`] on ragged rows and
    /// [`StatsError::NonFinite`] if any value is infinite.
    pub fn from_rows_with_missing(names: Vec<String>, rows: &[Vec<f64>]) -> Result<Self> {
        let columns = Self::rows_to_columns(&names, rows, "FeatureMatrix::from_rows_with_missing")?;
        FeatureMatrix::from_columns_with_missing(names, columns)
    }

    fn rows_to_columns(
        names: &[String],
        rows: &[Vec<f64>],
        context: &'static str,
    ) -> Result<Vec<Vec<f64>>> {
        let n_cols = names.len();
        let mut columns = vec![Vec::with_capacity(rows.len()); n_cols];
        for row in rows {
            if row.len() != n_cols {
                return Err(StatsError::mismatch(context, n_cols, row.len()));
            }
            for (c, &v) in row.iter().enumerate() {
                columns[c].push(v);
            }
        }
        Ok(columns)
    }

    /// Number of samples (rows).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of learning features (columns).
    pub fn n_features(&self) -> usize {
        self.columns.len()
    }

    /// Feature names, in column order.
    pub fn feature_names(&self) -> &[String] {
        &self.names
    }

    /// The values of feature `col` across all samples.
    ///
    /// # Panics
    ///
    /// Panics if `col >= n_features()`.
    pub fn column(&self, col: usize) -> &[f64] {
        &self.columns[col]
    }

    /// Look up a column index by feature name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Single cell access.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.columns[col][row]
    }

    /// Materialize row `row` as a vector in column order.
    ///
    /// # Panics
    ///
    /// Panics if `row >= n_rows()`.
    pub fn row(&self, row: usize) -> Vec<f64> {
        assert!(row < self.n_rows, "row {row} out of bounds");
        self.columns.iter().map(|c| c[row]).collect()
    }

    /// A new matrix containing only the given columns, in the given order.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if any index is out of
    /// bounds.
    pub fn select_columns(&self, cols: &[usize]) -> Result<Self> {
        let mut names = Vec::with_capacity(cols.len());
        let mut columns = Vec::with_capacity(cols.len());
        for &c in cols {
            if c >= self.n_features() {
                return Err(StatsError::invalid(
                    "FeatureMatrix::select_columns",
                    format!(
                        "column index {c} out of bounds ({} features)",
                        self.n_features()
                    ),
                ));
            }
            names.push(self.names[c].clone());
            columns.push(self.columns[c].clone());
        }
        Ok(FeatureMatrix {
            names,
            columns,
            n_rows: self.n_rows,
        })
    }

    /// A new matrix containing only the given rows, in the given order
    /// (duplicates allowed — useful for bootstrap resampling).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if any index is out of
    /// bounds.
    pub fn select_rows(&self, rows: &[usize]) -> Result<Self> {
        for &r in rows {
            if r >= self.n_rows {
                return Err(StatsError::invalid(
                    "FeatureMatrix::select_rows",
                    format!("row index {r} out of bounds ({} rows)", self.n_rows),
                ));
            }
        }
        let columns: Vec<Vec<f64>> = self
            .columns
            .iter()
            .map(|col| rows.iter().map(|&r| col[r]).collect())
            .collect();
        Ok(FeatureMatrix {
            names: self.names.clone(),
            columns,
            n_rows: rows.len(),
        })
    }

    /// Append the rows of `other` (must have identical feature names).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if the schemas differ.
    pub fn append_rows(&mut self, other: &FeatureMatrix) -> Result<()> {
        if self.names != other.names {
            return Err(StatsError::invalid(
                "FeatureMatrix::append_rows",
                "feature name schemas differ",
            ));
        }
        for (dst, src) in self.columns.iter_mut().zip(&other.columns) {
            dst.extend_from_slice(src);
        }
        self.n_rows += other.n_rows;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureMatrix {
        FeatureMatrix::from_columns(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                vec![1.0, 2.0, 3.0],
                vec![10.0, 20.0, 30.0],
                vec![100.0, 200.0, 300.0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn dimensions() {
        let m = sample();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_features(), 3);
    }

    #[test]
    fn from_rows_matches_from_columns() {
        let m = FeatureMatrix::from_rows(
            vec!["a".into(), "b".into()],
            &[vec![1.0, 10.0], vec![2.0, 20.0]],
        )
        .unwrap();
        assert_eq!(m.column(0), &[1.0, 2.0]);
        assert_eq!(m.column(1), &[10.0, 20.0]);
    }

    #[test]
    fn rejects_ragged_columns() {
        assert!(FeatureMatrix::from_columns(
            vec!["a".into(), "b".into()],
            vec![vec![1.0], vec![1.0, 2.0]],
        )
        .is_err());
    }

    #[test]
    fn rejects_nan() {
        assert!(FeatureMatrix::from_columns(vec!["a".into()], vec![vec![f64::NAN]]).is_err());
    }

    #[test]
    fn with_missing_permits_nan_but_rejects_infinity() {
        let m =
            FeatureMatrix::from_columns_with_missing(vec!["a".into()], vec![vec![1.0, f64::NAN]])
                .unwrap();
        assert!(m.has_missing());
        assert!(m.value(1, 0).is_nan());
        assert!(FeatureMatrix::from_columns_with_missing(
            vec!["a".into()],
            vec![vec![f64::INFINITY]]
        )
        .is_err());
        assert!(FeatureMatrix::from_columns_with_missing(
            vec!["a".into()],
            vec![vec![f64::NEG_INFINITY]]
        )
        .is_err());
    }

    #[test]
    fn from_rows_with_missing_permits_nan() {
        let m = FeatureMatrix::from_rows_with_missing(
            vec!["a".into(), "b".into()],
            &[vec![1.0, f64::NAN], vec![2.0, 20.0]],
        )
        .unwrap();
        assert!(m.has_missing());
        assert!(m.value(0, 1).is_nan());
        assert!(
            FeatureMatrix::from_rows_with_missing(vec!["a".into()], &[vec![f64::INFINITY]])
                .is_err()
        );
        // NaN-free input builds the same matrix as the strict constructor.
        let rows = [vec![1.0, 10.0], vec![2.0, 20.0]];
        let strict = FeatureMatrix::from_rows(vec!["a".into(), "b".into()], &rows).unwrap();
        let lax =
            FeatureMatrix::from_rows_with_missing(vec!["a".into(), "b".into()], &rows).unwrap();
        assert_eq!(strict, lax);
    }

    #[test]
    fn has_missing_is_false_on_finite_data() {
        assert!(!sample().has_missing());
    }

    #[test]
    fn rejects_name_count_mismatch() {
        assert!(FeatureMatrix::from_columns(vec!["a".into()], vec![]).is_err());
    }

    #[test]
    fn row_and_value_access() {
        let m = sample();
        assert_eq!(m.row(1), vec![2.0, 20.0, 200.0]);
        assert_eq!(m.value(2, 1), 30.0);
    }

    #[test]
    fn select_columns_reorders() {
        let m = sample().select_columns(&[2, 0]).unwrap();
        assert_eq!(m.feature_names(), &["c".to_string(), "a".to_string()]);
        assert_eq!(m.column(0), &[100.0, 200.0, 300.0]);
    }

    #[test]
    fn select_columns_out_of_bounds() {
        assert!(sample().select_columns(&[5]).is_err());
    }

    #[test]
    fn select_rows_with_duplicates() {
        let m = sample().select_rows(&[0, 0, 2]).unwrap();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.column(0), &[1.0, 1.0, 3.0]);
    }

    #[test]
    fn append_rows_works() {
        let mut m = sample();
        let other = sample();
        m.append_rows(&other).unwrap();
        assert_eq!(m.n_rows(), 6);
        assert_eq!(m.column(0), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn append_rows_rejects_schema_mismatch() {
        let mut m = sample();
        let other = FeatureMatrix::from_columns(vec!["x".into()], vec![vec![1.0]]).unwrap();
        assert!(m.append_rows(&other).is_err());
    }

    #[test]
    fn column_index_lookup() {
        let m = sample();
        assert_eq!(m.column_index("b"), Some(1));
        assert_eq!(m.column_index("zzz"), None);
    }

    #[test]
    fn json_roundtrip() {
        let m = sample();
        let text = json::to_string(&m);
        let back: FeatureMatrix = json::from_str(&text).unwrap();
        assert_eq!(m, back);
    }
}
