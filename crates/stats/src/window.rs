//! Rolling-window statistics for feature generation.
//!
//! The prediction pipeline expands each selected base feature into
//! statistical features over 3-day and 7-day windows: maximum, minimum,
//! mean, standard deviation, max−min range, and weighted moving average
//! (§V-A of the paper). [`WindowStats`] computes all six in one pass over a
//! window.

use crate::descriptive;
use crate::{Result, StatsError};

/// The six windowed statistics the pipeline derives per base feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Window maximum.
    pub max: f64,
    /// Window minimum.
    pub min: f64,
    /// Window mean.
    pub mean: f64,
    /// Window population standard deviation.
    pub std: f64,
    /// `max - min`.
    pub range: f64,
    /// Weighted moving average (linear weights, most recent heaviest).
    pub wma: f64,
}

/// Names of the six statistics in the order [`WindowStats::to_array`] emits
/// them. Used to build derived-feature names like `OCE_R_max3`.
pub const WINDOW_STAT_NAMES: [&str; 6] = ["max", "min", "mean", "std", "range", "wma"];

impl WindowStats {
    /// Compute all six statistics over `window` (oldest value first).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for an empty window and
    /// [`StatsError::NonFinite`] if the window contains NaN.
    pub fn compute(window: &[f64]) -> Result<Self> {
        if window.is_empty() {
            return Err(StatsError::empty("WindowStats::compute"));
        }
        let max = descriptive::max(window)?;
        let min = descriptive::min(window)?;
        let mean = descriptive::mean(window)?;
        let std = descriptive::population_std(window)?;
        let wma = descriptive::weighted_moving_average(window)?;
        Ok(WindowStats {
            max,
            min,
            mean,
            std,
            range: max - min,
            wma,
        })
    }

    /// The statistics as an array in [`WINDOW_STAT_NAMES`] order.
    pub fn to_array(self) -> [f64; 6] {
        [
            self.max, self.min, self.mean, self.std, self.range, self.wma,
        ]
    }
}

/// Compute [`WindowStats`] over the trailing window of length `width` ending
/// at index `end` (inclusive) of `series`. When fewer than `width`
/// observations exist, the available prefix is used — matching how a
/// production pipeline scores drives that have just been deployed.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `width == 0` or
/// `end >= series.len()`, plus any error from [`WindowStats::compute`].
pub fn trailing_window_stats(series: &[f64], end: usize, width: usize) -> Result<WindowStats> {
    if width == 0 {
        return Err(StatsError::invalid(
            "trailing_window_stats",
            "width must be positive",
        ));
    }
    if end >= series.len() {
        return Err(StatsError::invalid(
            "trailing_window_stats",
            format!(
                "end index {end} out of bounds for series of length {}",
                series.len()
            ),
        ));
    }
    let start = (end + 1).saturating_sub(width);
    WindowStats::compute(&series[start..=end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_over_simple_window() {
        let s = WindowStats::compute(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.max, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.range, 2.0);
        // WMA = (1*1 + 2*2 + 3*3)/6 = 14/6
        assert!((s.wma - 14.0 / 6.0).abs() < 1e-12);
        // population std of [1,2,3] = sqrt(2/3)
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_error() {
        assert!(WindowStats::compute(&[]).is_err());
    }

    #[test]
    fn trailing_window_truncates_at_start() {
        let series = [10.0, 20.0, 30.0, 40.0];
        // end = 1, width = 7 -> uses [10, 20]
        let s = trailing_window_stats(&series, 1, 7).unwrap();
        assert_eq!(s.mean, 15.0);
    }

    #[test]
    fn trailing_window_exact_width() {
        let series = [10.0, 20.0, 30.0, 40.0];
        let s = trailing_window_stats(&series, 3, 3).unwrap();
        assert_eq!(s.mean, 30.0);
        assert_eq!(s.min, 20.0);
    }

    #[test]
    fn trailing_window_rejects_bad_args() {
        assert!(trailing_window_stats(&[1.0], 0, 0).is_err());
        assert!(trailing_window_stats(&[1.0], 1, 3).is_err());
    }

    #[test]
    fn to_array_matches_names() {
        let s = WindowStats::compute(&[4.0, 8.0]).unwrap();
        let arr = s.to_array();
        assert_eq!(arr.len(), WINDOW_STAT_NAMES.len());
        assert_eq!(arr[0], s.max);
        assert_eq!(arr[5], s.wma);
    }

    #[test]
    fn prop_stats_consistent() {
        rng::prop_check!(|g| {
            let xs = g.vec_f64(1, 29, -1e4, 1e4);
            let s = WindowStats::compute(&xs).unwrap();
            assert!(s.min <= s.mean + 1e-9);
            assert!(s.mean <= s.max + 1e-9);
            assert!(s.range >= -1e-9);
            assert!(s.std >= 0.0);
            assert!(s.wma >= s.min - 1e-9 && s.wma <= s.max + 1e-9);
        });
    }

    #[test]
    fn prop_constant_window_degenerates() {
        rng::prop_check!(|g| {
            let v = g.f64_in(-1e4, 1e4);
            let n = g.usize_in(1, 19);
            let s = WindowStats::compute(&vec![v; n]).unwrap();
            assert!((s.max - v).abs() < 1e-12);
            assert!((s.min - v).abs() < 1e-12);
            assert!(s.range.abs() < 1e-12);
            assert!(s.std.abs() < 1e-9);
        });
    }
}
