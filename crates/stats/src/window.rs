//! Rolling-window statistics for feature generation.
//!
//! The prediction pipeline expands each selected base feature into
//! statistical features over 3-day and 7-day windows: maximum, minimum,
//! mean, standard deviation, max−min range, and weighted moving average
//! (§V-A of the paper). [`WindowStats`] computes all six in one pass over a
//! window; [`IncrementalWindow`] maintains the same six statistics under
//! O(1) per-observation updates for the long-running serving path.
//!
//! # Missing data
//!
//! NaN cells mark *missing* measurements (DESIGN.md §11: tolerant ingest
//! backfills day gaps with NaN). Both paths apply the same observed-only
//! policy: NaN cells are skipped, the statistics are computed over the
//! observed values in order, and a window with no observed values yields
//! all-NaN statistics (which the binned learners route to their reserved
//! missing bin).

use std::collections::VecDeque;

use crate::descriptive;
use crate::{Result, StatsError};

/// The six windowed statistics the pipeline derives per base feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Window maximum.
    pub max: f64,
    /// Window minimum.
    pub min: f64,
    /// Window mean.
    pub mean: f64,
    /// Window population standard deviation.
    pub std: f64,
    /// `max - min`.
    pub range: f64,
    /// Weighted moving average (linear weights, most recent heaviest).
    pub wma: f64,
}

/// Names of the six statistics in the order [`WindowStats::to_array`] emits
/// them. Used to build derived-feature names like `OCE_R_max3`.
pub const WINDOW_STAT_NAMES: [&str; 6] = ["max", "min", "mean", "std", "range", "wma"];

impl WindowStats {
    /// The all-NaN statistics of a window with no observed values.
    pub fn missing() -> Self {
        WindowStats {
            max: f64::NAN,
            min: f64::NAN,
            mean: f64::NAN,
            std: f64::NAN,
            range: f64::NAN,
            wma: f64::NAN,
        }
    }

    /// Compute all six statistics over `window` (oldest value first).
    ///
    /// NaN cells are missing measurements: they are skipped and the
    /// statistics are computed over the observed values in order. A window
    /// of only NaN cells yields [`WindowStats::missing`].
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for an empty window.
    pub fn compute(window: &[f64]) -> Result<Self> {
        if window.is_empty() {
            return Err(StatsError::empty("WindowStats::compute"));
        }
        if window.iter().any(|v| v.is_nan()) {
            let observed: Vec<f64> = window.iter().copied().filter(|v| !v.is_nan()).collect();
            if observed.is_empty() {
                return Ok(WindowStats::missing());
            }
            return Self::compute_observed(&observed);
        }
        Self::compute_observed(window)
    }

    /// The six statistics over a window already known to be NaN-free.
    fn compute_observed(window: &[f64]) -> Result<Self> {
        let max = descriptive::max(window)?;
        let min = descriptive::min(window)?;
        let mean = descriptive::mean(window)?;
        let std = descriptive::population_std(window)?;
        let wma = descriptive::weighted_moving_average(window)?;
        Ok(WindowStats {
            max,
            min,
            mean,
            std,
            range: max - min,
            wma,
        })
    }

    /// The statistics as an array in [`WINDOW_STAT_NAMES`] order.
    pub fn to_array(self) -> [f64; 6] {
        [
            self.max, self.min, self.mean, self.std, self.range, self.wma,
        ]
    }
}

/// Compute [`WindowStats`] over the trailing window of length `width` ending
/// at index `end` (inclusive) of `series`. When fewer than `width`
/// observations exist, the available prefix is used — matching how a
/// production pipeline scores drives that have just been deployed.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `width == 0` or
/// `end >= series.len()`, plus any error from [`WindowStats::compute`].
pub fn trailing_window_stats(series: &[f64], end: usize, width: usize) -> Result<WindowStats> {
    if width == 0 {
        return Err(StatsError::invalid(
            "trailing_window_stats",
            "width must be positive",
        ));
    }
    if end >= series.len() {
        return Err(StatsError::invalid(
            "trailing_window_stats",
            format!(
                "end index {end} out of bounds for series of length {}",
                series.len()
            ),
        ));
    }
    let start = (end + 1).saturating_sub(width);
    WindowStats::compute(&series[start..=end])
}

/// O(1)-per-observation rolling computation of [`WindowStats`] over the
/// trailing `width` observations — the serving path's replacement for
/// recomputing [`WindowStats::compute`] over a slice each day.
///
/// Push one value per day (NaN for a missing measurement); [`stats`]
/// returns the six statistics of the current window at any time.
///
/// # Equivalence to the batch path
///
/// Against [`trailing_window_stats`] over the same series:
///
/// * `max`, `min`, and `range` are **bit-identical** — the monotonic
///   deques select the same extreme values the batch fold does.
/// * `mean`, `std`, and `wma` are maintained as running sums (sliding a
///   value out of the window subtracts it back out), so they agree only
///   within floating-point tolerance: the documented bound, enforced by
///   the property suite, is `1e-9 · (1 + max|x|)` for `mean`/`wma` and
///   `1e-6 · (1 + max|x|)` for `std` (the variance difference of two
///   near-equal sums amplifies cancellation error). The sums re-anchor to
///   exact zero whenever the window empties of observed values, so drift
///   does not accumulate across gaps.
/// * NaN handling is identical: both paths skip missing cells, and an
///   all-NaN window yields [`WindowStats::missing`] on both sides.
///
/// [`stats`]: IncrementalWindow::stats
#[derive(Debug, Clone)]
pub struct IncrementalWindow {
    width: usize,
    /// Monotonically increasing label for every pushed slot, pairing the
    /// deque entries with the slot they came from.
    seq: u64,
    /// The current window: (seq, value), oldest first, NaN slots included.
    slots: VecDeque<(u64, f64)>,
    /// Decreasing-value deque; the front is the window maximum.
    max_deque: VecDeque<(u64, f64)>,
    /// Increasing-value deque; the front is the window minimum.
    min_deque: VecDeque<(u64, f64)>,
    /// Observed (non-NaN) values currently in the window.
    n_obs: usize,
    /// Σ x over observed values.
    sum: f64,
    /// Σ x² over observed values.
    sum_sq: f64,
    /// Σ i·xᵢ over observed values, weights `1..=n_obs`, oldest = 1.
    wsum: f64,
}

impl IncrementalWindow {
    /// An empty window of capacity `width` observations.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `width == 0`.
    pub fn new(width: usize) -> Result<Self> {
        if width == 0 {
            return Err(StatsError::invalid(
                "IncrementalWindow::new",
                "width must be positive",
            ));
        }
        Ok(IncrementalWindow {
            width,
            seq: 0,
            slots: VecDeque::with_capacity(width),
            max_deque: VecDeque::with_capacity(width),
            min_deque: VecDeque::with_capacity(width),
            n_obs: 0,
            sum: 0.0,
            sum_sq: 0.0,
            wsum: 0.0,
        })
    }

    /// The configured window width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Slots currently in the window (observed and missing), at most
    /// [`width`](IncrementalWindow::width).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no value has been pushed yet (or all have slid out — which
    /// cannot happen, since pushes only ever replace slots once full).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Observed (non-NaN) values currently in the window.
    pub fn observed(&self) -> usize {
        self.n_obs
    }

    /// Slide the window forward by one observation (NaN = missing). O(1)
    /// amortized: each slot enters and leaves each deque at most once.
    pub fn push(&mut self, value: f64) {
        if self.slots.len() == self.width {
            self.evict_oldest();
        }
        self.seq += 1;
        self.slots.push_back((self.seq, value));
        if value.is_nan() {
            return;
        }
        self.n_obs += 1;
        self.sum += value;
        self.sum_sq += value * value;
        self.wsum += self.n_obs as f64 * value;
        while self.max_deque.back().is_some_and(|&(_, v)| v <= value) {
            self.max_deque.pop_back();
        }
        self.max_deque.push_back((self.seq, value));
        while self.min_deque.back().is_some_and(|&(_, v)| v >= value) {
            self.min_deque.pop_back();
        }
        self.min_deque.push_back((self.seq, value));
    }

    fn evict_oldest(&mut self) {
        let Some((evicted_seq, evicted)) = self.slots.pop_front() else {
            return;
        };
        if self
            .max_deque
            .front()
            .is_some_and(|&(s, _)| s == evicted_seq)
        {
            self.max_deque.pop_front();
        }
        if self
            .min_deque
            .front()
            .is_some_and(|&(s, _)| s == evicted_seq)
        {
            self.min_deque.pop_front();
        }
        if evicted.is_nan() {
            return;
        }
        // The evicted value is the oldest observed one (weight 1); dropping
        // it shifts every remaining weight down by one:
        //   W' = (W − 1·x₁) − (S − x₁) = W − S.
        self.wsum -= self.sum;
        self.sum -= evicted;
        self.sum_sq -= evicted * evicted;
        self.n_obs -= 1;
        if self.n_obs == 0 {
            // Re-anchor: an empty window's sums are exactly zero, so drift
            // from the subtract-out updates cannot survive a gap.
            self.sum = 0.0;
            self.sum_sq = 0.0;
            self.wsum = 0.0;
        }
    }

    /// The six statistics of the current window. All-NaN windows yield
    /// [`WindowStats::missing`], matching the batch path.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] before the first push.
    pub fn stats(&self) -> Result<WindowStats> {
        if self.slots.is_empty() {
            return Err(StatsError::empty("IncrementalWindow::stats"));
        }
        if self.n_obs == 0 {
            return Ok(WindowStats::missing());
        }
        let max = self.max_deque.front().map_or(f64::NAN, |&(_, v)| v);
        let min = self.min_deque.front().map_or(f64::NAN, |&(_, v)| v);
        let n = self.n_obs as f64;
        let mean = self.sum / n;
        let variance = (self.sum_sq / n - mean * mean).max(0.0);
        let denom = (self.n_obs * (self.n_obs + 1)) as f64 / 2.0;
        Ok(WindowStats {
            max,
            min,
            mean,
            std: variance.sqrt(),
            range: max - min,
            wma: self.wsum / denom,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_over_simple_window() {
        let s = WindowStats::compute(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.max, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.range, 2.0);
        // WMA = (1*1 + 2*2 + 3*3)/6 = 14/6
        assert!((s.wma - 14.0 / 6.0).abs() < 1e-12);
        // population std of [1,2,3] = sqrt(2/3)
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_error() {
        assert!(WindowStats::compute(&[]).is_err());
    }

    #[test]
    fn trailing_window_truncates_at_start() {
        let series = [10.0, 20.0, 30.0, 40.0];
        // end = 1, width = 7 -> uses [10, 20]
        let s = trailing_window_stats(&series, 1, 7).unwrap();
        assert_eq!(s.mean, 15.0);
    }

    #[test]
    fn trailing_window_exact_width() {
        let series = [10.0, 20.0, 30.0, 40.0];
        let s = trailing_window_stats(&series, 3, 3).unwrap();
        assert_eq!(s.mean, 30.0);
        assert_eq!(s.min, 20.0);
    }

    #[test]
    fn trailing_window_rejects_bad_args() {
        assert!(trailing_window_stats(&[1.0], 0, 0).is_err());
        assert!(trailing_window_stats(&[1.0], 1, 3).is_err());
    }

    #[test]
    fn to_array_matches_names() {
        let s = WindowStats::compute(&[4.0, 8.0]).unwrap();
        let arr = s.to_array();
        assert_eq!(arr.len(), WINDOW_STAT_NAMES.len());
        assert_eq!(arr[0], s.max);
        assert_eq!(arr[5], s.wma);
    }

    #[test]
    fn nan_cells_are_skipped() {
        // Observed-only: [1, NaN, 3] behaves exactly like [1, 3].
        let with_gap = WindowStats::compute(&[1.0, f64::NAN, 3.0]).unwrap();
        let dense = WindowStats::compute(&[1.0, 3.0]).unwrap();
        assert_eq!(with_gap, dense);
        assert_eq!(with_gap.max, 3.0);
        assert_eq!(with_gap.mean, 2.0);
    }

    #[test]
    fn all_nan_window_is_missing_stats() {
        let s = WindowStats::compute(&[f64::NAN, f64::NAN]).unwrap();
        for v in s.to_array() {
            assert!(v.is_nan());
        }
    }

    /// NaN-aware equality: both NaN, or plain `==`.
    fn same(a: f64, b: f64) -> bool {
        (a.is_nan() && b.is_nan()) || a == b
    }

    /// NaN-aware closeness within `tol`.
    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a.is_nan() && b.is_nan()) || (a - b).abs() <= tol
    }

    fn assert_matches_batch(inc: &WindowStats, batch: &WindowStats, scale: f64) {
        // Extremes are bit-identical; the running sums carry the
        // documented fp tolerance (see IncrementalWindow docs).
        assert!(same(inc.max, batch.max), "max {} vs {}", inc.max, batch.max);
        assert!(same(inc.min, batch.min), "min {} vs {}", inc.min, batch.min);
        assert!(
            same(inc.range, batch.range),
            "range {} vs {}",
            inc.range,
            batch.range
        );
        let tight = 1e-9 * (1.0 + scale);
        let loose = 1e-6 * (1.0 + scale);
        assert!(
            close(inc.mean, batch.mean, tight),
            "mean {} vs {}",
            inc.mean,
            batch.mean
        );
        assert!(
            close(inc.wma, batch.wma, tight),
            "wma {} vs {}",
            inc.wma,
            batch.wma
        );
        assert!(
            close(inc.std, batch.std, loose),
            "std {} vs {}",
            inc.std,
            batch.std
        );
    }

    #[test]
    fn incremental_matches_batch_on_simple_series() {
        let series = [10.0, 20.0, 5.0, 40.0, 40.0, 1.0, 7.0];
        let mut w = IncrementalWindow::new(3).unwrap();
        for (end, &v) in series.iter().enumerate() {
            w.push(v);
            let inc = w.stats().unwrap();
            let batch = trailing_window_stats(&series, end, 3).unwrap();
            assert_matches_batch(&inc, &batch, 40.0);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.observed(), 3);
    }

    #[test]
    fn incremental_rejects_zero_width_and_empty_stats() {
        assert!(IncrementalWindow::new(0).is_err());
        let w = IncrementalWindow::new(3).unwrap();
        assert!(w.is_empty());
        assert!(w.stats().is_err());
    }

    #[test]
    fn incremental_all_nan_window_is_missing() {
        let mut w = IncrementalWindow::new(2).unwrap();
        w.push(5.0);
        w.push(f64::NAN);
        assert_eq!(w.observed(), 1);
        w.push(f64::NAN); // slides the 5.0 out: window is now all-NaN
        assert_eq!(w.observed(), 0);
        let s = w.stats().unwrap();
        for v in s.to_array() {
            assert!(v.is_nan());
        }
        // Recovery after the gap: sums were re-anchored, stats are exact.
        w.push(3.0);
        let s = w.stats().unwrap();
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn prop_incremental_equals_batch() {
        // The tentpole equivalence proof: over random series with NaN
        // cells and width-truncated prefixes, the incremental path agrees
        // with trailing_window_stats at every single day.
        rng::prop_check!(|g| {
            let scale = 1e4;
            let len = g.usize_in(1, 59);
            let width = g.usize_in(1, 9);
            let series: Vec<f64> = (0..len)
                .map(|_| {
                    if g.f64_in(0.0, 1.0) < 0.25 {
                        f64::NAN
                    } else {
                        g.f64_in(-scale, scale)
                    }
                })
                .collect();
            let mut w = IncrementalWindow::new(width).unwrap();
            for (end, &v) in series.iter().enumerate() {
                w.push(v);
                let inc = w.stats().unwrap();
                let batch = trailing_window_stats(&series, end, width).unwrap();
                assert_matches_batch(&inc, &batch, scale);
            }
        });
    }

    #[test]
    fn prop_stats_consistent() {
        rng::prop_check!(|g| {
            let xs = g.vec_f64(1, 29, -1e4, 1e4);
            let s = WindowStats::compute(&xs).unwrap();
            assert!(s.min <= s.mean + 1e-9);
            assert!(s.mean <= s.max + 1e-9);
            assert!(s.range >= -1e-9);
            assert!(s.std >= 0.0);
            assert!(s.wma >= s.min - 1e-9 && s.wma <= s.max + 1e-9);
        });
    }

    #[test]
    fn prop_constant_window_degenerates() {
        rng::prop_check!(|g| {
            let v = g.f64_in(-1e4, 1e4);
            let n = g.usize_in(1, 19);
            let s = WindowStats::compute(&vec![v; n]).unwrap();
            assert!((s.max - v).abs() < 1e-12);
            assert!((s.min - v).abs() < 1e-12);
            assert!(s.range.abs() < 1e-12);
            assert!(s.std.abs() < 1e-9);
        });
    }
}
