//! Pearson and Spearman correlation coefficients.

use crate::rank::average_ranks;
use crate::{Result, StatsError};

/// Pearson linear correlation coefficient between `xs` and `ys`.
///
/// Returns `0.0` when either series is constant (zero variance): a constant
/// feature carries no linear information about the target, and the selector
/// layer treats a zero score as "uninformative" rather than erroring out.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] when lengths differ and
/// [`StatsError::EmptyInput`] when either slice is empty.
///
/// ```
/// # use smart_stats::correlation::pearson;
/// # fn main() -> Result<(), smart_stats::StatsError> {
/// let r = pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0])?;
/// assert!((r + 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(StatsError::mismatch("pearson", xs.len(), ys.len()));
    }
    if xs.is_empty() {
        return Err(StatsError::empty("pearson"));
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Ok(0.0);
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation coefficient between `xs` and `ys`.
///
/// Computed as the Pearson correlation of the average-rank transforms, which
/// handles ties correctly (unlike the `1 - 6Σd²/n(n²-1)` shortcut).
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] when lengths differ,
/// [`StatsError::EmptyInput`] when either slice is empty, and
/// [`StatsError::NonFinite`] when a value is NaN.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(StatsError::mismatch("spearman", xs.len(), ys.len()));
    }
    let rx = average_ranks(xs)?;
    let ry = average_ranks(ys)?;
    pearson(&rx, &ry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive() {
        let r = pearson(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn pearson_mismatch_is_error() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn pearson_known_value() {
        // Hand-computed: x = [1,2,3,5], y = [2,1,4,6]
        // sxy = 10.25, sxx = 8.75, syy = 14.75 => r = 10.25/sqrt(129.0625)
        let r = pearson(&[1.0, 2.0, 3.0, 5.0], &[2.0, 1.0, 4.0, 6.0]).unwrap();
        assert!((r - 10.25 / 129.0625f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn spearman_detects_monotone_nonlinear() {
        // y = x^3 is monotone: Spearman = 1, Pearson < 1.
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.powi(3)).collect();
        let s = spearman(&xs, &ys).unwrap();
        let p = pearson(&xs, &ys).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(p < 1.0);
    }

    #[test]
    fn spearman_with_ties() {
        // Ranks: x -> [1, 2.5, 2.5, 4], y -> [1, 3, 2, 4]
        // Pearson of ranks = 4.5 / sqrt(4.5 * 5) = 3 / sqrt(10)
        let s = spearman(&[1.0, 2.0, 2.0, 3.0], &[1.0, 3.0, 2.0, 4.0]).unwrap();
        assert!((s - 3.0 / 10.0f64.sqrt()).abs() < 1e-12);
    }

    fn gen_pairs(g: &mut rng::prop::Gen, min: usize, max: usize) -> (Vec<f64>, Vec<f64>) {
        let n = g.usize_in(min, max);
        (g.vec_f64(n, n, -1e3, 1e3), g.vec_f64(n, n, -1e3, 1e3))
    }

    #[test]
    fn prop_pearson_in_unit_interval() {
        rng::prop_check!(|g| {
            let (xs, ys) = gen_pairs(g, 2, 99);
            let r = pearson(&xs, &ys).unwrap();
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        });
    }

    #[test]
    fn prop_pearson_symmetric() {
        rng::prop_check!(|g| {
            let (xs, ys) = gen_pairs(g, 2, 99);
            assert!((pearson(&xs, &ys).unwrap() - pearson(&ys, &xs).unwrap()).abs() < 1e-9);
        });
    }

    #[test]
    fn prop_pearson_shift_scale_invariant() {
        rng::prop_check!(|g| {
            let (xs, ys) = gen_pairs(g, 2, 59);
            let a = g.f64_in(0.1, 10.0);
            let b = g.f64_in(-100.0, 100.0);
            let scaled: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
            let r1 = pearson(&xs, &ys).unwrap();
            let r2 = pearson(&scaled, &ys).unwrap();
            assert!((r1 - r2).abs() < 1e-6);
        });
    }

    #[test]
    fn prop_spearman_monotone_transform_invariant() {
        rng::prop_check!(|g| {
            let n = g.usize_in(3, 59);
            let xs = g.vec_f64(n, n, -50.0, 50.0);
            let ys = g.vec_f64(n, n, -50.0, 50.0);
            // exp is strictly monotone, so Spearman must not change.
            let txs: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
            let s1 = spearman(&xs, &ys).unwrap();
            let s2 = spearman(&txs, &ys).unwrap();
            assert!((s1 - s2).abs() < 1e-9);
        });
    }
}
