//! Seeded sampling helpers: bootstrap resampling, subsampling without
//! replacement, and class-stratified downsampling.

use crate::{Result, StatsError};
use rng::rngs::StdRng;
use rng::seq::SliceRandom;
use rng::{Rng, SeedableRng};

/// `n` bootstrap indices drawn uniformly with replacement from `0..n`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when `n == 0`.
pub fn bootstrap_indices<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Result<Vec<usize>> {
    if n == 0 {
        return Err(StatsError::empty("bootstrap_indices"));
    }
    Ok((0..n).map(|_| rng.random_range(0..n)).collect())
}

/// Indices of `0..n` **not** drawn by `bootstrap` — the out-of-bag set used
/// for permutation importance.
pub fn out_of_bag_indices(bootstrap: &[usize], n: usize) -> Vec<usize> {
    let mut in_bag = vec![false; n];
    for &i in bootstrap {
        if i < n {
            in_bag[i] = true;
        }
    }
    (0..n).filter(|&i| !in_bag[i]).collect()
}

/// `k` distinct indices sampled uniformly without replacement from `0..n`
/// (partial Fisher–Yates).
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] when `k > n`.
pub fn sample_without_replacement<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    k: usize,
) -> Result<Vec<usize>> {
    if k > n {
        return Err(StatsError::invalid(
            "sample_without_replacement",
            format!("cannot draw {k} distinct items from {n}"),
        ));
    }
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    Ok(pool)
}

/// Downsample the majority (negative) class of a binary-labeled index set so
/// that `#negatives <= ratio * #positives`. All positives are kept; order is
/// deterministic for a fixed seed. Returns the retained sample indices,
/// sorted ascending.
///
/// This mirrors the class-imbalance handling the SSD failure-prediction
/// pipeline needs: positive drive-days are rare (AFR of a few percent) and
/// training on every negative drive-day is both slow and counterproductive.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] when `ratio <= 0`.
pub fn downsample_negatives(labels: &[bool], ratio: f64, seed: u64) -> Result<Vec<usize>> {
    if ratio <= 0.0 {
        return Err(StatsError::invalid(
            "downsample_negatives",
            "ratio must be positive",
        ));
    }
    let positives: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
    let mut negatives: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i]).collect();
    let keep = ((positives.len() as f64 * ratio).ceil() as usize).min(negatives.len());
    // Keep at least one negative when negatives exist but positives are
    // absent, so downstream learners always see the majority class.
    let keep = if positives.is_empty() {
        negatives.len().min(1).max(keep)
    } else {
        keep
    };
    let mut rng = StdRng::seed_from_u64(seed);
    negatives.shuffle(&mut rng);
    negatives.truncate(keep);
    let mut kept: Vec<usize> = positives.into_iter().chain(negatives).collect();
    kept.sort_unstable();
    Ok(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::rngs::StdRng;
    use rng::SeedableRng;

    #[test]
    fn bootstrap_has_right_length_and_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let idx = bootstrap_indices(&mut rng, 50).unwrap();
        assert_eq!(idx.len(), 50);
        assert!(idx.iter().all(|&i| i < 50));
    }

    #[test]
    fn bootstrap_empty_is_error() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(bootstrap_indices(&mut rng, 0).is_err());
    }

    #[test]
    fn oob_complements_bootstrap() {
        let boot = vec![0, 0, 1, 1];
        let oob = out_of_bag_indices(&boot, 4);
        assert_eq!(oob, vec![2, 3]);
    }

    #[test]
    fn oob_is_roughly_a_third() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let boot = bootstrap_indices(&mut rng, n).unwrap();
        let oob = out_of_bag_indices(&boot, n);
        let frac = oob.len() as f64 / n as f64;
        // e^-1 ≈ 0.3679
        assert!((frac - 0.3679).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn swor_draws_distinct() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = sample_without_replacement(&mut rng, 10, 10).unwrap();
        let mut sorted = s.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn swor_rejects_oversample() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(sample_without_replacement(&mut rng, 3, 4).is_err());
    }

    #[test]
    fn downsample_keeps_all_positives() {
        let labels: Vec<bool> = (0..100).map(|i| i % 10 == 0).collect();
        let kept = downsample_negatives(&labels, 3.0, 7).unwrap();
        for i in (0..100).filter(|i| i % 10 == 0) {
            assert!(kept.contains(&i));
        }
        // 10 positives, ratio 3 -> at most 30 negatives.
        assert!(kept.len() <= 40);
    }

    #[test]
    fn downsample_is_deterministic() {
        let labels: Vec<bool> = (0..50).map(|i| i % 7 == 0).collect();
        let a = downsample_negatives(&labels, 2.0, 5).unwrap();
        let b = downsample_negatives(&labels, 2.0, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn downsample_rejects_bad_ratio() {
        assert!(downsample_negatives(&[true, false], 0.0, 1).is_err());
    }

    #[test]
    fn prop_swor_in_range() {
        rng::prop_check!(|g| {
            let n = g.usize_in(1, 99);
            let mut rng = StdRng::seed_from_u64(g.u64_in(0, 99));
            let k = n / 2;
            let s = sample_without_replacement(&mut rng, n, k).unwrap();
            assert_eq!(s.len(), k);
            assert!(s.iter().all(|&i| i < n));
            let mut dedup = s.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), k);
        });
    }

    #[test]
    fn prop_downsample_bounds() {
        rng::prop_check!(|g| {
            let labels = g.vec_bool(1, 199);
            let ratio = g.f64_in(0.5, 5.0);
            let seed = g.u64_in(0, 49);
            let kept = downsample_negatives(&labels, ratio, seed).unwrap();
            let pos = labels.iter().filter(|&&l| l).count();
            let kept_neg = kept.iter().filter(|&&i| !labels[i]).count();
            let expected_cap = ((pos as f64 * ratio).ceil() as usize)
                .min(labels.len() - pos)
                .max(usize::from(pos == 0 && labels.len() > pos));
            assert!(kept_neg <= expected_cap.max(1));
            // Sorted and unique.
            for w in kept.windows(2) {
                assert!(w[0] < w[1]);
            }
        });
    }
}
