//! Rank transforms with average-rank tie handling.

use crate::{Result, StatsError};

/// Average ranks (1-based) of `xs`, assigning tied values the mean of the
/// ranks they span — the convention Spearman correlation requires.
///
/// ```
/// # use smart_stats::rank::average_ranks;
/// let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]).unwrap();
/// assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
/// ```
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for empty input and
/// [`StatsError::NonFinite`] if any element is NaN (NaNs are unrankable).
pub fn average_ranks(xs: &[f64]) -> Result<Vec<f64>> {
    if xs.is_empty() {
        return Err(StatsError::empty("average_ranks"));
    }
    if xs.iter().any(|x| x.is_nan()) {
        return Err(StatsError::NonFinite {
            context: "average_ranks",
        });
    }
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));

    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        // Find the run of ties starting at sorted position `i`.
        let mut j = i + 1;
        while j < order.len() && xs[order[j]] == xs[order[i]] {
            j += 1;
        }
        // Ranks are 1-based; a run spanning sorted positions i..j gets the
        // mean of (i+1)..=j.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            ranks[idx] = avg;
        }
        i = j;
    }
    Ok(ranks)
}

/// Dense ordering of indices by **descending** score: position 0 holds the
/// index of the highest score. Ties break by lower index first, which makes
/// the ordering deterministic.
///
/// This is the canonical "ranking" representation used by the feature
/// rankers: a permutation of `0..n`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for empty input and
/// [`StatsError::NonFinite`] if any score is NaN.
pub fn descending_order(scores: &[f64]) -> Result<Vec<usize>> {
    if scores.is_empty() {
        return Err(StatsError::empty("descending_order"));
    }
    if scores.iter().any(|s| s.is_nan()) {
        return Err(StatsError::NonFinite {
            context: "descending_order",
        });
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    Ok(order)
}

/// Inverse of an ordering: `positions[i]` is the 0-based rank position of
/// item `i` within `order`.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..order.len()`.
pub fn positions_from_order(order: &[usize]) -> Vec<usize> {
    let mut positions = vec![usize::MAX; order.len()];
    for (pos, &item) in order.iter().enumerate() {
        assert!(
            item < order.len() && positions[item] == usize::MAX,
            "order must be a permutation of 0..n"
        );
        positions[item] = pos;
    }
    positions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_without_ties() {
        let r = average_ranks(&[30.0, 10.0, 20.0]).unwrap();
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ranks_all_tied() {
        let r = average_ranks(&[7.0; 5]).unwrap();
        assert_eq!(r, vec![3.0; 5]);
    }

    #[test]
    fn ranks_reject_nan() {
        assert!(average_ranks(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn descending_order_basic() {
        let order = descending_order(&[0.1, 0.9, 0.5]).unwrap();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn descending_order_tie_breaks_by_index() {
        let order = descending_order(&[0.5, 0.5, 0.9]).unwrap();
        assert_eq!(order, vec![2, 0, 1]);
    }

    #[test]
    fn positions_invert_order() {
        let order = vec![2, 0, 1];
        assert_eq!(positions_from_order(&order), vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn positions_reject_non_permutation() {
        positions_from_order(&[0, 0, 1]);
    }

    #[test]
    fn prop_ranks_sum_is_invariant() {
        rng::prop_check!(|g| {
            // Sum of average ranks always equals n(n+1)/2 regardless of ties.
            let xs = g.vec_f64(1, 59, -1e3, 1e3);
            let n = xs.len() as f64;
            let r = average_ranks(&xs).unwrap();
            let sum: f64 = r.iter().sum();
            assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        });
    }

    #[test]
    fn prop_order_then_positions_roundtrip() {
        rng::prop_check!(|g| {
            let xs = g.vec_f64(1, 59, -1e3, 1e3);
            let order = descending_order(&xs).unwrap();
            let positions = positions_from_order(&order);
            for (pos, &item) in order.iter().enumerate() {
                assert_eq!(positions[item], pos);
            }
        });
    }

    #[test]
    fn prop_order_sorts_descending() {
        rng::prop_check!(|g| {
            let xs = g.vec_f64(1, 59, -1e3, 1e3);
            let order = descending_order(&xs).unwrap();
            for w in order.windows(2) {
                assert!(xs[w[0]] >= xs[w[1]]);
            }
        });
    }
}
