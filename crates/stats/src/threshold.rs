//! Single-feature threshold sweeps: TPR/FPR curves and the Youden J
//! statistic that backs the paper's J-index feature selector.

use crate::{Result, StatsError};

/// One operating point of a threshold sweep over a single feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Decision threshold: predict positive when `value >= threshold`.
    pub threshold: f64,
    /// True-positive rate (sensitivity) at this threshold.
    pub tpr: f64,
    /// False-positive rate (1 - specificity) at this threshold.
    pub fpr: f64,
}

impl OperatingPoint {
    /// Youden J statistic `sensitivity + specificity - 1 = tpr - fpr`.
    pub fn youden_j(&self) -> f64 {
        self.tpr - self.fpr
    }
}

/// Sweep all distinct values of `values` as thresholds against boolean
/// `labels`, evaluating both orientations (`>= t` and `<= t` predicting
/// positive) and returning the best operating point by Youden J.
///
/// Evaluating both orientations makes the score orientation-free: an
/// attribute whose *low* values indicate failure (e.g. remaining reserved
/// space) scores as high as one whose *high* values do.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] when lengths differ,
/// [`StatsError::EmptyInput`] when the input is empty, and
/// [`StatsError::InvalidParameter`] when labels are single-class (J is
/// undefined without both classes).
pub fn best_youden(values: &[f64], labels: &[bool]) -> Result<OperatingPoint> {
    if values.len() != labels.len() {
        return Err(StatsError::mismatch(
            "best_youden",
            values.len(),
            labels.len(),
        ));
    }
    if values.is_empty() {
        return Err(StatsError::empty("best_youden"));
    }
    let positives = labels.iter().filter(|&&l| l).count();
    let negatives = labels.len() - positives;
    if positives == 0 || negatives == 0 {
        return Err(StatsError::invalid(
            "best_youden",
            "labels must contain both classes",
        ));
    }

    // Sort indices by value descending; sweep thresholds from high to low so
    // that at each step everything at or above the threshold is predicted
    // positive for the ">=" orientation.
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[b].total_cmp(&values[a]));

    let mut best = OperatingPoint {
        threshold: f64::INFINITY,
        tpr: 0.0,
        fpr: 0.0,
    };
    let mut best_j = f64::NEG_INFINITY;

    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < order.len() {
        // Consume the whole tie-group so ties share one operating point.
        let v = values[order[i]];
        while i < order.len() && values[order[i]] == v {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        let tpr = tp as f64 / positives as f64;
        let fpr = fp as f64 / negatives as f64;
        // ">= v" orientation.
        let j_ge = tpr - fpr;
        if j_ge > best_j {
            best_j = j_ge;
            best = OperatingPoint {
                threshold: v,
                tpr,
                fpr,
            };
        }
        // "< v predicts positive" is the complement set, so its J is exactly
        // -j_ge with swapped rates.
        if -j_ge > best_j {
            best_j = -j_ge;
            best = OperatingPoint {
                threshold: v,
                tpr: 1.0 - tpr,
                fpr: 1.0 - fpr,
            };
        }
    }
    Ok(best)
}

/// The J-index of a feature: the best achievable Youden J over all
/// thresholds and both orientations, in `[0, 1]`.
///
/// # Errors
///
/// Same conditions as [`best_youden`].
pub fn j_index(values: &[f64], labels: &[bool]) -> Result<f64> {
    best_youden(values, labels).map(|p| p.youden_j().max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separator_scores_one() {
        let values = [1.0, 2.0, 3.0, 10.0, 11.0, 12.0];
        let labels = [false, false, false, true, true, true];
        let j = j_index(&values, &labels).unwrap();
        assert!((j - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_separator_scores_one() {
        // Low values indicate failure.
        let values = [10.0, 11.0, 12.0, 1.0, 2.0, 3.0];
        let labels = [false, false, false, true, true, true];
        let j = j_index(&values, &labels).unwrap();
        assert!((j - 1.0).abs() < 1e-12, "j = {j}");
    }

    #[test]
    fn useless_feature_scores_near_zero() {
        // Same value for both classes: no threshold separates anything.
        let values = [5.0, 5.0, 5.0, 5.0];
        let labels = [true, false, true, false];
        let j = j_index(&values, &labels).unwrap();
        assert!(j.abs() < 1e-12);
    }

    #[test]
    fn partial_separator_scores_between() {
        let values = [1.0, 2.0, 3.0, 2.5, 10.0, 11.0];
        let labels = [false, false, false, true, true, true];
        let j = j_index(&values, &labels).unwrap();
        assert!(j > 0.5 && j < 1.0, "j = {j}");
    }

    #[test]
    fn single_class_is_error() {
        assert!(j_index(&[1.0, 2.0], &[true, true]).is_err());
    }

    #[test]
    fn best_point_reports_threshold() {
        let values = [1.0, 2.0, 8.0, 9.0];
        let labels = [false, false, true, true];
        let p = best_youden(&values, &labels).unwrap();
        assert_eq!(p.tpr, 1.0);
        assert_eq!(p.fpr, 0.0);
        assert_eq!(p.threshold, 8.0);
    }

    #[test]
    fn prop_j_in_unit_interval() {
        rng::prop_check!(|g| {
            let n = g.usize_in(4, 79);
            let values = g.vec_f64(n, n, -1e3, 1e3);
            let flip = g.vec_bool_mixed(n, n);
            let j = j_index(&values, &flip).unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&j));
        });
    }

    #[test]
    fn prop_j_orientation_free() {
        rng::prop_check!(|g| {
            let n = g.usize_in(4, 59);
            let values = g.vec_f64(n, n, -1e3, 1e3);
            let flip = g.vec_bool_mixed(n, n);
            let negated: Vec<f64> = values.iter().map(|v| -v).collect();
            let j1 = j_index(&values, &flip).unwrap();
            let j2 = j_index(&negated, &flip).unwrap();
            assert!((j1 - j2).abs() < 1e-9, "j1 = {j1}, j2 = {j2}");
        });
    }
}
