//! Descriptive statistics: means, variances, quantiles, z-scores.

use crate::{Result, StatsError};

/// Arithmetic mean of `xs`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `xs` is empty.
///
/// ```
/// # use smart_stats::descriptive::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::empty("mean"));
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance (divides by `n`).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `xs` is empty.
pub fn population_variance(xs: &[f64]) -> Result<f64> {
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Sample variance (divides by `n - 1`); returns 0 for singleton input.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `xs` is empty.
pub fn sample_variance(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::empty("sample_variance"));
    }
    if xs.len() == 1 {
        return Ok(0.0);
    }
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Population standard deviation.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `xs` is empty.
pub fn population_std(xs: &[f64]) -> Result<f64> {
    population_variance(xs).map(f64::sqrt)
}

/// Sample standard deviation.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `xs` is empty.
pub fn sample_std(xs: &[f64]) -> Result<f64> {
    sample_variance(xs).map(f64::sqrt)
}

/// Minimum of `xs`, ignoring NaNs is **not** attempted: NaNs are rejected.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for empty input and
/// [`StatsError::NonFinite`] if any element is NaN.
pub fn min(xs: &[f64]) -> Result<f64> {
    fold_finite(xs, "min", f64::INFINITY, f64::min)
}

/// Maximum of `xs`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for empty input and
/// [`StatsError::NonFinite`] if any element is NaN.
pub fn max(xs: &[f64]) -> Result<f64> {
    fold_finite(xs, "max", f64::NEG_INFINITY, f64::max)
}

fn fold_finite(
    xs: &[f64],
    context: &'static str,
    init: f64,
    op: fn(f64, f64) -> f64,
) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::empty(context));
    }
    let mut acc = init;
    for &x in xs {
        if x.is_nan() {
            return Err(StatsError::NonFinite { context });
        }
        acc = op(acc, x);
    }
    Ok(acc)
}

/// Linear-interpolation quantile (`q` in `[0, 1]`) of `xs`.
///
/// Equivalent to numpy's default (`linear`) method.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for empty input and
/// [`StatsError::InvalidParameter`] if `q` lies outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::empty("quantile"));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::invalid("quantile", "q must be in [0, 1]"));
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median (50th percentile) of `xs`.
///
/// # Errors
///
/// Propagates errors from [`quantile`].
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Z-scores of each element: `(x - mean) / std` (population std).
///
/// When the standard deviation is zero, all z-scores are zero (the series is
/// constant, so no point deviates from the mean).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `xs` is empty.
pub fn z_scores(xs: &[f64]) -> Result<Vec<f64>> {
    let m = mean(xs)?;
    let s = population_std(xs)?;
    if s == 0.0 {
        return Ok(vec![0.0; xs.len()]);
    }
    Ok(xs.iter().map(|x| (x - m) / s).collect())
}

/// Weighted moving average with linearly increasing weights `1..=n`
/// (the most recent observation gets the largest weight).
///
/// This is the WMA used for statistical feature generation in the paper's
/// prediction pipeline.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `xs` is empty.
pub fn weighted_moving_average(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::empty("weighted_moving_average"));
    }
    let n = xs.len();
    let denom = (n * (n + 1)) as f64 / 2.0;
    let num: f64 = xs
        .iter()
        .enumerate()
        .map(|(i, &x)| (i + 1) as f64 * x)
        .sum();
    Ok(num / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_constants() {
        assert_eq!(mean(&[5.0; 10]).unwrap(), 5.0);
    }

    #[test]
    fn mean_empty_is_error() {
        assert!(matches!(mean(&[]), Err(StatsError::EmptyInput { .. })));
    }

    #[test]
    fn variance_known_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((population_variance(&xs).unwrap() - 4.0).abs() < 1e-12);
        assert!((sample_variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_singleton_is_zero() {
        assert_eq!(sample_variance(&[3.0]).unwrap(), 0.0);
    }

    #[test]
    fn min_max_roundtrip() {
        let xs = [3.0, -1.0, 2.5, 9.0, 0.0];
        assert_eq!(min(&xs).unwrap(), -1.0);
        assert_eq!(max(&xs).unwrap(), 9.0);
    }

    #[test]
    fn min_rejects_nan() {
        assert!(matches!(
            min(&[1.0, f64::NAN]),
            Err(StatsError::NonFinite { .. })
        ));
    }

    #[test]
    fn quantile_endpoints_and_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert!((quantile(&xs, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!((median(&xs).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_rejects_out_of_range_q() {
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[1.0], -0.1).is_err());
    }

    #[test]
    fn z_scores_standardize() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let zs = z_scores(&xs).unwrap();
        assert!((mean(&zs).unwrap()).abs() < 1e-12);
        assert!((population_std(&zs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_scores_constant_series() {
        assert_eq!(z_scores(&[2.0, 2.0, 2.0]).unwrap(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn wma_weights_recent_more() {
        // WMA of [0, 10] = (1*0 + 2*10) / 3
        assert!((weighted_moving_average(&[0.0, 10.0]).unwrap() - 20.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn wma_of_constant_is_constant() {
        assert!((weighted_moving_average(&[4.0; 7]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn prop_mean_bounded_by_min_max() {
        rng::prop_check!(|g| {
            let xs = g.vec_f64(1, 99, -1e6, 1e6);
            let m = mean(&xs).unwrap();
            assert!(m >= min(&xs).unwrap() - 1e-9);
            assert!(m <= max(&xs).unwrap() + 1e-9);
        });
    }

    #[test]
    fn prop_variance_nonnegative() {
        rng::prop_check!(|g| {
            let xs = g.vec_f64(1, 99, -1e6, 1e6);
            assert!(population_variance(&xs).unwrap() >= 0.0);
            assert!(sample_variance(&xs).unwrap() >= 0.0);
        });
    }

    #[test]
    fn prop_quantile_monotone() {
        rng::prop_check!(|g| {
            let xs = g.vec_f64(1, 49, -1e6, 1e6);
            let q1 = g.f64_in(0.0, 1.0);
            let q2 = g.f64_in(0.0, 1.0);
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            assert!(quantile(&xs, lo).unwrap() <= quantile(&xs, hi).unwrap() + 1e-9);
        });
    }

    #[test]
    fn prop_wma_between_min_and_max() {
        rng::prop_check!(|g| {
            let xs = g.vec_f64(1, 49, -1e6, 1e6);
            let w = weighted_moving_average(&xs).unwrap();
            assert!(w >= min(&xs).unwrap() - 1e-9);
            assert!(w <= max(&xs).unwrap() + 1e-9);
        });
    }
}
