#![forbid(unsafe_code)]
//! Statistical primitives for SMART-log failure prediction.
//!
//! This crate is the numeric substrate of the WEFR reproduction. It contains
//! the hand-rolled statistics that the feature-selection and prediction
//! layers build on:
//!
//! * [`descriptive`] — means, variances, quantiles, z-scores.
//! * [`rank`] — average-rank transforms (with tie handling).
//! * [`correlation`] — Pearson and Spearman correlation.
//! * [`kendall`] — Kendall-tau rank distance between two feature rankings.
//! * [`window`] — rolling-window statistics (max/min/mean/std/range/WMA)
//!   used for statistical feature generation.
//! * [`threshold`] — single-feature threshold sweeps (TPR/FPR/Youden J)
//!   backing the J-index selector.
//! * [`gaussian`] — normal pdf/cdf/erf and seeded Box–Muller sampling.
//! * [`matrix`] — the column-major [`FeatureMatrix`] shared by the tree
//!   learners and the feature rankers.
//! * [`sampling`] — seeded bootstrap / subsampling helpers.
//!
//! # Example
//!
//! ```
//! use smart_stats::correlation::pearson;
//!
//! # fn main() -> Result<(), smart_stats::StatsError> {
//! let x = [1.0, 2.0, 3.0, 4.0];
//! let y = [2.0, 4.0, 6.0, 8.0];
//! let r = pearson(&x, &y)?;
//! assert!((r - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod correlation;
pub mod descriptive;
pub mod error;
pub mod gaussian;
pub mod kendall;
pub mod matrix;
pub mod rank;
pub mod sampling;
pub mod threshold;
pub mod window;

pub use error::StatsError;
pub use matrix::FeatureMatrix;

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, StatsError>;
