//! Thread-count determinism: the parallel ranker fan-out and the full WEFR
//! selection are bit-identical no matter how many workers share the load.

use smart_dataset::{DriveModel, Fleet, FleetConfig};
use smart_pipeline::{base_matrix, collect_samples, SamplingConfig};
use smart_stats::FeatureMatrix;
use wefr_core::parallel::{run_rankers, run_rankers_with_threads};
use wefr_core::rankers::default_rankers;
use wefr_core::{SelectionInput, Wefr, WefrConfig};

fn training_matrix() -> (FeatureMatrix, Vec<bool>) {
    let config = FleetConfig::builder()
        .days(365)
        .seed(11)
        .drives(DriveModel::Mc1, 60)
        .failure_scale(8.0)
        .build()
        .expect("valid config");
    let fleet = Fleet::generate(&config);
    let samples = collect_samples(&fleet, DriveModel::Mc1, 0, 364, &SamplingConfig::default())
        .expect("samples");
    let (matrix, labels, _) = base_matrix(&fleet, DriveModel::Mc1, &samples).expect("base matrix");
    (matrix, labels)
}

#[test]
fn rankings_are_identical_across_worker_counts() {
    let (matrix, labels) = training_matrix();
    let baseline =
        run_rankers_with_threads(&default_rankers(3), &matrix, &labels, 1).expect("rankings");
    for workers in [2, 3, 5, 16] {
        let other = run_rankers_with_threads(&default_rankers(3), &matrix, &labels, workers)
            .expect("rankings");
        assert_eq!(baseline, other, "worker count {workers} changed rankings");
    }
    let auto = run_rankers(&default_rankers(3), &matrix, &labels).expect("rankings");
    assert_eq!(baseline, auto);
}

#[test]
fn selected_feature_set_is_reproducible_bit_for_bit() {
    let (matrix, labels) = training_matrix();
    let wefr = Wefr::new(WefrConfig {
        seed: 13,
        ..WefrConfig::default()
    });
    let a = wefr
        .select(&SelectionInput::basic(&matrix, &labels))
        .expect("selection");
    let b = wefr
        .select(&SelectionInput::basic(&matrix, &labels))
        .expect("selection");
    assert_eq!(a.global.selected, b.global.selected);
    assert_eq!(a.global.selected_names, b.global.selected_names);
    assert_eq!(a, b);
}

#[test]
fn fleet_generation_is_bit_identical_for_equal_seeds() {
    let config = FleetConfig::builder()
        .days(200)
        .seed(21)
        .drives(DriveModel::Ma1, 40)
        .build()
        .expect("valid config");
    let a = Fleet::generate(&config);
    let b = Fleet::generate(&config);
    assert_eq!(a, b);
    let reseeded = FleetConfig::builder()
        .days(200)
        .seed(22)
        .drives(DriveModel::Ma1, 40)
        .build()
        .expect("valid config");
    assert_ne!(a, Fleet::generate(&reseeded));
}
