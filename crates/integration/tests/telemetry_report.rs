//! End-to-end telemetry contract for the quickstart example, run as a real
//! subprocess the way a user (or `scripts/ci.sh`) would launch it:
//!
//! * with telemetry enabled, stage-level span lines appear on stderr and a
//!   `telemetry_quickstart.json` run report lands in `WEFR_TELEMETRY_OUT`,
//!   parses through `smart-json`, and contains every instrumented stage;
//! * with telemetry off, stdout is bit-identical and no report is written —
//!   observability must never perturb the results.

use std::path::PathBuf;
use std::process::{Command, Output};

use telemetry::RunReport;

/// The pipeline stages the run report must contain (ISSUE acceptance).
const REQUIRED_STAGES: [&str; 6] = [
    "rankers",
    "ensemble",
    "threshold_scan",
    "change_point",
    "wearout_split",
    "evaluate",
];

fn example_binary(name: &str) -> PathBuf {
    let mut path = std::env::current_exe().expect("test executable path");
    path.pop(); // the test binary itself
    if path.ends_with("deps") {
        path.pop();
    }
    path.join("examples").join(name)
}

/// Run quickstart with a scrubbed telemetry environment plus `extra` vars.
fn run_quickstart(extra: &[(&str, &str)]) -> Output {
    let binary = example_binary("quickstart");
    assert!(
        binary.exists(),
        "example binary missing at {} — was the quickstart example built?",
        binary.display()
    );
    let mut command = Command::new(&binary);
    command
        .env_remove("WEFR_LOG")
        .env_remove("WEFR_TELEMETRY_OUT")
        .env_remove("WEFR_METRICS_ADDR")
        .env_remove("WEFR_WATCHDOG_SECS")
        .env_remove("WEFR_OBS_ALLOC");
    for (key, value) in extra {
        command.env(key, value);
    }
    let output = command.output().expect("example launches");
    assert!(
        output.status.success(),
        "quickstart exited with {:?}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn temp_out_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wefr_telemetry_report_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn quickstart_writes_a_complete_run_report_and_logs_spans() {
    let dir = temp_out_dir("on");
    let output = run_quickstart(&[
        ("WEFR_LOG", "info"),
        ("WEFR_TELEMETRY_OUT", dir.to_str().unwrap()),
    ]);
    let stderr = String::from_utf8_lossy(&output.stderr);
    for stage in REQUIRED_STAGES {
        assert!(
            stderr.contains(&format!("span {stage}")),
            "no `span {stage}` line on stderr at WEFR_LOG=info:\n{stderr}"
        );
    }

    let path = dir.join("telemetry_quickstart.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}\nstderr:\n{stderr}", path.display()));
    let report: RunReport = json::from_str(&text).expect("report parses through smart-json");
    report.validate_tree().expect("consistent span tree");
    assert_eq!(report.run, "quickstart");
    let stages = report.stage_names();
    for stage in REQUIRED_STAGES {
        assert!(
            stages.contains(&stage),
            "stage {stage:?} missing from the run report (stages: {stages:?})"
        );
    }
    // One span per instrumented stage at minimum, and the fan-out parent
    // actually has children (the five per-ranker worker spans).
    assert!(report.spans.len() >= REQUIRED_STAGES.len());
    let rankers = report.spans_named("rankers");
    assert!(!rankers.is_empty());
    assert!(
        report.children_of(rankers[0].id).len() >= 2,
        "per-ranker child spans missing under the rankers fan-out"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_never_changes_stdout_or_writes_uninvited() {
    let dir = temp_out_dir("off");
    let baseline = run_quickstart(&[]);
    let traced = run_quickstart(&[
        ("WEFR_LOG", "debug"),
        ("WEFR_TELEMETRY_OUT", dir.to_str().unwrap()),
    ]);
    assert_eq!(
        String::from_utf8_lossy(&baseline.stdout),
        String::from_utf8_lossy(&traced.stdout),
        "stdout must be bit-identical with telemetry on and off"
    );
    // Baseline had telemetry off entirely: stderr silent, no report file.
    assert!(
        baseline.stderr.is_empty(),
        "expected silent stderr with WEFR_LOG unset, got:\n{}",
        String::from_utf8_lossy(&baseline.stderr)
    );
    assert!(
        dir.join("telemetry_quickstart.json").exists(),
        "traced run should have written its report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
