//! Live observability plane, end to end: the /metrics endpoint must show
//! ingest progress *while a run is in flight*, /report must return a
//! parseable smart-json snapshot, cross-thread span parenting must hold at
//! any ingest worker count, and the committed count-weighted flamegraph
//! must regenerate byte-identically from the same seed (DESIGN.md §6).
//!
//! The telemetry collector is process-global, so every test touching it
//! serializes on one lock; the flamegraph test runs quickstart as a
//! subprocess and needs no lock.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use smart_dataset::csv::export_smart_csv;
use smart_dataset::{
    import_smart_csv_sharded, stream_drive_batches, tickets_from_summaries, DatasetError,
    DriveBatch, DriveModel, Fleet, FleetConfig, IngestConfig,
};
use telemetry::RunReport;

/// Serializes every test that reads or resets the global collector.
static COLLECTOR: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    COLLECTOR.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A small fleet whose CSV export splits into many shards at tiny
/// `shard_rows` (shards cut at drive-run boundaries, so the shard count
/// tracks the drive count), keeping ingest in flight long enough to
/// observe.
fn small_fleet() -> Fleet {
    let config = FleetConfig::builder()
        .days(120)
        .seed(11)
        .drives(DriveModel::Mc1, 40)
        .build()
        .expect("valid fleet config");
    Fleet::generate(&config)
}

/// Minimal HTTP/1.0-style GET against the metrics endpoint; returns
/// (status line, headers, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: wefr\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

/// The value of a counter line in Prometheus text exposition.
fn metric_value(metrics: &str, name: &str) -> Option<f64> {
    metrics.lines().find_map(|line| {
        line.strip_prefix(name)
            .and_then(|rest| rest.strip_prefix(' '))
            .and_then(|v| v.trim().parse().ok())
    })
}

#[test]
fn metrics_endpoint_serves_live_ingest_progress_mid_run() {
    let _guard = lock();
    telemetry::set_collect(true);
    telemetry::reset();
    let server = telemetry::serve::start("127.0.0.1:0", "obs-live").expect("bind ephemeral port");
    let addr = server.addr();

    let fleet = small_fleet();
    let tickets = tickets_from_summaries(&fleet.summaries());
    let mut csv = Vec::new();
    export_smart_csv(&fleet, &mut csv).expect("in-memory export");
    // One worker, one queue slot, tiny shards: the reader can only run a
    // few shards ahead of the consumer, so a scrape at consumed shard 1 is
    // guaranteed to see strictly fewer counted rows than one at shard 12.
    let config = IngestConfig {
        shard_rows: 32,
        workers: 1,
        max_queued_shards: 1,
        ..IngestConfig::default()
    };
    let mut scrapes: Vec<(String, String, String)> = Vec::new();
    let stats = stream_drive_batches(csv.as_slice(), &tickets, &config, |batch: DriveBatch| {
        if batch.shard_index == 1 || batch.shard_index == 12 {
            scrapes.push(http_get(addr, "/metrics"));
        }
        Ok::<(), DatasetError>(())
    })
    .expect("sharded ingest succeeds");
    assert!(
        stats.shards >= 14,
        "fleet too small to scrape mid-run ({} shards)",
        stats.shards
    );
    server.stop();

    assert_eq!(scrapes.len(), 2, "both mid-run scrapes must have fired");
    for (status, headers, body) in &scrapes {
        assert!(status.contains("200"), "bad status: {status}");
        assert!(
            headers.to_ascii_lowercase().contains("text/plain"),
            "bad content type: {headers}"
        );
        assert!(
            body.contains("wefr_ingest_shards"),
            "shards counter missing:\n{body}"
        );
    }
    let early = metric_value(&scrapes[0].2, "wefr_ingest_rows").expect("rows counter in scrape 1");
    let late = metric_value(&scrapes[1].2, "wefr_ingest_rows").expect("rows counter in scrape 2");
    assert!(early > 0.0, "first scrape saw no ingested rows");
    assert!(
        late > early,
        "ingest.rows must advance between mid-run scrapes (saw {early} then {late})"
    );
    assert!(
        late <= stats.rows as f64,
        "scraped rows ({late}) exceed the run total ({})",
        stats.rows
    );
}

#[test]
fn report_endpoint_returns_a_parseable_snapshot() {
    let _guard = lock();
    telemetry::set_collect(true);
    telemetry::reset();
    {
        let outer = telemetry::span!("obs_outer");
        let _inner = telemetry::span_child_of(outer.id(), "obs_inner");
    }
    telemetry::counter_add("obs.demo", 3);
    let server = telemetry::serve::start("127.0.0.1:0", "obs-report").expect("bind ephemeral port");
    let (status, _headers, body) = http_get(server.addr(), "/report");
    server.stop();

    assert!(status.contains("200"), "bad status: {status}");
    let report: RunReport = json::from_str(&body).expect("/report parses through smart-json");
    assert_eq!(report.run, "obs-report");
    assert_eq!(report.schema, telemetry::SCHEMA);
    report.validate_tree().expect("consistent span tree");
    let outer = report.spans_named("obs_outer");
    assert_eq!(outer.len(), 1);
    assert_eq!(
        report.children_of(outer[0].id).len(),
        1,
        "child span missing from the live snapshot"
    );
}

#[test]
fn sharded_ingest_spans_parent_across_threads_at_any_worker_count() {
    let _guard = lock();
    telemetry::set_collect(true);
    let fleet = small_fleet();
    let tickets = tickets_from_summaries(&fleet.summaries());
    let mut csv = Vec::new();
    export_smart_csv(&fleet, &mut csv).expect("in-memory export");

    for workers in [1usize, 4, 8] {
        telemetry::reset();
        let config = IngestConfig {
            shard_rows: 64,
            workers,
            max_queued_shards: 4,
            ..IngestConfig::default()
        };
        import_smart_csv_sharded(csv.as_slice(), &tickets, fleet.config().clone(), &config)
            .expect("sharded import succeeds");
        let report = telemetry::snapshot("obs-parenting");
        report
            .validate_tree()
            .unwrap_or_else(|e| panic!("span tree invalid at {workers} workers: {e}"));
        let roots = report.spans_named("ingest");
        assert_eq!(roots.len(), 1, "one ingest root span at {workers} workers");
        let root_id = roots[0].id;
        let reads = report.spans_named("ingest_read");
        assert_eq!(reads.len(), 1, "one reader span at {workers} workers");
        assert_eq!(reads[0].parent, Some(root_id));
        let parses = report.spans_named("ingest_parse");
        assert!(
            parses.len() >= 2,
            "expected several parse spans at {workers} workers, got {}",
            parses.len()
        );
        // Worker threads open their spans on their own stacks; each must
        // still attach to the ingest root from the spawning thread.
        for parse in &parses {
            assert_eq!(
                parse.parent,
                Some(root_id),
                "parse span {} detached from the ingest root at {workers} workers",
                parse.id
            );
        }
    }
}

fn example_binary(name: &str) -> PathBuf {
    let mut path = std::env::current_exe().expect("test executable path");
    path.pop();
    if path.ends_with("deps") {
        path.pop();
    }
    path.join("examples").join(name)
}

#[test]
fn committed_flamegraph_regenerates_byte_identically() {
    let binary = example_binary("quickstart");
    assert!(
        binary.exists(),
        "example binary missing at {} — was the quickstart example built?",
        binary.display()
    );
    let dir = std::env::temp_dir().join(format!("wefr_obs_flame_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let output = Command::new(&binary)
        .env_remove("WEFR_LOG")
        .env_remove("WEFR_METRICS_ADDR")
        .env_remove("WEFR_WATCHDOG_SECS")
        .env_remove("WEFR_OBS_ALLOC")
        .env("WEFR_TELEMETRY_OUT", &dir)
        .output()
        .expect("quickstart launches");
    assert!(
        output.status.success(),
        "quickstart exited with {:?}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let generated = std::fs::read(dir.join("flame_quickstart.svg"))
        .expect("quickstart wrote a flamegraph next to its run report");
    let committed_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/flame_quickstart.svg");
    let committed = std::fs::read(&committed_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", committed_path.display()));
    assert!(
        generated == committed,
        "results/flame_quickstart.svg is stale: the count-weighted flamegraph from seed 42 \
         no longer matches ({} vs {} bytes) — regenerate it with \
         WEFR_TELEMETRY_OUT=results cargo run --release --example quickstart",
        generated.len(),
        committed.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
