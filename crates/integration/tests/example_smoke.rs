//! Smoke test: the quickstart example runs end to end against the real
//! pipeline, exactly as `cargo run --example quickstart` would.
//!
//! `cargo test` builds the package's example targets before running its
//! tests, so the compiled binary sits in `target/<profile>/examples/`
//! alongside this test's own executable.

use std::path::PathBuf;
use std::process::Command;

fn example_binary(name: &str) -> PathBuf {
    let mut path = std::env::current_exe().expect("test executable path");
    path.pop(); // the test binary itself
    if path.ends_with("deps") {
        path.pop();
    }
    path.join("examples").join(name)
}

#[test]
fn quickstart_example_runs() {
    let binary = example_binary("quickstart");
    assert!(
        binary.exists(),
        "example binary missing at {} — was the quickstart example built?",
        binary.display()
    );
    let output = Command::new(&binary).output().expect("example launches");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "quickstart exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status
    );
    assert!(
        stdout.contains("selected") && stdout.contains("fleet:"),
        "quickstart output missing expected sections:\n{stdout}"
    );
}
