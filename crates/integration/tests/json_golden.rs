//! Golden-file JSON tests: the exact serialized forms of `FleetConfig` and
//! `EvalMetrics` are pinned here, together with the crate-wide escape and
//! non-finite-number policies and malformed-input error behavior.
//!
//! These goldens are a compatibility contract: experiment binaries write
//! these shapes into `results/`, and any change to them must be deliberate.

use smart_dataset::{DriveModel, FleetConfig};
use smart_pipeline::EvalMetrics;

const FLEET_CONFIG_GOLDEN: &str = r#"{
  "days": 365,
  "seed": 42,
  "drives": {
    "MC1": 150
  },
  "failure_scale": 8.0,
  "per_model_scale": {
    "MA2": 4.0
  },
  "max_initial_age_days": 540,
  "arrival_fraction": 0.25
}"#;

const EVAL_METRICS_GOLDEN: &str = r#"{
  "tp": 3,
  "fp": 1,
  "fn_": 3,
  "precision": 0.75,
  "recall": 0.5,
  "f_half": 0.6875
}"#;

fn golden_config() -> FleetConfig {
    FleetConfig::builder()
        .days(365)
        .seed(42)
        .drives(DriveModel::Mc1, 150)
        .failure_scale(8.0)
        .per_model_scale(DriveModel::Ma2, 4.0)
        .build()
        .expect("valid config")
}

#[test]
fn fleet_config_matches_golden_and_round_trips() {
    let config = golden_config();
    assert_eq!(json::to_string_pretty(&config), FLEET_CONFIG_GOLDEN);
    let back: FleetConfig = json::from_str(FLEET_CONFIG_GOLDEN).expect("golden parses");
    assert_eq!(back, config);
}

#[test]
fn eval_metrics_matches_golden_and_round_trips() {
    let metrics = EvalMetrics {
        tp: 3,
        fp: 1,
        fn_: 3,
        precision: 0.75,
        recall: 0.5,
        f_half: 0.6875,
    };
    assert_eq!(json::to_string_pretty(&metrics), EVAL_METRICS_GOLDEN);
    let back: EvalMetrics = json::from_str(EVAL_METRICS_GOLDEN).expect("golden parses");
    assert_eq!(back, metrics);
}

#[test]
fn seed_survives_at_full_u64_precision() {
    let config = FleetConfig::builder()
        .days(365)
        .seed(u64::MAX)
        .drives(DriveModel::Ma1, 1)
        .build()
        .expect("valid config");
    let back: FleetConfig = json::from_str(&json::to_string(&config)).expect("round trip");
    assert_eq!(back.seed(), u64::MAX);
}

#[test]
fn string_escapes_round_trip() {
    let weird = "quote \" backslash \\ newline \n tab \t unicode \u{1F4BE} nul-ish \u{0001}";
    let text = json::to_string(&weird.to_string());
    assert!(text.contains(r#"\""#) && text.contains(r"\\") && text.contains(r"\n"));
    let back: String = json::from_str(&text).expect("escaped string parses");
    assert_eq!(back, weird);
    // Escaped astral-plane input uses a surrogate pair.
    let disk: String = json::from_str(r#""💾""#).expect("surrogate pair parses");
    assert_eq!(disk, "\u{1F4BE}");
}

#[test]
fn non_finite_numbers_serialize_as_null_and_read_back_as_nan() {
    // Policy: JSON has no NaN/Infinity literals, so non-finite values are
    // written as null, and null reads back as NaN for f64 fields.
    let metrics = EvalMetrics {
        tp: 0,
        fp: 0,
        fn_: 0,
        precision: f64::NAN,
        recall: f64::INFINITY,
        f_half: f64::NEG_INFINITY,
    };
    let text = json::to_string(&metrics);
    assert!(!text.contains("NaN") && !text.contains("inf"));
    assert!(text.contains("\"precision\":null"));
    let back: EvalMetrics = json::from_str(&text).expect("null-laden metrics parse");
    assert!(back.precision.is_nan());
    assert!(back.recall.is_nan());
    assert!(back.f_half.is_nan());
}

#[test]
fn malformed_inputs_are_rejected_with_errors() {
    let cases: [&str; 7] = [
        "",
        "{",
        r#"{"days": }"#,
        r#"{"days": 365"#,
        "[1, 2,]",
        r#"{"days": 365} trailing"#,
        "\"unterminated",
    ];
    for case in cases {
        assert!(
            json::from_str::<FleetConfig>(case).is_err(),
            "malformed input {case:?} was accepted"
        );
    }
    // Structurally valid JSON that violates the FleetConfig schema.
    assert!(
        json::from_str::<FleetConfig>("{}").is_err(),
        "missing fields"
    );
    let unknown_model = FLEET_CONFIG_GOLDEN.replace("MC1", "ZZ9");
    assert!(
        json::from_str::<FleetConfig>(&unknown_model).is_err(),
        "unknown drive model key was accepted"
    );
    let wrong_type = FLEET_CONFIG_GOLDEN.replace("365", "\"365\"");
    assert!(
        json::from_str::<FleetConfig>(&wrong_type).is_err(),
        "string where a number belongs was accepted"
    );
}

#[test]
fn json_errors_carry_positions_for_parse_failures() {
    let err = json::from_str::<FleetConfig>(r#"{"days": 365,"#).expect_err("must fail");
    let message = err.to_string();
    assert!(
        message.contains("at byte"),
        "parse error lacks a position: {message}"
    );
}
