//! Golden test for the Fig. 1 survival census (`results/census_fig1.json`):
//! the measured, streamed population at the pinned paper-mix seed must
//! regenerate byte-identically — like `flame_quickstart.svg` — and it must
//! do so under a chunking/worker setting *different* from the one that
//! wrote the file, exercising the streaming generator's bit-identity
//! guarantee end to end.
//!
//! Regenerate with:
//! `cargo run --release -p wefr-bench --bin bench_gen_stream -- --quick --out results`

use smart_dataset::gen::stream::GenConfig;
use smart_pipeline::report::to_json;
use smart_pipeline::{fig1_pinned_config, fig1_report, Fig1Report, FIG1_MIN_BUCKET};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/census_fig1.json"
);

fn recompute(gen: &GenConfig) -> Fig1Report {
    let config = fig1_pinned_config().expect("pinned config");
    fig1_report(&config, gen, FIG1_MIN_BUCKET).expect("fig1 report")
}

#[test]
fn fig1_census_regenerates_byte_identically() {
    let committed = std::fs::read_to_string(GOLDEN_PATH).expect("committed census_fig1.json");
    // Deliberately NOT the GenConfig that wrote the file: single worker,
    // odd chunk size. Bit-identity means the chunking cannot show through.
    let report = recompute(&GenConfig {
        chunk_drives: 61,
        workers: 1,
        max_queued_chunks: 2,
        scenario: None,
    });
    assert_eq!(
        to_json(&report),
        committed,
        "results/census_fig1.json drifted from the pinned generator output; \
         regenerate with bench_gen_stream --out results and inspect the diff"
    );
}

#[test]
fn fig1_census_is_structurally_sane() {
    let committed = std::fs::read_to_string(GOLDEN_PATH).expect("committed census_fig1.json");
    let value = json::parse(&committed).expect("valid JSON");
    let models = value
        .field("models")
        .and_then(json::Value::as_array)
        .expect("models array");
    assert_eq!(models.len(), 6, "one curve per paper model");
    for curve in models {
        let points = curve
            .field("points")
            .and_then(json::Value::as_array)
            .expect("points array");
        assert!(
            !points.is_empty(),
            "model {:?} has an empty survival curve",
            curve.field("model")
        );
    }
}
