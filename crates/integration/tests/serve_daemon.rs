//! End-to-end test of the continuous-selection daemon over a real socket
//! (DESIGN.md §14): the same SMART-log CSV replayed through two daemon
//! instances — at different ingest worker counts — must produce
//! byte-identical query transcripts, run to run and worker count to
//! worker count.

use std::io::Cursor;

use serve::daemon::{Daemon, ServeConfig};
use serve::listener;
use smart_dataset::csv::export_smart_csv;
use smart_dataset::{
    tickets_from_summaries, DriveModel, DriveRecord, Fleet, FleetConfig, IngestConfig,
    TroubleTicket,
};
use sync::{Arc, Mutex};

/// The fixed-seed fleet every daemon in this suite replays.
fn fleet() -> Fleet {
    let config = FleetConfig::builder()
        .days(160)
        .seed(23)
        .drives(DriveModel::Mc1, 24)
        .failure_scale(8.0)
        .build()
        .expect("valid fleet config");
    Fleet::generate(&config)
}

fn serve_config() -> ServeConfig {
    let mut config = ServeConfig::default();
    config.period_days = 21;
    config.predictor.n_trees = 15;
    config.predictor.max_depth = 6;
    config.predictor.seed = 3;
    config.predictor.n_threads = Some(1);
    config
}

/// Ingest `fleet`'s CSV with `workers` parser threads, replay to the last
/// observed day, and return the ready daemon.
fn daemon_over(fleet: &Fleet, workers: usize) -> Daemon {
    let mut csv = Vec::new();
    export_smart_csv(fleet, &mut csv).expect("export CSV");
    let summaries: Vec<_> = fleet.drives().iter().map(DriveRecord::summary).collect();
    let tickets: Vec<TroubleTicket> = tickets_from_summaries(&summaries);
    let ingest = IngestConfig {
        workers,
        ..IngestConfig::default()
    };
    let mut daemon = Daemon::new(serve_config());
    daemon
        .ingest_csv(Cursor::new(csv), &tickets, &ingest)
        .expect("ingest CSV");
    let last = daemon.last_observed_day().expect("nonempty fleet");
    daemon.advance_to(last).expect("replay to last day");
    daemon
}

/// The full scripted transcript of one socket session against `daemon`:
/// STATUS, FEATURES, and a SCORE for every drive in the fleet.
fn transcript(fleet: &Fleet, daemon: Daemon) -> Vec<String> {
    let shared = Arc::new(Mutex::new(daemon));
    let server =
        listener::start("127.0.0.1:0", Arc::clone(&shared), "serve-e2e").expect("bind listener");
    let mut commands: Vec<String> = vec!["STATUS".to_string(), "FEATURES".to_string()];
    commands.extend(fleet.drives().iter().map(|d| format!("SCORE {}", d.id)));
    commands.push("QUIT".to_string());
    let refs: Vec<&str> = commands.iter().map(String::as_str).collect();
    let responses = listener::query_session(server.addr(), &refs).expect("query session");
    server.stop();
    responses
}

#[test]
fn transcripts_identical_across_runs_and_worker_counts() {
    let fleet = fleet();
    let one_a = transcript(&fleet, daemon_over(&fleet, 1));
    let one_b = transcript(&fleet, daemon_over(&fleet, 1));
    assert_eq!(one_a, one_b, "same worker count, two runs");
    let four = transcript(&fleet, daemon_over(&fleet, 4));
    assert_eq!(one_a, four, "1 worker vs 4 workers");
    // The transcript must actually contain scores, not a wall of ERRs:
    // the daemon selected features and answered for live drives.
    assert!(one_a[0].starts_with("ok status\n"), "{}", one_a[0]);
    assert!(one_a[1].starts_with("ok features "), "{}", one_a[1]);
    let scored = one_a.iter().filter(|r| r.starts_with("ok score ")).count();
    assert!(scored > 0, "no drive produced a score: {one_a:?}");
}

#[test]
fn report_route_serves_valid_json_over_http() {
    let fleet = fleet();
    let daemon = daemon_over(&fleet, 2);
    let shared = Arc::new(Mutex::new(daemon));
    let server =
        listener::start("127.0.0.1:0", Arc::clone(&shared), "serve-e2e-http").expect("bind");
    let (status, body) = listener::http_get(server.addr(), "/report").expect("GET /report");
    assert!(status.contains("200 OK"), "{status}");
    let report: telemetry::RunReport = json::from_str(&body).expect("parse /report body");
    report.validate_tree().expect("consistent span tree");
    let (status, _) = listener::http_get(server.addr(), "/metrics").expect("GET /metrics");
    assert!(status.contains("404"), "only /report is routed: {status}");
    server.stop();
}
