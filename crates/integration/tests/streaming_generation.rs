//! Streaming-generation parity: the chunked generator (DESIGN.md §12) is
//! bit-identical to the materialized `Fleet::generate` — records, tickets,
//! and the WEFR selected set — at every chunk-size/worker setting,
//! mirroring the ingest determinism matrix; and the scenario post-pass
//! applied per batch inside the workers matches the whole-fleet post-pass.

use smart_dataset::gen::stream::{generate_fleet_streamed, GenConfig};
use smart_dataset::{
    apply_scenario, mixed_vendor_config, tickets_from_summaries, DriveModel, FirmwareRollout,
    Fleet, FleetConfig, MissingCoverage, ReplacementChurn, ScenarioConfig, SmartAttribute, Vendor,
};
use smart_pipeline::{base_matrix, collect_samples, generated_base_matrix, SamplingConfig};
use wefr_core::{SelectionInput, Wefr, WefrConfig};

const WORKER_MATRIX: [usize; 4] = [1, 2, 4, 8];

fn parity_config() -> FleetConfig {
    FleetConfig::builder()
        .days(365)
        .seed(11)
        .drives(DriveModel::Mc1, 60)
        .failure_scale(8.0)
        .build()
        .expect("valid config")
}

fn gen_config(chunk_drives: usize, workers: usize) -> GenConfig {
    GenConfig {
        chunk_drives,
        workers,
        max_queued_chunks: 2,
        scenario: None,
    }
}

#[test]
fn streamed_records_and_tickets_match_materialized_at_every_setting() {
    let config = parity_config();
    let reference = Fleet::generate(&config);
    let reference_tickets = tickets_from_summaries(&reference.summaries());
    for workers in WORKER_MATRIX {
        for chunk_drives in [1, 7, 64, 10_000] {
            let streamed = generate_fleet_streamed(&config, &gen_config(chunk_drives, workers))
                .expect("streamed generation");
            assert_eq!(
                streamed.drives(),
                reference.drives(),
                "workers={workers} chunk_drives={chunk_drives}"
            );
            assert_eq!(
                tickets_from_summaries(&streamed.summaries()),
                reference_tickets,
                "workers={workers} chunk_drives={chunk_drives}"
            );
        }
    }
}

#[test]
fn wefr_selected_set_is_identical_from_streamed_and_materialized_sources() {
    let config = parity_config();
    let sampling = SamplingConfig::default();
    let fleet = Fleet::generate(&config);
    let samples = collect_samples(&fleet, DriveModel::Mc1, 0, 364, &sampling).expect("samples");
    let (matrix, labels, mwi) =
        base_matrix(&fleet, DriveModel::Mc1, &samples).expect("base matrix");
    let wefr = Wefr::new(WefrConfig {
        seed: 13,
        ..WefrConfig::default()
    });
    let reference = wefr
        .select(&SelectionInput::basic(&matrix, &labels))
        .expect("materialized selection");

    for workers in WORKER_MATRIX {
        let generated = generated_base_matrix(
            &config,
            &gen_config(16, workers),
            DriveModel::Mc1,
            0,
            364,
            &sampling,
        )
        .expect("generated matrix");
        // The inputs are bit-identical...
        assert_eq!(generated.labels, labels, "workers={workers}");
        assert_eq!(generated.mwi, mwi, "workers={workers}");
        for name in matrix.feature_names() {
            let a = matrix.column_index(name).expect("reference column");
            let b = generated
                .matrix
                .column_index(name)
                .expect("generated column");
            assert_eq!(matrix.column(a), generated.matrix.column(b), "{name}");
        }
        // ...and so is the selection computed from them.
        let selection = wefr
            .select(&SelectionInput::basic(&generated.matrix, &generated.labels))
            .expect("streamed selection");
        assert_eq!(
            selection.global.selected, reference.global.selected,
            "workers={workers}"
        );
        assert_eq!(
            selection.global.selected_names,
            reference.global.selected_names
        );
    }
}

#[test]
fn per_batch_scenario_matches_whole_fleet_post_pass_at_every_setting() {
    let config = mixed_vendor_config(150, 3).expect("valid config");
    let scenario = ScenarioConfig {
        seed: 9,
        firmware: Some(FirmwareRollout {
            day: 60,
            model: DriveModel::Mc1,
            attr: SmartAttribute::Rsc,
            raw_scale: 512.0,
            invert_norm: true,
        }),
        missing: Some(MissingCoverage {
            vendor: Vendor::Ma,
            attr: SmartAttribute::Uce,
            batch_fraction: 0.5,
        }),
        churn: Some(ReplacementChurn {
            day: 75,
            fraction: 0.3,
        }),
    };
    let reference =
        apply_scenario(&Fleet::generate(&config), &scenario).expect("whole-fleet post-pass");
    // NaN cells (missing coverage) defeat PartialEq; CSV export, where NaN
    // prints stably, is the byte-faithful comparison.
    let csv = |f: &Fleet| {
        let mut buf = Vec::new();
        smart_dataset::csv::export_smart_csv(f, &mut buf).expect("export");
        String::from_utf8(buf).expect("utf8")
    };
    let reference_csv = csv(&reference);
    for workers in WORKER_MATRIX {
        for chunk_drives in [3, 17, 10_000] {
            let gen = GenConfig {
                scenario: Some(scenario),
                ..gen_config(chunk_drives, workers)
            };
            let streamed = generate_fleet_streamed(&config, &gen).expect("streamed generation");
            assert_eq!(
                csv(&streamed),
                reference_csv,
                "workers={workers} chunk_drives={chunk_drives}"
            );
            assert_eq!(streamed.summaries(), reference.summaries());
        }
    }
}
