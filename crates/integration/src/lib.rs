#![forbid(unsafe_code)]
//! Anchor crate for the repo-root `tests/` and `examples/` directories.
//!
//! The workspace manifest is virtual (no root package), so Cargo never
//! built the repo-root integration suites or examples on its own. This
//! crate exists to own them: its `Cargo.toml` declares every file under
//! `tests/` as a `[[test]]` target and every file under `examples/` as an
//! `[[example]]` target, which puts all of them on the `cargo test` /
//! `cargo build --examples` path.
//!
//! The crate's own `tests/` directory adds the cross-crate suites that
//! don't fit a single crate: determinism across seeds and worker counts,
//! JSON golden-file round-trips, and an in-process smoke run of the
//! `quickstart` example.

/// The workspace this crate stitches together, for doc links.
pub const WORKSPACE: &str = "wefr";
