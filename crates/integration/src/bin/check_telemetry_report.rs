#![forbid(unsafe_code)]
//! Run-report gate for the CI telemetry smoke step: parse a
//! `telemetry_<run>.json` file through `smart-json` into
//! [`telemetry::RunReport`], check its structural invariants, and require
//! that the named stages appear in the span tree.
//!
//! ```text
//! check_telemetry_report <report.json> [required-stage ...]
//! ```
//!
//! Exits non-zero (with a reason on stderr) when the file is missing,
//! malformed, structurally inconsistent, or lacks a required stage.

use std::process::ExitCode;

use telemetry::RunReport;

fn run(path: &str, required: &[String]) -> Result<RunReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let report: RunReport =
        json::from_str(&text).map_err(|e| format!("parsing {path} as a run report: {e}"))?;
    report
        .validate_tree()
        .map_err(|e| format!("inconsistent span tree in {path}: {e}"))?;
    if report.spans.is_empty() {
        return Err(format!("{path} contains no spans — was collection off?"));
    }
    let stages = report.stage_names();
    for stage in required {
        if !stages.contains(&stage.as_str()) {
            return Err(format!(
                "required stage {stage:?} missing from {path} (stages: {stages:?})"
            ));
        }
    }
    Ok(report)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: check_telemetry_report <report.json> [required-stage ...]");
        return ExitCode::FAILURE;
    };
    let required: Vec<String> = args.collect();
    match run(&path, &required) {
        Ok(report) => {
            println!(
                "OK: {} spans across {} stages, {} events, {} counters",
                report.spans.len(),
                report.stage_names().len(),
                report.events.len(),
                report.counters.len()
            );
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("ERROR: {message}");
            ExitCode::FAILURE
        }
    }
}
