#![forbid(unsafe_code)]
//! CI gate for the split-strategy benchmark: parse a `BENCH_pr3.json`
//! report (written by `bench_split_strategy` or any binary emitting the
//! same `rf_train/*` rows) and require that histogram-engine training was
//! not slower than exact-engine training.
//!
//! ```text
//! check_split_bench <BENCH_pr3.json>
//! ```
//!
//! Exits non-zero (with a reason on stderr) when the file is missing,
//! malformed, lacks either paired row, or shows the histogram engine
//! losing to the exact engine.

use std::process::ExitCode;

fn mean_of(rows: &[json::Value], method: &str, path: &str) -> Result<f64, String> {
    let row = rows
        .iter()
        .find(|r| r.field("method").and_then(json::Value::as_str) == Some(method))
        .ok_or_else(|| format!("row {method:?} missing from {path}"))?;
    row.field("mean_seconds")
        .and_then(json::Value::as_f64)
        .filter(|s| s.is_finite() && *s > 0.0)
        .ok_or_else(|| format!("row {method:?} in {path} has no positive mean_seconds"))
}

fn run(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let value = json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let rows = value
        .field("rows")
        .and_then(json::Value::as_array)
        .ok_or_else(|| format!("{path} has no \"rows\" array"))?;
    let exact = mean_of(rows, "rf_train/exact", path)?;
    let hist = mean_of(rows, "rf_train/histogram", path)?;
    if hist > exact {
        return Err(format!(
            "histogram training ({hist:.3}s) was SLOWER than exact ({exact:.3}s) — \
             the binned engine must not regress"
        ));
    }
    Ok(format!(
        "OK: rf_train histogram {:.3}s vs exact {:.3}s ({:.2}x faster)",
        hist,
        exact,
        exact / hist
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: check_split_bench <BENCH_pr3.json>");
        return ExitCode::FAILURE;
    };
    match run(&path) {
        Ok(message) => {
            println!("{message}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("ERROR: {message}");
            ExitCode::FAILURE
        }
    }
}
