#![forbid(unsafe_code)]
//! CI gate for the observability plane: parse a `BENCH_pr7.json` report
//! (written by `bench_obs_overhead`) and require that running quickstart
//! with the full plane on — run report, live /metrics endpoint, watchdog,
//! allocation counters — costs at most 5% of wall-clock and leaves stdout
//! byte-identical to the plane-off run (DESIGN.md §6).
//!
//! ```text
//! check_obs_overhead <BENCH_pr7.json>
//! ```
//!
//! Exits non-zero (with a reason on stderr) when the file is missing,
//! malformed, records divergent stdout, or shows the plane over budget.

use std::process::ExitCode;

/// Wall-clock slowdown tolerated with the full plane on, as a ratio.
const TOLERANCE: f64 = 1.05;

fn finite_positive(value: Option<f64>, what: &str, path: &str) -> Result<f64, String> {
    value
        .filter(|v| v.is_finite() && *v > 0.0)
        .ok_or_else(|| format!("{path} has no positive {what}"))
}

fn run(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let value = json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let off = finite_positive(
        value.field("off_seconds").and_then(json::Value::as_f64),
        "off_seconds",
        path,
    )?;
    let on = finite_positive(
        value.field("on_seconds").and_then(json::Value::as_f64),
        "on_seconds",
        path,
    )?;
    let ratio = finite_positive(
        value.field("overhead_ratio").and_then(json::Value::as_f64),
        "overhead_ratio",
        path,
    )?;
    let identical = value
        .field("stdout_identical")
        .and_then(json::Value::as_bool)
        .ok_or_else(|| format!("{path} has no boolean stdout_identical"))?;
    if !identical {
        return Err(
            "stdout DIVERGED between observability on and off — the plane must never \
             touch stdout"
                .to_string(),
        );
    }
    if ratio > TOLERANCE {
        return Err(format!(
            "full observability cost {ratio:.2}x wall-clock ({on:.3}s vs {off:.3}s), over \
             the {TOLERANCE:.2}x budget — the plane must stay near-free"
        ));
    }
    Ok(format!(
        "OK: full observability {ratio:.2}x wall-clock ({on:.3}s on vs {off:.3}s off), \
         stdout byte-identical"
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: check_obs_overhead <BENCH_pr7.json>");
        return ExitCode::FAILURE;
    };
    match run(&path) {
        Ok(message) => {
            println!("{message}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("ERROR: {message}");
            ExitCode::FAILURE
        }
    }
}
