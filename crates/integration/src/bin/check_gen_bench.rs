#![forbid(unsafe_code)]
//! CI gate for the streaming-generation benchmark: parse a
//! `BENCH_pr8.json` report (written by `bench_gen_stream`) and require
//! that the chunked generator's guarantees held.
//!
//! ```text
//! check_gen_bench [--paper] <BENCH_pr8.json>
//! ```
//!
//! Every report must show:
//!
//! * a non-empty bit-identity matrix with every cell identical — the
//!   stream reproduced `Fleet::generate` at every chunk-size/worker
//!   setting it swept;
//! * a bounded pipeline window strictly smaller than the materialized
//!   fleet it replaced (`bounded_ratio >= 2`), with the window arithmetic
//!   (`peak_batch_bytes x (workers + max_queued_chunks + 1)`) intact;
//! * a non-degenerate run: drives, rows, samples, positives, and a
//!   non-empty selected set.
//!
//! `--paper` additionally gates the committed paper-scale evidence: at
//! least 499 000 drives (the population mix rounds per model), a
//! `bounded_ratio >= 10`, and armed allocation tracking with a non-zero
//! byte delta on every stage — the memory claim must come with receipts.
//!
//! Exits non-zero (with a reason on stderr) when the file is missing,
//! malformed, or any guarantee failed.

use std::process::ExitCode;

/// Minimum `value_bytes / bounded_window_bytes` for any run: streaming
/// must beat materializing even at quick scale.
const MIN_RATIO: f64 = 2.0;

/// Minimum ratio for the committed paper-scale run.
const MIN_PAPER_RATIO: f64 = 10.0;

/// Minimum drives in the committed paper-scale run (500 000 nominal; the
/// population mix rounds per model).
const MIN_PAPER_DRIVES: f64 = 499_000.0;

fn num(value: &json::Value, key: &str, path: &str) -> Result<f64, String> {
    value
        .field(key)
        .and_then(json::Value::as_f64)
        .filter(|v| v.is_finite())
        .ok_or_else(|| format!("{path} has no finite \"{key}\""))
}

fn check(value: &json::Value, path: &str, paper: bool) -> Result<String, String> {
    let identity = value
        .field("identity")
        .and_then(json::Value::as_array)
        .ok_or_else(|| format!("{path} has no \"identity\" array"))?;
    if identity.is_empty() {
        return Err(format!("{path}: bit-identity matrix is empty"));
    }
    for row in identity {
        let workers = num(row, "workers", path)?;
        let chunk = num(row, "chunk_drives", path)?;
        if row.field("identical").and_then(json::Value::as_bool) != Some(true) {
            return Err(format!(
                "{path}: stream diverged from Fleet::generate at workers={workers} \
                 chunk_drives={chunk}"
            ));
        }
    }

    let drives = num(value, "drives", path)?;
    let rows = num(value, "rows", path)?;
    let samples = num(value, "samples", path)?;
    let positives = num(value, "positives", path)?;
    if drives <= 0.0 || rows <= 0.0 || samples <= 0.0 || positives <= 0.0 {
        return Err(format!(
            "{path}: degenerate run (drives={drives}, rows={rows}, samples={samples}, \
             positives={positives})"
        ));
    }
    let selected = value
        .field("selected")
        .and_then(json::Value::as_array)
        .ok_or_else(|| format!("{path} has no \"selected\" array"))?;
    if selected.is_empty() {
        return Err(format!("{path}: WEFR selected no features"));
    }

    let peak_batch = num(value, "peak_batch_bytes", path)?;
    let window = num(value, "bounded_window_bytes", path)?;
    let value_bytes = num(value, "value_bytes", path)?;
    let ratio = num(value, "bounded_ratio", path)?;
    let batches = num(value, "workers", path)? + num(value, "max_queued_chunks", path)? + 1.0;
    if (window - peak_batch * batches).abs() > 0.5 {
        return Err(format!(
            "{path}: bounded window arithmetic broken ({window} != {peak_batch} x {batches})"
        ));
    }
    if (ratio - value_bytes / window).abs() > 1e-6 * ratio {
        return Err(format!(
            "{path}: bounded_ratio {ratio} disagrees with value_bytes/window"
        ));
    }
    let floor = if paper { MIN_PAPER_RATIO } else { MIN_RATIO };
    if ratio < floor {
        return Err(format!(
            "{path}: streaming window only {ratio:.1}x smaller than the materialized \
             fleet (floor {floor:.0}x) — bounded memory claim fails"
        ));
    }

    if paper {
        if drives < MIN_PAPER_DRIVES {
            return Err(format!(
                "{path}: paper-scale evidence has only {drives:.0} drives \
                 (needs >= {MIN_PAPER_DRIVES:.0})"
            ));
        }
        if value.field("alloc_tracked").and_then(json::Value::as_bool) != Some(true) {
            return Err(format!(
                "{path}: paper-scale evidence lacks allocation tracking \
                 (rerun with --features obs-alloc and WEFR_OBS_ALLOC=1)"
            ));
        }
        let stages = value
            .field("stages")
            .and_then(json::Value::as_array)
            .ok_or_else(|| format!("{path} has no \"stages\" array"))?;
        for stage in stages {
            let name = stage
                .field("stage")
                .and_then(json::Value::as_str)
                .unwrap_or("?");
            if num(stage, "alloc_bytes", path)? <= 0.0 {
                return Err(format!(
                    "{path}: stage {name:?} recorded no allocation delta despite \
                     alloc_tracked=true"
                ));
            }
        }
    }

    Ok(format!(
        "OK: {path}: {} identity cells, {drives:.0} drives, {rows:.0} rows, \
         window {ratio:.1}x under the materialized fleet{}",
        identity.len(),
        if paper { " (paper scale)" } else { "" }
    ))
}

fn run(args: &[String]) -> Result<String, String> {
    let (paper, path) = match args {
        [flag, path] if flag == "--paper" => (true, path),
        [path] => (false, path),
        _ => return Err("usage: check_gen_bench [--paper] <BENCH_pr8.json>".to_string()),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let value = json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    check(&value, path, paper)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(message) => {
            println!("{message}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("ERROR: {message}");
            ExitCode::FAILURE
        }
    }
}
