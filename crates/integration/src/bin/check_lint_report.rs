#![forbid(unsafe_code)]
//! Lint-report gate for the CI static-analysis step: parse a
//! `lint_<run>.json` file through `smart-json` into [`lint::LintReport`],
//! check its structural invariants, and require a clean workspace.
//!
//! ```text
//! check_lint_report <report.json>
//! ```
//!
//! Exits non-zero (with a reason on stderr) when the file is missing,
//! malformed, reports fewer than five active rules, drops any of the
//! concurrency rules that guard the smart-sync shim (DESIGN.md §13), or
//! records any surviving violation.

use std::process::ExitCode;

use lint::LintReport;

/// Rules that must stay in the active set: they enforce the smart-sync
/// shim's coverage (sync-hygiene), the condvar predicate-loop discipline
/// the model checker assumes (condvar-loop), and reasoned memory orderings
/// (atomic-ordering). A report missing any of them means the concurrency
/// gate silently shrank.
const REQUIRED_CONCURRENCY_RULES: &[&str] = &["sync-hygiene", "condvar-loop", "atomic-ordering"];

fn run(path: &str) -> Result<LintReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let report: LintReport =
        json::from_str(&text).map_err(|e| format!("parsing {path} as a lint report: {e}"))?;
    report
        .validate()
        .map_err(|e| format!("invalid lint report {path}: {e}"))?;
    if report.active_rules() < 5 {
        return Err(format!(
            "{path} shows only {} active rules — the rule set shrank",
            report.active_rules()
        ));
    }
    for required in REQUIRED_CONCURRENCY_RULES {
        let present = report.rules.iter().any(|r| r.id == *required && r.active);
        if !present {
            return Err(format!(
                "{path} is missing active concurrency rule {required:?} — the sync gate shrank"
            ));
        }
    }
    if !report.violations.is_empty() {
        let rendered: Vec<String> = report
            .violations
            .iter()
            .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message))
            .collect();
        return Err(format!(
            "{path} records {} surviving violations:\n{}",
            report.violations.len(),
            rendered.join("\n")
        ));
    }
    Ok(report)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: check_lint_report <report.json>");
        return ExitCode::FAILURE;
    };
    match run(&path) {
        Ok(report) => {
            println!(
                "OK: {} files scanned by {} rules, 0 violations, {} reasoned suppressions",
                report.files_scanned,
                report.active_rules(),
                report.suppressions.len()
            );
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("ERROR: {message}");
            ExitCode::FAILURE
        }
    }
}
