#![forbid(unsafe_code)]
//! Hermeticity gate for `scripts/ci.sh`: read `cargo metadata
//! --format-version 1` JSON on stdin and fail unless every package in the
//! dependency graph is an in-repo path crate (DESIGN.md §5).
//!
//! Registry and git dependencies carry a non-null `source` field in the
//! metadata; path crates have `"source": null`. Parsing the real JSON via
//! `smart-json` replaces the earlier `tr | grep` regex scrape, which was
//! one metadata-format hiccup away from silently passing.
//!
//! ```text
//! cargo metadata --format-version 1 --offline | check_hermetic
//! ```

use std::io::Read;
use std::process::ExitCode;

fn run() -> Result<usize, String> {
    let mut text = String::new();
    std::io::stdin()
        .read_to_string(&mut text)
        .map_err(|e| format!("reading stdin: {e}"))?;
    let metadata = json::parse(&text).map_err(|e| format!("parsing cargo metadata: {e}"))?;

    let packages = metadata
        .field("packages")
        .and_then(json::Value::as_array)
        .ok_or("cargo metadata has no `packages` array")?;
    if packages.is_empty() {
        return Err("cargo metadata lists no packages".to_string());
    }

    let mut external = Vec::new();
    for package in packages {
        let name = package
            .field("name")
            .and_then(json::Value::as_str)
            .ok_or("package without a `name`")?;
        let source = package.field("source").ok_or_else(|| {
            format!("package {name} has no `source` field — metadata format changed?")
        })?;
        match source {
            json::Value::Null => {}
            other => external.push(format!(
                "{name} (source: {})",
                other.as_str().unwrap_or("<non-string>")
            )),
        }
    }
    if !external.is_empty() {
        return Err(format!(
            "external (non-path) dependencies found:\n  {}",
            external.join("\n  ")
        ));
    }
    Ok(packages.len())
}

fn main() -> ExitCode {
    match run() {
        Ok(count) => {
            println!("OK: {count} workspace-local packages, zero registry crates");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("ERROR: {message}");
            ExitCode::FAILURE
        }
    }
}
