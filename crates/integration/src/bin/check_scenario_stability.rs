#![forbid(unsafe_code)]
//! CI gate for the scenario ablation: parse a `BENCH_pr6.json` report
//! (written by `ablation_scenarios`) and require that
//!
//! * every row's skip accounting matched the injected corruption exactly
//!   (`skips_match`), and
//! * every *recoverable* row — row-level CSV chaos on a clean fleet under
//!   tolerant ingest — reproduced the clean baseline's selected set
//!   exactly (`jaccard == 1.0`).
//!
//! Fleet-level perturbation rows are reported but not gated: a firmware
//! re-map or a missing vendor batch is *supposed* to move the selection.
//!
//! ```text
//! check_scenario_stability <BENCH_pr6.json>
//! ```
//!
//! Exits non-zero (with a reason on stderr) when the file is missing,
//! malformed, has too few rows, or shows a recoverable row drifting.

use std::process::ExitCode;

/// The chaos table must keep at least this many scenario rows.
const MIN_ROWS: usize = 8;

fn run(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let value = json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let rows = value
        .field("rows")
        .and_then(json::Value::as_array)
        .ok_or_else(|| format!("{path} has no \"rows\" array"))?;
    if rows.len() < MIN_ROWS {
        return Err(format!(
            "{path} has only {} scenario rows; the chaos table must keep at least {MIN_ROWS}",
            rows.len()
        ));
    }
    let mut recoverable = 0usize;
    for (i, row) in rows.iter().enumerate() {
        let name = row
            .field("scenario")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("row {i} in {path} has no \"scenario\" name"))?;
        let jaccard = row
            .field("jaccard")
            .and_then(json::Value::as_f64)
            .filter(|j| j.is_finite() && (0.0..=1.0).contains(j))
            .ok_or_else(|| format!("row {name:?} in {path} has no jaccard in [0, 1]"))?;
        let skips_match = row
            .field("skips_match")
            .and_then(json::Value::as_bool)
            .ok_or_else(|| format!("row {name:?} in {path} has no \"skips_match\""))?;
        if !skips_match {
            return Err(format!(
                "row {name:?}: tolerant ingest's skip counts diverged from the injected \
                 corruption — accounting must be exact to the row"
            ));
        }
        let recovers = row
            .field("recovers_clean")
            .and_then(json::Value::as_bool)
            .ok_or_else(|| format!("row {name:?} in {path} has no \"recovers_clean\""))?;
        if recovers {
            recoverable += 1;
            if jaccard != 1.0 {
                return Err(format!(
                    "recoverable row {name:?} drifted: jaccard {jaccard:.3} != 1.0 — tolerant \
                     ingest of row-level chaos must reproduce the clean selected set exactly"
                ));
            }
        }
    }
    if recoverable == 0 {
        return Err(format!(
            "{path} gates nothing: no row is marked recovers_clean"
        ));
    }
    Ok(format!(
        "OK: {} scenario rows, {recoverable} recoverable rows all at jaccard 1.0 with exact \
         skip accounting",
        rows.len()
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: check_scenario_stability <BENCH_pr6.json>");
        return ExitCode::FAILURE;
    };
    match run(&path) {
        Ok(message) => {
            println!("{message}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("ERROR: {message}");
            ExitCode::FAILURE
        }
    }
}
