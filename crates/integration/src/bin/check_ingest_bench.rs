#![forbid(unsafe_code)]
//! CI gate for the ingestion benchmark: parse a `BENCH_pr5.json` report
//! (written by `bench_ingest`) and require that the sharded reader at one
//! worker is not slower than the single-threaded reference — the shard
//! split/merge machinery must pay for itself before any parallelism.
//!
//! ```text
//! check_ingest_bench <BENCH_pr5.json>
//! ```
//!
//! A 10% tolerance absorbs timer noise on loaded CI machines. The
//! multi-worker speedup is reported but not gated: it depends on the
//! machine's core count (recorded in the report), which CI cannot assume.
//!
//! Exits non-zero (with a reason on stderr) when the file is missing,
//! malformed, lacks a paired row, or shows the sharded reader losing.

use std::process::ExitCode;

/// Slowdown tolerated before the gate fails, as a ratio.
const TOLERANCE: f64 = 1.10;

fn mean_of(rows: &[json::Value], method: &str, path: &str) -> Result<f64, String> {
    let row = rows
        .iter()
        .find(|r| r.field("method").and_then(json::Value::as_str) == Some(method))
        .ok_or_else(|| format!("row {method:?} missing from {path}"))?;
    row.field("mean_seconds")
        .and_then(json::Value::as_f64)
        .filter(|s| s.is_finite() && *s > 0.0)
        .ok_or_else(|| format!("row {method:?} in {path} has no positive mean_seconds"))
}

fn run(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let value = json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let rows = value
        .field("rows")
        .and_then(json::Value::as_array)
        .ok_or_else(|| format!("{path} has no \"rows\" array"))?;
    let single = mean_of(rows, "ingest/single", path)?;
    let sharded_w1 = mean_of(rows, "ingest/sharded_w1", path)?;
    let sharded_w4 = mean_of(rows, "ingest/sharded_w4", path)?;
    if sharded_w1 > single * TOLERANCE {
        return Err(format!(
            "sharded ingest at 1 worker ({sharded_w1:.3}s) was SLOWER than the \
             single-threaded reader ({single:.3}s) beyond the {TOLERANCE:.2}x tolerance — \
             the shard machinery must not regress"
        ));
    }
    let cores = value
        .field("cores")
        .and_then(json::Value::as_f64)
        .unwrap_or(0.0);
    Ok(format!(
        "OK: ingest single {single:.3}s vs sharded_w1 {sharded_w1:.3}s ({:.2}x) \
         vs sharded_w4 {sharded_w4:.3}s ({:.2}x, {cores:.0} core(s))",
        single / sharded_w1,
        single / sharded_w4
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: check_ingest_bench <BENCH_pr5.json>");
        return ExitCode::FAILURE;
    };
    match run(&path) {
        Ok(message) => {
            println!("{message}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("ERROR: {message}");
            ExitCode::FAILURE
        }
    }
}
