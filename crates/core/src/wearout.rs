//! Wear-out grouping (§IV-D): detect the survival-rate change point over
//! `MWI_N` and split samples into low- and high-wear groups at it.

use smart_changepoint::bocpd::BocpdConfig;
use smart_changepoint::survival::{SurvivalCurve, WearoutChangePoint};
use smart_changepoint::ChangepointError;

/// Sample-row split at an `MWI_N` threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WearoutSplit {
    /// The reported `MWI_N` boundary: the largest integer `T` such that
    /// every sample with `MWI_N <= T` landed in the low group — i.e. the
    /// floor of the (possibly fractional) split threshold, clamped at 0.
    pub threshold: u32,
    /// Rows with `MWI_N <= threshold` (the low/high-wear group).
    pub low_rows: Vec<usize>,
    /// Rows with `MWI_N > threshold`.
    pub high_rows: Vec<usize>,
}

/// Detect the most significant survival-rate change point from per-drive
/// `(final MWI_N, failed)` pairs.
///
/// Returns `Ok(None)` when the wear-out range is too narrow (the MB1/MB2
/// case) or no significant change exists.
///
/// # Errors
///
/// Propagates BOCPD configuration errors.
pub fn detect_wearout_threshold(
    survival: &[(f64, bool)],
    bocpd: &BocpdConfig,
    z_threshold: f64,
    min_bucket: usize,
) -> Result<Option<WearoutChangePoint>, ChangepointError> {
    let curve = SurvivalCurve::from_drives(survival.iter().copied(), min_bucket);
    curve.detect_change_point(bocpd, z_threshold)
}

/// Split sample rows by their `MWI_N` value at `threshold` (low group:
/// `MWI_N <= threshold`).
///
/// The reported integer boundary is `threshold.floor()` (clamped at 0), so
/// it always agrees with the predicate actually applied: rounding 30.6 up
/// to 31 would claim rows at `MWI_N == 31` are low when the split put them
/// in the high group.
pub fn split_rows_by_mwi(mwi_per_sample: &[f64], threshold: f64) -> WearoutSplit {
    let mut low_rows = Vec::new();
    let mut high_rows = Vec::new();
    for (row, &mwi) in mwi_per_sample.iter().enumerate() {
        if mwi <= threshold {
            low_rows.push(row);
        } else {
            high_rows.push(row);
        }
    }
    WearoutSplit {
        threshold: threshold.floor().max(0.0) as u32,
        low_rows,
        high_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_partitions_rows() {
        let mwi = vec![10.0, 50.0, 30.0, 90.0, 30.0];
        let split = split_rows_by_mwi(&mwi, 30.0);
        assert_eq!(split.low_rows, vec![0, 2, 4]);
        assert_eq!(split.high_rows, vec![1, 3]);
        assert_eq!(split.threshold, 30);
        assert_eq!(split.low_rows.len() + split.high_rows.len(), mwi.len());
    }

    #[test]
    fn fractional_threshold_reports_floor() {
        // With a fractional threshold the reported integer must be the
        // floor: rounding 30.6 to 31 would claim MWI_N == 31 is low-wear
        // even though the split sent it to the high group.
        let mwi = vec![30.0, 30.5, 30.6, 31.0];
        let split = split_rows_by_mwi(&mwi, 30.6);
        assert_eq!(split.low_rows, vec![0, 1, 2]);
        assert_eq!(split.high_rows, vec![3]);
        assert_eq!(split.threshold, 30);
    }

    #[test]
    fn split_with_extreme_thresholds() {
        let mwi = vec![10.0, 50.0];
        let all_low = split_rows_by_mwi(&mwi, 100.0);
        assert_eq!(all_low.low_rows.len(), 2);
        assert!(all_low.high_rows.is_empty());
        let all_high = split_rows_by_mwi(&mwi, 0.0);
        assert!(all_high.low_rows.is_empty());
    }

    #[test]
    fn detects_kneed_fleet() {
        let drives: Vec<(f64, bool)> = (5..=95)
            .flat_map(|mwi| (0..25).map(move |i| (mwi as f64, i < if mwi < 35 { 12 } else { 1 })))
            .collect();
        let cp = detect_wearout_threshold(&drives, &BocpdConfig::default(), 2.5, 3)
            .unwrap()
            .expect("knee must be detected");
        assert!(
            (30..=40).contains(&cp.mwi_threshold),
            "got {}",
            cp.mwi_threshold
        );
    }

    #[test]
    fn narrow_range_gives_none() {
        let drives: Vec<(f64, bool)> = (97..=100)
            .flat_map(|mwi| (0..30).map(move |i| (mwi as f64, i < 2)))
            .collect();
        assert!(
            detect_wearout_threshold(&drives, &BocpdConfig::default(), 2.5, 3)
                .unwrap()
                .is_none()
        );
    }
}
