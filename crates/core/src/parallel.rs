//! Parallel execution of the preliminary rankers.
//!
//! The paper runs the five feature-selection approaches in parallel, which
//! is why WEFR's runtime tracks the slowest single approach (Exp#4,
//! Table VIII). Rankers run on scoped worker threads (`std::thread::scope`),
//! one per ranker by default, or on a bounded pool via
//! [`run_rankers_with_threads`].

use crate::error::WefrError;
use crate::ranker::FeatureRanker;
use crate::ranking::FeatureRanking;
use smart_stats::FeatureMatrix;

/// Run every ranker over the same data, in parallel, returning the named
/// rankings in input order.
///
/// Equivalent to [`run_rankers_with_threads`] with one worker per ranker.
///
/// # Errors
///
/// Returns [`WefrError::RankerFailed`] for the first ranker (in input
/// order) that failed, and [`WefrError::InvalidInput`] when no rankers are
/// given.
pub fn run_rankers(
    rankers: &[Box<dyn FeatureRanker>],
    data: &FeatureMatrix,
    labels: &[bool],
) -> Result<Vec<(String, FeatureRanking)>, WefrError> {
    run_rankers_with_threads(rankers, data, labels, rankers.len().max(1))
}

/// Run every ranker over the same data on at most `max_threads` scoped
/// worker threads, returning the named rankings in input order.
///
/// Rankers are dealt to workers round-robin by index, so the assignment —
/// and therefore the result, which is ordered by ranker index regardless of
/// completion order — is independent of scheduling. Results are
/// bit-identical across `max_threads` values; the knob only trades latency
/// for parallelism.
///
/// # Errors
///
/// Returns [`WefrError::RankerFailed`] for the first ranker (in input
/// order) that failed, and [`WefrError::InvalidInput`] when no rankers are
/// given or `max_threads` is zero.
pub fn run_rankers_with_threads(
    rankers: &[Box<dyn FeatureRanker>],
    data: &FeatureMatrix,
    labels: &[bool],
    max_threads: usize,
) -> Result<Vec<(String, FeatureRanking)>, WefrError> {
    if rankers.is_empty() {
        return Err(WefrError::InvalidInput {
            message: "no rankers configured".to_string(),
        });
    }
    if max_threads == 0 {
        return Err(WefrError::InvalidInput {
            message: "max_threads must be at least 1".to_string(),
        });
    }

    let workers = max_threads.min(rankers.len());
    let fanout = telemetry::span!("rankers", total = rankers.len(), workers = workers);
    let fanout_id = fanout.id();
    let results: Vec<Result<FeatureRanking, WefrError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                scope.spawn(move || {
                    rankers
                        .iter()
                        .enumerate()
                        .skip(worker)
                        .step_by(workers)
                        .map(|(index, ranker)| {
                            let span = telemetry::span_child_of(fanout_id, ranker.name());
                            let result = ranker.rank(data, labels);
                            span.record("ok", result.is_ok());
                            telemetry::counter_add("rankers.completed", 1);
                            (index, result)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut indexed: Vec<(usize, Result<FeatureRanking, WefrError>)> = handles
            .into_iter()
            // lint:allow(panic-free) a worker panic is already a bug; join
            // can only fail by propagating it, and re-raising here keeps the
            // scoped-thread invariant visible instead of losing results
            .flat_map(|h| h.join().expect("ranker thread must not panic"))
            .collect();
        indexed.sort_by_key(|(index, _)| *index);
        indexed.into_iter().map(|(_, result)| result).collect()
    });

    rankers
        .iter()
        .zip(results)
        .map(|(ranker, result)| {
            result
                .map(|ranking| (ranker.name().to_string(), ranking))
                .map_err(|e| {
                    telemetry::error!(
                        "rankers",
                        format!("ranker {} failed", ranker.name()),
                        ranker = ranker.name(),
                        detail = e.to_string(),
                    );
                    WefrError::RankerFailed {
                        ranker: ranker.name(),
                        message: e.to_string(),
                    }
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rankers::default_rankers;

    fn data() -> (FeatureMatrix, Vec<bool>) {
        let labels: Vec<bool> = (0..60).map(|i| i % 3 == 0).collect();
        let signal: Vec<f64> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| if l { 10.0 } else { 0.0 } + (i % 7) as f64 * 0.1)
            .collect();
        let noise: Vec<f64> = (0..60).map(|i| ((i * 31) % 17) as f64).collect();
        (
            FeatureMatrix::from_columns(vec!["signal".into(), "noise".into()], vec![signal, noise])
                .unwrap(),
            labels,
        )
    }

    #[test]
    fn runs_all_five_in_parallel() {
        let (m, l) = data();
        let rankers = default_rankers(1);
        let results = run_rankers(&rankers, &m, &l).unwrap();
        assert_eq!(results.len(), 5);
        for (name, ranking) in &results {
            assert_eq!(
                ranking.top_names(1),
                vec!["signal"],
                "ranker {name} missed the signal"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (m, l) = data();
        let rankers = default_rankers(2);
        let parallel = run_rankers(&rankers, &m, &l).unwrap();
        for (ranker, (name, ranking)) in rankers.iter().zip(&parallel) {
            assert_eq!(ranker.name(), name);
            assert_eq!(&ranker.rank(&m, &l).unwrap(), ranking);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let (m, l) = data();
        let rankers = default_rankers(4);
        let baseline = run_rankers_with_threads(&rankers, &m, &l, 1).unwrap();
        for threads in [2, 3, 5, 8] {
            let run = run_rankers_with_threads(&rankers, &m, &l, threads).unwrap();
            assert_eq!(run, baseline, "results diverged at {threads} threads");
        }
    }

    #[test]
    fn failure_is_attributed_to_the_ranker() {
        let (m, _) = data();
        let one_class = vec![true; m.n_rows()];
        let rankers = default_rankers(3);
        let err = run_rankers(&rankers, &m, &one_class).unwrap_err();
        assert!(matches!(
            err,
            WefrError::RankerFailed {
                ranker: "pearson",
                ..
            }
        ));
    }

    #[test]
    fn empty_ranker_list_is_invalid() {
        let (m, l) = data();
        assert!(run_rankers(&[], &m, &l).is_err());
        assert!(run_rankers_with_threads(&default_rankers(1), &m, &l, 0).is_err());
    }
}
