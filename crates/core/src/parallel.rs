//! Parallel execution of the preliminary rankers.
//!
//! The paper runs the five feature-selection approaches in parallel, which
//! is why WEFR's runtime tracks the slowest single approach (Exp#4,
//! Table VIII). Rankers run on scoped worker threads (crossbeam), one per
//! ranker.

use crate::error::WefrError;
use crate::ranker::FeatureRanker;
use crate::ranking::FeatureRanking;
use smart_stats::FeatureMatrix;

/// Run every ranker over the same data, in parallel, returning the named
/// rankings in input order.
///
/// # Errors
///
/// Returns [`WefrError::RankerFailed`] for the first ranker (in input
/// order) that failed, and [`WefrError::InvalidInput`] when no rankers are
/// given.
pub fn run_rankers(
    rankers: &[Box<dyn FeatureRanker>],
    data: &FeatureMatrix,
    labels: &[bool],
) -> Result<Vec<(String, FeatureRanking)>, WefrError> {
    if rankers.is_empty() {
        return Err(WefrError::InvalidInput {
            message: "no rankers configured".to_string(),
        });
    }

    let results: Vec<Result<FeatureRanking, WefrError>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = rankers
            .iter()
            .map(|ranker| scope.spawn(move |_| ranker.rank(data, labels)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ranker thread must not panic"))
            .collect()
    })
    .expect("crossbeam scope must not panic");

    rankers
        .iter()
        .zip(results)
        .map(|(ranker, result)| {
            result
                .map(|ranking| (ranker.name().to_string(), ranking))
                .map_err(|e| WefrError::RankerFailed {
                    ranker: ranker.name(),
                    message: e.to_string(),
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rankers::default_rankers;

    fn data() -> (FeatureMatrix, Vec<bool>) {
        let labels: Vec<bool> = (0..60).map(|i| i % 3 == 0).collect();
        let signal: Vec<f64> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| if l { 10.0 } else { 0.0 } + (i % 7) as f64 * 0.1)
            .collect();
        let noise: Vec<f64> = (0..60).map(|i| ((i * 31) % 17) as f64).collect();
        (
            FeatureMatrix::from_columns(
                vec!["signal".into(), "noise".into()],
                vec![signal, noise],
            )
            .unwrap(),
            labels,
        )
    }

    #[test]
    fn runs_all_five_in_parallel() {
        let (m, l) = data();
        let rankers = default_rankers(1);
        let results = run_rankers(&rankers, &m, &l).unwrap();
        assert_eq!(results.len(), 5);
        for (name, ranking) in &results {
            assert_eq!(
                ranking.top_names(1),
                vec!["signal"],
                "ranker {name} missed the signal"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (m, l) = data();
        let rankers = default_rankers(2);
        let parallel = run_rankers(&rankers, &m, &l).unwrap();
        for (ranker, (name, ranking)) in rankers.iter().zip(&parallel) {
            assert_eq!(ranker.name(), name);
            assert_eq!(&ranker.rank(&m, &l).unwrap(), ranking);
        }
    }

    #[test]
    fn failure_is_attributed_to_the_ranker() {
        let (m, _) = data();
        let one_class = vec![true; m.n_rows()];
        let rankers = default_rankers(3);
        let err = run_rankers(&rankers, &m, &one_class).unwrap_err();
        assert!(matches!(err, WefrError::RankerFailed { ranker: "pearson", .. }));
    }

    #[test]
    fn empty_ranker_list_is_invalid() {
        let (m, l) = data();
        assert!(run_rankers(&[], &m, &l).is_err());
    }
}
