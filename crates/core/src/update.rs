//! Periodic re-selection scheduling (§IV-D): WEFR "periodically checks the
//! change points of MWI_N (one week in our case) and updates the selected
//! features".

/// What a periodic check concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateDecision {
    /// First check ever: select features now.
    InitialSelection,
    /// A change point appeared where there was none: re-select per group.
    ThresholdAppeared {
        /// The new threshold.
        threshold: u32,
    },
    /// The change point disappeared: fall back to global selection.
    ThresholdDisappeared,
    /// The change point moved by more than the tolerance: re-select.
    ThresholdMoved {
        /// Previous threshold.
        from: u32,
        /// New threshold.
        to: u32,
    },
    /// Nothing material changed: keep the current features.
    Unchanged,
}

impl UpdateDecision {
    /// Whether the decision requires re-running feature selection.
    pub fn requires_reselection(&self) -> bool {
        !matches!(self, UpdateDecision::Unchanged)
    }
}

/// Tracks when the wear-out change point was last checked and what it was,
/// and decides when feature selection must be refreshed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateMonitor {
    period_days: u32,
    tolerance: u32,
    last_check_day: Option<u32>,
    last_threshold: Option<Option<u32>>,
}

impl UpdateMonitor {
    /// A monitor checking every `period_days` (the paper uses 7), treating
    /// threshold moves of at most `tolerance` MWI points as noise.
    pub fn new(period_days: u32, tolerance: u32) -> Self {
        UpdateMonitor {
            period_days: period_days.max(1),
            tolerance,
            last_check_day: None,
            last_threshold: None,
        }
    }

    /// The paper's weekly cadence with a 1-point tolerance.
    pub fn weekly() -> Self {
        UpdateMonitor::new(7, 1)
    }

    /// Whether a check is due on `day`.
    pub fn due(&self, day: u32) -> bool {
        match self.last_check_day {
            None => true,
            // Saturating: `last + period` could wrap near `u32::MAX`, and a
            // check earlier than the last recorded one is simply not due.
            Some(last) => day.saturating_sub(last) >= self.period_days,
        }
    }

    /// Record the outcome of a change-point check on `day` and decide what
    /// to do. `threshold` is the currently detected change point, if any.
    ///
    /// The comparison baseline is the last *acted-upon* threshold — the one
    /// feature selection last ran against — not the last observed one.
    /// Re-baselining on every check would let a slow drift (42→43→44→…,
    /// each step within tolerance) walk arbitrarily far without ever
    /// triggering a re-selection.
    pub fn record_check(&mut self, day: u32, threshold: Option<u32>) -> UpdateDecision {
        let previous = self.last_threshold;
        self.last_check_day = Some(day);
        let decision = match (previous, threshold) {
            (None, _) => UpdateDecision::InitialSelection,
            (Some(None), None) => UpdateDecision::Unchanged,
            (Some(None), Some(t)) => UpdateDecision::ThresholdAppeared { threshold: t },
            (Some(Some(_)), None) => UpdateDecision::ThresholdDisappeared,
            (Some(Some(old)), Some(new)) => {
                if old.abs_diff(new) > self.tolerance {
                    UpdateDecision::ThresholdMoved { from: old, to: new }
                } else {
                    UpdateDecision::Unchanged
                }
            }
        };
        if decision.requires_reselection() {
            self.last_threshold = Some(threshold);
        }
        decision
    }

    /// The threshold the monitor last acted upon (`None` = never checked;
    /// `Some(None)` = checked, no change point). Checks that returned
    /// [`UpdateDecision::Unchanged`] do not move this baseline.
    pub fn last_threshold(&self) -> Option<Option<u32>> {
        self.last_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_check_is_initial_selection() {
        let mut m = UpdateMonitor::weekly();
        assert!(m.due(0));
        assert_eq!(
            m.record_check(0, Some(40)),
            UpdateDecision::InitialSelection
        );
        assert!(UpdateDecision::InitialSelection.requires_reselection());
    }

    #[test]
    fn weekly_cadence() {
        let mut m = UpdateMonitor::weekly();
        m.record_check(0, None);
        assert!(!m.due(3));
        assert!(!m.due(6));
        assert!(m.due(7));
        assert!(m.due(30));
    }

    #[test]
    fn threshold_lifecycle() {
        let mut m = UpdateMonitor::weekly();
        m.record_check(0, None);
        assert_eq!(
            m.record_check(7, Some(42)),
            UpdateDecision::ThresholdAppeared { threshold: 42 }
        );
        assert_eq!(m.record_check(14, Some(42)), UpdateDecision::Unchanged);
        // Within tolerance: still unchanged — and the baseline stays at
        // the acted-upon 42, not the observed 43.
        assert_eq!(m.record_check(21, Some(43)), UpdateDecision::Unchanged);
        assert_eq!(
            m.record_check(28, Some(50)),
            UpdateDecision::ThresholdMoved { from: 42, to: 50 }
        );
        assert_eq!(
            m.record_check(35, None),
            UpdateDecision::ThresholdDisappeared
        );
        assert_eq!(m.record_check(42, None), UpdateDecision::Unchanged);
    }

    #[test]
    fn unchanged_requires_no_reselection() {
        assert!(!UpdateDecision::Unchanged.requires_reselection());
        assert!(UpdateDecision::ThresholdDisappeared.requires_reselection());
    }

    #[test]
    fn zero_period_is_clamped() {
        let mut m = UpdateMonitor::new(0, 0);
        m.record_check(5, None);
        assert!(!m.due(5));
        assert!(m.due(6));
    }

    #[test]
    fn slow_drift_eventually_triggers_reselection() {
        // Regression: each weekly step is within tolerance, but the
        // cumulative drift from the last acted-upon threshold is not. The
        // old code re-baselined every week and never fired.
        let mut m = UpdateMonitor::weekly();
        m.record_check(0, Some(42)); // InitialSelection, baseline 42
        assert_eq!(m.record_check(7, Some(43)), UpdateDecision::Unchanged);
        assert_eq!(
            m.record_check(14, Some(44)),
            UpdateDecision::ThresholdMoved { from: 42, to: 44 }
        );
        // The move re-baselines to 44; the next in-tolerance step is quiet.
        assert_eq!(m.record_check(21, Some(45)), UpdateDecision::Unchanged);
        assert_eq!(m.last_threshold(), Some(Some(44)));
    }

    #[test]
    fn due_near_u32_max_does_not_overflow() {
        // Regression: `last + period` wrapped (release) or panicked (debug)
        // when the last check day sat near u32::MAX.
        let mut m = UpdateMonitor::weekly();
        m.record_check(u32::MAX - 3, None);
        assert!(!m.due(u32::MAX - 3));
        assert!(!m.due(u32::MAX));
        // A day earlier than the last check is not due either.
        assert!(!m.due(0));
        let mut recent = UpdateMonitor::weekly();
        recent.record_check(u32::MAX - 10, None);
        assert!(recent.due(u32::MAX - 3));
    }

    #[test]
    fn last_threshold_reports_state() {
        let mut m = UpdateMonitor::weekly();
        assert_eq!(m.last_threshold(), None);
        m.record_check(0, Some(30));
        assert_eq!(m.last_threshold(), Some(Some(30)));
        m.record_check(7, None);
        assert_eq!(m.last_threshold(), Some(None));
    }
}
