//! Error type for WEFR.

use smart_changepoint::ChangepointError;
use smart_complexity::ComplexityError;
use smart_stats::StatsError;
use smart_trees::TreesError;
use std::fmt;

/// Errors produced by WEFR feature selection.
#[derive(Debug)]
#[non_exhaustive]
pub enum WefrError {
    /// A statistical primitive failed.
    Stats(StatsError),
    /// A tree learner failed.
    Trees(TreesError),
    /// The complexity-based threshold failed.
    Complexity(ComplexityError),
    /// Change-point detection failed.
    Changepoint(ChangepointError),
    /// The selection input was invalid.
    InvalidInput {
        /// Description of the violation.
        message: String,
    },
    /// A named ranker failed while running in the ensemble.
    RankerFailed {
        /// The ranker's name.
        ranker: &'static str,
        /// The underlying error, stringified (rankers run on worker
        /// threads).
        message: String,
    },
}

impl fmt::Display for WefrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WefrError::Stats(e) => write!(f, "statistics error: {e}"),
            WefrError::Trees(e) => write!(f, "tree learner error: {e}"),
            WefrError::Complexity(e) => write!(f, "complexity measure error: {e}"),
            WefrError::Changepoint(e) => write!(f, "change-point error: {e}"),
            WefrError::InvalidInput { message } => write!(f, "invalid input: {message}"),
            WefrError::RankerFailed { ranker, message } => {
                write!(f, "ranker {ranker} failed: {message}")
            }
        }
    }
}

impl std::error::Error for WefrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WefrError::Stats(e) => Some(e),
            WefrError::Trees(e) => Some(e),
            WefrError::Complexity(e) => Some(e),
            WefrError::Changepoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for WefrError {
    fn from(e: StatsError) -> Self {
        WefrError::Stats(e)
    }
}

impl From<TreesError> for WefrError {
    fn from(e: TreesError) -> Self {
        WefrError::Trees(e)
    }
}

impl From<ComplexityError> for WefrError {
    fn from(e: ComplexityError) -> Self {
        WefrError::Complexity(e)
    }
}

impl From<ChangepointError> for WefrError {
    fn from(e: ChangepointError) -> Self {
        WefrError::Changepoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources_chain() {
        use std::error::Error;
        let e = WefrError::from(StatsError::empty("pearson"));
        assert!(e.to_string().contains("pearson"));
        assert!(e.source().is_some());
        let e = WefrError::InvalidInput {
            message: "no labels".into(),
        };
        assert!(e.to_string().contains("no labels"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WefrError>();
    }
}
