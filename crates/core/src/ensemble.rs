//! Robust ensembling of feature rankings (§IV-B of the paper): Kendall-tau
//! distances between rankings, outlier removal at the 95% confidence level,
//! and mean-rank aggregation.

use crate::error::WefrError;
use crate::ranking::FeatureRanking;
use smart_stats::descriptive::{mean, population_std};
use smart_stats::kendall::kendall_tau_distance;

/// The paper's outlier threshold: 1.96 standard deviations (95% confidence).
pub const PAPER_OUTLIER_SIGMA: f64 = 1.96;

/// Diagnostics for one ranker's participation in the ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct RankerOutcome {
    /// Ranker name.
    pub ranker: String,
    /// Mean Kendall-tau distance to the other rankers (`D̄`).
    pub mean_distance: f64,
    /// Whether the ranking survived outlier removal.
    pub kept: bool,
}

/// The aggregated ensemble ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleRanking {
    /// Feature names, in column order.
    pub names: Vec<String>,
    /// Mean rank position of each feature across the kept rankings (lower =
    /// better), in column order.
    pub mean_positions: Vec<f64>,
    /// Column indices ordered best-first.
    pub order: Vec<usize>,
    /// Per-ranker diagnostics.
    pub outcomes: Vec<RankerOutcome>,
}

/// Combine named rankings into a robust ensemble ranking.
///
/// A ranking whose mean Kendall-tau distance to the others (`D̄`) exceeds
/// the mean of all `D̄` by more than `outlier_sigma` standard deviations is
/// discarded as biased (the check is one-sided: deviating *less* than the
/// others is agreement, not bias). The final ranking is the ascending order
/// of mean rank positions over the kept rankings.
///
/// # Errors
///
/// Returns [`WefrError::InvalidInput`] when fewer than two rankings are
/// given, the rankings disagree on the feature set, or `outlier_sigma` is
/// not positive.
pub fn ensemble_rankings(
    rankings: &[(String, FeatureRanking)],
    outlier_sigma: f64,
) -> Result<EnsembleRanking, WefrError> {
    if rankings.len() < 2 {
        return Err(WefrError::InvalidInput {
            message: format!(
                "ensembling needs at least 2 rankings, got {}",
                rankings.len()
            ),
        });
    }
    if outlier_sigma <= 0.0 {
        return Err(WefrError::InvalidInput {
            message: "outlier_sigma must be positive".to_string(),
        });
    }
    let names = rankings[0].1.names();
    for (ranker, ranking) in rankings {
        if ranking.names() != names {
            return Err(WefrError::InvalidInput {
                message: format!("ranker {ranker} ranked a different feature set"),
            });
        }
    }

    let span = telemetry::span!("ensemble", rankers = rankings.len());

    // Pairwise Kendall-tau distances (symmetric, so each pair is computed
    // once) and per-ranker means.
    let k = rankings.len();
    let mut distances = vec![0u64; k * k];
    for i in 0..k {
        for j in (i + 1)..k {
            let d = kendall_tau_distance(rankings[i].1.order(), rankings[j].1.order())?;
            distances[i * k + j] = d;
            distances[j * k + i] = d;
            telemetry::histogram_observe("ensemble.pair_distance", d as f64);
            telemetry::debug!(
                "ensemble",
                format!("kendall distance {} vs {}", rankings[i].0, rankings[j].0),
                distance = d,
            );
        }
    }
    let mean_d: Vec<f64> = (0..k)
        .map(|i| distances[i * k..(i + 1) * k].iter().sum::<u64>() as f64 / (k - 1) as f64)
        .collect();

    // One-sided outlier removal at `outlier_sigma` standard deviations.
    let mu = mean(&mean_d)?;
    let sigma = population_std(&mean_d)?;
    let kept_mask: Vec<bool> = mean_d
        .iter()
        .map(|&d| sigma == 0.0 || d - mu <= outlier_sigma * sigma)
        .collect();
    // Degenerate safety: never discard so many that fewer than two remain.
    let kept_count = kept_mask.iter().filter(|&&m| m).count();
    let kept_mask = if kept_count < 2 {
        telemetry::info!(
            "ensemble",
            "outlier removal would leave fewer than two rankings; keeping all",
            flagged = k - kept_count,
        );
        vec![true; k]
    } else {
        kept_mask
    };
    for (i, (ranker, _)) in rankings.iter().enumerate() {
        if kept_mask[i] {
            telemetry::debug!(
                "ensemble",
                format!("kept ranking {ranker}"),
                ranker = ranker.as_str(),
                mean_distance = mean_d[i],
            );
        } else {
            telemetry::info!(
                "ensemble",
                format!("discarded outlier ranking {ranker}"),
                ranker = ranker.as_str(),
                mean_distance = mean_d[i],
                mu = mu,
                sigma = sigma,
            );
        }
    }
    span.record("kept", kept_mask.iter().filter(|&&m| m).count());
    span.record("discarded", kept_mask.iter().filter(|&&m| !m).count());

    // Mean rank position per feature over the kept rankings.
    let n = names.len();
    let mut mean_positions = vec![0.0; n];
    let mut kept_total = 0usize;
    for (i, (_, ranking)) in rankings.iter().enumerate() {
        if !kept_mask[i] {
            continue;
        }
        kept_total += 1;
        for (feature, pos) in ranking.positions().into_iter().enumerate() {
            mean_positions[feature] += pos as f64;
        }
    }
    for p in &mut mean_positions {
        *p /= kept_total as f64;
    }

    // Ascending mean position = best first; ties break by column index.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        mean_positions[a]
            .total_cmp(&mean_positions[b])
            .then(a.cmp(&b))
    });

    let outcomes = rankings
        .iter()
        .enumerate()
        .map(|(i, (ranker, _))| RankerOutcome {
            ranker: ranker.clone(),
            mean_distance: mean_d[i],
            kept: kept_mask[i],
        })
        .collect();

    Ok(EnsembleRanking {
        names: names.to_vec(),
        mean_positions,
        order,
        outcomes,
    })
}

impl EnsembleRanking {
    /// The top `n` feature names, best first.
    pub fn top_names(&self, n: usize) -> Vec<&str> {
        self.order
            .iter()
            .take(n)
            .map(|&c| self.names[c].as_str())
            .collect()
    }

    /// Names of the rankers that were discarded as outliers.
    pub fn discarded(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| !o.kept)
            .map(|o| o.ranker.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranking_from_order(names: &[&str], order: &[usize]) -> FeatureRanking {
        // Convert an explicit order into scores (higher = earlier).
        let mut scores = vec![0.0; names.len()];
        for (pos, &col) in order.iter().enumerate() {
            scores[col] = (names.len() - pos) as f64;
        }
        FeatureRanking::from_scores(names.iter().map(|s| s.to_string()).collect(), scores).unwrap()
    }

    const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];

    #[test]
    fn agreement_passes_through() {
        let order = [2usize, 0, 1, 4, 3];
        let rankings: Vec<(String, FeatureRanking)> = (0..3)
            .map(|i| (format!("r{i}"), ranking_from_order(&NAMES, &order)))
            .collect();
        let e = ensemble_rankings(&rankings, PAPER_OUTLIER_SIGMA).unwrap();
        assert_eq!(e.order, order.to_vec());
        assert!(e.discarded().is_empty());
    }

    #[test]
    fn outlier_ranking_is_discarded() {
        // Four near-identical rankings and one fully reversed one.
        let base = [0usize, 1, 2, 3, 4];
        let near = [1usize, 0, 2, 3, 4];
        let reversed = [4usize, 3, 2, 1, 0];
        let rankings = vec![
            ("r0".to_string(), ranking_from_order(&NAMES, &base)),
            ("r1".to_string(), ranking_from_order(&NAMES, &base)),
            ("r2".to_string(), ranking_from_order(&NAMES, &near)),
            ("r3".to_string(), ranking_from_order(&NAMES, &base)),
            ("bad".to_string(), ranking_from_order(&NAMES, &reversed)),
        ];
        let e = ensemble_rankings(&rankings, PAPER_OUTLIER_SIGMA).unwrap();
        assert_eq!(e.discarded(), vec!["bad"]);
        assert_eq!(e.order[0], 0);
        assert_eq!(*e.order.last().unwrap(), 4);
    }

    #[test]
    fn mean_rank_aggregation_averages_positions() {
        // Two rankings that swap a and b: both end up tied, tie broken by
        // column index.
        let r1 = ranking_from_order(&NAMES, &[0, 1, 2, 3, 4]);
        let r2 = ranking_from_order(&NAMES, &[1, 0, 2, 3, 4]);
        let e = ensemble_rankings(
            &[("x".to_string(), r1), ("y".to_string(), r2)],
            PAPER_OUTLIER_SIGMA,
        )
        .unwrap();
        assert!((e.mean_positions[0] - 0.5).abs() < 1e-12);
        assert!((e.mean_positions[1] - 0.5).abs() < 1e-12);
        assert_eq!(e.order[0], 0); // tie broken by index
        assert_eq!(e.order[1], 1);
    }

    #[test]
    fn never_discards_below_two() {
        // Two rankings that disagree wildly: neither may be discarded.
        let r1 = ranking_from_order(&NAMES, &[0, 1, 2, 3, 4]);
        let r2 = ranking_from_order(&NAMES, &[4, 3, 2, 1, 0]);
        let e = ensemble_rankings(
            &[("x".to_string(), r1), ("y".to_string(), r2)],
            PAPER_OUTLIER_SIGMA,
        )
        .unwrap();
        assert!(e.discarded().is_empty());
    }

    #[test]
    fn rejects_bad_inputs() {
        let r = ranking_from_order(&NAMES, &[0, 1, 2, 3, 4]);
        assert!(ensemble_rankings(&[("x".to_string(), r.clone())], 1.96).is_err());
        let different = ranking_from_order(&["p", "q", "r", "s", "t"], &[0, 1, 2, 3, 4]);
        assert!(ensemble_rankings(
            &[("x".to_string(), r.clone()), ("y".to_string(), different)],
            1.96
        )
        .is_err());
        let r2 = ranking_from_order(&NAMES, &[1, 0, 2, 3, 4]);
        assert!(ensemble_rankings(&[("x".to_string(), r), ("y".to_string(), r2)], 0.0).is_err());
    }

    #[test]
    fn outcomes_report_distances() {
        let r1 = ranking_from_order(&NAMES, &[0, 1, 2, 3, 4]);
        let r2 = ranking_from_order(&NAMES, &[1, 0, 2, 3, 4]);
        let e = ensemble_rankings(
            &[("x".to_string(), r1), ("y".to_string(), r2)],
            PAPER_OUTLIER_SIGMA,
        )
        .unwrap();
        assert_eq!(e.outcomes.len(), 2);
        // One adjacent swap = Kendall distance 1 between the two.
        assert!((e.outcomes[0].mean_distance - 1.0).abs() < 1e-12);
        assert!((e.outcomes[1].mean_distance - 1.0).abs() < 1e-12);
    }
}
