#![forbid(unsafe_code)]
//! **WEFR** — Wear-out-updating Ensemble Feature Ranking.
//!
//! A from-scratch Rust reproduction of the feature-selection method of
//! *"General Feature Selection for Failure Prediction in Large-scale SSD
//! Deployment"* (Xu et al., DSN 2021). WEFR selects SMART attributes as
//! learning features for SSD failure prediction in an automated and robust
//! manner:
//!
//! 1. **Preliminary ranking** ([`rankers`], [`parallel`]) — five
//!    feature-selection approaches (Pearson, Spearman, J-index,
//!    Random-Forest importance, gradient-boosting importance) rank all
//!    features, in parallel.
//! 2. **Robust ensembling** ([`ensemble`]) — rankings whose mean
//!    Kendall-tau distance to the others is a >1.96σ outlier are discarded;
//!    the rest aggregate by mean rank.
//! 3. **Automated count** (via [`smart_complexity`]) — the ranking is cut
//!    where the complexity-plus-size score `e = α·F + (1−α)·ξ` stops
//!    improving.
//! 4. **Wear-out updating** ([`wearout`], [`update`]) — when the survival
//!    rate over `MWI_N` has a significant Bayesian change point, samples
//!    split into low/high-wear groups and steps 1–3 rerun per group;
//!    a weekly [`update::UpdateMonitor`] keeps selections fresh.
//!
//! The entry point is [`Wefr::select`]; see its example.

pub mod ensemble;
pub mod error;
pub mod parallel;
pub mod ranker;
pub mod rankers;
pub mod ranking;
pub mod update;
pub mod wearout;
pub mod wefr;

pub use ensemble::{ensemble_rankings, EnsembleRanking, RankerOutcome, PAPER_OUTLIER_SIGMA};
pub use error::WefrError;
pub use ranker::FeatureRanker;
pub use rankers::{
    default_rankers, ForestRanker, GradientBoostingRanker, JIndexRanker, PearsonRanker,
    SpearmanRanker,
};
pub use ranking::FeatureRanking;
pub use update::{UpdateDecision, UpdateMonitor};
pub use wefr::{GroupSelection, SelectionInput, WearoutSelection, Wefr, WefrConfig, WefrSelection};
