//! Feature rankings: the common output shape of every preliminary
//! feature-selection approach.

use crate::error::WefrError;
use smart_stats::rank::{descending_order, positions_from_order};

/// A ranking of learning features by importance.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureRanking {
    names: Vec<String>,
    scores: Vec<f64>,
    order: Vec<usize>,
}

impl FeatureRanking {
    /// Build a ranking from per-feature importance scores (higher = more
    /// important). Ties break deterministically by column index.
    ///
    /// # Errors
    ///
    /// Returns [`WefrError::InvalidInput`] when `names` and `scores` differ
    /// in length, the input is empty, or a score is NaN.
    pub fn from_scores(names: Vec<String>, scores: Vec<f64>) -> Result<Self, WefrError> {
        if names.len() != scores.len() {
            return Err(WefrError::InvalidInput {
                message: format!("{} names but {} scores", names.len(), scores.len()),
            });
        }
        let order = descending_order(&scores).map_err(WefrError::Stats)?;
        Ok(FeatureRanking {
            names,
            scores,
            order,
        })
    }

    /// Number of ranked features.
    pub fn n_features(&self) -> usize {
        self.names.len()
    }

    /// Feature names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Importance scores, in column order.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Column indices ordered best-first.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// 0-based rank position of each column (`positions()[col]`).
    pub fn positions(&self) -> Vec<usize> {
        positions_from_order(&self.order)
    }

    /// The top `n` feature names, best first (clamped to the total count).
    pub fn top_names(&self, n: usize) -> Vec<&str> {
        self.order
            .iter()
            .take(n)
            .map(|&c| self.names[c].as_str())
            .collect()
    }

    /// The bottom `n` feature names, worst last (i.e. in ranking order).
    pub fn bottom_names(&self, n: usize) -> Vec<&str> {
        let start = self.order.len().saturating_sub(n);
        self.order[start..]
            .iter()
            .map(|&c| self.names[c].as_str())
            .collect()
    }

    /// The score of a feature by name.
    pub fn score_of(&self, name: &str) -> Option<f64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.scores[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranking() -> FeatureRanking {
        FeatureRanking::from_scores(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            vec![0.1, 0.9, 0.5, 0.9],
        )
        .unwrap()
    }

    #[test]
    fn order_is_descending_with_deterministic_ties() {
        let r = ranking();
        assert_eq!(r.order(), &[1, 3, 2, 0]);
        assert_eq!(r.positions(), vec![3, 0, 2, 1]);
    }

    #[test]
    fn top_and_bottom_names() {
        let r = ranking();
        assert_eq!(r.top_names(2), vec!["b", "d"]);
        assert_eq!(r.bottom_names(2), vec!["c", "a"]);
        assert_eq!(r.top_names(99).len(), 4);
    }

    #[test]
    fn score_lookup() {
        let r = ranking();
        assert_eq!(r.score_of("c"), Some(0.5));
        assert_eq!(r.score_of("z"), None);
    }

    #[test]
    fn rejects_mismatched_and_nan() {
        assert!(FeatureRanking::from_scores(vec!["a".into()], vec![]).is_err());
        assert!(FeatureRanking::from_scores(vec!["a".into()], vec![f64::NAN]).is_err());
        assert!(FeatureRanking::from_scores(vec![], vec![]).is_err());
    }
}
