//! The `FeatureRanker` trait: one preliminary feature-selection approach.

use crate::error::WefrError;
use crate::ranking::FeatureRanking;
use smart_stats::FeatureMatrix;

/// A preliminary feature-selection approach: scores every learning feature
/// against the failure label and produces a [`FeatureRanking`].
///
/// Implementations must be `Send + Sync` — WEFR runs its rankers in
/// parallel (§V, Exp#4 of the paper).
pub trait FeatureRanker: Send + Sync {
    /// Human-readable name (used in reports and outlier diagnostics).
    fn name(&self) -> &'static str;

    /// Rank all features of `data` against `labels`.
    ///
    /// # Errors
    ///
    /// Implementations surface their underlying numeric errors; WEFR maps
    /// them to [`WefrError::RankerFailed`] with the ranker's name attached.
    fn rank(&self, data: &FeatureMatrix, labels: &[bool]) -> Result<FeatureRanking, WefrError>;
}

/// Pairwise deletion for missing data: one column's `(value, paired)` rows
/// with the NaN cells dropped.
///
/// Returns `None` when the column is fully observed, so clean columns take
/// the untouched (and bit-identical) fast path. Statistical rankers score a
/// column with missing cells on its observed rows only; if too few remain
/// (or the surviving labels collapse to one class) the column scores 0.0 —
/// the same convention `pearson` uses for constant series.
pub(crate) fn observed_only<T: Copy>(column: &[f64], paired: &[T]) -> Option<(Vec<f64>, Vec<T>)> {
    if !column.iter().any(|v| v.is_nan()) {
        return None;
    }
    Some(
        column
            .iter()
            .zip(paired)
            .filter(|(v, _)| !v.is_nan())
            .map(|(&v, &p)| (v, p))
            .unzip(),
    )
}

/// Validate the common preconditions shared by every ranker.
pub(crate) fn validate_input(data: &FeatureMatrix, labels: &[bool]) -> Result<(), WefrError> {
    if data.n_features() == 0 || data.n_rows() == 0 {
        return Err(WefrError::InvalidInput {
            message: "feature matrix is empty".to_string(),
        });
    }
    if labels.len() != data.n_rows() {
        return Err(WefrError::InvalidInput {
            message: format!(
                "matrix has {} rows but {} labels were given",
                data.n_rows(),
                labels.len()
            ),
        });
    }
    if labels.iter().all(|&l| l) || labels.iter().all(|&l| !l) {
        return Err(WefrError::InvalidInput {
            message: "labels contain a single class".to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> FeatureMatrix {
        FeatureMatrix::from_columns(vec!["x".into()], vec![vec![1.0, 2.0, 3.0]]).unwrap()
    }

    #[test]
    fn validate_accepts_two_class() {
        assert!(validate_input(&matrix(), &[true, false, true]).is_ok());
    }

    #[test]
    fn validate_rejects_single_class() {
        assert!(validate_input(&matrix(), &[true, true, true]).is_err());
        assert!(validate_input(&matrix(), &[false, false, false]).is_err());
    }

    #[test]
    fn validate_rejects_mismatch() {
        assert!(validate_input(&matrix(), &[true]).is_err());
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes(_: &dyn FeatureRanker) {}
    }
}
