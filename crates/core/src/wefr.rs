//! The top-level WEFR algorithm (Algorithm 1 of the paper).

use crate::ensemble::{ensemble_rankings, EnsembleRanking, PAPER_OUTLIER_SIGMA};
use crate::error::WefrError;
use crate::parallel::run_rankers;
use crate::ranker::FeatureRanker;
use crate::rankers::default_rankers_with_strategy;
use crate::wearout::{detect_wearout_threshold, split_rows_by_mwi};
use smart_changepoint::bocpd::BocpdConfig;
use smart_changepoint::significance::PAPER_Z_THRESHOLD;
use smart_changepoint::survival::WearoutChangePoint;
use smart_complexity::{automated_feature_count, ScanResult, ThresholdConfig};
use smart_stats::FeatureMatrix;
use smart_trees::SplitStrategy;

/// WEFR configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WefrConfig {
    /// Seed for the stochastic rankers (Random Forest, boosting).
    pub seed: u64,
    /// Split-search engine for the tree-based rankers (default:
    /// [`SplitStrategy::Histogram`]).
    pub split_strategy: SplitStrategy,
    /// Outlier-removal threshold in standard deviations (paper: 1.96).
    pub outlier_sigma: f64,
    /// Automated feature-count configuration (`α = 0.75`).
    pub threshold: ThresholdConfig,
    /// BOCPD configuration for the survival-rate change point.
    pub bocpd: BocpdConfig,
    /// Significance threshold for change points (paper: ±2.5).
    pub z_threshold: f64,
    /// Minimum bucket population for survival-curve points.
    pub survival_min_bucket: usize,
    /// Minimum samples (with both classes present) a wear-out group needs
    /// before WEFR selects features for it separately.
    pub min_group_samples: usize,
    /// Minimum *positive* samples each wear-out group needs. A group model
    /// trained on a handful of failures is worse than the global model, so
    /// WEFR falls back to the global selection below this (the paper's
    /// production fleet always has ample failures per group; a small
    /// simulated fleet may not).
    pub min_group_positives: usize,
}

impl Default for WefrConfig {
    fn default() -> Self {
        WefrConfig {
            seed: 0,
            split_strategy: SplitStrategy::default(),
            outlier_sigma: PAPER_OUTLIER_SIGMA,
            threshold: ThresholdConfig::default(),
            bocpd: BocpdConfig::default(),
            z_threshold: PAPER_Z_THRESHOLD,
            survival_min_bucket: 3,
            min_group_samples: 40,
            min_group_positives: 30,
        }
    }
}

/// Input to a WEFR selection run.
#[derive(Debug, Clone, Copy)]
pub struct SelectionInput<'a> {
    /// Base learning features (raw/normalized SMART values), one row per
    /// sample.
    pub data: &'a FeatureMatrix,
    /// Failure labels, one per sample.
    pub labels: &'a [bool],
    /// `MWI_N` of each sample (enables wear-out grouping when present).
    pub mwi_per_sample: Option<&'a [f64]>,
    /// Per-drive `(final MWI_N, failed)` pairs for the survival analysis.
    pub survival: Option<&'a [(f64, bool)]>,
}

impl<'a> SelectionInput<'a> {
    /// Input without wear-out context (lines 1–8 of Algorithm 1 only).
    pub fn basic(data: &'a FeatureMatrix, labels: &'a [bool]) -> Self {
        SelectionInput {
            data,
            labels,
            mwi_per_sample: None,
            survival: None,
        }
    }
}

/// The selection produced for one group of samples.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSelection {
    /// The robust ensemble ranking (with per-ranker diagnostics).
    pub ensemble: EnsembleRanking,
    /// Selected feature column indices, best first.
    pub selected: Vec<usize>,
    /// Selected feature names, best first.
    pub selected_names: Vec<String>,
    /// The automated-threshold scan trace.
    pub scan: ScanResult,
}

impl GroupSelection {
    /// Fraction of all features that were selected.
    pub fn selected_fraction(&self) -> f64 {
        self.selected.len() as f64 / self.ensemble.names.len().max(1) as f64
    }
}

/// Per-wear-out-group selections (lines 9–15 of Algorithm 1).
#[derive(Debug, Clone, PartialEq)]
pub struct WearoutSelection {
    /// The detected change point.
    pub change_point: WearoutChangePoint,
    /// Selection for samples with `MWI_N <=` threshold.
    pub low: GroupSelection,
    /// Selection for samples with `MWI_N >` threshold.
    pub high: GroupSelection,
}

/// The full output of a WEFR run.
#[derive(Debug, Clone, PartialEq)]
pub struct WefrSelection {
    /// Selection over all samples (always produced).
    pub global: GroupSelection,
    /// Wear-out-specific selections when a significant change point exists
    /// and both groups are viable.
    pub wearout: Option<WearoutSelection>,
}

impl WefrSelection {
    /// The selection to use for a drive currently at `mwi_n`: the matching
    /// wear-out group when grouping is active, the global selection
    /// otherwise.
    pub fn for_mwi(&self, mwi_n: f64) -> &GroupSelection {
        match &self.wearout {
            Some(w) if mwi_n <= w.change_point.mwi_threshold as f64 => &w.low,
            Some(w) => &w.high,
            None => &self.global,
        }
    }
}

/// Wear-out-updating Ensemble Feature Ranking.
///
/// # Example
///
/// ```
/// use smart_stats::FeatureMatrix;
/// use wefr_core::{SelectionInput, Wefr};
///
/// # fn main() -> Result<(), wefr_core::WefrError> {
/// // A failure-correlated error counter and a noise feature.
/// let labels: Vec<bool> = (0..80).map(|i| i % 4 == 0).collect();
/// let errors: Vec<f64> = labels.iter().enumerate()
///     .map(|(i, &l)| if l { 40.0 } else { 0.0 } + (i % 5) as f64)
///     .collect();
/// let noise: Vec<f64> = (0..80).map(|i| ((i * 37) % 11) as f64).collect();
/// let data = FeatureMatrix::from_columns(
///     vec!["UCE_R".into(), "PSC_N".into()],
///     vec![errors, noise],
/// ).expect("valid matrix");
///
/// let wefr = Wefr::default();
/// let selection = wefr.select(&SelectionInput::basic(&data, &labels))?;
/// assert_eq!(selection.global.selected_names[0], "UCE_R");
/// # Ok(())
/// # }
/// ```
pub struct Wefr {
    config: WefrConfig,
    rankers: Vec<Box<dyn FeatureRanker>>,
}

impl Default for Wefr {
    fn default() -> Self {
        Wefr::new(WefrConfig::default())
    }
}

impl std::fmt::Debug for Wefr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wefr")
            .field("config", &self.config)
            .field(
                "rankers",
                &self.rankers.iter().map(|r| r.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Wefr {
    /// WEFR with the paper's five preliminary approaches.
    pub fn new(config: WefrConfig) -> Self {
        let rankers = default_rankers_with_strategy(config.seed, config.split_strategy);
        Wefr { config, rankers }
    }

    /// WEFR with a custom ranker ensemble.
    pub fn with_rankers(config: WefrConfig, rankers: Vec<Box<dyn FeatureRanker>>) -> Self {
        Wefr { config, rankers }
    }

    /// The active configuration.
    pub fn config(&self) -> &WefrConfig {
        &self.config
    }

    /// Names of the configured rankers.
    pub fn ranker_names(&self) -> Vec<&'static str> {
        self.rankers.iter().map(|r| r.name()).collect()
    }

    /// Run the full Algorithm 1 over `input`.
    ///
    /// # Errors
    ///
    /// Returns [`WefrError::InvalidInput`] for inconsistent inputs and
    /// propagates ranker / complexity / change-point errors.
    pub fn select(&self, input: &SelectionInput<'_>) -> Result<WefrSelection, WefrError> {
        if let Some(mwi) = input.mwi_per_sample {
            if mwi.len() != input.data.n_rows() {
                return Err(WefrError::InvalidInput {
                    message: format!(
                        "mwi_per_sample has {} entries for {} rows",
                        mwi.len(),
                        input.data.n_rows()
                    ),
                });
            }
        }

        let span = telemetry::span!(
            "select",
            rows = input.data.n_rows(),
            features = input.data.n_features(),
        );

        // Lines 1–8: robust + automated selection over all samples.
        let global = self.select_group_labeled(input.data, input.labels, "global")?;

        // Lines 9–15: wear-out updating.
        let wearout = match (input.mwi_per_sample, input.survival) {
            (Some(mwi), Some(survival)) => self.select_wearout(input, mwi, survival, &global)?,
            _ => None,
        };

        span.record("selected", global.selected.len());
        span.record("wearout_groups", wearout.is_some());
        Ok(WefrSelection { global, wearout })
    }

    fn select_wearout(
        &self,
        input: &SelectionInput<'_>,
        mwi: &[f64],
        survival: &[(f64, bool)],
        _global: &GroupSelection,
    ) -> Result<Option<WearoutSelection>, WefrError> {
        let span = telemetry::span!("wearout_split", drives = survival.len());
        let Some(change_point) = detect_wearout_threshold(
            survival,
            &self.config.bocpd,
            self.config.z_threshold,
            self.config.survival_min_bucket,
        )?
        else {
            span.record("outcome", "no_change_point");
            return Ok(None);
        };
        telemetry::gauge_set("wearout.threshold_mwi", change_point.mwi_threshold as f64);

        let split = split_rows_by_mwi(mwi, change_point.mwi_threshold as f64);
        let positives = |rows: &[usize]| rows.iter().filter(|&&r| input.labels[r]).count();
        telemetry::info!(
            "wearout",
            "split at change point",
            mwi_threshold = change_point.mwi_threshold,
            low_rows = split.low_rows.len(),
            low_positives = positives(&split.low_rows),
            high_rows = split.high_rows.len(),
            high_positives = positives(&split.high_rows),
        );
        if !self.group_viable(input.labels, &split.low_rows)
            || !self.group_viable(input.labels, &split.high_rows)
        {
            telemetry::info!(
                "wearout",
                "a wear-out group is too small; falling back to the global selection",
                min_group_samples = self.config.min_group_samples,
                min_group_positives = self.config.min_group_positives,
            );
            span.record("outcome", "fallback_global");
            return Ok(None);
        }

        let low = self.select_rows(input.data, input.labels, &split.low_rows, "low")?;
        let high = self.select_rows(input.data, input.labels, &split.high_rows, "high")?;
        span.record("outcome", "split");
        span.record("mwi_threshold", change_point.mwi_threshold);
        Ok(Some(WearoutSelection {
            change_point,
            low,
            high,
        }))
    }

    fn group_viable(&self, labels: &[bool], rows: &[usize]) -> bool {
        let positives = rows.iter().filter(|&&r| labels[r]).count();
        rows.len() >= self.config.min_group_samples
            && positives >= self.config.min_group_positives.max(1)
            && rows.len() - positives >= self.config.min_group_positives.max(1)
    }

    fn select_rows(
        &self,
        data: &FeatureMatrix,
        labels: &[bool],
        rows: &[usize],
        group: &'static str,
    ) -> Result<GroupSelection, WefrError> {
        let sub = data.select_rows(rows)?;
        let sub_labels: Vec<bool> = rows.iter().map(|&r| labels[r]).collect();
        self.select_group_labeled(&sub, &sub_labels, group)
    }

    /// Lines 1–8 of Algorithm 1 for one group of samples: run the rankers
    /// in parallel, remove outlier rankings, aggregate by mean rank, and
    /// cut the ranking at the automated feature count.
    pub fn select_group(
        &self,
        data: &FeatureMatrix,
        labels: &[bool],
    ) -> Result<GroupSelection, WefrError> {
        self.select_group_labeled(data, labels, "global")
    }

    fn select_group_labeled(
        &self,
        data: &FeatureMatrix,
        labels: &[bool],
        group: &'static str,
    ) -> Result<GroupSelection, WefrError> {
        let span = telemetry::span!("select_group", group = group, rows = data.n_rows());
        let rankings = run_rankers(&self.rankers, data, labels)?;
        let ensemble = ensemble_rankings(&rankings, self.config.outlier_sigma)?;
        let scan = automated_feature_count(data, labels, &ensemble.order, &self.config.threshold)?;
        let selected: Vec<usize> = ensemble.order[..scan.chosen].to_vec();
        let selected_names: Vec<String> = selected
            .iter()
            .map(|&c| ensemble.names[c].clone())
            .collect();
        span.record("selected", selected.len());
        telemetry::info!(
            "select",
            format!("group {group} selected {} features", selected.len()),
            group = group,
            features = selected_names.join(","),
        );
        Ok(GroupSelection {
            ensemble,
            selected,
            selected_names,
            scan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::rngs::StdRng;
    use rng::{RngExt, SeedableRng};

    /// A synthetic drive-sample population with wear-dependent signal:
    /// below MWI 40 failures follow `wear_feature`; above it they follow
    /// `error_feature`. Plus noise columns.
    fn wearout_population(
        n: usize,
        seed: u64,
    ) -> (FeatureMatrix, Vec<bool>, Vec<f64>, Vec<(f64, bool)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut labels = Vec::with_capacity(n);
        let mut mwi = Vec::with_capacity(n);
        let mut wear_col = Vec::with_capacity(n);
        let mut err_col = Vec::with_capacity(n);
        let mut noise_col = Vec::with_capacity(n);
        let mut survival = Vec::with_capacity(n);
        for _ in 0..n {
            let m: f64 = 5.0 + rng.random::<f64>() * 90.0;
            let low = m <= 40.0;
            let fail_p = if low { 0.5 } else { 0.08 };
            let failed = rng.random::<f64>() < fail_p;
            let wear_signal = if failed && low { 30.0 } else { 0.0 };
            let err_signal = if failed && !low { 30.0 } else { 0.0 };
            labels.push(failed);
            mwi.push(m);
            wear_col.push(wear_signal + rng.random::<f64>() * 5.0);
            err_col.push(err_signal + rng.random::<f64>() * 5.0);
            noise_col.push(rng.random::<f64>() * 10.0);
            survival.push((m, failed));
        }
        let data = FeatureMatrix::from_columns(
            vec!["EFC_R".into(), "UCE_R".into(), "PSC_N".into()],
            vec![wear_col, err_col, noise_col],
        )
        .unwrap();
        (data, labels, mwi, survival)
    }

    #[test]
    fn global_selection_drops_noise() {
        let (data, labels, _, _) = wearout_population(600, 1);
        let wefr = Wefr::default();
        let sel = wefr.select(&SelectionInput::basic(&data, &labels)).unwrap();
        assert!(sel.wearout.is_none());
        assert!(
            !sel.global.selected_names.contains(&"PSC_N".to_string())
                || sel.global.selected_names.len() < 3
        );
        assert!(sel.global.selected_fraction() <= 1.0);
    }

    #[test]
    fn wearout_groups_pick_different_features() {
        let (data, labels, mwi, survival) = wearout_population(2500, 2);
        let wefr = Wefr::default();
        let sel = wefr
            .select(&SelectionInput {
                data: &data,
                labels: &labels,
                mwi_per_sample: Some(&mwi),
                survival: Some(&survival),
            })
            .unwrap();
        let wearout = sel.wearout.expect("change point must be detected");
        assert!(
            (30..=50).contains(&wearout.change_point.mwi_threshold),
            "threshold = {}",
            wearout.change_point.mwi_threshold
        );
        // The low group is driven by the wear feature, the high group by
        // the error feature.
        assert_eq!(wearout.low.selected_names[0], "EFC_R");
        assert_eq!(wearout.high.selected_names[0], "UCE_R");
    }

    #[test]
    fn for_mwi_routes_to_groups() {
        let (data, labels, mwi, survival) = wearout_population(900, 3);
        let wefr = Wefr::default();
        let sel = wefr
            .select(&SelectionInput {
                data: &data,
                labels: &labels,
                mwi_per_sample: Some(&mwi),
                survival: Some(&survival),
            })
            .unwrap();
        let w = sel.wearout.as_ref().unwrap();
        let t = w.change_point.mwi_threshold as f64;
        assert_eq!(sel.for_mwi(t - 1.0), &w.low);
        assert_eq!(sel.for_mwi(t + 1.0), &w.high);
    }

    #[test]
    fn for_mwi_without_wearout_is_global() {
        let (data, labels, _, _) = wearout_population(400, 4);
        let wefr = Wefr::default();
        let sel = wefr.select(&SelectionInput::basic(&data, &labels)).unwrap();
        assert_eq!(sel.for_mwi(10.0), &sel.global);
    }

    #[test]
    fn selection_is_deterministic() {
        let (data, labels, mwi, survival) = wearout_population(500, 5);
        let input = SelectionInput {
            data: &data,
            labels: &labels,
            mwi_per_sample: Some(&mwi),
            survival: Some(&survival),
        };
        let a = Wefr::default().select(&input).unwrap();
        let b = Wefr::default().select(&input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mismatched_mwi_length_is_rejected() {
        let (data, labels, _, survival) = wearout_population(200, 6);
        let short = vec![50.0; 10];
        let err = Wefr::default()
            .select(&SelectionInput {
                data: &data,
                labels: &labels,
                mwi_per_sample: Some(&short),
                survival: Some(&survival),
            })
            .unwrap_err();
        assert!(matches!(err, WefrError::InvalidInput { .. }));
    }

    #[test]
    fn narrow_mwi_range_skips_grouping() {
        // All samples at MWI 95..100: no change point possible.
        let (data, labels, _, _) = wearout_population(400, 7);
        let mwi: Vec<f64> = (0..data.n_rows()).map(|i| 95.0 + (i % 5) as f64).collect();
        let survival: Vec<(f64, bool)> = mwi.iter().zip(&labels).map(|(&m, &f)| (m, f)).collect();
        let sel = Wefr::default()
            .select(&SelectionInput {
                data: &data,
                labels: &labels,
                mwi_per_sample: Some(&mwi),
                survival: Some(&survival),
            })
            .unwrap();
        assert!(sel.wearout.is_none());
    }

    #[test]
    fn debug_lists_rankers() {
        let repr = format!("{:?}", Wefr::default());
        assert!(repr.contains("pearson") && repr.contains("gradient-boosting"));
    }
}
