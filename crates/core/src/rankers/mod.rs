//! The five preliminary feature-selection approaches of §II-C.

pub mod correlation;
pub mod forest;
pub mod gboost;
pub mod jindex;

pub use correlation::{PearsonRanker, SpearmanRanker};
pub use forest::ForestRanker;
pub use gboost::GradientBoostingRanker;
pub use jindex::JIndexRanker;

use crate::ranker::FeatureRanker;

/// The paper's default ensemble: Pearson, Spearman, J-index, Random Forest,
/// and gradient boosting (XGBoost stand-in), with deterministic seeds.
pub fn default_rankers(seed: u64) -> Vec<Box<dyn FeatureRanker>> {
    vec![
        Box::new(PearsonRanker::new()),
        Box::new(SpearmanRanker::new()),
        Box::new(JIndexRanker::new()),
        Box::new(ForestRanker::with_seed(seed)),
        Box::new(GradientBoostingRanker::with_seed(seed.wrapping_add(1))),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_set_has_five_named_rankers() {
        let rankers = default_rankers(0);
        assert_eq!(rankers.len(), 5);
        let names: Vec<&str> = rankers.iter().map(|r| r.name()).collect();
        assert_eq!(
            names,
            vec![
                "pearson",
                "spearman",
                "j-index",
                "random-forest",
                "gradient-boosting"
            ]
        );
    }
}
