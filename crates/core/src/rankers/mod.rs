//! The five preliminary feature-selection approaches of §II-C.

pub mod correlation;
pub mod forest;
pub mod gboost;
pub mod jindex;

pub use correlation::{PearsonRanker, SpearmanRanker};
pub use forest::ForestRanker;
pub use gboost::GradientBoostingRanker;
pub use jindex::JIndexRanker;

use crate::ranker::FeatureRanker;
use smart_trees::SplitStrategy;

/// The paper's default ensemble: Pearson, Spearman, J-index, Random Forest,
/// and gradient boosting (XGBoost stand-in), with deterministic seeds.
pub fn default_rankers(seed: u64) -> Vec<Box<dyn FeatureRanker>> {
    default_rankers_with_strategy(seed, SplitStrategy::default())
}

/// [`default_rankers`] with an explicit split-search engine for the two
/// tree-based rankers (the correlation and J-index rankers have no trees).
pub fn default_rankers_with_strategy(
    seed: u64,
    strategy: SplitStrategy,
) -> Vec<Box<dyn FeatureRanker>> {
    let mut forest = ForestRanker::with_seed(seed);
    forest.config.strategy = strategy;
    let mut gboost = GradientBoostingRanker::with_seed(seed.wrapping_add(1));
    gboost.config.strategy = strategy;
    vec![
        Box::new(PearsonRanker::new()),
        Box::new(SpearmanRanker::new()),
        Box::new(JIndexRanker::new()),
        Box::new(forest),
        Box::new(gboost),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_set_has_five_named_rankers() {
        let rankers = default_rankers(0);
        assert_eq!(rankers.len(), 5);
        let names: Vec<&str> = rankers.iter().map(|r| r.name()).collect();
        assert_eq!(
            names,
            vec![
                "pearson",
                "spearman",
                "j-index",
                "random-forest",
                "gradient-boosting"
            ]
        );
    }
}
