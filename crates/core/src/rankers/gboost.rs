//! Gradient-boosting importance ranker (the XGBoost stand-in of §II-C).

use crate::error::WefrError;
use crate::ranker::{validate_input, FeatureRanker};
use crate::ranking::FeatureRanking;
use smart_stats::FeatureMatrix;
use smart_trees::{BoostingConfig, GradientBoosting};

/// Which boosting importance to rank by. The paper describes XGBoost
/// importance as combining "the number of splits … and the average gain";
/// the default blends both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoostImportance {
    /// Total split gain per feature.
    Gain,
    /// Number of splits per feature.
    SplitCount,
    /// Mean of the normalized gain and split-count importances (default).
    Blend,
}

/// Ranks features by gradient-boosting feature importance.
#[derive(Debug, Clone)]
pub struct GradientBoostingRanker {
    /// Boosting hyperparameters.
    pub config: BoostingConfig,
    /// Importance flavour.
    pub importance: BoostImportance,
}

impl GradientBoostingRanker {
    /// Default ranker (100 rounds, blended importance) with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        GradientBoostingRanker {
            config: BoostingConfig {
                seed,
                ..BoostingConfig::default()
            },
            importance: BoostImportance::Blend,
        }
    }
}

impl FeatureRanker for GradientBoostingRanker {
    fn name(&self) -> &'static str {
        "gradient-boosting"
    }

    fn rank(&self, data: &FeatureMatrix, labels: &[bool]) -> Result<FeatureRanking, WefrError> {
        validate_input(data, labels)?;
        let model = GradientBoosting::fit(data, labels, &self.config)?;
        let scores = match self.importance {
            BoostImportance::Gain => model.gain_importances(),
            BoostImportance::SplitCount => model.split_count_importances(),
            BoostImportance::Blend => {
                let gain = model.gain_importances();
                let count = model.split_count_importances();
                gain.iter()
                    .zip(&count)
                    .map(|(g, c)| (g + c) / 2.0)
                    .collect()
            }
        };
        FeatureRanking::from_scores(data.feature_names().to_vec(), scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::rngs::StdRng;
    use rng::{RngExt, SeedableRng};

    fn data() -> (FeatureMatrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 300;
        let labels: Vec<bool> = (0..n).map(|_| rng.random::<f64>() < 0.35).collect();
        let signal: Vec<f64> = labels
            .iter()
            .map(|&l| if l { 1.5 } else { 0.0 } + rng.random::<f64>())
            .collect();
        let noise: Vec<f64> = (0..n).map(|_| rng.random()).collect();
        (
            FeatureMatrix::from_columns(vec!["signal".into(), "noise".into()], vec![signal, noise])
                .unwrap(),
            labels,
        )
    }

    #[test]
    fn all_importance_flavours_find_signal() {
        let (m, l) = data();
        for importance in [
            BoostImportance::Gain,
            BoostImportance::SplitCount,
            BoostImportance::Blend,
        ] {
            let ranker = GradientBoostingRanker {
                importance,
                ..GradientBoostingRanker::with_seed(2)
            };
            let r = ranker.rank(&m, &l).unwrap();
            assert_eq!(r.top_names(1), vec!["signal"], "{importance:?}");
        }
    }

    #[test]
    fn ranker_is_deterministic() {
        let (m, l) = data();
        let a = GradientBoostingRanker::with_seed(4).rank(&m, &l).unwrap();
        let b = GradientBoostingRanker::with_seed(4).rank(&m, &l).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_empty_matrix() {
        let m = FeatureMatrix::from_columns(vec![], vec![]).unwrap();
        assert!(GradientBoostingRanker::with_seed(0).rank(&m, &[]).is_err());
    }
}
