//! Random-Forest importance ranker (the approach of Narayanan et al. \[21\]).

use crate::error::WefrError;
use crate::ranker::{validate_input, FeatureRanker};
use crate::ranking::FeatureRanking;
use smart_stats::FeatureMatrix;
use smart_trees::{ForestConfig, RandomForest};

/// Which Random-Forest importance to rank by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForestImportance {
    /// Breiman OOB permutation importance — the paper's description of the
    /// Random-Forest selector ("reduction of classification accuracy after
    /// adding noises to a learning feature"). Default.
    Permutation,
    /// Mean decrease in impurity (faster, the ablation alternative).
    Impurity,
}

/// Ranks features by Random-Forest feature importance.
#[derive(Debug, Clone)]
pub struct ForestRanker {
    /// Forest hyperparameters.
    pub config: ForestConfig,
    /// Importance flavour.
    pub importance: ForestImportance,
}

impl ForestRanker {
    /// Default ranker (100 trees, permutation importance) with the given
    /// seed.
    pub fn with_seed(seed: u64) -> Self {
        ForestRanker {
            config: ForestConfig {
                seed,
                ..ForestConfig::default()
            },
            importance: ForestImportance::Permutation,
        }
    }

    /// Same, but using impurity importance (the ablation variant).
    pub fn with_impurity(seed: u64) -> Self {
        ForestRanker {
            importance: ForestImportance::Impurity,
            ..ForestRanker::with_seed(seed)
        }
    }
}

impl FeatureRanker for ForestRanker {
    fn name(&self) -> &'static str {
        "random-forest"
    }

    fn rank(&self, data: &FeatureMatrix, labels: &[bool]) -> Result<FeatureRanking, WefrError> {
        validate_input(data, labels)?;
        let forest = RandomForest::fit(data, labels, &self.config)?;
        let scores = match self.importance {
            ForestImportance::Permutation => forest.permutation_importances(data, labels)?,
            ForestImportance::Impurity => forest.impurity_importances(),
        };
        FeatureRanking::from_scores(data.feature_names().to_vec(), scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::rngs::StdRng;
    use rng::{RngExt, SeedableRng};

    fn data() -> (FeatureMatrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 300;
        let labels: Vec<bool> = (0..n).map(|_| rng.random::<f64>() < 0.4).collect();
        let signal: Vec<f64> = labels
            .iter()
            .map(|&l| if l { 2.0 } else { 0.0 } + rng.random::<f64>())
            .collect();
        let noise: Vec<f64> = (0..n).map(|_| rng.random()).collect();
        (
            FeatureMatrix::from_columns(vec!["signal".into(), "noise".into()], vec![signal, noise])
                .unwrap(),
            labels,
        )
    }

    #[test]
    fn permutation_ranker_finds_signal() {
        let (m, l) = data();
        let r = ForestRanker::with_seed(1).rank(&m, &l).unwrap();
        assert_eq!(r.top_names(1), vec!["signal"]);
    }

    #[test]
    fn impurity_ranker_finds_signal() {
        let (m, l) = data();
        let r = ForestRanker::with_impurity(1).rank(&m, &l).unwrap();
        assert_eq!(r.top_names(1), vec!["signal"]);
    }

    #[test]
    fn ranker_is_deterministic() {
        let (m, l) = data();
        let a = ForestRanker::with_seed(5).rank(&m, &l).unwrap();
        let b = ForestRanker::with_seed(5).rank(&m, &l).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_single_class() {
        let (m, _) = data();
        let one = vec![false; m.n_rows()];
        assert!(ForestRanker::with_seed(1).rank(&m, &one).is_err());
    }
}
