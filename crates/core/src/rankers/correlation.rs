//! Correlation-based rankers: Pearson (linear) and Spearman (monotonic).

use crate::error::WefrError;
use crate::ranker::{observed_only, validate_input, FeatureRanker};
use crate::ranking::FeatureRanking;
use smart_stats::correlation::{pearson, spearman};
use smart_stats::FeatureMatrix;

/// Score one column, dropping missing (NaN) cells pairwise first. Columns
/// with fewer than two observed rows score 0.0.
fn score_observed(
    column: &[f64],
    y: &[f64],
    stat: impl Fn(&[f64], &[f64]) -> Result<f64, smart_stats::StatsError>,
) -> Result<f64, WefrError> {
    let scored = match observed_only(column, y) {
        None => stat(column, y),
        Some((xs, ys)) if xs.len() >= 2 => stat(&xs, &ys),
        Some(_) => return Ok(0.0),
    };
    scored.map(f64::abs).map_err(WefrError::from)
}

/// Ranks features by the absolute Pearson correlation between the feature
/// and the 0/1 failure label.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PearsonRanker;

impl PearsonRanker {
    /// Construct the ranker.
    pub fn new() -> Self {
        PearsonRanker
    }
}

impl FeatureRanker for PearsonRanker {
    fn name(&self) -> &'static str {
        "pearson"
    }

    fn rank(&self, data: &FeatureMatrix, labels: &[bool]) -> Result<FeatureRanking, WefrError> {
        validate_input(data, labels)?;
        let y: Vec<f64> = labels.iter().map(|&l| f64::from(u8::from(l))).collect();
        let scores = (0..data.n_features())
            .map(|c| score_observed(data.column(c), &y, pearson))
            .collect::<Result<Vec<f64>, _>>()?;
        FeatureRanking::from_scores(data.feature_names().to_vec(), scores)
    }
}

/// Ranks features by the absolute Spearman rank correlation between the
/// feature and the 0/1 failure label (the approach of Alter et al. \[1\]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpearmanRanker;

impl SpearmanRanker {
    /// Construct the ranker.
    pub fn new() -> Self {
        SpearmanRanker
    }
}

impl FeatureRanker for SpearmanRanker {
    fn name(&self) -> &'static str {
        "spearman"
    }

    fn rank(&self, data: &FeatureMatrix, labels: &[bool]) -> Result<FeatureRanking, WefrError> {
        validate_input(data, labels)?;
        let y: Vec<f64> = labels.iter().map(|&l| f64::from(u8::from(l))).collect();
        let scores = (0..data.n_features())
            .map(|c| score_observed(data.column(c), &y, spearman))
            .collect::<Result<Vec<f64>, _>>()?;
        FeatureRanking::from_scores(data.feature_names().to_vec(), scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// col 0: linearly correlated; col 1: monotone nonlinear; col 2: noise.
    fn data() -> (FeatureMatrix, Vec<bool>) {
        let labels: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let linear: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let nonlinear: Vec<f64> = (0..40).map(|i| (i as f64 / 4.0).exp()).collect();
        let noise: Vec<f64> = (0..40).map(|i| ((i * 7919) % 13) as f64).collect();
        (
            FeatureMatrix::from_columns(
                vec!["linear".into(), "nonlinear".into(), "noise".into()],
                vec![linear, nonlinear, noise],
            )
            .unwrap(),
            labels,
        )
    }

    #[test]
    fn pearson_prefers_linear_feature() {
        let (m, l) = data();
        let r = PearsonRanker::new().rank(&m, &l).unwrap();
        assert_eq!(r.top_names(1), vec!["linear"]);
        assert_eq!(r.bottom_names(1), vec!["noise"]);
    }

    #[test]
    fn spearman_treats_monotone_features_equally() {
        let (m, l) = data();
        let r = SpearmanRanker::new().rank(&m, &l).unwrap();
        // Both monotone features have identical rank correlation.
        let s_lin = r.score_of("linear").unwrap();
        let s_non = r.score_of("nonlinear").unwrap();
        assert!((s_lin - s_non).abs() < 1e-12);
        assert!(r.score_of("noise").unwrap() < s_lin);
    }

    #[test]
    fn pearson_penalizes_nonlinearity_more_than_spearman() {
        let (m, l) = data();
        let p = PearsonRanker::new().rank(&m, &l).unwrap();
        let s = SpearmanRanker::new().rank(&m, &l).unwrap();
        let gap_p = p.score_of("linear").unwrap() - p.score_of("nonlinear").unwrap();
        let gap_s = s.score_of("linear").unwrap() - s.score_of("nonlinear").unwrap();
        assert!(gap_p > gap_s + 0.05, "gap_p = {gap_p}, gap_s = {gap_s}");
    }

    #[test]
    fn rankers_reject_single_class() {
        let (m, _) = data();
        let one_class = vec![true; 40];
        assert!(PearsonRanker::new().rank(&m, &one_class).is_err());
        assert!(SpearmanRanker::new().rank(&m, &one_class).is_err());
    }

    #[test]
    fn missing_cells_are_dropped_pairwise() {
        // The linear column with a few cells knocked out must still rank
        // first — its observed rows carry the same signal — and the score
        // must equal the correlation over the observed subset exactly.
        let (m, labels) = data();
        let mut linear = m.column(0).to_vec();
        linear[3] = f64::NAN;
        linear[27] = f64::NAN;
        let holey = FeatureMatrix::from_columns_with_missing(
            m.feature_names().to_vec(),
            vec![linear.clone(), m.column(1).to_vec(), m.column(2).to_vec()],
        )
        .unwrap();
        for ranker in [
            &PearsonRanker::new() as &dyn FeatureRanker,
            &SpearmanRanker::new(),
        ] {
            let r = ranker.rank(&holey, &labels).unwrap();
            assert_eq!(r.top_names(1), vec!["linear"], "{}", ranker.name());
            assert!(
                r.scores().iter().all(|s| s.is_finite()),
                "{}",
                ranker.name()
            );
        }
        let observed: (Vec<f64>, Vec<f64>) = linear
            .iter()
            .zip(&labels)
            .filter(|(v, _)| !v.is_nan())
            .map(|(&v, &l)| (v, f64::from(u8::from(l))))
            .unzip();
        let expected = pearson(&observed.0, &observed.1).unwrap().abs();
        let r = PearsonRanker::new().rank(&holey, &labels).unwrap();
        assert!((r.score_of("linear").unwrap() - expected).abs() < 1e-15);
    }

    #[test]
    fn all_missing_column_scores_zero() {
        let (m, labels) = data();
        let holey = FeatureMatrix::from_columns_with_missing(
            m.feature_names().to_vec(),
            vec![
                vec![f64::NAN; 40],
                m.column(1).to_vec(),
                m.column(2).to_vec(),
            ],
        )
        .unwrap();
        for ranker in [
            &PearsonRanker::new() as &dyn FeatureRanker,
            &SpearmanRanker::new(),
        ] {
            let r = ranker.rank(&holey, &labels).unwrap();
            assert_eq!(r.score_of("linear").unwrap(), 0.0, "{}", ranker.name());
        }
    }
}
