//! J-index ranker: the Youden-index-based approach of Lu et al. \[16\].

use crate::error::WefrError;
use crate::ranker::{validate_input, FeatureRanker};
use crate::ranking::FeatureRanking;
use smart_stats::threshold::j_index;
use smart_stats::FeatureMatrix;

/// Ranks features by their J-index: the best achievable Youden J
/// (`sensitivity + specificity − 1`) over all single-feature thresholds, in
/// either orientation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JIndexRanker;

impl JIndexRanker {
    /// Construct the ranker.
    pub fn new() -> Self {
        JIndexRanker
    }
}

impl FeatureRanker for JIndexRanker {
    fn name(&self) -> &'static str {
        "j-index"
    }

    fn rank(&self, data: &FeatureMatrix, labels: &[bool]) -> Result<FeatureRanking, WefrError> {
        validate_input(data, labels)?;
        let scores = (0..data.n_features())
            .map(|c| j_index(data.column(c), labels))
            .collect::<Result<Vec<f64>, _>>()?;
        FeatureRanking::from_scores(data.feature_names().to_vec(), scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefers_threshold_separable_feature() {
        // col 0 separates perfectly at a threshold but is non-monotone in
        // value (correlations would score it lower); col 1 is noise.
        let labels = vec![false, false, false, true, true, true];
        let separable = vec![5.0, 6.0, 7.0, 20.0, 21.0, 22.0];
        let noise = vec![1.0, 9.0, 4.0, 3.0, 8.0, 2.0];
        let m = FeatureMatrix::from_columns(
            vec!["separable".into(), "noise".into()],
            vec![separable, noise],
        )
        .unwrap();
        let r = JIndexRanker::new().rank(&m, &labels).unwrap();
        assert_eq!(r.top_names(1), vec!["separable"]);
        assert!((r.score_of("separable").unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_features_score_equally() {
        let labels = vec![false, false, true, true];
        let up = vec![1.0, 2.0, 9.0, 10.0];
        let down: Vec<f64> = up.iter().map(|v| -v).collect();
        let m =
            FeatureMatrix::from_columns(vec!["up".into(), "down".into()], vec![up, down]).unwrap();
        let r = JIndexRanker::new().rank(&m, &labels).unwrap();
        assert!((r.score_of("up").unwrap() - r.score_of("down").unwrap()).abs() < 1e-12);
    }

    #[test]
    fn rejects_single_class() {
        let m = FeatureMatrix::from_columns(vec!["x".into()], vec![vec![1.0, 2.0]]).unwrap();
        assert!(JIndexRanker::new().rank(&m, &[true, true]).is_err());
    }
}
