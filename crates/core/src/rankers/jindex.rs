//! J-index ranker: the Youden-index-based approach of Lu et al. \[16\].

use crate::error::WefrError;
use crate::ranker::{observed_only, validate_input, FeatureRanker};
use crate::ranking::FeatureRanking;
use smart_stats::threshold::j_index;
use smart_stats::FeatureMatrix;

/// J-index of one column with missing (NaN) cells dropped pairwise. A
/// column whose observed labels collapse to a single class scores 0.0 — no
/// threshold on it can separate anything.
fn j_index_observed(column: &[f64], labels: &[bool]) -> Result<f64, WefrError> {
    match observed_only(column, labels) {
        None => j_index(column, labels).map_err(WefrError::from),
        Some((xs, ys)) => {
            if ys.iter().all(|&l| l) || ys.iter().all(|&l| !l) {
                return Ok(0.0);
            }
            j_index(&xs, &ys).map_err(WefrError::from)
        }
    }
}

/// Ranks features by their J-index: the best achievable Youden J
/// (`sensitivity + specificity − 1`) over all single-feature thresholds, in
/// either orientation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JIndexRanker;

impl JIndexRanker {
    /// Construct the ranker.
    pub fn new() -> Self {
        JIndexRanker
    }
}

impl FeatureRanker for JIndexRanker {
    fn name(&self) -> &'static str {
        "j-index"
    }

    fn rank(&self, data: &FeatureMatrix, labels: &[bool]) -> Result<FeatureRanking, WefrError> {
        validate_input(data, labels)?;
        let scores = (0..data.n_features())
            .map(|c| j_index_observed(data.column(c), labels))
            .collect::<Result<Vec<f64>, _>>()?;
        FeatureRanking::from_scores(data.feature_names().to_vec(), scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefers_threshold_separable_feature() {
        // col 0 separates perfectly at a threshold but is non-monotone in
        // value (correlations would score it lower); col 1 is noise.
        let labels = vec![false, false, false, true, true, true];
        let separable = vec![5.0, 6.0, 7.0, 20.0, 21.0, 22.0];
        let noise = vec![1.0, 9.0, 4.0, 3.0, 8.0, 2.0];
        let m = FeatureMatrix::from_columns(
            vec!["separable".into(), "noise".into()],
            vec![separable, noise],
        )
        .unwrap();
        let r = JIndexRanker::new().rank(&m, &labels).unwrap();
        assert_eq!(r.top_names(1), vec!["separable"]);
        assert!((r.score_of("separable").unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_features_score_equally() {
        let labels = vec![false, false, true, true];
        let up = vec![1.0, 2.0, 9.0, 10.0];
        let down: Vec<f64> = up.iter().map(|v| -v).collect();
        let m =
            FeatureMatrix::from_columns(vec!["up".into(), "down".into()], vec![up, down]).unwrap();
        let r = JIndexRanker::new().rank(&m, &labels).unwrap();
        assert!((r.score_of("up").unwrap() - r.score_of("down").unwrap()).abs() < 1e-12);
    }

    #[test]
    fn rejects_single_class() {
        let m = FeatureMatrix::from_columns(vec!["x".into()], vec![vec![1.0, 2.0]]).unwrap();
        assert!(JIndexRanker::new().rank(&m, &[true, true]).is_err());
    }

    #[test]
    fn missing_cells_are_dropped_pairwise() {
        // Knocking out one negative row leaves a still-perfect separator;
        // a column observed only on one class scores zero.
        let labels = vec![false, false, false, true, true, true];
        let separable = vec![5.0, f64::NAN, 7.0, 20.0, 21.0, 22.0];
        let one_class_only = vec![f64::NAN, f64::NAN, f64::NAN, 1.0, 2.0, 3.0];
        let m = FeatureMatrix::from_columns_with_missing(
            vec!["separable".into(), "one_class".into()],
            vec![separable, one_class_only],
        )
        .unwrap();
        let r = JIndexRanker::new().rank(&m, &labels).unwrap();
        assert!((r.score_of("separable").unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(r.score_of("one_class").unwrap(), 0.0);
    }
}
