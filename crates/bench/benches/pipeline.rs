//! Pipeline-stage benchmarks: fleet simulation, statistical feature
//! expansion, predictor training, and batch scoring.
//!
//! Run with `cargo bench --bench pipeline` (add `-- --quick` for a smoke
//! run); results land in `results/BENCH_<group>.json`.

use smart_dataset::{DriveModel, Fleet, FleetConfig};
use smart_pipeline::matrix::{base_features, expanded_matrix};
use smart_pipeline::{collect_samples, FailurePredictor, PredictorConfig, SamplingConfig};
use wefr_bench::timing::Group;

fn bench_fleet_generation() {
    let config = FleetConfig::builder()
        .days(365)
        .seed(1)
        .drives(DriveModel::Mc1, 50)
        .build()
        .expect("valid");
    let mut group = Group::from_env("dataset");
    group.bench("fleet_50_drives_1y", || Fleet::generate(&config));
    group.finish();
}

fn bench_feature_expansion() {
    let config = FleetConfig::builder()
        .days(365)
        .seed(2)
        .drives(DriveModel::Mc1, 80)
        .failure_scale(8.0)
        .build()
        .expect("valid");
    let fleet = Fleet::generate(&config);
    let samples = collect_samples(&fleet, DriveModel::Mc1, 0, 364, &SamplingConfig::default())
        .expect("samples");
    let base = base_features(DriveModel::Mc1);

    let mut group = Group::from_env("pipeline");
    group.bench("expand_matrix", || {
        expanded_matrix(&fleet, &samples, &base).expect("expansion")
    });

    let predictor_config = PredictorConfig {
        n_trees: 30,
        max_depth: 10,
        ..PredictorConfig::default()
    };
    group.bench("train_rf_30_trees", || {
        FailurePredictor::train(&fleet, &samples, &base, &predictor_config).expect("training")
    });

    let predictor =
        FailurePredictor::train(&fleet, &samples, &base, &predictor_config).expect("training");
    group.bench("score_batch", || {
        predictor.score_samples(&fleet, &samples).expect("scoring")
    });
    group.finish();
}

fn main() {
    bench_fleet_generation();
    bench_feature_expansion();
}
