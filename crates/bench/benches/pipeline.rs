//! Pipeline-stage benchmarks: fleet simulation, statistical feature
//! expansion, predictor training, and batch scoring.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, Criterion};
use smart_dataset::{DriveModel, Fleet, FleetConfig};
use smart_pipeline::{
    collect_samples, FailurePredictor, PredictorConfig, SamplingConfig,
};
use smart_pipeline::matrix::{base_features, expanded_matrix};
use std::hint::black_box;

fn bench_fleet_generation(c: &mut Criterion) {
    let config = FleetConfig::builder()
        .days(365)
        .seed(1)
        .drives(DriveModel::Mc1, 50)
        .build()
        .expect("valid");
    let mut group = c.benchmark_group("dataset");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    group.bench_function("fleet_50_drives_1y", |b| {
        b.iter(|| black_box(Fleet::generate(&config)));
    });
    group.finish();
}

fn bench_feature_expansion(c: &mut Criterion) {
    let config = FleetConfig::builder()
        .days(365)
        .seed(2)
        .drives(DriveModel::Mc1, 80)
        .failure_scale(8.0)
        .build()
        .expect("valid");
    let fleet = Fleet::generate(&config);
    let samples = collect_samples(&fleet, DriveModel::Mc1, 0, 364, &SamplingConfig::default())
        .expect("samples");
    let base = base_features(DriveModel::Mc1);

    let mut group = c.benchmark_group("pipeline");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    group.bench_function("expand_matrix", |b| {
        b.iter(|| black_box(expanded_matrix(&fleet, &samples, &base).expect("expansion")));
    });

    let predictor_config = PredictorConfig {
        n_trees: 30,
        max_depth: 10,
        ..PredictorConfig::default()
    };
    group.bench_function("train_rf_30_trees", |b| {
        b.iter(|| {
            black_box(
                FailurePredictor::train(&fleet, &samples, &base, &predictor_config)
                    .expect("training"),
            )
        });
    });

    let predictor = FailurePredictor::train(&fleet, &samples, &base, &predictor_config)
        .expect("training");
    group.bench_function("score_batch", |b| {
        b.iter(|| black_box(predictor.score_samples(&fleet, &samples).expect("scoring")));
    });
    group.finish();
}

criterion_group!(benches, bench_fleet_generation, bench_feature_expansion);
criterion_main!(benches);
