//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! BOCPD versus binary segmentation, permutation versus impurity Random
//! Forest importance, and the complexity-threshold scan.
//!
//! Run with `cargo bench --bench ablations` (add `-- --quick` for a smoke
//! run); results land in `results/BENCH_<group>.json`.

use rng::rngs::StdRng;
use rng::{Rng, SeedableRng};
use smart_changepoint::binseg;
use smart_changepoint::bocpd::{change_probabilities, BocpdConfig};
use smart_complexity::{automated_feature_count, ThresholdConfig};
use smart_stats::FeatureMatrix;
use wefr_bench::timing::Group;
use wefr_core::rankers::forest::{ForestImportance, ForestRanker};
use wefr_core::FeatureRanker;

fn survival_series(n: usize, knee: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let base = if i < knee { 0.95 } else { 0.55 };
            base + (rng.random::<f64>() - 0.5) * 0.06
        })
        .collect()
}

fn bench_changepoint_detectors() {
    let series = survival_series(95, 60, 1);
    let config = BocpdConfig::default();
    let mut group = Group::from_env("changepoint");
    group.bench("bocpd", || {
        change_probabilities(&series, &config).expect("valid")
    });
    group.bench("binseg_single", || {
        binseg::best_split(&series, 4).expect("valid")
    });
    group.bench("binseg_recursive", || {
        binseg::segment(&series, 4, 0.05).expect("valid")
    });
    group.finish();
}

fn training_data(n: usize, seed: u64) -> (FeatureMatrix, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels: Vec<bool> = (0..n).map(|_| rng.random::<f64>() < 0.15).collect();
    let columns: Vec<Vec<f64>> = (0..24)
        .map(|f| {
            labels
                .iter()
                .map(|&l| {
                    let signal = if f < 4 && l {
                        4.0 / (f + 1) as f64
                    } else {
                        0.0
                    };
                    signal + rng.random::<f64>()
                })
                .collect()
        })
        .collect();
    let names = (0..24).map(|f| format!("F{f}")).collect();
    (
        FeatureMatrix::from_columns(names, columns).expect("valid"),
        labels,
    )
}

fn bench_forest_importances() {
    let (matrix, labels) = training_data(1500, 2);
    let mut group = Group::from_env("forest_importance");
    let permutation = ForestRanker::with_seed(3);
    group.bench("permutation", || {
        permutation.rank(&matrix, &labels).expect("two-class")
    });
    let impurity = ForestRanker {
        importance: ForestImportance::Impurity,
        ..ForestRanker::with_seed(3)
    };
    group.bench("impurity", || {
        impurity.rank(&matrix, &labels).expect("two-class")
    });
    group.finish();
}

fn bench_complexity_scan() {
    let (matrix, labels) = training_data(3000, 4);
    let order: Vec<usize> = (0..matrix.n_features()).collect();
    let config = ThresholdConfig::default();
    let mut group = Group::from_env("complexity");
    group.bench("threshold_scan", || {
        automated_feature_count(&matrix, &labels, &order, &config).expect("valid")
    });
    group.finish();
}

fn main() {
    bench_changepoint_detectors();
    bench_forest_importances();
    bench_complexity_scan();
}
