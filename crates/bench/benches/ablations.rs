//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! BOCPD versus binary segmentation, permutation versus impurity Random
//! Forest importance, and the complexity-threshold scan.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use smart_changepoint::binseg;
use smart_changepoint::bocpd::{change_probabilities, BocpdConfig};
use smart_complexity::{automated_feature_count, ThresholdConfig};
use smart_stats::FeatureMatrix;
use std::hint::black_box;
use wefr_core::rankers::forest::{ForestImportance, ForestRanker};
use wefr_core::FeatureRanker;

fn survival_series(n: usize, knee: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let base = if i < knee { 0.95 } else { 0.55 };
            base + (rng.random::<f64>() - 0.5) * 0.06
        })
        .collect()
}

fn bench_changepoint_detectors(c: &mut Criterion) {
    let series = survival_series(95, 60, 1);
    let config = BocpdConfig::default();
    let mut group = c.benchmark_group("changepoint");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    group.bench_function("bocpd", |b| {
        b.iter(|| black_box(change_probabilities(&series, &config).expect("valid")));
    });
    group.bench_function("binseg_single", |b| {
        b.iter(|| black_box(binseg::best_split(&series, 4).expect("valid")));
    });
    group.bench_function("binseg_recursive", |b| {
        b.iter(|| black_box(binseg::segment(&series, 4, 0.05).expect("valid")));
    });
    group.finish();
}

fn training_data(n: usize, seed: u64) -> (FeatureMatrix, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels: Vec<bool> = (0..n).map(|_| rng.random::<f64>() < 0.15).collect();
    let columns: Vec<Vec<f64>> = (0..24)
        .map(|f| {
            labels
                .iter()
                .map(|&l| {
                    let signal = if f < 4 && l { 4.0 / (f + 1) as f64 } else { 0.0 };
                    signal + rng.random::<f64>()
                })
                .collect()
        })
        .collect();
    let names = (0..24).map(|f| format!("F{f}")).collect();
    (
        FeatureMatrix::from_columns(names, columns).expect("valid"),
        labels,
    )
}

fn bench_forest_importances(c: &mut Criterion) {
    let (matrix, labels) = training_data(1500, 2);
    let mut group = c.benchmark_group("forest_importance");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    let permutation = ForestRanker::with_seed(3);
    group.bench_function("permutation", |b| {
        b.iter(|| black_box(permutation.rank(&matrix, &labels).expect("two-class")));
    });
    let impurity = ForestRanker {
        importance: ForestImportance::Impurity,
        ..ForestRanker::with_seed(3)
    };
    group.bench_function("impurity", |b| {
        b.iter(|| black_box(impurity.rank(&matrix, &labels).expect("two-class")));
    });
    group.finish();
}

fn bench_complexity_scan(c: &mut Criterion) {
    let (matrix, labels) = training_data(3000, 4);
    let order: Vec<usize> = (0..matrix.n_features()).collect();
    let config = ThresholdConfig::default();
    let mut group = c.benchmark_group("complexity");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    group.bench_function("threshold_scan", |b| {
        b.iter(|| {
            black_box(automated_feature_count(&matrix, &labels, &order, &config).expect("valid"))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_changepoint_detectors,
    bench_forest_importances,
    bench_complexity_scan
);
criterion_main!(benches);
