//! Timing benchmarks backing Exp#4: the runtime of each preliminary
//! selector and of parallel WEFR on an MC1-shaped base matrix.
//!
//! Run with `cargo bench --bench selectors` (add `-- --quick` for a smoke
//! run); results land in `results/BENCH_<group>.json`.

use rng::rngs::StdRng;
use rng::{Rng, SeedableRng};
use smart_pipeline::experiment::SelectorKind;
use smart_stats::FeatureMatrix;
use wefr_bench::timing::Group;
use wefr_core::{SelectionInput, Wefr, WefrConfig};

/// An MC1-shaped synthetic base matrix: 38 features (19 attributes × 2),
/// a handful informative, the rest noise; ~9% positive rate.
fn synthetic_matrix(n_rows: usize, seed: u64) -> (FeatureMatrix, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels: Vec<bool> = (0..n_rows).map(|_| rng.random::<f64>() < 0.09).collect();
    let n_features = 38;
    let mut names = Vec::with_capacity(n_features);
    let mut columns = Vec::with_capacity(n_features);
    for f in 0..n_features {
        names.push(format!("F{f:02}"));
        let informative = f < 6;
        let strength = 8.0 / (f + 1) as f64;
        columns.push(
            labels
                .iter()
                .map(|&l| {
                    let signal = if informative && l { strength } else { 0.0 };
                    signal + rng.random::<f64>() * 3.0
                })
                .collect(),
        );
    }
    (
        FeatureMatrix::from_columns(names, columns).expect("valid matrix"),
        labels,
    )
}

fn bench_selectors() {
    let (matrix, labels) = synthetic_matrix(2000, 1);
    let mut group = Group::from_env("selector_rank");
    for kind in SelectorKind::ALL {
        let ranker = kind.build(7);
        group.bench(kind.label(), || {
            ranker.rank(&matrix, &labels).expect("two-class")
        });
    }
    group.finish();
}

fn bench_wefr() {
    let (matrix, labels) = synthetic_matrix(2000, 2);
    let mut rng = StdRng::seed_from_u64(3);
    let mwi: Vec<f64> = (0..matrix.n_rows())
        .map(|_| 5.0 + rng.random::<f64>() * 90.0)
        .collect();
    let survival: Vec<(f64, bool)> = mwi.iter().zip(&labels).map(|(&m, &l)| (m, l)).collect();
    let wefr = Wefr::new(WefrConfig {
        seed: 7,
        ..WefrConfig::default()
    });

    let mut group = Group::from_env("wefr_select");
    group.bench("global_only", || {
        wefr.select(&SelectionInput::basic(&matrix, &labels))
            .expect("selection")
    });
    group.bench("with_wearout", || {
        wefr.select(&SelectionInput {
            data: &matrix,
            labels: &labels,
            mwi_per_sample: Some(&mwi),
            survival: Some(&survival),
        })
        .expect("selection")
    });
    group.finish();
}

fn bench_scaling() {
    let mut group = Group::from_env("wefr_scaling_rows");
    for rows in [500usize, 2000, 8000] {
        let (matrix, labels) = synthetic_matrix(rows, 4);
        let wefr = Wefr::new(WefrConfig {
            seed: 7,
            ..WefrConfig::default()
        });
        group.bench(&format!("{rows}"), || {
            wefr.select(&SelectionInput::basic(&matrix, &labels))
                .expect("selection")
        });
    }
    group.finish();
}

fn main() {
    bench_selectors();
    bench_wefr();
    bench_scaling();
}
