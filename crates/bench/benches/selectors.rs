//! Criterion benchmarks backing Exp#4: the runtime of each preliminary
//! selector and of parallel WEFR on an MC1-shaped base matrix.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use smart_pipeline::experiment::SelectorKind;
use smart_stats::FeatureMatrix;
use std::hint::black_box;
use wefr_core::{SelectionInput, Wefr, WefrConfig};

/// An MC1-shaped synthetic base matrix: 38 features (19 attributes × 2),
/// a handful informative, the rest noise; ~9% positive rate.
fn synthetic_matrix(n_rows: usize, seed: u64) -> (FeatureMatrix, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels: Vec<bool> = (0..n_rows).map(|_| rng.random::<f64>() < 0.09).collect();
    let n_features = 38;
    let mut names = Vec::with_capacity(n_features);
    let mut columns = Vec::with_capacity(n_features);
    for f in 0..n_features {
        names.push(format!("F{f:02}"));
        let informative = f < 6;
        let strength = 8.0 / (f + 1) as f64;
        columns.push(
            labels
                .iter()
                .map(|&l| {
                    let signal = if informative && l { strength } else { 0.0 };
                    signal + rng.random::<f64>() * 3.0
                })
                .collect(),
        );
    }
    (
        FeatureMatrix::from_columns(names, columns).expect("valid matrix"),
        labels,
    )
}

fn bench_selectors(c: &mut Criterion) {
    let (matrix, labels) = synthetic_matrix(2000, 1);
    let mut group = c.benchmark_group("selector_rank");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    for kind in SelectorKind::ALL {
        let ranker = kind.build(7);
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| black_box(ranker.rank(&matrix, &labels).expect("two-class")));
        });
    }
    group.finish();
}

fn bench_wefr(c: &mut Criterion) {
    let (matrix, labels) = synthetic_matrix(2000, 2);
    let mut rng = StdRng::seed_from_u64(3);
    let mwi: Vec<f64> = (0..matrix.n_rows())
        .map(|_| 5.0 + rng.random::<f64>() * 90.0)
        .collect();
    let survival: Vec<(f64, bool)> = mwi.iter().zip(&labels).map(|(&m, &l)| (m, l)).collect();
    let wefr = Wefr::new(WefrConfig {
        seed: 7,
        ..WefrConfig::default()
    });

    let mut group = c.benchmark_group("wefr_select");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    group.bench_function("global_only", |b| {
        b.iter(|| {
            black_box(
                wefr.select(&SelectionInput::basic(&matrix, &labels))
                    .expect("selection"),
            )
        });
    });
    group.bench_function("with_wearout", |b| {
        b.iter(|| {
            black_box(
                wefr.select(&SelectionInput {
                    data: &matrix,
                    labels: &labels,
                    mwi_per_sample: Some(&mwi),
                    survival: Some(&survival),
                })
                .expect("selection"),
            )
        });
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("wefr_scaling_rows");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    for rows in [500usize, 2000, 8000] {
        let (matrix, labels) = synthetic_matrix(rows, 4);
        let wefr = Wefr::new(WefrConfig {
            seed: 7,
            ..WefrConfig::default()
        });
        group.bench_function(BenchmarkId::from_parameter(rows), |b| {
            b.iter(|| {
                black_box(
                    wefr.select(&SelectionInput::basic(&matrix, &labels))
                        .expect("selection"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selectors, bench_wefr, bench_scaling);
criterion_main!(benches);
