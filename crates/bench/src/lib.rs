#![forbid(unsafe_code)]
//! Shared harness for the experiment binaries: option parsing, default
//! fleet/census construction, and result output.
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --drives N    drives per model for full-simulation fleets (default 400)
//! --census N    total drives for lifecycle-only censuses (default 60000)
//! --days N      dataset window length in days (default 730)
//! --seed N      master seed (default 42)
//! --quick       down-scale everything for a fast smoke run
//! --out DIR     also write machine-readable JSON results under DIR
//! --model M     restrict to one drive model (repeatable; default all)
//! ```

use smart_dataset::{Census, DriveModel, Fleet, FleetConfig};
use smart_pipeline::experiment::ExperimentConfig;
use std::path::PathBuf;

pub mod timing;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Drives per model for full fleets.
    pub drives_per_model: u32,
    /// Total drives for censuses.
    pub census_total: u32,
    /// Window length in days.
    pub days: u32,
    /// Master seed.
    pub seed: u64,
    /// Fast smoke-run mode.
    pub quick: bool,
    /// Optional JSON output directory.
    pub out_dir: Option<PathBuf>,
    /// Model filter (empty = all models).
    pub models: Vec<DriveModel>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            drives_per_model: 400,
            census_total: 60_000,
            days: 730,
            seed: 42,
            quick: false,
            out_dir: None,
            models: Vec::new(),
        }
    }
}

impl RunOptions {
    /// Parse from `std::env::args`, exiting with usage on malformed input.
    pub fn from_args() -> RunOptions {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match RunOptions::parse(&args) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: [--drives N] [--census N] [--days N] [--seed N] [--quick] \
                     [--out DIR] [--model MA1|MA2|MB1|MB2|MC1|MC2]..."
                );
                std::process::exit(2);
            }
        }
    }

    /// Parse from an explicit argument list.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or bad values.
    pub fn parse(args: &[String]) -> Result<RunOptions, String> {
        let mut opts = RunOptions::default();
        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--drives" => {
                    opts.drives_per_model = value(&mut i, "--drives")?
                        .parse()
                        .map_err(|_| "bad --drives value".to_string())?;
                }
                "--census" => {
                    opts.census_total = value(&mut i, "--census")?
                        .parse()
                        .map_err(|_| "bad --census value".to_string())?;
                }
                "--days" => {
                    opts.days = value(&mut i, "--days")?
                        .parse()
                        .map_err(|_| "bad --days value".to_string())?;
                }
                "--seed" => {
                    opts.seed = value(&mut i, "--seed")?
                        .parse()
                        .map_err(|_| "bad --seed value".to_string())?;
                }
                "--quick" => opts.quick = true,
                "--out" => {
                    opts.out_dir = Some(PathBuf::from(value(&mut i, "--out")?));
                }
                "--model" => {
                    let name = value(&mut i, "--model")?;
                    let model = DriveModel::from_name(&name)
                        .ok_or_else(|| format!("unknown model {name:?}"))?;
                    opts.models.push(model);
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
            i += 1;
        }
        if opts.quick {
            opts.drives_per_model = opts.drives_per_model.min(120);
            opts.census_total = opts.census_total.min(8_000);
        }
        Ok(opts)
    }

    /// The models this run covers, in paper order.
    pub fn models(&self) -> Vec<DriveModel> {
        if self.models.is_empty() {
            DriveModel::ALL.to_vec()
        } else {
            let mut models: Vec<DriveModel> = DriveModel::ALL
                .iter()
                .copied()
                .filter(|m| self.models.contains(m))
                .collect();
            models.dedup();
            models
        }
    }

    /// Build the full-simulation fleet for prediction experiments. Only the
    /// models this run covers are simulated.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (impossible for parsed options).
    pub fn fleet(&self) -> Fleet {
        let mut builder = FleetConfig::builder().days(self.days).seed(self.seed);
        for m in self.models() {
            builder = builder.drives(m, self.drives_per_model);
        }
        let config = builder
            .per_model_scale(DriveModel::Ma2, 4.0)
            .per_model_scale(DriveModel::Mb2, 3.0)
            .build()
            .expect("valid fleet config");
        Fleet::generate(&config)
    }

    /// Build the lifecycle census for fleet-level statistics (Table II,
    /// Fig. 1), using the paper's population mix and unboosted AFRs.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (impossible for parsed options).
    pub fn census(&self) -> Census {
        let config =
            FleetConfig::proportional(self.census_total, self.seed).expect("valid census config");
        Census::generate(&config)
    }

    /// The experiment configuration matching this run's scale.
    ///
    /// The non-quick tier halves the forest (50 trees instead of the
    /// paper's 100, same depth 13) and coarsens the tuning grid to five
    /// fractions — deviations recorded in EXPERIMENTS.md that keep the full
    /// method matrix tractable on a single-core machine without changing
    /// which method wins.
    pub fn experiment_config(&self) -> ExperimentConfig {
        let mut config = if self.quick {
            ExperimentConfig::quick(self.seed)
        } else {
            let mut c = ExperimentConfig::default();
            c.predictor.n_trees = 50;
            c.tune_grid = vec![0.3, 0.6, 1.0];
            c
        };
        config.seed = self.seed;
        config
    }

    /// Write a JSON result file when `--out` was given.
    pub fn write_json<T: json::ToJson>(&self, name: &str, value: &T) {
        if let Some(dir) = &self.out_dir {
            let path = dir.join(format!("{name}.json"));
            if let Err(e) = smart_pipeline::report::write_json(&path, value) {
                eprintln!("warning: failed to write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
    }
}

/// Print a section header in the experiment binaries' output style.
pub fn print_header(title: &str) {
    println!("\n=== {title} ===\n");
}

/// Build the full-window base matrix of one model for feature-importance
/// characterization (Tables III–V): all positives plus strided/downsampled
/// negatives over the entire dataset window.
///
/// Returns `(matrix, labels, per-sample MWI_N)`.
///
/// # Panics
///
/// Panics when the fleet contains no usable samples of `model` — the
/// harness treats that as a misconfigured run.
pub fn characterization_matrix(
    fleet: &Fleet,
    model: DriveModel,
    seed: u64,
) -> (smart_stats::FeatureMatrix, Vec<bool>, Vec<f64>) {
    use smart_pipeline::matrix::{base_matrix, collect_samples, SamplingConfig};
    let sampling = SamplingConfig {
        seed,
        ..SamplingConfig::default()
    };
    let samples = collect_samples(fleet, model, 0, fleet.config().days() - 1, &sampling)
        .expect("fleet has samples of the model");
    let (matrix, labels, mwi) =
        base_matrix(fleet, model, &samples).expect("matrix construction succeeds");
    (matrix, labels, mwi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<RunOptions, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        RunOptions::parse(&owned)
    }

    #[test]
    fn defaults_when_no_args() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.drives_per_model, 400);
        assert_eq!(opts.days, 730);
        assert!(!opts.quick);
        assert_eq!(opts.models().len(), 6);
    }

    #[test]
    fn parses_all_flags() {
        let opts = parse(&[
            "--drives", "50", "--census", "1000", "--days", "365", "--seed", "7", "--quick",
            "--out", "/tmp/x", "--model", "mc1", "--model", "MA1",
        ])
        .unwrap();
        assert_eq!(opts.drives_per_model, 50);
        assert_eq!(opts.census_total, 1000);
        assert_eq!(opts.days, 365);
        assert_eq!(opts.seed, 7);
        assert!(opts.quick);
        assert_eq!(
            opts.out_dir.as_deref(),
            Some(std::path::Path::new("/tmp/x"))
        );
        assert_eq!(opts.models(), vec![DriveModel::Ma1, DriveModel::Mc1]);
    }

    #[test]
    fn quick_caps_sizes() {
        let opts = parse(&["--drives", "9999", "--quick"]).unwrap();
        assert!(opts.drives_per_model <= 120);
        assert!(opts.census_total <= 8000);
    }

    #[test]
    fn rejects_unknown_flag_and_bad_values() {
        assert!(parse(&["--nope"]).is_err());
        assert!(parse(&["--drives"]).is_err());
        assert!(parse(&["--drives", "abc"]).is_err());
        assert!(parse(&["--model", "XY9"]).is_err());
    }

    #[test]
    fn quick_experiment_config_is_smaller() {
        let quick = parse(&["--quick"]).unwrap().experiment_config();
        let full = parse(&[]).unwrap().experiment_config();
        assert!(quick.predictor.n_trees < full.predictor.n_trees);
    }
}
