#![forbid(unsafe_code)]
//! Paired ingestion benchmark: single-threaded CSV import versus the
//! sharded streaming reader, on an exported fleet held in memory (so the
//! comparison times parsing, not disk).
//!
//! Timings come from the telemetry span tree, the same stopwatch as
//! `exp4_runtime`. With `--out DIR` the run writes `DIR/BENCH_pr5.json`;
//! the committed `results/BENCH_pr5.json` records the machine's core count
//! alongside the speedups, since the parallel win is bounded by it.
//!
//! Every timed variant is first checked to produce a drive list
//! bit-identical to the single-threaded reference.

use smart_dataset::csv::{export_smart_csv, import_smart_csv};
use smart_dataset::{import_smart_csv_sharded, tickets_from_summaries, IngestConfig};
use wefr_bench::{print_header, RunOptions};

struct IngestRow {
    method: String,
    mean_seconds: f64,
    rounds: usize,
}

json::impl_to_json!(IngestRow {
    method,
    mean_seconds,
    rounds
});

struct IngestBenchReport {
    n_rows: usize,
    n_drives: usize,
    csv_bytes: usize,
    shard_rows: usize,
    cores: usize,
    rows: Vec<IngestRow>,
    /// Single-threaded mean divided by sharded mean at 1 worker
    /// (> 1 means the sharded parser is faster even without parallelism).
    speedup_w1: f64,
    /// Single-threaded mean divided by sharded mean at 4 workers.
    speedup_w4: f64,
}

json::impl_to_json!(IngestBenchReport {
    n_rows,
    n_drives,
    csv_bytes,
    shard_rows,
    cores,
    rows,
    speedup_w1,
    speedup_w4
});

fn main() {
    let opts = RunOptions::from_args();
    let fleet = opts.fleet();
    // The span tree is the stopwatch — collect regardless of WEFR_LOG.
    telemetry::set_collect(true);

    let tickets = tickets_from_summaries(&fleet.summaries());
    let mut buf = Vec::new();
    export_smart_csv(&fleet, &mut buf).expect("in-memory export");
    let csv = String::from_utf8(buf).expect("CSV is UTF-8");
    let n_rows = csv.lines().count() - 1;
    let rounds = if opts.quick { 2 } else { 5 };
    // The default shard size is cache-sized, not file-sized; WEFR_INGEST_SHARD_ROWS
    // overrides it here exactly as it does in production.
    let shard_rows = IngestConfig::from_env().shard_rows;
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    print_header("Ingestion benchmark: single-threaded vs sharded CSV import");
    println!(
        "{} data rows, {} drives, {:.1} MiB CSV; shard_rows {}, {} timing rounds, {} cores\n",
        n_rows,
        fleet.drives().len(),
        csv.len() as f64 / (1024.0 * 1024.0),
        shard_rows,
        rounds,
        cores
    );

    // The reference is the single-threaded *import*, not the generated
    // fleet: importers cannot recover `initial_age_days`, so only the two
    // readers are comparable bit-for-bit.
    let reference = import_smart_csv(csv.as_bytes(), &tickets, fleet.config().clone())
        .expect("reference import");

    let sharded_config = |workers: usize| IngestConfig {
        shard_rows,
        workers,
        max_queued_shards: 8,
        ..IngestConfig::default()
    };
    enum Method {
        Single,
        Sharded(usize),
    }
    let variants = [
        ("ingest/single", Method::Single),
        ("ingest/sharded_w1", Method::Sharded(1)),
        ("ingest/sharded_w4", Method::Sharded(4)),
    ];

    let mut rows = Vec::new();
    let mut means = [0.0f64; 3];
    for (slot, (label, method)) in variants.into_iter().enumerate() {
        // Warm-up round, also the bit-identity check for this variant.
        let warm = match &method {
            Method::Single => import_smart_csv(csv.as_bytes(), &tickets, fleet.config().clone()),
            Method::Sharded(workers) => import_smart_csv_sharded(
                csv.as_bytes(),
                &tickets,
                fleet.config().clone(),
                &sharded_config(*workers),
            ),
        }
        .expect("well-formed CSV");
        assert!(
            warm.drives() == reference.drives(),
            "{label} diverged from the single-threaded reader"
        );
        telemetry::reset();
        for _ in 0..rounds {
            let round = telemetry::span!(label);
            match &method {
                Method::Single => {
                    import_smart_csv(csv.as_bytes(), &tickets, fleet.config().clone())
                        .expect("well-formed CSV");
                }
                Method::Sharded(workers) => {
                    import_smart_csv_sharded(
                        csv.as_bytes(),
                        &tickets,
                        fleet.config().clone(),
                        &sharded_config(*workers),
                    )
                    .expect("well-formed CSV");
                }
            }
            drop(round);
        }
        let mean = telemetry::snapshot("bench_ingest").total_seconds(label) / rounds as f64;
        means[slot] = mean;
        let mib_s = csv.len() as f64 / (1024.0 * 1024.0) / mean;
        println!("{label:<22} {mean:>9.3} s  ({mib_s:>7.1} MiB/s)");
        rows.push(IngestRow {
            method: label.to_string(),
            mean_seconds: mean,
            rounds,
        });
    }

    let speedup_w1 = means[0] / means[1];
    let speedup_w4 = means[0] / means[2];
    println!("\nsingle / sharded_w1 = {speedup_w1:.2}x");
    println!("single / sharded_w4 = {speedup_w4:.2}x (on {cores} core(s))");
    let report = IngestBenchReport {
        n_rows,
        n_drives: fleet.drives().len(),
        csv_bytes: csv.len(),
        shard_rows,
        cores,
        rows,
        speedup_w1,
        speedup_w4,
    };
    opts.write_json("BENCH_pr5", &report);
}
