#![forbid(unsafe_code)]
//! Exp#1 / Table VI — prediction accuracy of no feature selection, the five
//! state-of-the-art selectors (validation-tuned percentage), and WEFR, per
//! drive model and overall, at the paper's fixed per-model recall.

use smart_pipeline::experiment::{run_method, Method, MethodResult, SelectorKind};
use smart_pipeline::report::{render_method_table, rows_from_results};
use wefr_bench::{print_header, RunOptions};

fn main() {
    let opts = RunOptions::from_args();
    let fleet = opts.fleet();
    let config = opts.experiment_config();

    let methods: Vec<Method> = std::iter::once(Method::NoSelection)
        .chain(SelectorKind::ALL.into_iter().map(|kind| Method::Selector {
            kind,
            percent: None,
        }))
        .chain(std::iter::once(Method::Wefr))
        .collect();

    print_header("Exp#1 / Table VI: effectiveness of robust feature selection");
    let models = opts.models();
    let mut results: Vec<MethodResult> = Vec::new();
    for &model in &models {
        for &method in &methods {
            eprint!("running {:<22} on {} ... ", method.label(), model);
            match run_method(&fleet, model, method, &config) {
                Ok(r) => {
                    eprintln!(
                        "P={:.0}% R={:.0}% F0.5={:.0}%",
                        r.overall.precision * 100.0,
                        r.overall.recall * 100.0,
                        r.overall.f_half * 100.0
                    );
                    results.push(r);
                }
                Err(e) => eprintln!("FAILED: {e}"),
            }
        }
    }

    let labels: Vec<String> = methods.iter().map(Method::label).collect();
    let model_names: Vec<&str> = models.iter().map(|m| m.name()).collect();
    let rows = rows_from_results(&labels, &results);
    println!("{}", render_method_table(&model_names, &rows));

    // Paper-shape summary: WEFR vs no selection on overall precision/F0.5.
    let overall_of = |label: &str| {
        rows.iter()
            .find(|(l, _, _)| l == label)
            .map(|(_, _, overall)| *overall)
    };
    if let (Some(none), Some(wefr)) = (overall_of("No feature selection"), overall_of("WEFR")) {
        println!(
            "WEFR vs no selection (all models): precision {:+.0}pp (paper +22pp), F0.5 {:+.0}pp (paper +10pp)",
            (wefr.precision - none.precision) * 100.0,
            (wefr.f_half - none.f_half) * 100.0
        );
    }
    opts.write_json("exp1_effectiveness", &results);
}
