#![forbid(unsafe_code)]
//! Run every table and figure of the paper in sequence, sharing one fleet.
//!
//! This is the one-shot reproduction driver behind EXPERIMENTS.md; each
//! artifact is also available as its own binary for focused runs.

use std::process::Command;
use wefr_bench::{print_header, RunOptions};

const BINARIES: [&str; 9] = [
    "table1_attributes",
    "table2_summary",
    "figure1_survival",
    "table3_importance",
    "table4_rankings",
    "table5_wearout_rankings",
    "exp1_effectiveness",
    "exp2_automated",
    "exp3_updating",
];

fn main() {
    let opts = RunOptions::from_args();
    print_header("WEFR reproduction: all tables and figures");
    eprintln!(
        "fleet: {} drives/model over {} days (seed {}); quick = {}",
        opts.drives_per_model, opts.days, opts.seed, opts.quick
    );

    // exp4 is last: it is timing-sensitive and benefits from a quiet machine.
    let args: Vec<String> = std::env::args().skip(1).collect();
    for bin in BINARIES.iter().chain(std::iter::once(&"exp4_runtime")) {
        eprintln!("\n>>> {bin}");
        let status = Command::new(
            std::env::current_exe()
                .expect("self path")
                .with_file_name(bin),
        )
        .args(&args)
        .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{bin} exited with {s}"),
            Err(e) => eprintln!(
                "failed to launch {bin}: {e} (build with `cargo build -p wefr-bench --bins`)"
            ),
        }
    }
}
