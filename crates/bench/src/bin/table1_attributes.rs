#![forbid(unsafe_code)]
//! Table I — SMART attribute coverage per drive model.
//!
//! Regenerates the attribute/model matrix from the drive-model catalog (the
//! reconstruction of the paper's Table I; see `DriveModel::attributes`).

use smart_dataset::{DriveModel, SmartAttribute};
use wefr_bench::{print_header, RunOptions};

fn main() {
    let opts = RunOptions::from_args();
    print_header("Table I: SMART attributes per drive model");

    print!("{:<40}", "SMART attribute name");
    for m in DriveModel::ALL {
        print!(" {:>4}", m.name());
    }
    println!();
    println!("{}", "-".repeat(40 + 6 * 5));

    let mut rows = Vec::new();
    for attr in SmartAttribute::ALL {
        print!("{:<34} ({:<4})", attr.full_name(), attr.code());
        let mut coverage = Vec::new();
        for m in DriveModel::ALL {
            let has = m.has_attribute(attr);
            print!(" {:>4}", if has { "Y" } else { "-" });
            coverage.push(has);
        }
        println!();
        rows.push((attr.code().to_string(), coverage));
    }

    println!(
        "\n{} attributes; per-model counts: {}",
        SmartAttribute::ALL.len(),
        DriveModel::ALL
            .iter()
            .map(|m| format!("{}={}", m.name(), m.attributes().len()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    opts.write_json("table1_attributes", &rows);
}
