#![forbid(unsafe_code)]
//! Exp#2 / Figure 2 — F0.5 of WEFR's automatically chosen feature count
//! versus fixed selected-feature percentages (10%–100%) over the same
//! ensemble ranking.

use smart_pipeline::experiment::run_percentage_sweep;
use wefr_bench::{print_header, RunOptions};

fn main() {
    let opts = RunOptions::from_args();
    let fleet = opts.fleet();
    let mut config = opts.experiment_config();
    // Figure 2 sweeps 10%..100% in 10% steps, as the paper does.
    config.tune_grid = (1..=10).map(|i| i as f64 / 10.0).collect();

    print_header("Exp#2 / Figure 2: effectiveness of automated feature selection");
    let mut results = Vec::new();
    for model in opts.models() {
        eprintln!("sweeping {model} ...");
        match run_percentage_sweep(&fleet, model, &config) {
            Ok(sweep) => {
                println!("--- {model} ---");
                print!("fixed %: ");
                for p in &sweep.points {
                    print!("{:.0}%:{:.2} ", p.percent * 100.0, p.f_half);
                }
                println!();
                let best_fixed = sweep
                    .points
                    .iter()
                    .map(|p| p.f_half)
                    .fold(f64::NEG_INFINITY, f64::max);
                println!(
                    "WEFR:    auto {:.0}% of features -> F0.5 {:.2} (best fixed {:.2}, {})",
                    sweep.wefr_percent * 100.0,
                    sweep.wefr_f_half,
                    best_fixed,
                    if sweep.wefr_f_half + 1e-9 >= best_fixed {
                        "WEFR >= best fixed, matches the paper"
                    } else {
                        "WEFR below best fixed"
                    }
                );
                println!();
                results.push(sweep);
            }
            Err(e) => eprintln!("{model} FAILED: {e}"),
        }
    }
    println!("paper reference: WEFR's automatic fractions were 31/34/28/26/63/28% for MA1..MC2");
    opts.write_json("exp2_automated", &results);
}
