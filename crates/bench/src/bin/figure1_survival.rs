#![forbid(unsafe_code)]
//! Figure 1 — survival rate versus `MWI_N` per drive model, with the
//! Bayesian change points marked.
//!
//! Prints each model's curve as an ASCII strip plus the detected change
//! point; `--out` writes the full series for replotting.

use smart_changepoint::survival::SurvivalCurve;

use wefr_bench::{print_header, RunOptions};

struct ModelCurve {
    model: String,
    points: Vec<(u32, f64, usize)>,
    change_point: Option<(u32, f64)>,
}

json::impl_to_json!(ModelCurve {
    model,
    points,
    change_point
});

fn main() {
    let opts = RunOptions::from_args();
    let census = opts.census();
    print_header("Figure 1: survival rate vs MWI_N (change points via BOCPD, z >= 2.5)");

    let mut curves = Vec::new();
    for model in opts.models() {
        let drives = census
            .summaries_of_model(model)
            .map(|s| (s.final_mwi_n, s.is_failed()));
        let curve = SurvivalCurve::from_drives(drives, 3);
        let cp = curve
            .detect_change_point_default()
            .expect("valid BOCPD config");

        println!("--- {model} ---");
        match curve.mwi_range() {
            Some((lo, hi)) => println!("observed MWI_N range: {lo}..{hi}"),
            None => println!("no populated MWI buckets"),
        }
        match &cp {
            Some(c) => println!(
                "change point: MWI_N = {} (z = {:.2}, p = {:.3})  [paper: MA1/MA2/MC1 in 20..45, MC2 at 72, MB1/MB2 none]",
                c.mwi_threshold, c.z_score, c.probability
            ),
            None => println!("no significant change point (expected for MB1/MB2)"),
        }
        render_strip(&curve, cp.as_ref().map(|c| c.mwi_threshold));
        println!();

        curves.push(ModelCurve {
            model: model.name().to_string(),
            points: curve
                .points()
                .iter()
                .map(|p| (p.mwi, p.rate, p.total))
                .collect(),
            change_point: cp.map(|c| (c.mwi_threshold, c.z_score)),
        });
    }
    opts.write_json("figure1_survival", &curves);
}

/// A coarse ASCII rendition: survival rate bucketed over MWI_N, descending.
fn render_strip(curve: &SurvivalCurve, change_point: Option<u32>) {
    const GLYPHS: [char; 5] = [' ', '.', ':', '+', '#'];
    let mut strip = String::new();
    let mut axis = String::new();
    for p in curve.points() {
        let level = (p.rate * (GLYPHS.len() - 1) as f64).round() as usize;
        strip.push(GLYPHS[level.min(GLYPHS.len() - 1)]);
        axis.push(if Some(p.mwi) == change_point {
            '^'
        } else {
            ' '
        });
    }
    println!(
        "rate (MWI_N {} -> {}):",
        curve.points().first().map_or(0, |p| p.mwi),
        curve.points().last().map_or(0, |p| p.mwi)
    );
    println!("  [{strip}]");
    if change_point.is_some() {
        println!("   {axis} (^ = change point)");
    }
}
