#![forbid(unsafe_code)]
//! Table V — top-five Random-Forest feature rankings per low/high `MWI_N`
//! group, after splitting each model at its survival-rate change point.

use smart_dataset::DriveModel;
use smart_pipeline::experiment::wearout_survival;
use wefr_bench::{characterization_matrix, print_header, RunOptions};
use wefr_core::wearout::{detect_wearout_threshold, split_rows_by_mwi};
use wefr_core::{FeatureRanker, ForestRanker};

struct GroupRanking {
    model: String,
    threshold: u32,
    low_top5: Vec<String>,
    high_top5: Vec<String>,
}

json::impl_to_json!(GroupRanking {
    model,
    threshold,
    low_top5,
    high_top5
});

fn main() {
    let opts = RunOptions::from_args();
    let fleet = opts.fleet();
    print_header("Table V: top-5 RF features per MWI_N group");

    let candidates = [
        DriveModel::Ma1,
        DriveModel::Ma2,
        DriveModel::Mc1,
        DriveModel::Mc2,
    ];
    let mut results = Vec::new();
    for model in opts.models().into_iter().filter(|m| candidates.contains(m)) {
        let survival = wearout_survival(
            &fleet,
            model,
            fleet.config().days() - 1,
            &opts.experiment_config(),
        )
        .expect("census config derived from a valid fleet");
        let cp = detect_wearout_threshold(
            &survival,
            &smart_changepoint::BocpdConfig::default(),
            smart_changepoint::PAPER_Z_THRESHOLD,
            3,
        )
        .expect("valid BOCPD config");
        let Some(cp) = cp else {
            println!("--- {model} --- no change point detected; skipped");
            continue;
        };

        let (matrix, labels, mwi) = characterization_matrix(&fleet, model, opts.seed);
        let split = split_rows_by_mwi(&mwi, cp.mwi_threshold as f64);
        let rank_group = |rows: &[usize]| -> Option<Vec<String>> {
            if rows.len() < 40 {
                return None;
            }
            let sub = matrix.select_rows(rows).ok()?;
            let sub_labels: Vec<bool> = rows.iter().map(|&r| labels[r]).collect();
            if !sub_labels.iter().any(|&l| l) || !sub_labels.iter().any(|&l| !l) {
                return None;
            }
            let ranking = ForestRanker::with_seed(opts.seed)
                .rank(&sub, &sub_labels)
                .ok()?;
            Some(ranking.top_names(5).iter().map(|s| s.to_string()).collect())
        };

        println!("--- {model} (threshold MWI_N = {}) ---", cp.mwi_threshold);
        let low = rank_group(&split.low_rows);
        let high = rank_group(&split.high_rows);
        match (&low, &high) {
            (Some(low), Some(high)) => {
                println!("  low  MWI_N: {}", low.join("  "));
                println!("  high MWI_N: {}", high.join("  "));
                results.push(GroupRanking {
                    model: model.name().to_string(),
                    threshold: cp.mwi_threshold,
                    low_top5: low.clone(),
                    high_top5: high.clone(),
                });
            }
            _ => println!("  a group is too small for ranking at this fleet scale"),
        }
        println!();
    }

    println!("paper reference: MWI_N and POH_R rank higher in the low-MWI groups");
    opts.write_json("table5_wearout_rankings", &results);
}
