#![forbid(unsafe_code)]
//! Streaming-generation benchmark (`BENCH_pr8.json`): a paper-scale
//! generate → select → train run fed entirely by the chunked generator
//! (DESIGN.md §12), with the memory evidence that makes the bounded-memory
//! claim checkable.
//!
//! Two parts:
//!
//! 1. **Bit-identity matrix** — at a small scale, `generate_fleet_streamed`
//!    is compared record-for-record against `Fleet::generate` across chunk
//!    sizes × worker counts. The rows land in the report and
//!    `check_gen_bench` fails CI if any is false.
//! 2. **Paper-scale run** — the paper population mix at `--census` drives
//!    (500 000 for the committed run, capped at 8 000 by `--quick`) is
//!    streamed through `generated_base_matrix`, WEFR selects on the
//!    downsampled matrix with survival context from the measured census,
//!    and a Random Forest trains on the selected columns. The fleet is
//!    never materialized: the report records the full-fleet value bytes
//!    the run *avoided* holding versus the bounded pipeline window it did.
//!
//! With the `obs-alloc` feature compiled in and `WEFR_OBS_ALLOC=1`, each
//! stage row also carries the counting allocator's per-span byte delta.
//! `--out` additionally rewrites the pinned `census_fig1.json` golden.

use smart_dataset::gen::stream::GenConfig;
use smart_dataset::{DriveModel, Fleet, FleetConfig};
use smart_pipeline::{
    fig1_pinned_config, fig1_report, fig1_report_from_census, generated_base_matrix,
    SamplingConfig, FIG1_MIN_BUCKET,
};
use smart_trees::{ForestConfig, RandomForest};
use wefr_bench::{print_header, RunOptions};
use wefr_core::{SelectionInput, Wefr, WefrConfig};

struct IdentityRow {
    workers: usize,
    chunk_drives: usize,
    identical: bool,
}

json::impl_to_json!(IdentityRow {
    workers,
    chunk_drives,
    identical
});

struct StageRow {
    stage: String,
    seconds: f64,
    alloc_bytes: u64,
}

json::impl_to_json!(StageRow {
    stage,
    seconds,
    alloc_bytes
});

struct GenReport {
    census_total: u32,
    days: u32,
    seed: u64,
    model: String,
    cores: usize,
    workers: usize,
    chunk_drives: usize,
    max_queued_chunks: usize,
    drives: u64,
    rows: u64,
    chunks: u64,
    queue_full_stalls: u64,
    /// Total `f32` telemetry bytes of the population — what a materialized
    /// `Fleet` would hold resident.
    value_bytes: u64,
    /// Largest single batch the stream emitted.
    peak_batch_bytes: u64,
    /// Upper bound on batch bytes resident at once:
    /// `peak_batch_bytes × (workers + max_queued_chunks + 1)`.
    bounded_window_bytes: u64,
    /// `value_bytes / bounded_window_bytes` — how many times larger the
    /// avoided materialized fleet is than the streaming window.
    bounded_ratio: f64,
    samples: usize,
    positives: usize,
    selected: Vec<String>,
    trees: usize,
    alloc_tracked: bool,
    identity: Vec<IdentityRow>,
    stages: Vec<StageRow>,
}

json::impl_to_json!(GenReport {
    census_total,
    days,
    seed,
    model,
    cores,
    workers,
    chunk_drives,
    max_queued_chunks,
    drives,
    rows,
    chunks,
    queue_full_stalls,
    value_bytes,
    peak_batch_bytes,
    bounded_window_bytes,
    bounded_ratio,
    samples,
    positives,
    selected,
    trees,
    alloc_tracked,
    identity,
    stages
});

/// Small-scale bit-identity sweep: every cell must reproduce the
/// materialized fleet exactly.
fn identity_matrix(seed: u64) -> Vec<IdentityRow> {
    let config = FleetConfig::builder()
        .days(240)
        .seed(seed)
        .drives(DriveModel::Mc1, 40)
        .failure_scale(8.0)
        .build()
        .expect("valid identity config");
    let reference = Fleet::generate(&config);
    let mut rows = Vec::new();
    for workers in [1, 2, 4, 8] {
        for chunk_drives in [1, 16, 1024] {
            let gen = GenConfig {
                chunk_drives,
                workers,
                max_queued_chunks: 2,
                scenario: None,
            };
            let streamed =
                smart_dataset::generate_fleet_streamed(&config, &gen).expect("streamed generation");
            let identical = streamed.drives() == reference.drives();
            assert!(
                identical,
                "stream diverged from Fleet::generate at workers={workers} \
                 chunk_drives={chunk_drives}"
            );
            rows.push(IdentityRow {
                workers,
                chunk_drives,
                identical,
            });
        }
    }
    rows
}

fn main() {
    let opts = RunOptions::from_args();
    telemetry::set_collect(true);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    print_header("Streaming generation: paper-scale generate -> select -> train");

    println!("bit-identity sweep (workers x chunk sizes)...");
    let identity = identity_matrix(opts.seed);
    println!("  {} cells, all identical", identity.len());

    // The paper census mix at --census drives, default two-year window.
    let config =
        FleetConfig::proportional(opts.census_total, opts.seed).expect("valid census config");
    let total = config.total_drives();
    let gen = GenConfig {
        chunk_drives: (total as usize / 128).clamp(64, 4096),
        workers: cores.min(8),
        max_queued_chunks: 8,
        scenario: None,
    };
    let model = DriveModel::Mc1;
    let sampling = SamplingConfig::default();
    println!(
        "population: {total} drives x {} days, chunk {} drives, {} worker(s)",
        config.days(),
        gen.chunk_drives,
        gen.workers
    );

    telemetry::reset();
    let generated = {
        let _span = telemetry::span!("gen_matrix");
        generated_base_matrix(&config, &gen, model, 0, config.days() - 1, &sampling)
            .expect("generated matrix")
    };
    let positives = generated.labels.iter().filter(|&&l| l).count();
    println!(
        "matrix: {} samples ({} positive), {} features",
        generated.labels.len(),
        positives,
        generated.matrix.n_features()
    );

    let survival: Vec<(f64, bool)> = generated
        .census
        .summaries_of_model(model)
        .map(|s| (s.final_mwi_n, s.is_failed()))
        .collect();
    // No bench-side span here: `Wefr::select` opens its own span named
    // "select", which is exactly the stage we want to report.
    let selection = {
        let wefr = Wefr::new(WefrConfig {
            seed: opts.seed,
            ..WefrConfig::default()
        });
        wefr.select(&SelectionInput {
            data: &generated.matrix,
            labels: &generated.labels,
            mwi_per_sample: Some(&generated.mwi),
            survival: Some(&survival),
        })
        .expect("selection")
    };
    println!(
        "selected {} of {} features: {:?}",
        selection.global.selected.len(),
        generated.matrix.n_features(),
        selection.global.selected_names
    );

    let forest_config = ForestConfig {
        n_trees: if opts.quick { 25 } else { 50 },
        seed: opts.seed,
        ..ForestConfig::default()
    };
    let forest = {
        let _span = telemetry::span!("train");
        let selected = generated
            .matrix
            .select_columns(&selection.global.selected)
            .expect("selected columns");
        RandomForest::fit(&selected, &generated.labels, &forest_config).expect("training")
    };
    println!("trained {} trees", forest_config.n_trees);
    drop(forest);

    let report_snapshot = telemetry::snapshot("bench_gen_stream");
    let stages = ["gen_matrix", "select", "train"]
        .into_iter()
        .map(|stage| StageRow {
            stage: stage.to_string(),
            seconds: report_snapshot.total_seconds(stage),
            alloc_bytes: report_snapshot
                .spans_named(stage)
                .iter()
                .map(|s| s.alloc_bytes)
                .sum(),
        })
        .collect::<Vec<_>>();
    for row in &stages {
        println!(
            "  {:<10} {:>8.2}s  {:>12} alloc bytes",
            row.stage, row.seconds, row.alloc_bytes
        );
    }

    let stats = &generated.stats;
    let window_batches = (gen.workers + gen.max_queued_chunks + 1) as u64;
    let bounded_window_bytes = stats.peak_batch_bytes * window_batches;
    let bounded_ratio = if bounded_window_bytes > 0 {
        stats.value_bytes as f64 / bounded_window_bytes as f64
    } else {
        0.0
    };
    println!(
        "memory: fleet value bytes {} vs bounded window {} ({:.1}x avoided)",
        stats.value_bytes, bounded_window_bytes, bounded_ratio
    );

    let report = GenReport {
        census_total: total,
        days: config.days(),
        seed: opts.seed,
        model: model.name().to_string(),
        cores,
        workers: gen.workers,
        chunk_drives: gen.chunk_drives,
        max_queued_chunks: gen.max_queued_chunks,
        drives: stats.drives,
        rows: stats.rows,
        chunks: stats.chunks,
        queue_full_stalls: stats.queue_full_stalls,
        value_bytes: stats.value_bytes,
        peak_batch_bytes: stats.peak_batch_bytes,
        bounded_window_bytes,
        bounded_ratio,
        samples: generated.labels.len(),
        positives,
        selected: selection.global.selected_names.clone(),
        trees: forest_config.n_trees,
        alloc_tracked: telemetry::alloc::tracking_active(),
        identity,
        stages,
    };
    opts.write_json("BENCH_pr8", &report);

    // Regenerate the pinned Fig. 1 golden alongside the bench report. At
    // the pinned census scale this reuses nothing from the run above —
    // the golden is fixed by (FIG1_CENSUS_TOTAL, FIG1_SEED) alone. When
    // the run *is* the pinned config, reuse its measured census.
    if opts.out_dir.is_some() {
        let pinned = fig1_pinned_config().expect("pinned fig1 config");
        let fig1 = if *generated.census.config() == pinned {
            fig1_report_from_census(&generated.census, FIG1_MIN_BUCKET).expect("fig1 report")
        } else {
            fig1_report(&pinned, &GenConfig::default(), FIG1_MIN_BUCKET).expect("fig1 report")
        };
        opts.write_json("census_fig1", &fig1);
    }
}
