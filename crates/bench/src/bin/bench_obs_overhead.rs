#![forbid(unsafe_code)]
//! Observability-overhead benchmark: run the quickstart example as a
//! subprocess with every observability knob off, then with the full plane
//! on (run report, live /metrics endpoint, watchdog, allocation counters),
//! and compare wall-clock time and stdout.
//!
//! ```text
//! bench_obs_overhead <quickstart-binary> [--reps N] [--out DIR]
//! ```
//!
//! Two invariants from DESIGN.md §6 are measured here and gated by
//! `check_obs_overhead`:
//!
//! 1. stdout must be bit-identical with observability on or off — the
//!    plane speaks only through stderr, files, and the TCP endpoint;
//! 2. the full plane must cost at most a few percent of wall-clock.
//!
//! Modes alternate (off, on, off, on, …) so slow drift in machine load
//! hits both equally, and each mode is scored by its fastest rep — the
//! min, not the mean, is the right estimator for "how fast can this go".

use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

use wefr_bench::print_header;

/// Environment knobs scrubbed from both modes before the on-mode set is
/// applied, so the ambient environment cannot tilt the comparison.
const OBS_VARS: [&str; 5] = [
    "WEFR_LOG",
    "WEFR_TELEMETRY_OUT",
    "WEFR_METRICS_ADDR",
    "WEFR_WATCHDOG_SECS",
    "WEFR_OBS_ALLOC",
];

struct ModeRow {
    mode: String,
    min_seconds: f64,
    reps: usize,
}

json::impl_to_json!(ModeRow {
    mode,
    min_seconds,
    reps
});

struct ObsOverheadReport {
    reps: usize,
    off_seconds: f64,
    on_seconds: f64,
    /// on / off wall-clock ratio (1.0 = free observability).
    overhead_ratio: f64,
    /// Whether every run, in both modes, produced byte-identical stdout.
    stdout_identical: bool,
    rows: Vec<ModeRow>,
}

json::impl_to_json!(ObsOverheadReport {
    reps,
    off_seconds,
    on_seconds,
    overhead_ratio,
    stdout_identical,
    rows
});

struct Args {
    binary: PathBuf,
    reps: usize,
    out_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut binary = None;
    let mut reps = 3usize;
    let mut out_dir = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--reps" => {
                i += 1;
                reps = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|r| *r >= 1)
                    .ok_or("--reps needs a positive integer")?;
            }
            "--out" => {
                i += 1;
                out_dir = Some(PathBuf::from(argv.get(i).ok_or("--out needs a directory")?));
            }
            other if binary.is_none() && !other.starts_with("--") => {
                binary = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    Ok(Args {
        binary: binary.ok_or("missing quickstart binary path")?,
        reps,
        out_dir,
    })
}

/// Run the workload once; returns (wall seconds, stdout bytes).
fn run_once(binary: &PathBuf, obs_on: bool, scratch: &PathBuf) -> Result<(f64, Vec<u8>), String> {
    let mut cmd = Command::new(binary);
    for var in OBS_VARS {
        cmd.env_remove(var);
    }
    if obs_on {
        // The full plane: run report + flamegraph to a scratch dir, live
        // endpoint on an ephemeral port, armed watchdog, allocation
        // counters requested (a no-op unless built with obs-alloc).
        cmd.env("WEFR_TELEMETRY_OUT", scratch)
            .env("WEFR_METRICS_ADDR", "127.0.0.1:0")
            .env("WEFR_WATCHDOG_SECS", "30")
            .env("WEFR_OBS_ALLOC", "1");
    }
    let started = Instant::now();
    let output = cmd
        .output()
        .map_err(|e| format!("running {}: {e}", binary.display()))?;
    let seconds = started.elapsed().as_secs_f64();
    if !output.status.success() {
        return Err(format!(
            "{} exited with {} (obs_on={obs_on}): {}",
            binary.display(),
            output.status,
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    Ok((seconds, output.stdout))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: bench_obs_overhead <quickstart-binary> [--reps N] [--out DIR]");
            std::process::exit(2);
        }
    };
    let scratch = args
        .out_dir
        .clone()
        .unwrap_or_else(std::env::temp_dir)
        .join(format!("obs_overhead_scratch_{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        eprintln!("error: creating {}: {e}", scratch.display());
        std::process::exit(1);
    }

    print_header("Observability overhead: quickstart with the full plane on vs off");
    println!(
        "workload {}; {} reps per mode, alternating\n",
        args.binary.display(),
        args.reps
    );

    let mut mins = [f64::INFINITY; 2]; // [off, on]
    let mut reference_stdout: Option<Vec<u8>> = None;
    let mut stdout_identical = true;
    for rep in 0..args.reps {
        for (slot, obs_on) in [(0usize, false), (1usize, true)] {
            let (seconds, stdout) = match run_once(&args.binary, obs_on, &scratch) {
                Ok(r) => r,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    std::process::exit(1);
                }
            };
            mins[slot] = mins[slot].min(seconds);
            match &reference_stdout {
                None => reference_stdout = Some(stdout),
                Some(reference) => {
                    if *reference != stdout {
                        stdout_identical = false;
                        eprintln!(
                            "stdout DIVERGED on rep {rep} (obs_on={obs_on}): {} vs {} bytes",
                            reference.len(),
                            stdout.len()
                        );
                    }
                }
            }
            println!(
                "rep {rep} obs_{:<3} {seconds:>8.3} s",
                if obs_on { "on" } else { "off" }
            );
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let overhead_ratio = mins[1] / mins[0];
    println!(
        "\nmin obs_off {:.3} s, min obs_on {:.3} s -> overhead {:.2}x; stdout identical: {}",
        mins[0], mins[1], overhead_ratio, stdout_identical
    );

    let report = ObsOverheadReport {
        reps: args.reps,
        off_seconds: mins[0],
        on_seconds: mins[1],
        overhead_ratio,
        stdout_identical,
        rows: vec![
            ModeRow {
                mode: "obs_off".to_string(),
                min_seconds: mins[0],
                reps: args.reps,
            },
            ModeRow {
                mode: "obs_on".to_string(),
                min_seconds: mins[1],
                reps: args.reps,
            },
        ],
    };
    if let Some(dir) = &args.out_dir {
        let path = dir.join("BENCH_pr7.json");
        if let Err(e) = smart_pipeline::report::write_json(&path, &report) {
            eprintln!("warning: failed to write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}
