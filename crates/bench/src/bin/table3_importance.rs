#![forbid(unsafe_code)]
//! Table III — top and last three important learning features per drive
//! model, by Random Forest feature-importance ranking.

use wefr_bench::{characterization_matrix, print_header, RunOptions};
use wefr_core::{FeatureRanker, ForestRanker};

struct ModelImportance {
    model: String,
    top3: Vec<(String, f64)>,
    last3: Vec<(String, f64)>,
}

json::impl_to_json!(ModelImportance { model, top3, last3 });

fn main() {
    let opts = RunOptions::from_args();
    let fleet = opts.fleet();
    print_header("Table III: top/last-3 features by Random Forest importance");

    let mut results = Vec::new();
    for model in opts.models() {
        let (matrix, labels, _) = characterization_matrix(&fleet, model, opts.seed);
        let ranking = ForestRanker::with_seed(opts.seed)
            .rank(&matrix, &labels)
            .expect("characterization data is two-class");

        let named = |names: Vec<&str>| -> Vec<(String, f64)> {
            names
                .into_iter()
                .map(|n| (n.to_string(), ranking.score_of(n).unwrap_or(0.0)))
                .collect()
        };
        let top3 = named(ranking.top_names(3));
        let last3 = named(ranking.bottom_names(3));

        println!("--- {model} ---");
        print!("  top 3:  ");
        for (name, score) in &top3 {
            print!("{name} ({score:.3})  ");
        }
        println!();
        print!("  last 3: ");
        for (name, score) in &last3 {
            print!("{name} ({score:.3})  ");
        }
        println!("\n");

        results.push(ModelImportance {
            model: model.name().to_string(),
            top3,
            last3,
        });
    }

    println!("paper reference (top-1 per model): MA1 PLP_N, MA2 POH_R, MB1 ARS_N, MB2 REC_N, MC1 OCE_R, MC2 UCE_R");
    opts.write_json("table3_importance", &results);
}
