#![forbid(unsafe_code)]
//! Quality ablations for the design choices DESIGN.md calls out — not
//! runtimes (see the Criterion benches for those) but *outcomes*:
//!
//! 1. BOCPD versus binary segmentation: recovered change-point location on
//!    survival curves of known knee.
//! 2. Permutation versus impurity Random-Forest importance: ranking quality
//!    against the planted informative features.
//! 3. Ranking-outlier removal on versus off: effect of one adversarially
//!    bad ranker on the final ensemble ranking.
//! 4. Complexity-ensemble divisor (the paper prints /2, we default /3):
//!    the chosen feature count under both.

use smart_changepoint::binseg;
use smart_changepoint::survival::SurvivalCurve;
use smart_complexity::{automated_feature_count, EnsembleConfig, ThresholdConfig};
use smart_dataset::{Census, DriveModel, FleetConfig};
use wefr_bench::{characterization_matrix, print_header, RunOptions};
use wefr_core::rankers::forest::{ForestImportance, ForestRanker};
use wefr_core::{ensemble_rankings, FeatureRanker, FeatureRanking, PAPER_OUTLIER_SIGMA};

fn main() {
    let opts = RunOptions::from_args();
    ablate_changepoint_detectors(&opts);
    ablate_forest_importance(&opts);
    ablate_outlier_removal(&opts);
    ablate_complexity_divisor(&opts);
}

/// Ablation 1: where do BOCPD and binary segmentation place MC1's wear
/// knee (planted at MWI 30)?
fn ablate_changepoint_detectors(opts: &RunOptions) {
    print_header("Ablation 1: BOCPD vs binary segmentation (MC1 knee planted at MWI 30)");
    let census = Census::generate(
        &FleetConfig::proportional(opts.census_total, opts.seed).expect("valid config"),
    );
    let curve = SurvivalCurve::from_drives(
        census
            .summaries_of_model(DriveModel::Mc1)
            .map(|s| (s.final_mwi_n, s.is_failed())),
        3,
    );
    let work = curve.coarsened(25);

    match curve.detect_change_point_default().expect("valid config") {
        Some(cp) => println!(
            "BOCPD + z-score:      MWI_N = {} (z = {:.1})",
            cp.mwi_threshold, cp.z_score
        ),
        None => println!("BOCPD + z-score:      none detected"),
    }
    let rates = work.smoothed_rates();
    match binseg::best_split(&rates, 4).expect("long enough") {
        Some(b) => println!(
            "binary segmentation:  MWI_N = {} (gain = {:.4})",
            work.points()[b.index].mwi,
            b.gain
        ),
        None => println!("binary segmentation:  no split"),
    }
    println!("(both detectors should land near the planted knee; BOCPD additionally\n provides the per-point change probability the paper's z-score rule needs)");
}

/// Ablation 2: does permutation importance beat impurity importance at
/// separating planted signal from a high-cardinality noise feature?
fn ablate_forest_importance(opts: &RunOptions) {
    print_header("Ablation 2: permutation vs impurity RF importance (MC1)");
    let fleet = opts.fleet();
    let (matrix, labels, _) = characterization_matrix(&fleet, DriveModel::Mc1, opts.seed);
    let mechanism_prefixes = ["OCE", "UCE", "CMDT", "EFC", "PFC", "RER"];

    for (name, ranking) in [
        (
            "permutation",
            ForestRanker::with_seed(opts.seed).rank(&matrix, &labels),
        ),
        (
            "impurity",
            ForestRanker {
                importance: ForestImportance::Impurity,
                ..ForestRanker::with_seed(opts.seed)
            }
            .rank(&matrix, &labels),
        ),
    ] {
        let ranking = ranking.expect("two-class data");
        let top8 = ranking.top_names(8);
        let hits = top8
            .iter()
            .filter(|n| mechanism_prefixes.iter().any(|p| n.starts_with(p)))
            .count();
        println!(
            "{name:<12} top-8 = {top8:?}\n{:<12} mechanism-feature hits in top-8: {hits}/8",
            ""
        );
    }
}

/// Ablation 3: inject an adversarial (reversed) ranking into the ensemble
/// and measure how far the final order moves with and without the paper's
/// outlier removal.
fn ablate_outlier_removal(opts: &RunOptions) {
    print_header("Ablation 3: ranking-outlier removal on/off (adversarial ranker injected)");
    let fleet = opts.fleet();
    let (matrix, labels, _) = characterization_matrix(&fleet, DriveModel::Mc1, opts.seed);
    let rankers = wefr_core::default_rankers(opts.seed);
    let mut rankings: Vec<(String, FeatureRanking)> = rankers
        .iter()
        .map(|r| {
            (
                r.name().to_string(),
                r.rank(&matrix, &labels).expect("two-class data"),
            )
        })
        .collect();
    let clean = ensemble_rankings(&rankings, PAPER_OUTLIER_SIGMA).expect("well-formed rankings");

    // Adversary: the exact reverse of the clean ensemble order.
    let n = matrix.n_features();
    let mut scores = vec![0.0; n];
    for (pos, &col) in clean.order.iter().enumerate() {
        scores[col] = pos as f64; // higher score for formerly-worst features
    }
    rankings.push((
        "adversary".to_string(),
        FeatureRanking::from_scores(matrix.feature_names().to_vec(), scores).expect("valid scores"),
    ));

    let with_removal =
        ensemble_rankings(&rankings, PAPER_OUTLIER_SIGMA).expect("well-formed rankings");
    let without_removal = ensemble_rankings(&rankings, 1e9).expect("well-formed rankings"); // threshold never trips

    let dist = |order: &[usize]| {
        smart_stats::kendall::normalized_kendall_tau_distance(&clean.order, order)
            .expect("same features")
    };
    println!(
        "discarded by 1.96-sigma rule: {:?}",
        with_removal.discarded()
    );
    println!(
        "distance from clean ensemble:  with removal = {:.3}, without = {:.3}",
        dist(&with_removal.order),
        dist(&without_removal.order)
    );
    println!("(removal should discard the adversary and keep the ensemble near the clean order)");
}

/// Ablation 4: the complexity-ensemble divisor (2 as printed in the paper
/// vs 3 as the cited source implies) only rescales `F`, but interacts with
/// the α-weighted size penalty — compare the chosen counts.
fn ablate_complexity_divisor(opts: &RunOptions) {
    print_header("Ablation 4: complexity-ensemble divisor 2 vs 3 (chosen feature count, MC1)");
    let fleet = opts.fleet();
    let (matrix, labels, _) = characterization_matrix(&fleet, DriveModel::Mc1, opts.seed);
    let ranking = ForestRanker::with_seed(opts.seed)
        .rank(&matrix, &labels)
        .expect("two-class data");

    for divisor in [2.0, 3.0] {
        let config = ThresholdConfig {
            ensemble: EnsembleConfig {
                divisor,
                ..EnsembleConfig::default()
            },
            ..ThresholdConfig::default()
        };
        let result = automated_feature_count(&matrix, &labels, ranking.order(), &config)
            .expect("two-class data");
        println!(
            "divisor {divisor}: chose {} of {} features ({:.0}%)",
            result.chosen,
            matrix.n_features(),
            result.chosen as f64 / matrix.n_features() as f64 * 100.0
        );
    }
}
