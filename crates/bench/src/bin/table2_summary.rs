#![forbid(unsafe_code)]
//! Table II — fleet summary statistics: population share, failure share,
//! and annualized failure rate per drive model.
//!
//! Uses the lifecycle census (population mix of the paper, unboosted AFRs).
//! Compare the *ordering* and rough magnitudes against the paper's Table II
//! — the absolute counts scale with `--census`.

use smart_dataset::stats::summarize;
use smart_dataset::DriveModel;
use wefr_bench::{print_header, RunOptions};

fn main() {
    let opts = RunOptions::from_args();
    let census = opts.census();
    let stats = summarize(census.summaries());

    print_header("Table II: summary of statistics");
    println!(
        "{:<8} {:<6} {:>8} {:>9} {:>8} {:>10} {:>8} | {:>9} {:>8}",
        "Model",
        "Flash",
        "Drives",
        "Failures",
        "Total%",
        "Failures%",
        "AFR(%)",
        "paper T%",
        "paperAFR"
    );
    println!("{}", "-".repeat(92));
    for s in &stats {
        println!(
            "{:<8} {:<6} {:>8} {:>9} {:>7.1}% {:>9.1}% {:>7.2}% | {:>8.1}% {:>7.2}%",
            s.model.name(),
            s.flash.to_string(),
            s.drives,
            s.failures,
            s.population_share * 100.0,
            s.failure_share * 100.0,
            s.afr_percent,
            s.model.population_share() * 100.0,
            s.model.target_afr_percent(),
        );
    }

    // Shape checks the paper reports.
    let afr = |m: DriveModel| {
        stats
            .iter()
            .find(|s| s.model == m)
            .map(|s| s.afr_percent)
            .unwrap_or(0.0)
    };
    let max_mlc = [
        DriveModel::Ma1,
        DriveModel::Ma2,
        DriveModel::Mb1,
        DriveModel::Mb2,
    ]
    .iter()
    .map(|&m| afr(m))
    .fold(0.0, f64::max);
    println!(
        "\nTLC AFRs exceed all MLC AFRs: {}",
        if afr(DriveModel::Mc1) > max_mlc && afr(DriveModel::Mc2) > max_mlc {
            "yes (matches the paper)"
        } else {
            "NO (check simulator calibration)"
        }
    );
    opts.write_json("table2_summary", &stats);
}
