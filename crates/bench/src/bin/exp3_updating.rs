#![forbid(unsafe_code)]
//! Exp#3 / Table VII — WEFR with versus without wear-out updating, on all
//! drives and on the low-MWI cohort, for the four models with change points
//! (MA1, MA2, MC1, MC2).

use smart_dataset::DriveModel;
use smart_pipeline::experiment::run_updating_comparison;
use smart_pipeline::report::prf;
use wefr_bench::{print_header, RunOptions};

fn main() {
    let opts = RunOptions::from_args();
    let fleet = opts.fleet();
    let config = opts.experiment_config();

    print_header("Exp#3 / Table VII: effectiveness of updating feature selection");
    println!(
        "{:<7} | {:^19} | {:^19} | {:^19} | {:^19}",
        "Model", "NoUpdate (All)", "WEFR (All)", "NoUpdate (Low)", "WEFR (Low)"
    );
    println!("{}", "-".repeat(7 + 4 * 22));

    let candidates = [
        DriveModel::Ma1,
        DriveModel::Ma2,
        DriveModel::Mc1,
        DriveModel::Mc2,
    ];
    let mut results = Vec::new();
    for model in opts.models().into_iter().filter(|m| candidates.contains(m)) {
        eprintln!("comparing updating on {model} ...");
        match run_updating_comparison(&fleet, model, &config) {
            Ok(r) => {
                let low = |m: &Option<smart_pipeline::EvalMetrics>| {
                    m.as_ref().map_or("n/a".to_string(), prf)
                };
                println!(
                    "{:<7} | {:^19} | {:^19} | {:^19} | {:^19}",
                    model.name(),
                    prf(&r.no_update_all),
                    prf(&r.wefr_all),
                    low(&r.no_update_low),
                    low(&r.wefr_low),
                );
                results.push(r);
            }
            Err(e) => eprintln!("{model} FAILED: {e}"),
        }
    }

    let improved = results
        .iter()
        .filter(|r| r.wefr_all.precision >= r.no_update_all.precision)
        .count();
    println!(
        "\nprecision with updating >= without on {improved}/{} models \
         (paper: updating improves precision by 4-6pp on all four)",
        results.len()
    );
    opts.write_json("exp3_updating", &results);
}
