#![forbid(unsafe_code)]
//! Paired split-engine benchmark: Random-Forest training wall-clock under
//! the exact engine (per-node sort, O(n log n) per feature) versus the
//! histogram engine (shared `BinnedMatrix`, O(n) accumulation per feature),
//! on the MC1 characterization matrix the experiments use.
//!
//! Timings come from the telemetry span tree, the same stopwatch as
//! `exp4_runtime`. With `--out DIR` the run writes `DIR/BENCH_pr3.json`;
//! the committed `results/BENCH_pr3.json` was produced at the default
//! fleet size (`--model mc1`, 400 drives, 730 days).

use smart_dataset::DriveModel;
use smart_trees::{ForestConfig, MaxFeatures, RandomForest, SplitStrategy, TreeConfig};
use wefr_bench::{characterization_matrix, print_header, RunOptions};

struct StrategyRow {
    method: String,
    mean_seconds: f64,
    rounds: usize,
}

json::impl_to_json!(StrategyRow {
    method,
    mean_seconds,
    rounds
});

struct SplitBenchReport {
    n_rows: usize,
    n_features: usize,
    n_trees: usize,
    max_depth: usize,
    rows: Vec<StrategyRow>,
    /// Exact mean divided by histogram mean (> 1 means histogram is faster).
    speedup: f64,
}

json::impl_to_json!(SplitBenchReport {
    n_rows,
    n_features,
    n_trees,
    max_depth,
    rows,
    speedup
});

fn main() {
    let opts = RunOptions::from_args();
    let fleet = opts.fleet();
    // The span tree is the stopwatch — collect regardless of WEFR_LOG.
    telemetry::set_collect(true);
    let (matrix, labels, _) = characterization_matrix(&fleet, DriveModel::Mc1, opts.seed);
    let rounds = if opts.quick { 2 } else { 3 };
    let n_trees = if opts.quick { 20 } else { 50 };
    let max_depth = 13;

    print_header("Split-strategy benchmark: RF training, exact vs histogram");
    println!(
        "matrix: {} samples x {} features; {} trees, depth {}; {} timing rounds\n",
        matrix.n_rows(),
        matrix.n_features(),
        n_trees,
        max_depth,
        rounds
    );

    let mut rows = Vec::new();
    let mut means = [0.0f64; 2];
    for (slot, (label, strategy)) in [
        ("rf_train/exact", SplitStrategy::Exact),
        ("rf_train/histogram", SplitStrategy::Histogram),
    ]
    .into_iter()
    .enumerate()
    {
        let config = ForestConfig {
            n_trees,
            tree: TreeConfig {
                max_depth,
                min_samples_leaf: 2,
                max_features: MaxFeatures::Sqrt,
                ..TreeConfig::default()
            },
            seed: opts.seed,
            n_threads: None,
            strategy,
        };
        RandomForest::fit(&matrix, &labels, &config).expect("two-class data"); // warm-up
        telemetry::reset();
        for _ in 0..rounds {
            let _round = telemetry::span!(label);
            RandomForest::fit(&matrix, &labels, &config).expect("two-class data");
        }
        let mean = telemetry::snapshot("bench_split").total_seconds(label) / rounds as f64;
        means[slot] = mean;
        println!("{label:<22} {mean:>9.3} s");
        rows.push(StrategyRow {
            method: label.to_string(),
            mean_seconds: mean,
            rounds,
        });
    }

    let speedup = means[0] / means[1];
    println!("\nexact / histogram = {speedup:.2}x");
    let report = SplitBenchReport {
        n_rows: matrix.n_rows(),
        n_features: matrix.n_features(),
        n_trees,
        max_depth,
        rows,
        speedup,
    };
    opts.write_json("BENCH_pr3", &report);
}
