//! Exp#4 / Table VIII — wall-clock runtime of the five selectors run
//! sequentially versus WEFR (which runs them in parallel and adds the
//! ensemble + automated-count stages).
//!
//! The paper's claim under test is *relative*: WEFR's runtime tracks the
//! slowest single selector. Absolute times depend on this machine, and our
//! from-scratch selectors have different relative costs than the Python
//! stack the paper used (see EXPERIMENTS.md).

use smart_dataset::DriveModel;
use smart_pipeline::experiment::SelectorKind;
use std::time::Instant;
use wefr_bench::{characterization_matrix, print_header, RunOptions};
use wefr_core::{SelectionInput, Wefr, WefrConfig};

struct RuntimeRow {
    method: String,
    mean_seconds: f64,
    rounds: usize,
}

json::impl_to_json!(RuntimeRow {
    method,
    mean_seconds,
    rounds
});

fn main() {
    let opts = RunOptions::from_args();
    let fleet = opts.fleet();
    // MC1 — the most numerous model, as in the paper.
    let (matrix, labels, mwi) = characterization_matrix(&fleet, DriveModel::Mc1, opts.seed);
    let survival =
        smart_pipeline::survival_pairs(&fleet, DriveModel::Mc1, fleet.config().days() - 1);
    // The paper averages 20 rounds on a 16-core server; a handful of rounds
    // is all a single-core box can afford, and the relative shape is stable.
    let rounds = if opts.quick { 2 } else { 3 };

    print_header("Exp#4 / Table VIII: selector runtimes on MC1");
    println!(
        "matrix: {} samples x {} features; {} timing rounds\n",
        matrix.n_rows(),
        matrix.n_features(),
        rounds
    );

    let mut rows = Vec::new();
    let mut slowest = 0.0f64;
    for kind in SelectorKind::ALL {
        let ranker = kind.build(opts.seed);
        let mean = time_mean(rounds, || {
            ranker.rank(&matrix, &labels).expect("two-class data");
        });
        slowest = slowest.max(mean);
        println!("{:<22} {:>9.3} s", kind.label(), mean);
        rows.push(RuntimeRow {
            method: kind.label().to_string(),
            mean_seconds: mean,
            rounds,
        });
    }

    let wefr = Wefr::new(WefrConfig {
        seed: opts.seed,
        ..WefrConfig::default()
    });
    let input = SelectionInput {
        data: &matrix,
        labels: &labels,
        mwi_per_sample: Some(&mwi),
        survival: Some(&survival),
    };
    let wefr_mean = time_mean(rounds, || {
        wefr.select(&input).expect("selection succeeds");
    });
    println!("{:<22} {:>9.3} s", "WEFR", wefr_mean);
    rows.push(RuntimeRow {
        method: "WEFR".to_string(),
        mean_seconds: wefr_mean,
        rounds,
    });

    println!(
        "\nWEFR / slowest single selector = {:.2}x (paper: 22.9s / 20.4s = 1.12x; \
         parallel execution keeps WEFR near the slowest selector)",
        wefr_mean / slowest
    );
    opts.write_json("exp4_runtime", &rows);
}

fn time_mean(rounds: usize, mut f: impl FnMut()) -> f64 {
    // One warm-up round, then the measured mean.
    f();
    let start = Instant::now();
    for _ in 0..rounds {
        f();
    }
    start.elapsed().as_secs_f64() / rounds as f64
}
