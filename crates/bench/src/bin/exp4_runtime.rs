#![forbid(unsafe_code)]
//! Exp#4 / Table VIII — wall-clock runtime of the five selectors run
//! sequentially versus WEFR (which runs them in parallel and adds the
//! ensemble + automated-count stages).
//!
//! The paper's claim under test is *relative*: WEFR's runtime tracks the
//! slowest single selector. Absolute times depend on this machine, and our
//! from-scratch selectors have different relative costs than the Python
//! stack the paper used (see EXPERIMENTS.md).
//!
//! All timings come from the telemetry span tree — the same spans the
//! production path records — so the bench reports the numbers a real run
//! would, including a per-stage breakdown of WEFR itself (`WEFR/rankers`,
//! `WEFR/ensemble`, …) instead of one opaque end-to-end figure.
//!
//! With `WEFR_OBS_ALLOC=1` and the `obs-alloc` feature, every row also
//! reports the mean MiB allocated per round inside its spans, attributing
//! heap pressure to the same stages the wall-clock column times.

use smart_dataset::csv::{export_smart_csv, import_smart_csv};
use smart_dataset::{import_smart_csv_sharded, tickets_from_summaries, DriveModel, IngestConfig};
use smart_pipeline::experiment::SelectorKind;
use smart_trees::{ForestConfig, MaxFeatures, RandomForest, SplitStrategy, TreeConfig};
use wefr_bench::{characterization_matrix, print_header, RunOptions};
use wefr_core::{SelectionInput, Wefr, WefrConfig};

struct RuntimeRow {
    method: String,
    mean_seconds: f64,
    rounds: usize,
    /// Mean MiB allocated per round inside the method's spans; 0.0 unless
    /// `WEFR_OBS_ALLOC=1` armed the counting allocator (obs-alloc feature).
    alloc_mib: f64,
}

json::impl_to_json!(RuntimeRow {
    method,
    mean_seconds,
    rounds,
    alloc_mib
});

/// Mean MiB allocated per round across every span named `name`. Spans carry
/// per-thread allocation deltas, so fan-out stages sum their workers.
fn mean_alloc_mib(report: &telemetry::RunReport, name: &str, rounds: usize) -> f64 {
    let bytes: u64 = report
        .spans
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.alloc_bytes)
        .sum();
    bytes as f64 / (rounds as f64 * 1024.0 * 1024.0)
}

/// Print one timing row; the allocation column appears only when the
/// counting allocator is armed, so default stdout is unchanged.
fn print_row(label: &str, mean: f64, alloc_mib: f64) {
    if telemetry::alloc::tracking_active() {
        println!("{label:<22} {mean:>9.3} s {alloc_mib:>10.1} MiB/round");
    } else {
        println!("{label:<22} {mean:>9.3} s");
    }
}

/// The WEFR stages broken out in the per-stage rows, in pipeline order.
const WEFR_STAGES: [&str; 5] = [
    "rankers",
    "ensemble",
    "threshold_scan",
    "change_point",
    "wearout_split",
];

fn main() {
    let opts = RunOptions::from_args();
    let fleet = opts.fleet();
    // Record spans regardless of WEFR_LOG: the span tree is the stopwatch.
    telemetry::set_collect(true);
    // MC1 — the most numerous model, as in the paper.
    let (matrix, labels, mwi) = characterization_matrix(&fleet, DriveModel::Mc1, opts.seed);
    let survival =
        smart_pipeline::survival_pairs(&fleet, DriveModel::Mc1, fleet.config().days() - 1);
    // The paper averages 20 rounds on a 16-core server; a handful of rounds
    // is all a single-core box can afford, and the relative shape is stable.
    let rounds = if opts.quick { 2 } else { 3 };

    print_header("Exp#4 / Table VIII: selector runtimes on MC1");
    println!(
        "matrix: {} samples x {} features; {} timing rounds\n",
        matrix.n_rows(),
        matrix.n_features(),
        rounds
    );

    let mut rows = Vec::new();
    let mut slowest = 0.0f64;
    for kind in SelectorKind::ALL {
        let ranker = kind.build(opts.seed);
        // One warm-up round outside the measured span set.
        ranker.rank(&matrix, &labels).expect("two-class data");
        telemetry::reset();
        for _ in 0..rounds {
            let _round = telemetry::span!(kind.label());
            ranker.rank(&matrix, &labels).expect("two-class data");
        }
        let report = telemetry::snapshot("exp4_selector");
        let mean = report.total_seconds(kind.label()) / rounds as f64;
        let alloc_mib = mean_alloc_mib(&report, kind.label(), rounds);
        slowest = slowest.max(mean);
        print_row(kind.label(), mean, alloc_mib);
        rows.push(RuntimeRow {
            method: kind.label().to_string(),
            mean_seconds: mean,
            rounds,
            alloc_mib,
        });
    }

    let wefr = Wefr::new(WefrConfig {
        seed: opts.seed,
        ..WefrConfig::default()
    });
    let input = SelectionInput {
        data: &matrix,
        labels: &labels,
        mwi_per_sample: Some(&mwi),
        survival: Some(&survival),
    };
    wefr.select(&input).expect("selection succeeds"); // warm-up
    telemetry::reset();
    for _ in 0..rounds {
        wefr.select(&input).expect("selection succeeds");
    }
    let report = telemetry::snapshot("exp4_wefr");
    let wefr_mean = report.total_seconds("select") / rounds as f64;
    print_row("WEFR", wefr_mean, mean_alloc_mib(&report, "select", rounds));
    rows.push(RuntimeRow {
        method: "WEFR".to_string(),
        mean_seconds: wefr_mean,
        rounds,
        alloc_mib: mean_alloc_mib(&report, "select", rounds),
    });

    // Per-stage breakdown from the same span tree the production path
    // records (a stage spanning several groups — e.g. rankers for the
    // global, low, and high selections — sums across them).
    for stage in WEFR_STAGES {
        let mean = report.total_seconds(stage) / rounds as f64;
        let alloc_mib = mean_alloc_mib(&report, stage, rounds);
        print_row(&format!("WEFR/{stage}"), mean, alloc_mib);
        rows.push(RuntimeRow {
            method: format!("WEFR/{stage}"),
            mean_seconds: mean,
            rounds,
            alloc_mib,
        });
    }

    // Paired prediction-model trainings: the same forest, once per split
    // engine. The histogram engine is the production default; the exact
    // engine is its reference (see DESIGN.md on binned training).
    let forest_config = |strategy: SplitStrategy| ForestConfig {
        n_trees: if opts.quick { 20 } else { 50 },
        tree: TreeConfig {
            max_depth: 13,
            min_samples_leaf: 2,
            max_features: MaxFeatures::Sqrt,
            ..TreeConfig::default()
        },
        seed: opts.seed,
        n_threads: None,
        strategy,
    };
    let mut rf_means = [0.0f64; 2];
    for (slot, (label, strategy)) in [
        ("rf_train/exact", SplitStrategy::Exact),
        ("rf_train/histogram", SplitStrategy::Histogram),
    ]
    .into_iter()
    .enumerate()
    {
        let config = forest_config(strategy);
        RandomForest::fit(&matrix, &labels, &config).expect("two-class data"); // warm-up
        telemetry::reset();
        for _ in 0..rounds {
            let _round = telemetry::span!(label);
            RandomForest::fit(&matrix, &labels, &config).expect("two-class data");
        }
        let report = telemetry::snapshot("exp4_rf_train");
        let mean = report.total_seconds(label) / rounds as f64;
        let alloc_mib = mean_alloc_mib(&report, label, rounds);
        rf_means[slot] = mean;
        print_row(label, mean, alloc_mib);
        rows.push(RuntimeRow {
            method: label.to_string(),
            mean_seconds: mean,
            rounds,
            alloc_mib,
        });
    }

    // Paired ingestion timings: the single-threaded CSV reader versus the
    // sharded streaming reader at its default worker count, on the same
    // in-memory export (bench_ingest is the dedicated deep-dive; these rows
    // put ingestion on the same Table VIII footing as the selectors).
    let tickets = tickets_from_summaries(&fleet.summaries());
    let mut csv_buf = Vec::new();
    export_smart_csv(&fleet, &mut csv_buf).expect("in-memory export");
    let ingest_config = IngestConfig::default();
    let mut ingest_means = [0.0f64; 2];
    enum Reader {
        Single,
        Sharded,
    }
    for (slot, (label, reader)) in [
        ("ingest/single", Reader::Single),
        ("ingest/sharded", Reader::Sharded),
    ]
    .into_iter()
    .enumerate()
    {
        let run = || match reader {
            Reader::Single => {
                import_smart_csv(csv_buf.as_slice(), &tickets, fleet.config().clone())
            }
            Reader::Sharded => import_smart_csv_sharded(
                csv_buf.as_slice(),
                &tickets,
                fleet.config().clone(),
                &ingest_config,
            ),
        };
        run().expect("well-formed CSV"); // warm-up
        telemetry::reset();
        for _ in 0..rounds {
            let _round = telemetry::span!(label);
            run().expect("well-formed CSV");
        }
        let report = telemetry::snapshot("exp4_ingest");
        let mean = report.total_seconds(label) / rounds as f64;
        let alloc_mib = mean_alloc_mib(&report, label, rounds);
        ingest_means[slot] = mean;
        print_row(label, mean, alloc_mib);
        rows.push(RuntimeRow {
            method: label.to_string(),
            mean_seconds: mean,
            rounds,
            alloc_mib,
        });
    }

    println!(
        "\nWEFR / slowest single selector = {:.2}x (paper: 22.9s / 20.4s = 1.12x; \
         parallel execution keeps WEFR near the slowest selector)",
        wefr_mean / slowest
    );
    println!(
        "RF training, exact / histogram = {:.2}x",
        rf_means[0] / rf_means[1]
    );
    println!(
        "CSV ingest, single / sharded = {:.2}x",
        ingest_means[0] / ingest_means[1]
    );
    opts.write_json("exp4_runtime", &rows);
}
