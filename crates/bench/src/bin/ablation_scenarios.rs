#![forbid(unsafe_code)]
//! Scenario ablation: how stable is the WEFR selected set under
//! operational chaos?
//!
//! Every row exports a (possibly perturbed) fleet to CSV, optionally
//! corrupts the byte stream, re-ingests it in tolerant mode, runs the full
//! sampling → WEFR pipeline on the recovered fleet, and reports the
//! Jaccard similarity of the selected feature set against the clean
//! baseline — plus the exact skip counts tolerant ingestion recorded.
//!
//! Rows whose corruption is *recoverable* (row-level CSV chaos on a clean
//! fleet) must reproduce the baseline exactly (`jaccard == 1.0`); the CI
//! gate `check_scenario_stability` enforces that. Fleet-level
//! perturbations (firmware re-map, missing vendor batch, replacement
//! churn) legitimately move the selection; their Jaccard is reported so
//! drift is visible across commits, not gated.
//!
//! With `--out DIR` the run writes `DIR/BENCH_pr6.json`; the committed
//! `results/BENCH_pr6.json` is a quick MC1 run.

use smart_dataset::csv::export_smart_csv;
use smart_dataset::{
    apply_scenario, import_smart_csv_sharded_with_stats, inject_csv_chaos, tickets_from_summaries,
    CsvChaos, DriveModel, FirmwareRollout, Fleet, IngestConfig, IngestTolerance, MissingCoverage,
    ReplacementChurn, ScenarioConfig, SmartAttribute,
};
use smart_pipeline::{base_matrix, collect_samples, SamplingConfig};
use wefr_bench::{print_header, RunOptions};
use wefr_core::{SelectionInput, Wefr};

/// Scenario seed for every perturbation and chaos injection in the run.
const SCENARIO_SEED: u64 = 9;

struct ScenarioRow {
    scenario: String,
    /// Whether tolerant ingest must reconstruct the clean fleet exactly
    /// (the CI gate requires `jaccard == 1.0` on these rows).
    recovers_clean: bool,
    /// Jaccard similarity of the selected set vs the clean baseline.
    jaccard: f64,
    n_selected: usize,
    skipped_duplicates: u64,
    skipped_out_of_order: u64,
    skipped_malformed: u64,
    /// Whether the reported skip counts equal the injected corruption.
    skips_match: bool,
}

json::impl_to_json!(ScenarioRow {
    scenario,
    recovers_clean,
    jaccard,
    n_selected,
    skipped_duplicates,
    skipped_out_of_order,
    skipped_malformed,
    skips_match
});

struct ScenarioBenchReport {
    model: String,
    days: u32,
    n_drives: usize,
    n_baseline: usize,
    rows: Vec<ScenarioRow>,
}

json::impl_to_json!(ScenarioBenchReport {
    model,
    days,
    n_drives,
    n_baseline,
    rows
});

/// WEFR's global selected set for one model cohort of a fleet.
fn selected_names(fleet: &Fleet, model: DriveModel, days: u32) -> Vec<String> {
    let samples = collect_samples(fleet, model, 0, days - 1, &SamplingConfig::default())
        .expect("sampling the cohort");
    let (matrix, labels, _) = base_matrix(fleet, model, &samples).expect("base matrix");
    Wefr::default()
        .select(&SelectionInput::basic(&matrix, &labels))
        .expect("WEFR selection")
        .global
        .selected_names
}

fn jaccard(a: &[String], b: &[String]) -> f64 {
    let sa: std::collections::BTreeSet<&String> = a.iter().collect();
    let sb: std::collections::BTreeSet<&String> = b.iter().collect();
    let union = sa.union(&sb).count();
    if union == 0 {
        return 1.0;
    }
    // Selected sets are tiny; the counts are exact in f64.
    sa.intersection(&sb).count() as f64 / union as f64
}

fn main() {
    let opts = RunOptions::from_args();
    let fleet = opts.fleet();
    let days = opts.days;
    let model = opts.models()[0];
    // The scenario targets must actually hit the cohort under study: the
    // firmware re-map and missing batch aim at the cohort's model/vendor
    // and its first non-MWI attribute.
    let attr = *model
        .attributes()
        .iter()
        .find(|&&a| a != SmartAttribute::Mwi)
        .expect("every model reports a non-MWI attribute");
    let firmware = FirmwareRollout {
        day: days / 2,
        model,
        attr,
        raw_scale: 512.0,
        invert_norm: true,
    };
    let missing = MissingCoverage {
        vendor: model.vendor(),
        attr,
        batch_fraction: 0.5,
    };
    let churn = ReplacementChurn {
        day: days / 3,
        fraction: 0.3,
    };
    let fleet_scenario = |firmware_on: bool, missing_on: bool, churn_on: bool| ScenarioConfig {
        seed: SCENARIO_SEED,
        firmware: firmware_on.then_some(firmware),
        missing: missing_on.then_some(missing),
        churn: churn_on.then_some(churn),
    };

    // (name, fleet perturbation, CSV chaos). Rows with a default scenario
    // are fully recoverable by tolerant ingest.
    let chaos_only = |chaos: CsvChaos| (ScenarioConfig::default(), chaos);
    let table: Vec<(&str, (ScenarioConfig, CsvChaos))> = vec![
        ("clean/tolerant", chaos_only(CsvChaos::default())),
        (
            "chaos/duplicates",
            chaos_only(CsvChaos {
                duplicates: 8,
                ..CsvChaos::default()
            }),
        ),
        (
            "chaos/out_of_order",
            chaos_only(CsvChaos {
                out_of_order: 4,
                ..CsvChaos::default()
            }),
        ),
        (
            "chaos/malformed",
            chaos_only(CsvChaos {
                malformed: 8,
                ..CsvChaos::default()
            }),
        ),
        (
            "chaos/all",
            chaos_only(CsvChaos {
                duplicates: 4,
                out_of_order: 2,
                malformed: 4,
            }),
        ),
        (
            "fleet/firmware_rollout",
            (fleet_scenario(true, false, false), CsvChaos::default()),
        ),
        (
            "fleet/missing_batch",
            (fleet_scenario(false, true, false), CsvChaos::default()),
        ),
        (
            "fleet/churn",
            (fleet_scenario(false, false, true), CsvChaos::default()),
        ),
        (
            "fleet/all_perturbations",
            (
                fleet_scenario(true, true, true),
                CsvChaos {
                    duplicates: 4,
                    out_of_order: 2,
                    malformed: 4,
                },
            ),
        ),
    ];

    print_header("Scenario ablation: WEFR selected-set stability under chaos");
    println!(
        "{} drives, {} days, cohort {}, target attribute {:?}\n",
        fleet.drives().len(),
        days,
        model.name(),
        attr
    );

    let tickets = tickets_from_summaries(&fleet.summaries());
    let ingest = IngestConfig {
        tolerance: IngestTolerance::Tolerant,
        ..IngestConfig::default()
    };
    // The baseline goes through the same export → ingest → select path as
    // every row, so a recoverable row is bit-comparable to it.
    let export = |f: &Fleet| {
        let mut buf = Vec::new();
        export_smart_csv(f, &mut buf).expect("in-memory export");
        String::from_utf8(buf).expect("CSV is UTF-8")
    };
    let clean_csv = export(&fleet);
    let (clean_ingested, _) = import_smart_csv_sharded_with_stats(
        clean_csv.as_bytes(),
        &tickets,
        fleet.config().clone(),
        &ingest,
    )
    .expect("clean ingest");
    let baseline = selected_names(&clean_ingested, model, days);
    println!(
        "baseline selected set ({} features): {}\n",
        baseline.len(),
        baseline.join(", ")
    );

    let mut rows = Vec::new();
    for (name, (scenario, chaos)) in &table {
        let perturbed = apply_scenario(&fleet, scenario).expect("scenario applies");
        let (dirty, injected) =
            inject_csv_chaos(&export(&perturbed), chaos, SCENARIO_SEED).expect("chaos injects");
        let (recovered, stats) = import_smart_csv_sharded_with_stats(
            dirty.as_bytes(),
            &tickets,
            fleet.config().clone(),
            &ingest,
        )
        .expect("tolerant ingest");
        let selected = selected_names(&recovered, model, days);
        let similarity = jaccard(&selected, &baseline);
        let recovers_clean = *scenario == ScenarioConfig::default();
        println!(
            "{name:<26} jaccard {similarity:>5.3}  selected {:>2}  skips d/o/m {}/{}/{}",
            selected.len(),
            stats.skipped.duplicate_rows,
            stats.skipped.out_of_order_rows,
            stats.skipped.malformed_rows
        );
        rows.push(ScenarioRow {
            scenario: (*name).to_string(),
            recovers_clean,
            jaccard: similarity,
            n_selected: selected.len(),
            skipped_duplicates: stats.skipped.duplicate_rows,
            skipped_out_of_order: stats.skipped.out_of_order_rows,
            skipped_malformed: stats.skipped.malformed_rows,
            skips_match: stats.skipped == injected,
        });
    }

    let report = ScenarioBenchReport {
        model: model.name().to_string(),
        days,
        n_drives: fleet.drives().len(),
        n_baseline: baseline.len(),
        rows,
    };
    opts.write_json("BENCH_pr6", &report);
}
