#![forbid(unsafe_code)]
//! Table IV — top-five feature rankings for MC1 under each of the five
//! feature-selection approaches, demonstrating that the approaches disagree
//! (the motivation for robust ensembling).

use smart_dataset::DriveModel;
use smart_pipeline::experiment::SelectorKind;
use smart_stats::kendall::normalized_kendall_tau_distance;
use wefr_bench::{characterization_matrix, print_header, RunOptions};

struct SelectorTop {
    selector: String,
    top5: Vec<String>,
}

json::impl_to_json!(SelectorTop { selector, top5 });

fn main() {
    let opts = RunOptions::from_args();
    let fleet = opts.fleet();
    let model = DriveModel::Mc1;
    let (matrix, labels, _) = characterization_matrix(&fleet, model, opts.seed);

    print_header("Table IV: top-5 rankings for MC1 across the five approaches");

    let mut rows = Vec::new();
    let mut orders = Vec::new();
    for kind in SelectorKind::ALL {
        let ranking = kind
            .build(opts.seed)
            .rank(&matrix, &labels)
            .expect("two-class data");
        let top5: Vec<String> = ranking.top_names(5).iter().map(|s| s.to_string()).collect();
        println!("{:<22} {}", kind.label(), top5.join("  "));
        orders.push((kind.label(), ranking.order().to_vec()));
        rows.push(SelectorTop {
            selector: kind.label().to_string(),
            top5,
        });
    }

    // Quantify the disagreement the paper observes: normalized Kendall-tau
    // distances between the full rankings.
    println!("\nnormalized Kendall-tau distance between rankings:");
    for i in 0..orders.len() {
        for j in (i + 1)..orders.len() {
            let d = normalized_kendall_tau_distance(&orders[i].1, &orders[j].1)
                .expect("same feature set");
            println!("  {:<22} vs {:<22} {:.3}", orders[i].0, orders[j].0, d);
        }
    }
    println!("\npaper reference (rank 1): Pearson OCE_R, Spearman OCE_R, J-index OCE_R, RF OCE_R, XGBoost UCE_R");
    opts.write_json("table4_rankings", &rows);
}
