//! Minimal timing harness for the in-repo benchmarks.
//!
//! Replaces criterion with the small subset the experiment suite needs:
//! a warmup phase, a median-of-N measurement, human-readable console lines,
//! and machine-readable `BENCH_<group>.json` files.
//!
//! Environment knobs (all optional):
//!
//! ```text
//! WEFR_BENCH_SAMPLES  timed samples per benchmark (default 10)
//! WEFR_BENCH_WARMUP   warmup iterations per benchmark (default 2)
//! WEFR_BENCH_OUT      directory for BENCH_<group>.json files
//!                     (default results/; empty string disables writing)
//! ```
//!
//! Passing `--quick` on the bench command line (`cargo bench -- --quick`)
//! drops to 3 samples and 1 warmup iteration for smoke runs.

use std::time::Instant;

/// Target wall-clock duration of one timed sample. Fast closures are
/// batched until a sample takes at least this long, so sub-millisecond
/// benchmarks do not degenerate into timer-resolution noise.
const MIN_SAMPLE_SECONDS: f64 = 0.005;

/// How many timed samples and warmup iterations to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingConfig {
    /// Untimed warmup iterations before measurement.
    pub warmup: u32,
    /// Timed samples; the reported duration is their median.
    pub samples: u32,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            warmup: 2,
            samples: 10,
        }
    }
}

impl TimingConfig {
    /// The configuration for this process: defaults, overridden by the
    /// `WEFR_BENCH_*` environment variables, overridden by `--quick` in
    /// `args` (other arguments — e.g. the `--bench` flag cargo passes —
    /// are ignored).
    pub fn from_env(args: &[String]) -> TimingConfig {
        TimingConfig::from_lookup(args, |name| std::env::var(name).ok())
    }

    /// [`TimingConfig::from_env`] with the environment abstracted behind a
    /// lookup function, so the override and precedence rules are testable
    /// without mutating process-global state.
    pub fn from_lookup(args: &[String], lookup: impl Fn(&str) -> Option<String>) -> TimingConfig {
        let mut config = TimingConfig::default();
        if let Some(v) = lookup_u32(&lookup, "WEFR_BENCH_WARMUP") {
            config.warmup = v;
        }
        if let Some(v) = lookup_u32(&lookup, "WEFR_BENCH_SAMPLES") {
            config.samples = v.max(1);
        }
        if args.iter().any(|a| a == "--quick") {
            config.warmup = config.warmup.min(1);
            config.samples = config.samples.min(3);
        }
        config
    }
}

fn lookup_u32(lookup: &impl Fn(&str) -> Option<String>, name: &str) -> Option<u32> {
    let text = lookup(name)?;
    match text.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!(
                "warning: {name} must be a non-negative integer, got {text:?}; using default"
            );
            None
        }
    }
}

/// Resolve the `BENCH_<group>.json` output directory from a
/// `WEFR_BENCH_OUT` value: unset falls back to `results/`, an empty (or
/// whitespace-only) value disables writing, anything else is the directory.
pub fn out_dir_from(value: Option<&str>) -> Option<std::path::PathBuf> {
    match value {
        Some(d) if d.trim().is_empty() => None,
        Some(d) => Some(std::path::PathBuf::from(d)),
        None => Some(std::path::PathBuf::from("results")),
    }
}

/// The result of timing one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark name, unique within its group.
    pub name: String,
    /// Number of timed samples taken.
    pub samples: u32,
    /// Closure invocations per sample (batched for fast closures).
    pub iters_per_sample: u32,
    /// Median per-invocation duration in seconds.
    pub median_seconds: f64,
    /// Mean per-invocation duration in seconds.
    pub mean_seconds: f64,
    /// Fastest per-invocation duration in seconds.
    pub min_seconds: f64,
    /// Slowest per-invocation duration in seconds.
    pub max_seconds: f64,
}

json::impl_json!(Measurement {
    name,
    samples,
    iters_per_sample,
    median_seconds,
    mean_seconds,
    min_seconds,
    max_seconds,
});

/// A named group of benchmarks, mirroring criterion's `benchmark_group`.
///
/// # Example
///
/// ```
/// let mut group = wefr_bench::timing::Group::new(
///     "doc",
///     wefr_bench::timing::TimingConfig { warmup: 1, samples: 3 },
/// );
/// group.bench("sum", || (0..100u64).sum::<u64>());
/// let report = group.finish_to(None); // no JSON file in doctests
/// assert_eq!(report.measurements.len(), 1);
/// ```
#[derive(Debug)]
pub struct Group {
    name: String,
    config: TimingConfig,
    measurements: Vec<Measurement>,
}

/// A completed group: everything `BENCH_<group>.json` records.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Group name (the `<group>` in `BENCH_<group>.json`).
    pub group: String,
    /// Timed samples per benchmark.
    pub samples: u32,
    /// Warmup iterations per benchmark.
    pub warmup: u32,
    /// One entry per `bench` call, in execution order.
    pub measurements: Vec<Measurement>,
}

json::impl_json!(Report {
    group,
    samples,
    warmup,
    measurements,
});

impl Group {
    /// Start a group named `name` with an explicit configuration.
    pub fn new(name: &str, config: TimingConfig) -> Group {
        Group {
            name: name.to_string(),
            config,
            measurements: Vec::new(),
        }
    }

    /// Start a group configured from the environment and command line.
    pub fn from_env(name: &str) -> Group {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Group::new(name, TimingConfig::from_env(&args))
    }

    /// Time `f` (warmup, then median-of-N) and record the measurement.
    /// The closure's return value is passed through [`std::hint::black_box`]
    /// so its computation is not optimized away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        for _ in 0..self.config.warmup {
            std::hint::black_box(f());
        }
        // Batch fast closures so one sample is long enough to time.
        let probe = time_iters(&mut f, 1);
        let iters_per_sample = if probe >= MIN_SAMPLE_SECONDS {
            1
        } else {
            ((MIN_SAMPLE_SECONDS / probe.max(1e-9)).ceil() as u32).clamp(1, 1_000_000)
        };
        let mut per_iter: Vec<f64> = (0..self.config.samples)
            .map(|_| time_iters(&mut f, iters_per_sample) / iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = median_of_sorted(&per_iter);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let measurement = Measurement {
            name: name.to_string(),
            samples: self.config.samples,
            iters_per_sample,
            median_seconds: median,
            mean_seconds: mean,
            min_seconds: per_iter[0],
            max_seconds: per_iter[per_iter.len() - 1],
        };
        println!(
            "{}/{name:<24} median {:>12}  (min {}, max {}, {} samples)",
            self.name,
            format_duration(median),
            format_duration(measurement.min_seconds),
            format_duration(measurement.max_seconds),
            self.config.samples,
        );
        self.measurements.push(measurement);
    }

    /// Finish the group: print a summary and write `BENCH_<group>.json` to
    /// the output directory (`WEFR_BENCH_OUT`, default `results/`; set it
    /// to the empty string to skip writing).
    pub fn finish(self) -> Report {
        let value = std::env::var("WEFR_BENCH_OUT").ok();
        let dir = out_dir_from(value.as_deref());
        self.finish_to(dir.as_deref())
    }

    /// Finish the group, writing `BENCH_<group>.json` under `dir` when one
    /// is given.
    pub fn finish_to(self, dir: Option<&std::path::Path>) -> Report {
        let report = Report {
            group: self.name,
            samples: self.config.samples,
            warmup: self.config.warmup,
            measurements: self.measurements,
        };
        if let Some(dir) = dir {
            let path = dir.join(format!("BENCH_{}.json", report.group));
            match std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(&path, json::to_string_pretty(&report) + "\n"))
            {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: failed to write {}: {e}", path.display()),
            }
        }
        report
    }
}

fn time_iters<T>(f: &mut impl FnMut() -> T, iters: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64()
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn format_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.3} µs", seconds * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TimingConfig {
        TimingConfig {
            warmup: 1,
            samples: 3,
        }
    }

    #[test]
    fn measures_a_closure() {
        let mut group = Group::new("unit", tiny());
        let mut calls = 0u32;
        group.bench("count", || {
            calls += 1;
            calls
        });
        let report = group.finish_to(None);
        assert_eq!(report.measurements.len(), 1);
        let m = &report.measurements[0];
        assert_eq!(m.name, "count");
        assert_eq!(m.samples, 3);
        // warmup + probe + samples×iters invocations all happened.
        assert!(calls >= 1 + 1 + 3);
        assert!(m.min_seconds <= m.median_seconds);
        assert!(m.median_seconds <= m.max_seconds);
        assert!(m.median_seconds >= 0.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut group = Group::new("unit_json", tiny());
        group.bench("noop", || 0u8);
        let report = group.finish_to(None);
        let text = json::to_string_pretty(&report);
        let back: Report = json::from_str(&text).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn writes_bench_json_file() {
        let dir = std::env::temp_dir().join("wefr_bench_timing_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut group = Group::new("unit_file", tiny());
        group.bench("noop", || 0u8);
        group.finish_to(Some(&dir));
        let text = std::fs::read_to_string(dir.join("BENCH_unit_file.json")).unwrap();
        let back: Report = json::from_str(&text).unwrap();
        assert_eq!(back.group, "unit_file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quick_flag_and_env_shrink_the_run() {
        let args = vec!["--bench".to_string(), "--quick".to_string()];
        let config = TimingConfig::from_env(&args);
        assert!(config.samples <= 3);
        assert!(config.warmup <= 1);
    }

    fn fake_env<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |name| {
            pairs
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn env_overrides_replace_the_defaults() {
        let env = fake_env(&[("WEFR_BENCH_SAMPLES", "25"), ("WEFR_BENCH_WARMUP", "7")]);
        let config = TimingConfig::from_lookup(&[], env);
        assert_eq!(
            config,
            TimingConfig {
                warmup: 7,
                samples: 25,
            }
        );
    }

    #[test]
    fn zero_samples_is_clamped_to_one() {
        let env = fake_env(&[("WEFR_BENCH_SAMPLES", "0"), ("WEFR_BENCH_WARMUP", "0")]);
        let config = TimingConfig::from_lookup(&[], env);
        // Zero warmup is meaningful (skip warmup); zero samples is not.
        assert_eq!(
            config,
            TimingConfig {
                warmup: 0,
                samples: 1,
            }
        );
    }

    #[test]
    fn quick_takes_precedence_over_env_overrides() {
        let env = fake_env(&[("WEFR_BENCH_SAMPLES", "100"), ("WEFR_BENCH_WARMUP", "9")]);
        let args = vec!["--quick".to_string()];
        let config = TimingConfig::from_lookup(&args, env);
        assert_eq!(
            config,
            TimingConfig {
                warmup: 1,
                samples: 3,
            }
        );
        // ...but --quick never *raises* an already-small override.
        let env = fake_env(&[("WEFR_BENCH_SAMPLES", "2"), ("WEFR_BENCH_WARMUP", "0")]);
        let args = vec!["--quick".to_string()];
        let config = TimingConfig::from_lookup(&args, env);
        assert_eq!(
            config,
            TimingConfig {
                warmup: 0,
                samples: 2,
            }
        );
    }

    #[test]
    fn malformed_values_fall_back_to_defaults() {
        for bad in ["three", "-1", "2.5", "", "1e3"] {
            let pairs = [("WEFR_BENCH_SAMPLES", bad), ("WEFR_BENCH_WARMUP", bad)];
            let config = TimingConfig::from_lookup(&[], fake_env(&pairs));
            assert_eq!(config, TimingConfig::default(), "for value {bad:?}");
        }
        // A malformed value in one variable does not poison the other.
        let env = fake_env(&[("WEFR_BENCH_SAMPLES", "oops"), ("WEFR_BENCH_WARMUP", "4")]);
        let config = TimingConfig::from_lookup(&[], env);
        assert_eq!(
            config,
            TimingConfig {
                warmup: 4,
                samples: TimingConfig::default().samples,
            }
        );
    }

    #[test]
    fn whitespace_around_values_is_tolerated() {
        let env = fake_env(&[("WEFR_BENCH_SAMPLES", " 12 "), ("WEFR_BENCH_WARMUP", "3\n")]);
        let config = TimingConfig::from_lookup(&[], env);
        assert_eq!(
            config,
            TimingConfig {
                warmup: 3,
                samples: 12,
            }
        );
    }

    #[test]
    fn out_dir_resolution_matches_the_documented_rules() {
        assert_eq!(
            out_dir_from(None),
            Some(std::path::PathBuf::from("results"))
        );
        assert_eq!(out_dir_from(Some("")), None);
        assert_eq!(out_dir_from(Some("  ")), None);
        assert_eq!(
            out_dir_from(Some("bench_out")),
            Some(std::path::PathBuf::from("bench_out"))
        );
    }

    #[test]
    fn fast_closures_are_batched() {
        let mut group = Group::new("unit_batch", tiny());
        group.bench("trivial", || 1u64 + 1);
        let report = group.finish_to(None);
        assert!(report.measurements[0].iters_per_sample > 1);
    }
}
