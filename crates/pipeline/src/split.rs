//! Time-based train/validation/test splits (§V-A): the last three months of
//! the 24-month window form three test phases; each phase trains on every
//! month before it, with the last 20% of training days held out for
//! validation.

use crate::error::PipelineError;

/// The paper's month count over the dataset window.
pub const MONTHS: u32 = 24;

/// One evaluation phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// Training days `[0, train_end]` (inclusive), minus the validation
    /// tail.
    pub train_end: u32,
    /// Validation days `[validation_start, train_end]` (the last 20% of the
    /// training period, split by day).
    pub validation_start: u32,
    /// Test days `[test_start, test_end]` (inclusive).
    pub test_start: u32,
    /// Last test day (inclusive).
    pub test_end: u32,
}

impl Phase {
    /// Training days excluding validation: `[0, validation_start - 1]`.
    pub fn fit_range(&self) -> (u32, u32) {
        (0, self.validation_start.saturating_sub(1))
    }

    /// Validation days.
    pub fn validation_range(&self) -> (u32, u32) {
        (self.validation_start, self.train_end)
    }

    /// Test days.
    pub fn test_range(&self) -> (u32, u32) {
        (self.test_start, self.test_end)
    }
}

/// The first day of month `m` (0-based) in a window of `days` days split
/// into [`MONTHS`] equal months.
pub fn month_start(days: u32, m: u32) -> u32 {
    (m as u64 * days as u64 / MONTHS as u64) as u32
}

/// The paper's three test phases for a window of `days` days: test months
/// 21, 22, 23 (0-based), each trained on all preceding months with an 8:2
/// train/validation day split.
///
/// # Errors
///
/// Returns [`PipelineError::InvalidInput`] when the window is too short for
/// 24 months of at least ~5 days each.
pub fn paper_phases(days: u32) -> Result<Vec<Phase>, PipelineError> {
    if days < 120 {
        return Err(PipelineError::invalid(format!(
            "window of {days} days is too short for 24-month phases"
        )));
    }
    Ok((21..24)
        .map(|test_month| {
            let train_end = month_start(days, test_month) - 1;
            let test_start = month_start(days, test_month);
            let test_end = month_start(days, test_month + 1) - 1;
            let train_len = train_end + 1;
            let validation_start = train_len - train_len / 5;
            Phase {
                train_end,
                validation_start,
                test_start,
                test_end,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_boundaries_partition_the_window() {
        let days = 730;
        assert_eq!(month_start(days, 0), 0);
        assert_eq!(month_start(days, 24), 730);
        for m in 0..24 {
            let len = month_start(days, m + 1) - month_start(days, m);
            assert!((30..=31).contains(&len), "month {m} has {len} days");
        }
    }

    #[test]
    fn three_phases_cover_last_three_months() {
        let phases = paper_phases(730).unwrap();
        assert_eq!(phases.len(), 3);
        // Phases are consecutive and end at the window end.
        assert_eq!(phases[2].test_end, 729);
        for pair in phases.windows(2) {
            assert_eq!(pair[0].test_end + 1, pair[1].test_start);
        }
        // Each phase trains strictly before its test period.
        for p in &phases {
            assert_eq!(p.train_end + 1, p.test_start);
        }
    }

    #[test]
    fn validation_is_twenty_percent_of_training() {
        for p in paper_phases(730).unwrap() {
            let train_len = p.train_end + 1;
            let val_len = p.train_end - p.validation_start + 1;
            let frac = val_len as f64 / train_len as f64;
            assert!((frac - 0.2).abs() < 0.01, "frac = {frac}");
            let (fit_start, fit_end) = p.fit_range();
            assert_eq!(fit_start, 0);
            assert_eq!(fit_end + 1, p.validation_start);
        }
    }

    #[test]
    fn phases_scale_with_window_length() {
        let phases = paper_phases(240).unwrap();
        assert_eq!(phases[0].test_start, month_start(240, 21));
        assert_eq!(phases[2].test_end, 239);
    }

    #[test]
    fn short_window_is_rejected() {
        assert!(paper_phases(100).is_err());
    }
}
