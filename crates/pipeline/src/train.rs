//! The prediction model: Random Forest over expanded features (the paper
//! uses 100 trees of depth 13, §V-A).

use crate::error::PipelineError;
use crate::label::SampleRef;
use crate::matrix::expanded_matrix;
use smart_dataset::{DriveRecord, FeatureId, Fleet};
use smart_stats::FeatureMatrix;
use smart_trees::{ForestConfig, MaxFeatures, RandomForest, SplitStrategy, TreeConfig};

/// Prediction-model hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorConfig {
    /// Number of trees (paper: 100).
    pub n_trees: usize,
    /// Maximum tree depth (paper: 13).
    pub max_depth: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads (`None` = available parallelism).
    pub n_threads: Option<usize>,
    /// Split-search engine. Defaults to the `WEFR_SPLIT_STRATEGY`
    /// environment override when set, [`SplitStrategy::Histogram`]
    /// otherwise.
    pub strategy: SplitStrategy,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            n_trees: 100,
            max_depth: 13,
            seed: 0,
            n_threads: None,
            strategy: SplitStrategy::from_env().unwrap_or_default(),
        }
    }
}

impl PredictorConfig {
    fn to_forest_config(self) -> ForestConfig {
        ForestConfig {
            n_trees: self.n_trees,
            tree: TreeConfig {
                max_depth: self.max_depth,
                min_samples_leaf: 2,
                max_features: MaxFeatures::Sqrt,
                ..TreeConfig::default()
            },
            seed: self.seed,
            n_threads: self.n_threads,
            strategy: self.strategy,
        }
    }
}

/// A trained failure predictor: Random Forest over the expanded statistical
/// features of a fixed base-feature set.
#[derive(Debug, Clone)]
pub struct FailurePredictor {
    forest: RandomForest,
    base: Vec<FeatureId>,
}

impl FailurePredictor {
    /// Train on `samples` from `fleet`, expanding `base` features.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidInput`] for empty samples/features
    /// and propagates training errors.
    pub fn train(
        fleet: &Fleet,
        samples: &[SampleRef],
        base: &[FeatureId],
        config: &PredictorConfig,
    ) -> Result<Self, PipelineError> {
        let span = telemetry::span!(
            "train",
            samples = samples.len(),
            base_features = base.len(),
            trees = config.n_trees,
            max_depth = config.max_depth,
        );
        let (matrix, labels) = expanded_matrix(fleet, samples, base)?;
        span.record("expanded_features", matrix.n_features());
        span.record("positives", labels.iter().filter(|&&l| l).count());
        let forest = RandomForest::fit(&matrix, &labels, &config.to_forest_config())?;
        Ok(FailurePredictor {
            forest,
            base: base.to_vec(),
        })
    }

    /// The base features the predictor expands.
    pub fn base_features(&self) -> &[FeatureId] {
        &self.base
    }

    /// Failure probability of one drive-day.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidInput`] when the drive is not
    /// observed on `day`.
    pub fn score_drive_day(&self, drive: &DriveRecord, day: u32) -> Result<f64, PipelineError> {
        let row = crate::features::expand_sample(drive, day, &self.base)?;
        Ok(self.score_rows(std::slice::from_ref(&row))?[0])
    }

    /// Failure probabilities for pre-expanded feature rows (in
    /// [`crate::features::expanded_feature_names`] order) — the entry point
    /// for callers that maintain window statistics incrementally instead of
    /// re-expanding drive history, e.g. the serving daemon. NaN cells
    /// (missing measurements) are permitted.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Stats`] on rows of the wrong width or with
    /// infinite values, and propagates prediction errors.
    pub fn score_rows(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>, PipelineError> {
        let names = crate::features::expanded_feature_names(&self.base);
        let matrix =
            FeatureMatrix::from_rows_with_missing(names, rows).map_err(PipelineError::Stats)?;
        Ok(self.forest.predict_proba(&matrix)?)
    }

    /// Failure probabilities for a batch of samples (much faster than
    /// per-day scoring: one matrix, one forest pass).
    ///
    /// # Errors
    ///
    /// Propagates expansion and prediction errors.
    pub fn score_samples(
        &self,
        fleet: &Fleet,
        samples: &[SampleRef],
    ) -> Result<Vec<f64>, PipelineError> {
        let (matrix, _) = expanded_matrix(fleet, samples, &self.base)?;
        Ok(self.forest.predict_proba(&matrix)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{collect_samples, SamplingConfig};
    use smart_dataset::{DriveModel, FleetConfig, SmartAttribute};

    fn fleet() -> Fleet {
        let config = FleetConfig::builder()
            .days(400)
            .seed(21)
            .drives(DriveModel::Mc1, 60)
            .failure_scale(8.0)
            .build()
            .unwrap();
        Fleet::generate(&config)
    }

    fn quick_config() -> PredictorConfig {
        PredictorConfig {
            n_trees: 20,
            max_depth: 8,
            seed: 1,
            n_threads: Some(2),
            ..PredictorConfig::default()
        }
    }

    #[test]
    fn trained_predictor_separates_classes() {
        let fleet = fleet();
        let samples =
            collect_samples(&fleet, DriveModel::Mc1, 0, 399, &SamplingConfig::default()).unwrap();
        let base = vec![
            FeatureId::raw(SmartAttribute::Oce),
            FeatureId::raw(SmartAttribute::Uce),
            FeatureId::raw(SmartAttribute::Cmdt),
        ];
        let predictor = FailurePredictor::train(&fleet, &samples, &base, &quick_config()).unwrap();
        let scores = predictor.score_samples(&fleet, &samples).unwrap();
        let pos_mean: f64 = scores
            .iter()
            .zip(&samples)
            .filter(|(_, s)| s.label)
            .map(|(p, _)| *p)
            .sum::<f64>()
            / samples.iter().filter(|s| s.label).count() as f64;
        let neg_mean: f64 = scores
            .iter()
            .zip(&samples)
            .filter(|(_, s)| !s.label)
            .map(|(p, _)| *p)
            .sum::<f64>()
            / samples.iter().filter(|s| !s.label).count() as f64;
        assert!(
            pos_mean > neg_mean + 0.2,
            "pos {pos_mean:.3} vs neg {neg_mean:.3}"
        );
    }

    #[test]
    fn single_day_scoring_matches_batch() {
        let fleet = fleet();
        let samples =
            collect_samples(&fleet, DriveModel::Mc1, 0, 300, &SamplingConfig::default()).unwrap();
        let base = vec![FeatureId::raw(SmartAttribute::Uce)];
        let predictor = FailurePredictor::train(&fleet, &samples, &base, &quick_config()).unwrap();
        let batch = predictor.score_samples(&fleet, &samples[..5]).unwrap();
        for (s, expected) in samples[..5].iter().zip(batch) {
            let drive = &fleet.drives()[s.drive_index];
            let single = predictor.score_drive_day(drive, s.day).unwrap();
            assert!((single - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn scoring_tolerates_nan_backfilled_days() {
        // Regression: tolerant ingest (DESIGN.md §11) backfills day gaps
        // with NaN measurements; scoring a drive across such a gap used to
        // fail because WindowStats::compute rejected NaN.
        let fleet = fleet();
        let samples =
            collect_samples(&fleet, DriveModel::Mc1, 0, 300, &SamplingConfig::default()).unwrap();
        let base = vec![FeatureId::raw(SmartAttribute::Uce)];
        let predictor = FailurePredictor::train(&fleet, &samples, &base, &quick_config()).unwrap();
        let clean = &fleet.drives()[samples[0].drive_index];
        let gap_day = clean.deploy_day + 10;
        let drive = with_nan_day(clean, gap_day);
        // The day after the gap sees the NaN cell inside its windows.
        let p = predictor.score_drive_day(&drive, gap_day + 1).unwrap();
        assert!((0.0..=1.0).contains(&p));
        // The backfilled day itself has a NaN current value.
        let p = predictor.score_drive_day(&drive, gap_day).unwrap();
        assert!((0.0..=1.0).contains(&p));
    }

    /// A copy of `drive` whose measurements on `day` are all NaN — the
    /// shape tolerant ingest produces for a backfilled day gap.
    fn with_nan_day(drive: &smart_dataset::DriveRecord, day: u32) -> smart_dataset::DriveRecord {
        use smart_dataset::{FeatureId, ValueKind};
        let n_days = drive.last_day() - drive.deploy_day + 1;
        let mut values = Vec::new();
        for d in drive.deploy_day..=drive.last_day() {
            for &attr in drive.model.attributes() {
                for kind in [ValueKind::Raw, ValueKind::Normalized] {
                    let v = if d == day {
                        f64::NAN
                    } else {
                        drive.value_on(d, FeatureId { attr, kind }).unwrap()
                    };
                    values.push(v as f32);
                }
            }
        }
        smart_dataset::DriveRecord::from_flat_values(
            drive.id,
            drive.model,
            drive.deploy_day,
            drive.initial_age_days,
            drive.failure,
            values,
            n_days,
        )
    }

    #[test]
    fn training_is_deterministic() {
        let fleet = fleet();
        let samples =
            collect_samples(&fleet, DriveModel::Mc1, 0, 399, &SamplingConfig::default()).unwrap();
        let base = vec![FeatureId::raw(SmartAttribute::Oce)];
        let a = FailurePredictor::train(&fleet, &samples, &base, &quick_config()).unwrap();
        let b = FailurePredictor::train(&fleet, &samples, &base, &quick_config()).unwrap();
        let sa = a.score_samples(&fleet, &samples[..10]).unwrap();
        let sb = b.score_samples(&fleet, &samples[..10]).unwrap();
        assert_eq!(sa, sb);
    }

    #[test]
    fn empty_base_is_rejected() {
        let fleet = fleet();
        let samples =
            collect_samples(&fleet, DriveModel::Mc1, 0, 399, &SamplingConfig::default()).unwrap();
        assert!(FailurePredictor::train(&fleet, &samples, &[], &quick_config()).is_err());
    }
}
