//! Sample collection and matrix construction: from a simulated fleet to the
//! matrices the rankers and learners consume.

use crate::error::PipelineError;
use crate::label::{labeled_days, SampleRef};
use smart_dataset::{DriveModel, FeatureId, Fleet, SmartAttribute, ValueKind};
use smart_stats::sampling::downsample_negatives;
use smart_stats::FeatureMatrix;

/// All base learning features of a drive model: the raw and normalized
/// value of every attribute the model reports (§II-B: "we view raw and
/// normalized values of each SMART attribute as two learning features").
pub fn base_features(model: DriveModel) -> Vec<FeatureId> {
    model
        .attributes()
        .iter()
        .flat_map(|&attr| {
            ValueKind::BOTH
                .iter()
                .map(move |&kind| FeatureId { attr, kind })
        })
        .collect()
}

/// Sampling policy for building training matrices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Prediction horizon in days.
    pub horizon: u32,
    /// Keep every `neg_stride`-th healthy drive-day (positives are always
    /// kept). Must be ≥ 1.
    pub neg_stride: u32,
    /// After striding, downsample negatives to at most this multiple of the
    /// positive count (`None` = keep all strided negatives).
    pub downsample_ratio: Option<f64>,
    /// Seed for the negative downsampling.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            horizon: crate::label::PAPER_HORIZON_DAYS,
            neg_stride: 7,
            downsample_ratio: Some(4.0),
            seed: 0,
        }
    }
}

/// Collect labeled samples of `model` within `[from_day, to_day]`.
///
/// # Errors
///
/// Returns [`PipelineError::InvalidInput`] when `neg_stride == 0` or the
/// range contains no samples.
pub fn collect_samples(
    fleet: &Fleet,
    model: DriveModel,
    from_day: u32,
    to_day: u32,
    config: &SamplingConfig,
) -> Result<Vec<SampleRef>, PipelineError> {
    if config.neg_stride == 0 {
        return Err(PipelineError::invalid("neg_stride must be at least 1"));
    }
    let mut samples: Vec<SampleRef> = Vec::new();
    for (drive_index, drive) in fleet.drives().iter().enumerate() {
        if drive.model != model {
            continue;
        }
        for s in labeled_days(drive, drive_index, from_day, to_day, config.horizon) {
            if s.label || (s.day - drive.deploy_day) % config.neg_stride == 0 {
                samples.push(s);
            }
        }
    }
    if samples.is_empty() {
        return Err(PipelineError::invalid(format!(
            "no samples of model {model} in days {from_day}..={to_day}"
        )));
    }
    if let Some(ratio) = config.downsample_ratio {
        let labels: Vec<bool> = samples.iter().map(|s| s.label).collect();
        let kept = downsample_negatives(&labels, ratio, config.seed)?;
        samples = kept.into_iter().map(|i| samples[i]).collect();
    }
    Ok(samples)
}

/// Build the base-feature matrix (one column per raw/normalized attribute
/// value) for `samples`, along with labels and per-sample `MWI_N`.
///
/// # Errors
///
/// Returns [`PipelineError::InvalidInput`] for an empty sample list or
/// samples referencing days a drive is not observed on.
pub fn base_matrix(
    fleet: &Fleet,
    model: DriveModel,
    samples: &[SampleRef],
) -> Result<(FeatureMatrix, Vec<bool>, Vec<f64>), PipelineError> {
    if samples.is_empty() {
        return Err(PipelineError::invalid("no samples"));
    }
    let features = base_features(model);
    let names: Vec<String> = features.iter().map(FeatureId::name).collect();
    let mwi_feature = FeatureId::normalized(SmartAttribute::Mwi);

    let mut columns = vec![Vec::with_capacity(samples.len()); features.len()];
    let mut labels = Vec::with_capacity(samples.len());
    let mut mwi = Vec::with_capacity(samples.len());
    for s in samples {
        let drive = &fleet.drives()[s.drive_index];
        for (col, f) in features.iter().enumerate() {
            let v = drive.value_on(s.day, *f).ok_or_else(|| {
                PipelineError::invalid(format!("drive {} lacks {f} on day {}", drive.id, s.day))
            })?;
            columns[col].push(v);
        }
        labels.push(s.label);
        let mwi_value = drive.value_on(s.day, mwi_feature).ok_or_else(|| {
            PipelineError::invalid(format!("drive {} lacks MWI on day {}", drive.id, s.day))
        })?;
        mwi.push(mwi_value);
    }
    // `with_missing`: missing-coverage fleets (DESIGN.md §11) carry NaN
    // cells for attributes a vendor batch never reports; on clean fleets
    // the constructed matrix is bit-identical to the strict constructor's.
    let matrix =
        FeatureMatrix::from_columns_with_missing(names, columns).map_err(PipelineError::Stats)?;
    Ok((matrix, labels, mwi))
}

/// Build the expanded (windowed-statistics) matrix for `samples` over the
/// given base features.
///
/// # Errors
///
/// Propagates expansion failures (unobserved days, unreported attributes).
pub fn expanded_matrix(
    fleet: &Fleet,
    samples: &[SampleRef],
    base: &[FeatureId],
) -> Result<(FeatureMatrix, Vec<bool>), PipelineError> {
    if samples.is_empty() || base.is_empty() {
        return Err(PipelineError::invalid(
            "expanded_matrix needs samples and at least one base feature",
        ));
    }
    let names = crate::features::expanded_feature_names(base);
    let mut rows = Vec::with_capacity(samples.len());
    let mut labels = Vec::with_capacity(samples.len());
    for s in samples {
        let drive = &fleet.drives()[s.drive_index];
        rows.push(crate::features::expand_sample(drive, s.day, base)?);
        labels.push(s.label);
    }
    // `with_missing`: NaN-backfilled days (tolerant ingest, DESIGN.md §11)
    // expand to NaN current values and observed-only window statistics;
    // the binned learners route NaN cells to their reserved missing bin.
    let matrix =
        FeatureMatrix::from_rows_with_missing(names, &rows).map_err(PipelineError::Stats)?;
    Ok((matrix, labels))
}

/// Per-drive `(final MWI_N, failed)` pairs *as of* `as_of_day` — the
/// survival snapshot available at training time (no peeking past the
/// training boundary).
pub fn survival_pairs(fleet: &Fleet, model: DriveModel, as_of_day: u32) -> Vec<(f64, bool)> {
    fleet
        .drives_of_model(model)
        .filter(|d| d.deploy_day <= as_of_day)
        .filter_map(|d| {
            let day = d.last_day().min(as_of_day);
            let mwi = d.value_on(day, FeatureId::normalized(SmartAttribute::Mwi))?;
            let failed = d.failure.is_some_and(|f| f.day <= as_of_day);
            Some((mwi, failed))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_dataset::FleetConfig;

    fn fleet() -> Fleet {
        let config = FleetConfig::builder()
            .days(400)
            .seed(5)
            .drives(DriveModel::Mc1, 50)
            .failure_scale(8.0)
            .build()
            .unwrap();
        Fleet::generate(&config)
    }

    #[test]
    fn base_features_cover_both_kinds() {
        let features = base_features(DriveModel::Mc1);
        assert_eq!(features.len(), 2 * DriveModel::Mc1.attributes().len());
        assert!(features.contains(&FeatureId::raw(SmartAttribute::Oce)));
        assert!(features.contains(&FeatureId::normalized(SmartAttribute::Oce)));
    }

    #[test]
    fn collect_keeps_all_positives() {
        let fleet = fleet();
        let config = SamplingConfig {
            downsample_ratio: None,
            ..SamplingConfig::default()
        };
        let samples = collect_samples(&fleet, DriveModel::Mc1, 0, 399, &config).unwrap();
        let expected_pos: usize = fleet
            .drives_of_model(DriveModel::Mc1)
            .filter_map(|d| d.failure)
            .map(|f| (f.day.min(399).saturating_sub(0) + 1).min(31) as usize)
            .sum();
        let got_pos = samples.iter().filter(|s| s.label).count();
        // All positive drive-days within the window are kept.
        assert!(
            got_pos >= expected_pos.saturating_sub(31),
            "{got_pos} vs {expected_pos}"
        );
        assert!(got_pos > 0);
    }

    #[test]
    fn downsampling_caps_negatives() {
        let fleet = fleet();
        let config = SamplingConfig {
            downsample_ratio: Some(2.0),
            ..SamplingConfig::default()
        };
        let samples = collect_samples(&fleet, DriveModel::Mc1, 0, 399, &config).unwrap();
        let pos = samples.iter().filter(|s| s.label).count();
        let neg = samples.len() - pos;
        assert!(neg <= 2 * pos + 1, "pos {pos}, neg {neg}");
    }

    #[test]
    fn collect_rejects_missing_model() {
        let fleet = fleet();
        assert!(
            collect_samples(&fleet, DriveModel::Ma1, 0, 399, &SamplingConfig::default()).is_err()
        );
    }

    #[test]
    fn base_matrix_shape_and_mwi() {
        let fleet = fleet();
        let samples =
            collect_samples(&fleet, DriveModel::Mc1, 0, 200, &SamplingConfig::default()).unwrap();
        let (m, labels, mwi) = base_matrix(&fleet, DriveModel::Mc1, &samples).unwrap();
        assert_eq!(m.n_rows(), samples.len());
        assert_eq!(m.n_features(), 2 * DriveModel::Mc1.attributes().len());
        assert_eq!(labels.len(), samples.len());
        assert_eq!(mwi.len(), samples.len());
        assert!(mwi.iter().all(|&v| (1.0..=100.0).contains(&v)));
        assert!(m.column_index("OCE_R").is_some());
    }

    #[test]
    fn expanded_matrix_shape() {
        let fleet = fleet();
        let samples = collect_samples(
            &fleet,
            DriveModel::Mc1,
            100,
            200,
            &SamplingConfig::default(),
        )
        .unwrap();
        let base = vec![
            FeatureId::raw(SmartAttribute::Oce),
            FeatureId::raw(SmartAttribute::Uce),
        ];
        let (m, labels) = expanded_matrix(&fleet, &samples, &base).unwrap();
        assert_eq!(m.n_features(), 2 * crate::features::EXPANSION_FACTOR);
        assert_eq!(m.n_rows(), labels.len());
    }

    #[test]
    fn expanded_matrix_rejects_empty() {
        let fleet = fleet();
        assert!(expanded_matrix(&fleet, &[], &[FeatureId::raw(SmartAttribute::Uce)]).is_err());
    }

    #[test]
    fn survival_pairs_respect_as_of_day() {
        let fleet = fleet();
        let early = survival_pairs(&fleet, DriveModel::Mc1, 100);
        let late = survival_pairs(&fleet, DriveModel::Mc1, 399);
        let early_failures = early.iter().filter(|(_, f)| *f).count();
        let late_failures = late.iter().filter(|(_, f)| *f).count();
        assert!(late_failures >= early_failures);
        // A drive that fails on day 300 is healthy as of day 100.
        let total_failed = fleet
            .drives_of_model(DriveModel::Mc1)
            .filter(|d| d.is_failed())
            .count();
        assert_eq!(late_failures, total_failed);
    }
}
