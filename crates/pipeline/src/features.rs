//! Statistical feature generation (§V-A): each selected base feature
//! expands into its current value plus max, min, mean, std, max−min, and
//! weighted moving average over 3-day and 7-day trailing windows —
//! 13 learning features per base feature.

use crate::error::PipelineError;
use smart_dataset::{DriveRecord, FeatureId};
use smart_stats::window::{WindowStats, WINDOW_STAT_NAMES};

/// The trailing-window widths of the paper.
pub const WINDOW_WIDTHS: [u32; 2] = [3, 7];

/// Number of expanded features per base feature (current value + 6 stats ×
/// 2 windows).
pub const EXPANSION_FACTOR: usize = 1 + 6 * WINDOW_WIDTHS.len();

/// The expanded feature names for a set of base features, e.g.
/// `OCE_R`, `OCE_R_w3_max`, …, `OCE_R_w7_wma`.
pub fn expanded_feature_names(base: &[FeatureId]) -> Vec<String> {
    let mut names = Vec::with_capacity(base.len() * EXPANSION_FACTOR);
    for f in base {
        let base_name = f.name();
        names.push(base_name.clone());
        for w in WINDOW_WIDTHS {
            for stat in WINDOW_STAT_NAMES {
                names.push(format!("{base_name}_w{w}_{stat}"));
            }
        }
    }
    names
}

/// Compute the expanded feature vector of one drive-day.
///
/// Returns the values in the same order as [`expanded_feature_names`].
///
/// # Errors
///
/// Returns [`PipelineError::InvalidInput`] when the drive is not observed
/// on `day` or does not report one of the base features.
pub fn expand_sample(
    drive: &DriveRecord,
    day: u32,
    base: &[FeatureId],
) -> Result<Vec<f64>, PipelineError> {
    let mut out = Vec::with_capacity(base.len() * EXPANSION_FACTOR);
    for f in base {
        let current = drive.value_on(day, *f).ok_or_else(|| {
            PipelineError::invalid(format!(
                "drive {} has no value for {f} on day {day}",
                drive.id
            ))
        })?;
        out.push(current);
        for w in WINDOW_WIDTHS {
            let window = drive.trailing_series(day, w, *f).ok_or_else(|| {
                PipelineError::invalid(format!(
                    "drive {} has no {w}-day window for {f} on day {day}",
                    drive.id
                ))
            })?;
            let stats = WindowStats::compute(&window).map_err(PipelineError::Stats)?;
            out.extend_from_slice(&stats.to_array());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_dataset::{DriveModel, Fleet, FleetConfig, SmartAttribute};

    fn drive() -> DriveRecord {
        let config = FleetConfig::builder()
            .days(200)
            .seed(2)
            .drives(DriveModel::Mc1, 1)
            .build()
            .unwrap();
        Fleet::generate(&config).drives()[0].clone()
    }

    #[test]
    fn names_have_expected_shape() {
        let base = vec![
            FeatureId::raw(SmartAttribute::Oce),
            FeatureId::normalized(SmartAttribute::Mwi),
        ];
        let names = expanded_feature_names(&base);
        assert_eq!(names.len(), 2 * EXPANSION_FACTOR);
        assert_eq!(names[0], "OCE_R");
        assert_eq!(names[1], "OCE_R_w3_max");
        assert_eq!(names[12], "OCE_R_w7_wma");
        assert_eq!(names[13], "MWI_N");
    }

    #[test]
    fn expansion_matches_names_length() {
        let d = drive();
        let base = vec![
            FeatureId::raw(SmartAttribute::Uce),
            FeatureId::normalized(SmartAttribute::Mwi),
        ];
        let day = d.deploy_day + 50;
        let values = expand_sample(&d, day, &base).unwrap();
        assert_eq!(values.len(), expanded_feature_names(&base).len());
        assert!(values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn window_stats_are_consistent_with_series() {
        let d = drive();
        let base = vec![FeatureId::raw(SmartAttribute::Poh)];
        let day = d.deploy_day + 20;
        let values = expand_sample(&d, day, &base).unwrap();
        // POH grows by 24 per day, so the 3-day max is the current value
        // and the 3-day min is current - 48.
        let current = values[0];
        let w3_max = values[1];
        let w3_min = values[2];
        assert_eq!(w3_max, current);
        assert!((w3_min - (current - 48.0)).abs() < 1e-6);
        // Range = max - min.
        assert!((values[5] - (w3_max - w3_min)).abs() < 1e-9);
    }

    #[test]
    fn early_days_use_truncated_windows() {
        let d = drive();
        let base = vec![FeatureId::raw(SmartAttribute::Uce)];
        // First observed day: all windows have width 1, so every stat
        // equals the current value except std/range (zero).
        let values = expand_sample(&d, d.deploy_day, &base).unwrap();
        let current = values[0];
        assert_eq!(values[1], current); // w3 max
        assert_eq!(values[2], current); // w3 min
        assert_eq!(values[4], 0.0); // w3 std
        assert_eq!(values[5], 0.0); // w3 range
    }

    #[test]
    fn unobserved_day_is_error() {
        let d = drive();
        let base = vec![FeatureId::raw(SmartAttribute::Uce)];
        assert!(expand_sample(&d, d.last_day() + 1, &base).is_err());
    }

    #[test]
    fn unreported_attribute_is_error() {
        let d = drive(); // MC1 does not report PLP
        let base = vec![FeatureId::raw(SmartAttribute::Plp)];
        assert!(expand_sample(&d, d.deploy_day + 5, &base).is_err());
    }
}
