//! Result formatting: plain-text tables in the shape of the paper's, plus
//! JSON export for downstream tooling.

use crate::evaluate::EvalMetrics;
use crate::experiment::MethodResult;
use std::fmt::Write as _;

/// Render one metric as the paper prints it (`63%`).
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Render a P/R/F0.5 triple.
pub fn prf(m: &EvalMetrics) -> String {
    format!("{} {} {}", pct(m.precision), pct(m.recall), pct(m.f_half))
}

/// Render a Table-VI-style block: one row per method, columns
/// `P R F0.5` per model plus the micro-averaged "All drive models" triple.
///
/// `rows` maps method label → (per-model results in display order, overall).
pub fn render_method_table(
    model_names: &[&str],
    rows: &[(String, Vec<EvalMetrics>, EvalMetrics)],
) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<24}", "Method");
    for name in model_names {
        let _ = write!(out, " | {:^17}", name);
    }
    let _ = writeln!(out, " | {:^17}", "All drive models");
    let width = 24 + (model_names.len() + 1) * 20;
    let _ = writeln!(out, "{}", "-".repeat(width));
    for (label, per_model, overall) in rows {
        let _ = write!(out, "{label:<24}");
        for m in per_model {
            let _ = write!(out, " | {:^17}", prf(m));
        }
        let _ = writeln!(out, " | {:^17}", prf(overall));
    }
    out
}

/// Serialize any result payload as pretty JSON.
pub fn to_json<T: json::ToJson + ?Sized>(value: &T) -> String {
    json::to_string_pretty(value)
}

/// Write a JSON result file alongside a printed table, creating parent
/// directories as needed.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_json<T: json::ToJson + ?Sized>(
    path: &std::path::Path,
    value: &T,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, to_json(value))
}

/// Group per-(model, method) results into table rows ordered by method.
pub fn rows_from_results(
    method_order: &[String],
    results: &[MethodResult],
) -> Vec<(String, Vec<EvalMetrics>, EvalMetrics)> {
    method_order
        .iter()
        .map(|label| {
            let of_method: Vec<&MethodResult> =
                results.iter().filter(|r| &r.method == label).collect();
            let per_model: Vec<EvalMetrics> = of_method.iter().map(|r| r.overall).collect();
            let overall = EvalMetrics::micro_average(of_method.iter().map(|r| &r.overall));
            (label.clone(), per_model, overall)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_dataset::DriveModel;

    fn metrics(tp: usize, fp: usize, fn_: usize) -> EvalMetrics {
        EvalMetrics::from_counts(tp, fp, fn_)
    }

    #[test]
    fn pct_formats_like_paper() {
        assert_eq!(pct(0.63), "63%");
        assert_eq!(pct(0.006), "1%");
        assert_eq!(pct(1.0), "100%");
    }

    #[test]
    fn table_contains_all_rows_and_columns() {
        let rows = vec![
            (
                "No feature selection".to_string(),
                vec![metrics(5, 5, 8), metrics(4, 6, 18)],
                metrics(9, 11, 26),
            ),
            (
                "WEFR".to_string(),
                vec![metrics(7, 3, 6), metrics(6, 4, 16)],
                metrics(13, 7, 22),
            ),
        ];
        let table = render_method_table(&["MA1", "MC1"], &rows);
        assert!(table.contains("No feature selection"));
        assert!(table.contains("WEFR"));
        assert!(table.contains("MA1"));
        assert!(table.contains("All drive models"));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    fn rows_from_results_micro_averages() {
        let mk = |model, method: &str, tp| MethodResult {
            method: method.to_string(),
            model,
            per_phase: vec![],
            overall: metrics(tp, 1, 1),
            selected_fraction: None,
        };
        let results = vec![
            mk(DriveModel::Ma1, "WEFR", 3),
            mk(DriveModel::Mc1, "WEFR", 5),
        ];
        let rows = rows_from_results(&["WEFR".to_string()], &results);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.len(), 2);
        assert_eq!(rows[0].2.tp, 8);
    }

    #[test]
    fn json_roundtrip() {
        let m = metrics(1, 2, 3);
        let text = to_json(&m);
        assert!(text.contains("precision"));
        let back: EvalMetrics = json::from_str(&text).unwrap();
        assert_eq!(back, m);
    }
}
