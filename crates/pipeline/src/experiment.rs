//! Experiment drivers for the paper's evaluation (§V): run one
//! feature-selection method through the full train → validate → test
//! pipeline on one drive model, at the paper's fixed per-model recall.

use crate::error::PipelineError;
use crate::evaluate::{metrics_at_fixed_recall, score_phase, DriveScore, EvalMetrics};
use crate::label::SampleRef;
use crate::matrix::{base_features, base_matrix, collect_samples, survival_pairs, SamplingConfig};
use crate::split::{paper_phases, Phase};
use crate::train::{FailurePredictor, PredictorConfig};
use smart_dataset::{DriveModel, FeatureId, Fleet, SmartAttribute};
use wefr_core::{
    FeatureRanker, ForestRanker, GradientBoostingRanker, JIndexRanker, PearsonRanker,
    SelectionInput, SpearmanRanker, Wefr, WefrConfig,
};

/// The five state-of-the-art selectors the paper compares against (§II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectorKind {
    /// Pearson correlation.
    Pearson,
    /// Spearman correlation.
    Spearman,
    /// J-index (Youden).
    JIndex,
    /// Random-Forest permutation importance.
    RandomForest,
    /// Gradient-boosting importance (XGBoost stand-in).
    XgBoost,
}

impl SelectorKind {
    /// All five, in the paper's order.
    pub const ALL: [SelectorKind; 5] = [
        SelectorKind::Pearson,
        SelectorKind::Spearman,
        SelectorKind::JIndex,
        SelectorKind::RandomForest,
        SelectorKind::XgBoost,
    ];

    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            SelectorKind::Pearson => "Pearson correlation",
            SelectorKind::Spearman => "Spearman correlation",
            SelectorKind::JIndex => "J-index",
            SelectorKind::RandomForest => "Random Forest",
            SelectorKind::XgBoost => "XGBoost",
        }
    }

    /// Instantiate the ranker.
    pub fn build(self, seed: u64) -> Box<dyn FeatureRanker> {
        match self {
            SelectorKind::Pearson => Box::new(PearsonRanker::new()),
            SelectorKind::Spearman => Box::new(SpearmanRanker::new()),
            SelectorKind::JIndex => Box::new(JIndexRanker::new()),
            SelectorKind::RandomForest => Box::new(ForestRanker::with_seed(seed)),
            SelectorKind::XgBoost => Box::new(GradientBoostingRanker::with_seed(seed)),
        }
    }
}

/// A feature-selection method under evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// All learning features (the paper's "No feature selection" row).
    NoSelection,
    /// One selector keeping a fraction of features. `percent = None` tunes
    /// the fraction on the validation period (the paper tunes 10%–100%).
    Selector {
        /// Which selector.
        kind: SelectorKind,
        /// Fraction in `(0, 1]`, or `None` to tune.
        percent: Option<f64>,
    },
    /// Full WEFR (Algorithm 1, with wear-out updating).
    Wefr,
    /// WEFR without wear-out updating (skipping lines 10–15) — the Exp#3
    /// baseline.
    WefrNoUpdate,
}

impl Method {
    /// The label used in the paper's tables.
    pub fn label(&self) -> String {
        match self {
            Method::NoSelection => "No feature selection".to_string(),
            Method::Selector { kind, .. } => kind.label().to_string(),
            Method::Wefr => "WEFR".to_string(),
            Method::WefrNoUpdate => "WEFR (No update)".to_string(),
        }
    }
}

/// The per-model recall the paper fixes in Tables VI/VII.
pub fn paper_target_recall(model: DriveModel) -> f64 {
    match model {
        DriveModel::Ma1 => 0.37,
        DriveModel::Ma2 => 0.32,
        DriveModel::Mb1 => 0.34,
        DriveModel::Mb2 => 0.32,
        DriveModel::Mc1 => 0.18,
        DriveModel::Mc2 => 0.19,
    }
}

/// End-to-end experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Training-sample collection policy.
    pub sampling: SamplingConfig,
    /// Prediction-model hyperparameters.
    pub predictor: PredictorConfig,
    /// WEFR configuration.
    pub wefr: WefrConfig,
    /// Fractions tried when tuning a selector's percentage.
    pub tune_grid: Vec<f64>,
    /// Target recall override (`None` = the paper's per-model recall).
    pub target_recall: Option<f64>,
    /// Drives in the *planned* side census used for wear-out change-point
    /// detection when no measured [`population`](Self::population) is
    /// supplied. The paper detects change points on the *whole fleet's*
    /// survival curve (a population statistic); a small experiment fleet
    /// cannot estimate it, so WEFR runs without a population consult a
    /// synthetic census of this size with the experiment fleet's failure
    /// characteristics. `0` falls back to the experiment fleet's own
    /// drives. Superseded by `population` whenever one is set — prefer
    /// [`smart_dataset::Census::measured`] over this knob when a streamed
    /// source is available.
    pub wearout_census_drives: u32,
    /// A census *measured* from the actual (usually streamed) population —
    /// the documented default for paper-scale runs. When set,
    /// [`wearout_survival`] reads the fleet-wide survival statistic from
    /// it directly and both fallbacks above are bypassed.
    pub population: Option<smart_dataset::Census>,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            sampling: SamplingConfig::default(),
            predictor: PredictorConfig::default(),
            wefr: WefrConfig::default(),
            tune_grid: (1..=10).map(|i| i as f64 / 10.0).collect(),
            target_recall: None,
            wearout_census_drives: 4000,
            population: None,
            seed: 0,
        }
    }
}

impl ExperimentConfig {
    /// A down-scaled configuration for tests and examples (fewer, shallower
    /// trees; coarser tuning grid).
    pub fn quick(seed: u64) -> Self {
        ExperimentConfig {
            predictor: PredictorConfig {
                n_trees: 25,
                max_depth: 8,
                ..PredictorConfig::default()
            },
            tune_grid: vec![0.2, 0.4, 0.6, 0.8, 1.0],
            seed,
            ..ExperimentConfig::default()
        }
    }

    /// Attach a measured population census: wear-out change-point
    /// detection will read the survival statistic from it instead of
    /// planning a synthetic side census.
    #[must_use]
    pub fn with_population(mut self, population: smart_dataset::Census) -> Self {
        self.population = Some(population);
        self
    }

    fn recall_for(&self, model: DriveModel) -> f64 {
        self.target_recall
            .unwrap_or_else(|| paper_target_recall(model))
    }
}

/// The outcome of running one method on one model.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method label (paper table row name).
    pub method: String,
    /// Drive model.
    pub model: DriveModel,
    /// Metrics per test phase.
    pub per_phase: Vec<EvalMetrics>,
    /// Micro-average over the phases.
    pub overall: EvalMetrics,
    /// Fraction of base features the method kept (averaged over phases);
    /// `None` for methods without a meaningful fraction.
    pub selected_fraction: Option<f64>,
}

json::impl_json!(MethodResult {
    method,
    model,
    per_phase,
    overall,
    selected_fraction
});

/// The predictor(s) trained for one phase: single, or routed by wear-out
/// group.
enum PhasePredictor {
    Single(FailurePredictor),
    Grouped {
        threshold: f64,
        low: FailurePredictor,
        high: FailurePredictor,
    },
}

impl PhasePredictor {
    /// Score drives over a test range, routing each drive-day to the group
    /// predictor matching its current `MWI_N`.
    fn score_phase(
        &self,
        fleet: &Fleet,
        model: DriveModel,
        phase: &Phase,
        horizon: u32,
    ) -> Result<Vec<DriveScore>, PipelineError> {
        match self {
            PhasePredictor::Single(p) => {
                score_phase(p, fleet, model, phase.test_start, phase.test_end, horizon)
            }
            PhasePredictor::Grouped {
                threshold,
                low,
                high,
            } => {
                let mwi = FeatureId::normalized(SmartAttribute::Mwi);
                let mut out = Vec::new();
                let mut best_group = Vec::new();
                for (drive_index, drive) in fleet.drives().iter().enumerate() {
                    if drive.model != model {
                        continue;
                    }
                    let start = phase.test_start.max(drive.deploy_day);
                    let end = phase.test_end.min(drive.last_day());
                    if start > end {
                        continue;
                    }
                    let mut best = f64::NEG_INFINITY;
                    let mut peak_day = start;
                    let mut from_low = true;
                    for day in start..=end {
                        let m = drive.value_on(day, mwi).ok_or_else(|| {
                            PipelineError::invalid(format!(
                                "drive {} lacks MWI on day {day}",
                                drive.id
                            ))
                        })?;
                        let is_low = m <= *threshold;
                        let predictor = if is_low { low } else { high };
                        let score = predictor.score_drive_day(drive, day)?;
                        if score > best {
                            best = score;
                            peak_day = day;
                            from_low = is_low;
                        }
                    }
                    let actual = drive.failure.is_some_and(|f| {
                        f.day >= phase.test_start && f.day <= phase.test_end.saturating_add(horizon)
                    });
                    out.push(DriveScore {
                        drive_index,
                        max_score: best,
                        peak_day,
                        actual,
                    });
                    best_group.push(from_low);
                }
                if out.is_empty() {
                    return Err(PipelineError::invalid("no drives in test phase"));
                }
                // The two group models are trained on different populations
                // and are not probability-calibrated against each other;
                // pooling raw scores would let the hotter model's drives
                // crowd the ranking. Replace each drive's score with its
                // quantile *within* the drives scored by the same model.
                quantile_normalize(&mut out, &best_group);
                Ok(out)
            }
        }
    }
}

/// Run `method` on `model` across the paper's three test phases.
///
/// Drive scores from the three phases are pooled and a single decision
/// threshold is chosen to hit the model's fixed recall; the reported
/// overall metrics are at that pooled threshold, and the per-phase metrics
/// are diagnostics at the same threshold. (The paper's per-model test
/// populations carry hundreds of failures per phase; a laptop-scale fleet
/// does not, so fixing recall per phase would be numerically meaningless.)
///
/// # Errors
///
/// Propagates any pipeline failure (degenerate samples, training errors,
/// no failures across all test phases, …).
pub fn run_method(
    fleet: &Fleet,
    model: DriveModel,
    method: Method,
    config: &ExperimentConfig,
) -> Result<MethodResult, PipelineError> {
    let phases = paper_phases(fleet.config().days())?;
    let mut phase_scores: Vec<Vec<DriveScore>> = Vec::with_capacity(phases.len());
    let mut fractions = Vec::new();
    for (phase_idx, phase) in phases.iter().enumerate() {
        let outcome = run_phase(fleet, model, method, config, phase, phase_idx as u64)?;
        phase_scores.push(outcome.scores);
        if let Some(f) = outcome.selected_fraction {
            fractions.push(f);
        }
    }
    let pooled: Vec<DriveScore> = phase_scores.iter().flatten().copied().collect();
    let (overall, threshold) = metrics_at_fixed_recall(&pooled, config.recall_for(model))?;
    let per_phase = phase_scores
        .iter()
        .map(|s| crate::evaluate::metrics_at_threshold(s, threshold))
        .collect();
    Ok(MethodResult {
        method: method.label(),
        model,
        per_phase,
        overall,
        selected_fraction: if fractions.is_empty() {
            None
        } else {
            Some(fractions.iter().sum::<f64>() / fractions.len() as f64)
        },
    })
}

/// Scores and diagnostics produced by one phase of one method run.
pub struct PhaseOutcome {
    /// Drive-level scores over the phase's test days.
    pub scores: Vec<DriveScore>,
    /// Fraction of base features kept this phase, when meaningful.
    pub selected_fraction: Option<f64>,
    /// The wear-out change point WEFR used this phase (grouped predictors
    /// only).
    pub wearout_threshold: Option<f64>,
}

/// Train `method` for one phase and score its test days (drive-level).
///
/// # Errors
///
/// Propagates sampling, selection, and training failures.
pub fn run_phase(
    fleet: &Fleet,
    model: DriveModel,
    method: Method,
    config: &ExperimentConfig,
    phase: &Phase,
    phase_idx: u64,
) -> Result<PhaseOutcome, PipelineError> {
    let seed = config.seed ^ (phase_idx.wrapping_mul(0x9E37_79B9)) ^ 0x5EED;
    let (fit_start, fit_end) = phase.fit_range();
    let sampling = SamplingConfig {
        seed,
        ..config.sampling
    };
    let fit_samples = collect_samples(fleet, model, fit_start, fit_end, &sampling)?;
    let all_base = base_features(model);

    let (predictor, fraction) = match method {
        Method::NoSelection => {
            let p = train_single(fleet, &fit_samples, &all_base, config, seed)?;
            (p, None)
        }
        Method::Selector { kind, percent } => {
            let (matrix, labels, _) = base_matrix(fleet, model, &fit_samples)?;
            let ranking = kind.build(seed).rank(&matrix, &labels)?;
            let pct = match percent {
                Some(p) => p,
                None => tune_percent(fleet, model, &ranking, &all_base, config, phase, seed)?,
            };
            let n = percent_to_count(pct, all_base.len())?;
            let base: Vec<FeatureId> = ranking.order()[..n].iter().map(|&c| all_base[c]).collect();
            let p = train_single(fleet, &fit_samples, &base, config, seed)?;
            (p, Some(n as f64 / all_base.len() as f64))
        }
        Method::Wefr | Method::WefrNoUpdate => {
            let (matrix, labels, mwi) = base_matrix(fleet, model, &fit_samples)?;
            let wefr = Wefr::new(WefrConfig {
                seed,
                ..config.wefr
            });
            let survival = wearout_survival(fleet, model, fit_end, config)?;
            let input = if method == Method::Wefr {
                SelectionInput {
                    data: &matrix,
                    labels: &labels,
                    mwi_per_sample: Some(&mwi),
                    survival: Some(&survival),
                }
            } else {
                SelectionInput::basic(&matrix, &labels)
            };
            let selection = wefr.select(&input)?;
            match &selection.wearout {
                Some(w) => {
                    let threshold = w.change_point.mwi_threshold as f64;
                    let low_base: Vec<FeatureId> =
                        w.low.selected.iter().map(|&c| all_base[c]).collect();
                    let high_base: Vec<FeatureId> =
                        w.high.selected.iter().map(|&c| all_base[c]).collect();
                    let (low_samples, high_samples) =
                        split_samples_by_mwi(&fit_samples, &mwi, threshold);
                    // Rebalance each group to a common class ratio so the
                    // two models' probability scales are comparable.
                    let low_samples = rebalance(&low_samples, &config.sampling)?;
                    let high_samples = rebalance(&high_samples, &config.sampling)?;
                    let low = FailurePredictor::train(
                        fleet,
                        &low_samples,
                        &low_base,
                        &predictor_config(config, seed),
                    )?;
                    let high = FailurePredictor::train(
                        fleet,
                        &high_samples,
                        &high_base,
                        &predictor_config(config, seed.wrapping_add(1)),
                    )?;
                    let frac = (w.low.selected_fraction() + w.high.selected_fraction()) / 2.0;
                    (
                        PhasePredictor::Grouped {
                            threshold,
                            low,
                            high,
                        },
                        Some(frac),
                    )
                }
                None => {
                    let base: Vec<FeatureId> = selection
                        .global
                        .selected
                        .iter()
                        .map(|&c| all_base[c])
                        .collect();
                    let p = train_single(fleet, &fit_samples, &base, config, seed)?;
                    (p, Some(selection.global.selected_fraction()))
                }
            }
        }
    };

    let wearout_threshold = match &predictor {
        PhasePredictor::Grouped { threshold, .. } => Some(*threshold),
        PhasePredictor::Single(_) => None,
    };
    let scores = predictor.score_phase(fleet, model, phase, config.sampling.horizon)?;
    Ok(PhaseOutcome {
        scores,
        selected_fraction: fraction,
        wearout_threshold,
    })
}

/// Survival pairs for wear-out change-point detection, in priority order:
///
/// 1. A *measured* [`ExperimentConfig::population`] census when one is set
///    — the documented default for paper-scale runs, where the streamed
///    generator supplies the actual fleet's lifecycle summaries
///    ([`smart_dataset::Census::measured`]). Like the paper's Fig. 1 this
///    is a whole-window population statistic: each drive deployed by
///    `as_of_day` contributes its end-of-observation `MWI_N` and whether
///    it had failed by `as_of_day`.
/// 2. Otherwise, a *planned* synthetic side census of
///    [`ExperimentConfig::wearout_census_drives`] drives matching the
///    experiment fleet's failure behaviour (the small-fleet fallback).
/// 3. With `wearout_census_drives == 0`, the experiment fleet itself.
///
/// # Errors
///
/// Returns [`PipelineError::Dataset`] when the derived census
/// configuration is invalid.
pub fn wearout_survival(
    fleet: &Fleet,
    model: DriveModel,
    as_of_day: u32,
    config: &ExperimentConfig,
) -> Result<Vec<(f64, bool)>, PipelineError> {
    if let Some(population) = &config.population {
        return Ok(population
            .summaries_of_model(model)
            .filter(|s| s.deploy_day <= as_of_day)
            .map(|s| (s.final_mwi_n, s.failure.is_some_and(|f| f.day <= as_of_day)))
            .collect());
    }
    if config.wearout_census_drives == 0 {
        return Ok(survival_pairs(fleet, model, as_of_day));
    }
    let days = (as_of_day + 1).max(120);
    let census_config = smart_dataset::FleetConfig::builder()
        .days(days)
        .seed(config.seed ^ 0xCE25)
        .drives(model, config.wearout_census_drives)
        .failure_scale(fleet.config().effective_failure_scale(model))
        .max_initial_age_days(fleet.config().max_initial_age_days())
        .arrival_fraction(fleet.config().arrival_fraction())
        .build()?;
    Ok(smart_dataset::Census::generate(&census_config)
        .summaries()
        .iter()
        .map(|s| (s.final_mwi_n, s.is_failed()))
        .collect())
}

fn predictor_config(config: &ExperimentConfig, seed: u64) -> PredictorConfig {
    PredictorConfig {
        seed,
        ..config.predictor
    }
}

fn train_single(
    fleet: &Fleet,
    samples: &[SampleRef],
    base: &[FeatureId],
    config: &ExperimentConfig,
    seed: u64,
) -> Result<PhasePredictor, PipelineError> {
    Ok(PhasePredictor::Single(FailurePredictor::train(
        fleet,
        samples,
        base,
        &predictor_config(config, seed),
    )?))
}

/// Convert a fraction of features into a count (at least 1).
fn percent_to_count(pct: f64, total: usize) -> Result<usize, PipelineError> {
    if !(0.0..=1.0).contains(&pct) || pct == 0.0 {
        return Err(PipelineError::invalid("percent must be in (0, 1]"));
    }
    Ok(((pct * total as f64).round() as usize).clamp(1, total))
}

/// Tune a selector's kept fraction on the validation period: train on the
/// fit range for each grid fraction, pick the one with the best validation
/// F0.5 at the model's fixed recall.
fn tune_percent(
    fleet: &Fleet,
    model: DriveModel,
    ranking: &wefr_core::FeatureRanking,
    all_base: &[FeatureId],
    config: &ExperimentConfig,
    phase: &Phase,
    seed: u64,
) -> Result<f64, PipelineError> {
    let (fit_start, fit_end) = phase.fit_range();
    let (val_start, val_end) = phase.validation_range();
    let sampling = SamplingConfig {
        seed: seed ^ 0x7A1,
        ..config.sampling
    };
    let fit_samples = collect_samples(fleet, model, fit_start, fit_end, &sampling)?;

    let mut best = (
        config.tune_grid.first().copied().unwrap_or(1.0),
        f64::NEG_INFINITY,
    );
    for &pct in &config.tune_grid {
        let n = percent_to_count(pct, all_base.len())?;
        let base: Vec<FeatureId> = ranking.order()[..n].iter().map(|&c| all_base[c]).collect();
        let predictor =
            FailurePredictor::train(fleet, &fit_samples, &base, &predictor_config(config, seed))?;
        let scores = score_phase(
            &predictor,
            fleet,
            model,
            val_start,
            val_end,
            config.sampling.horizon,
        );
        // A validation slice with no failures cannot rank candidates; skip.
        let Ok(scores) = scores else { continue };
        let Ok((metrics, _)) = metrics_at_fixed_recall(&scores, config.recall_for(model)) else {
            continue;
        };
        if metrics.f_half > best.1 {
            best = (pct, metrics.f_half);
        }
    }
    Ok(best.0)
}

/// Replace each drive's raw score with its mid-rank quantile within the
/// drives scored by the same group model (see the grouped-scoring comment).
fn quantile_normalize(scores: &mut [DriveScore], from_low: &[bool]) {
    for group in [true, false] {
        let idx: Vec<usize> = (0..scores.len())
            .filter(|&i| from_low[i] == group)
            .collect();
        if idx.is_empty() {
            continue;
        }
        let mut order = idx.clone();
        order.sort_by(|&a, &b| scores[a].max_score.total_cmp(&scores[b].max_score));
        let n = order.len();
        // Mid-rank handles ties deterministically enough for pooling; exact
        // tie semantics within a group are preserved by averaging positions.
        let mut pos = 0;
        while pos < n {
            let mut end = pos + 1;
            while end < n && scores[order[end]].max_score == scores[order[pos]].max_score {
                end += 1;
            }
            let q = (pos + end - 1) as f64 / 2.0 / (n.max(2) - 1) as f64;
            for &i in &order[pos..end] {
                scores[i].max_score = q;
            }
            pos = end;
        }
    }
}

/// Downsample a group's negatives to the configured ratio so that both
/// wear-out groups train at the same class balance (comparable probability
/// calibration).
fn rebalance(
    samples: &[SampleRef],
    sampling: &SamplingConfig,
) -> Result<Vec<SampleRef>, PipelineError> {
    let Some(ratio) = sampling.downsample_ratio else {
        return Ok(samples.to_vec());
    };
    let labels: Vec<bool> = samples.iter().map(|s| s.label).collect();
    let kept = smart_stats::sampling::downsample_negatives(&labels, ratio, sampling.seed ^ 0xBA1)
        .map_err(PipelineError::Stats)?;
    Ok(kept.into_iter().map(|i| samples[i]).collect())
}

/// Split samples into low/high wear-out groups by per-sample `MWI_N`.
fn split_samples_by_mwi(
    samples: &[SampleRef],
    mwi: &[f64],
    threshold: f64,
) -> (Vec<SampleRef>, Vec<SampleRef>) {
    let mut low = Vec::new();
    let mut high = Vec::new();
    for (s, &m) in samples.iter().zip(mwi) {
        if m <= threshold {
            low.push(*s);
        } else {
            high.push(*s);
        }
    }
    (low, high)
}

/// One point of the Exp#2 fixed-percentage sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Fraction of features kept.
    pub percent: f64,
    /// Pooled F0.5 at the model's fixed recall.
    pub f_half: f64,
}

json::impl_json!(SweepPoint { percent, f_half });

/// The Exp#2 result for one model: F0.5 across fixed selected-feature
/// percentages versus WEFR's automatically chosen count, both over the same
/// ensemble ranking (isolating the automated-count component).
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Drive model.
    pub model: DriveModel,
    /// The fixed-percentage curve.
    pub points: Vec<SweepPoint>,
    /// WEFR's automatically determined fraction (mean over phases).
    pub wefr_percent: f64,
    /// WEFR's pooled F0.5.
    pub wefr_f_half: f64,
}

json::impl_json!(SweepResult {
    model,
    points,
    wefr_percent,
    wefr_f_half
});

/// Run the Exp#2 sweep on one model: for every fraction in the tune grid,
/// keep that fraction of the *ensemble* ranking and measure pooled F0.5 at
/// the fixed recall; compare against WEFR's automated count.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run_percentage_sweep(
    fleet: &Fleet,
    model: DriveModel,
    config: &ExperimentConfig,
) -> Result<SweepResult, PipelineError> {
    let phases = paper_phases(fleet.config().days())?;
    let all_base = base_features(model);
    let n_features = all_base.len();

    // Per phase: the ensemble ranking, WEFR's chosen count, and the fit
    // samples (shared across all sweep points).
    struct PhasePrep {
        order: Vec<usize>,
        chosen: usize,
        fit_samples: Vec<SampleRef>,
        phase: Phase,
        seed: u64,
    }
    let mut preps = Vec::with_capacity(phases.len());
    for (phase_idx, phase) in phases.iter().enumerate() {
        let seed = config.seed ^ ((phase_idx as u64).wrapping_mul(0x9E37_79B9)) ^ 0x5EED;
        let (fit_start, fit_end) = phase.fit_range();
        let sampling = SamplingConfig {
            seed,
            ..config.sampling
        };
        let fit_samples = collect_samples(fleet, model, fit_start, fit_end, &sampling)?;
        let (matrix, labels, _) = base_matrix(fleet, model, &fit_samples)?;
        let wefr = Wefr::new(WefrConfig {
            seed,
            ..config.wefr
        });
        let selection = wefr.select_group(&matrix, &labels)?;
        preps.push(PhasePrep {
            order: selection.ensemble.order.clone(),
            chosen: selection.selected.len(),
            fit_samples,
            phase: *phase,
            seed,
        });
    }

    let evaluate_count = |count_for: &dyn Fn(&PhasePrep) -> usize| -> Result<f64, PipelineError> {
        let mut pooled = Vec::new();
        for prep in &preps {
            let n = count_for(prep).clamp(1, n_features);
            let base: Vec<FeatureId> = prep.order[..n].iter().map(|&c| all_base[c]).collect();
            let predictor = FailurePredictor::train(
                fleet,
                &prep.fit_samples,
                &base,
                &predictor_config(config, prep.seed),
            )?;
            pooled.extend(score_phase(
                &predictor,
                fleet,
                model,
                prep.phase.test_start,
                prep.phase.test_end,
                config.sampling.horizon,
            )?);
        }
        let (metrics, _) = metrics_at_fixed_recall(&pooled, config.recall_for(model))?;
        Ok(metrics.f_half)
    };

    let mut points = Vec::with_capacity(config.tune_grid.len());
    for &pct in &config.tune_grid {
        let f_half = evaluate_count(&|_| ((pct * n_features as f64).round() as usize).max(1))?;
        points.push(SweepPoint {
            percent: pct,
            f_half,
        });
    }
    let wefr_f_half = evaluate_count(&|prep: &PhasePrep| prep.chosen)?;
    let wefr_percent = preps.iter().map(|p| p.chosen as f64).sum::<f64>()
        / (preps.len() as f64 * n_features as f64);

    Ok(SweepResult {
        model,
        points,
        wefr_percent,
        wefr_f_half,
    })
}

/// The Exp#3 comparison on one model: WEFR with and without wear-out
/// updating, on all drives and on the low-MWI cohort.
#[derive(Debug, Clone)]
pub struct UpdatingResult {
    /// Drive model.
    pub model: DriveModel,
    /// WEFR, all drives.
    pub wefr_all: EvalMetrics,
    /// WEFR (No update), all drives.
    pub no_update_all: EvalMetrics,
    /// WEFR, low-MWI cohort (absent when no change point was detected).
    pub wefr_low: Option<EvalMetrics>,
    /// WEFR (No update), low-MWI cohort.
    pub no_update_low: Option<EvalMetrics>,
    /// The change-point thresholds used per phase (where detected).
    pub thresholds: Vec<Option<f64>>,
}

json::impl_json!(UpdatingResult {
    model,
    wefr_all,
    no_update_all,
    wefr_low,
    no_update_low,
    thresholds,
});

/// Run the Exp#3 comparison (Table VII) on one model.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run_updating_comparison(
    fleet: &Fleet,
    model: DriveModel,
    config: &ExperimentConfig,
) -> Result<UpdatingResult, PipelineError> {
    let phases = paper_phases(fleet.config().days())?;
    let mut wefr_scores = Vec::new();
    let mut no_update_scores = Vec::new();
    let mut wefr_low_scores = Vec::new();
    let mut no_update_low_scores = Vec::new();
    let mut thresholds = Vec::new();

    for (phase_idx, phase) in phases.iter().enumerate() {
        let wefr = run_phase(fleet, model, Method::Wefr, config, phase, phase_idx as u64)?;
        let no_update = run_phase(
            fleet,
            model,
            Method::WefrNoUpdate,
            config,
            phase,
            phase_idx as u64,
        )?;
        if let Some(threshold) = wefr.wearout_threshold {
            let cohort = low_cohort_indices(fleet, model, phase, threshold);
            wefr_low_scores.extend(restrict_scores(&wefr.scores, &cohort));
            no_update_low_scores.extend(restrict_scores(&no_update.scores, &cohort));
        }
        thresholds.push(wefr.wearout_threshold);
        wefr_scores.extend(wefr.scores);
        no_update_scores.extend(no_update.scores);
    }

    let recall = config.recall_for(model);
    let (wefr_all, _) = metrics_at_fixed_recall(&wefr_scores, recall)?;
    let (no_update_all, _) = metrics_at_fixed_recall(&no_update_scores, recall)?;
    let low_pair = match (
        metrics_at_fixed_recall(&wefr_low_scores, recall),
        metrics_at_fixed_recall(&no_update_low_scores, recall),
    ) {
        (Ok((w, _)), Ok((n, _))) => Some((w, n)),
        _ => None,
    };
    let (wefr_low, no_update_low) = match low_pair {
        Some((w, n)) => (Some(w), Some(n)),
        None => (None, None),
    };
    Ok(UpdatingResult {
        model,
        wefr_all,
        no_update_all,
        wefr_low,
        no_update_low,
        thresholds,
    })
}

/// The *low-MWI cohort* of a test phase — the drives behind the "Low"
/// columns of Table VII: drives whose `MWI_N` on their last test day is at
/// or below the change point detected from training data.
pub fn low_cohort_indices(
    fleet: &Fleet,
    model: DriveModel,
    phase: &Phase,
    threshold: f64,
) -> Vec<usize> {
    let mwi = FeatureId::normalized(SmartAttribute::Mwi);
    fleet
        .drives()
        .iter()
        .enumerate()
        .filter(|(_, d)| d.model == model)
        .filter(|(_, d)| d.deploy_day <= phase.test_end && d.last_day() >= phase.test_start)
        .filter(|(_, d)| {
            let day = d.last_day().min(phase.test_end);
            d.value_on(day, mwi).is_some_and(|m| m <= threshold)
        })
        .map(|(i, _)| i)
        .collect()
}

/// Restrict drive scores to a cohort of drive indices.
pub fn restrict_scores(scores: &[DriveScore], cohort: &[usize]) -> Vec<DriveScore> {
    scores
        .iter()
        .filter(|s| cohort.contains(&s.drive_index))
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_dataset::FleetConfig;

    fn quick_fleet() -> Fleet {
        let config = FleetConfig::builder()
            .days(365)
            .seed(33)
            .drives(DriveModel::Mc1, 120)
            .failure_scale(8.0)
            .build()
            .unwrap();
        Fleet::generate(&config)
    }

    #[test]
    fn percent_to_count_bounds() {
        assert_eq!(percent_to_count(0.5, 10).unwrap(), 5);
        assert_eq!(percent_to_count(0.01, 10).unwrap(), 1);
        assert_eq!(percent_to_count(1.0, 10).unwrap(), 10);
        assert!(percent_to_count(0.0, 10).is_err());
        assert!(percent_to_count(1.5, 10).is_err());
    }

    #[test]
    fn selector_labels_match_paper() {
        assert_eq!(Method::NoSelection.label(), "No feature selection");
        assert_eq!(
            Method::Selector {
                kind: SelectorKind::XgBoost,
                percent: Some(0.5)
            }
            .label(),
            "XGBoost"
        );
        assert_eq!(Method::WefrNoUpdate.label(), "WEFR (No update)");
    }

    #[test]
    fn paper_recalls_are_sane() {
        for m in DriveModel::ALL {
            let r = paper_target_recall(m);
            assert!((0.1..=0.5).contains(&r));
        }
    }

    #[test]
    fn no_selection_runs_end_to_end() {
        let fleet = quick_fleet();
        let config = ExperimentConfig::quick(1);
        let result = run_method(&fleet, DriveModel::Mc1, Method::NoSelection, &config).unwrap();
        assert_eq!(result.per_phase.len(), 3);
        assert!(result.overall.recall > 0.0);
        assert!(result.selected_fraction.is_none());
    }

    #[test]
    fn fixed_percent_selector_runs() {
        let fleet = quick_fleet();
        let config = ExperimentConfig::quick(2);
        let result = run_method(
            &fleet,
            DriveModel::Mc1,
            Method::Selector {
                kind: SelectorKind::Pearson,
                percent: Some(0.3),
            },
            &config,
        )
        .unwrap();
        let frac = result.selected_fraction.unwrap();
        assert!((0.25..=0.35).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn wefr_no_update_runs() {
        let fleet = quick_fleet();
        let config = ExperimentConfig::quick(3);
        let result = run_method(&fleet, DriveModel::Mc1, Method::WefrNoUpdate, &config).unwrap();
        assert!(result.selected_fraction.unwrap() <= 1.0);
        assert!(result.overall.tp + result.overall.fn_ > 0);
    }

    #[test]
    fn split_samples_by_mwi_partitions() {
        let samples: Vec<SampleRef> = (0..6)
            .map(|i| SampleRef {
                drive_index: i,
                day: 0,
                label: false,
            })
            .collect();
        let mwi = vec![10.0, 60.0, 30.0, 80.0, 40.0, 90.0];
        let (low, high) = split_samples_by_mwi(&samples, &mwi, 40.0);
        assert_eq!(low.len(), 3);
        assert_eq!(high.len(), 3);
    }

    #[test]
    fn wearout_survival_uses_census_or_fleet() {
        let fleet = quick_fleet();
        let mut config = ExperimentConfig::quick(1);
        config.wearout_census_drives = 0;
        let from_fleet = wearout_survival(&fleet, DriveModel::Mc1, 300, &config).unwrap();
        assert_eq!(
            from_fleet.len(),
            fleet
                .drives_of_model(DriveModel::Mc1)
                .filter(|d| d.deploy_day <= 300)
                .count()
        );
        config.wearout_census_drives = 500;
        let from_census = wearout_survival(&fleet, DriveModel::Mc1, 300, &config).unwrap();
        assert_eq!(from_census.len(), 500);
        // Census failure rate must resemble the experiment fleet's scale
        // (same effective failure multiplier), not the nominal AFR.
        let census_failures = from_census.iter().filter(|(_, f)| *f).count();
        assert!(census_failures > 10, "census failures = {census_failures}");
    }

    #[test]
    fn wearout_survival_prefers_measured_population() {
        let fleet = quick_fleet();
        // A measured census over the experiment fleet's own config: the
        // highest-priority source, consulted even though the planned-census
        // knob is nonzero.
        let population =
            smart_dataset::Census::measured(fleet.config(), &smart_dataset::GenConfig::default())
                .unwrap();
        let config = ExperimentConfig::quick(1).with_population(population);
        assert_eq!(config.wearout_census_drives, 4000);
        let from_population = wearout_survival(&fleet, DriveModel::Mc1, 300, &config).unwrap();
        let deployed: Vec<_> = fleet
            .drives_of_model(DriveModel::Mc1)
            .filter(|d| d.deploy_day <= 300)
            .collect();
        assert_eq!(from_population.len(), deployed.len());
        // The measured population is the actual fleet: pairs agree drive
        // for drive on end-of-observation MWI_N and failed-by-day status.
        for ((mwi, failed), drive) in from_population.iter().zip(&deployed) {
            assert_eq!(*mwi, drive.final_mwi_n().unwrap());
            assert_eq!(*failed, drive.failure.is_some_and(|f| f.day <= 300));
        }
    }

    #[test]
    fn quantile_normalize_equalizes_group_scales() {
        // Group A (low) scores in [0.8, 1.0]; group B (high) in [0.0, 0.2].
        // After normalization both span [0, 1] within their group, so a
        // middling drive of the hot group no longer outranks the top drive
        // of the cold group.
        let mut scores: Vec<DriveScore> = [
            (0, 0.80, true), // low group
            (1, 0.90, true),
            (2, 1.00, true),
            (3, 0.00, false), // high group
            (4, 0.10, false),
            (5, 0.20, false),
        ]
        .iter()
        .map(|&(i, s, _)| DriveScore {
            drive_index: i,
            max_score: s,
            peak_day: 0,
            actual: false,
        })
        .collect();
        let groups = vec![true, true, true, false, false, false];
        quantile_normalize(&mut scores, &groups);
        // Top of each group maps to 1.0, bottom to 0.0.
        assert_eq!(scores[2].max_score, 1.0);
        assert_eq!(scores[0].max_score, 0.0);
        assert_eq!(scores[5].max_score, 1.0);
        assert_eq!(scores[3].max_score, 0.0);
        // Mid-rank in both groups is 0.5.
        assert!((scores[1].max_score - 0.5).abs() < 1e-12);
        assert!((scores[4].max_score - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_normalize_averages_ties() {
        let mut scores: Vec<DriveScore> = [0.5, 0.5, 0.9]
            .iter()
            .enumerate()
            .map(|(i, &s)| DriveScore {
                drive_index: i,
                max_score: s,
                peak_day: 0,
                actual: false,
            })
            .collect();
        quantile_normalize(&mut scores, &[true, true, true]);
        // The tied pair shares the mid-rank quantile (positions 0 and 1 of 3).
        assert_eq!(scores[0].max_score, scores[1].max_score);
        assert!((scores[0].max_score - 0.25).abs() < 1e-12);
        assert_eq!(scores[2].max_score, 1.0);
    }

    #[test]
    fn quantile_normalize_single_member_group() {
        let mut scores = vec![DriveScore {
            drive_index: 0,
            max_score: 0.7,
            peak_day: 0,
            actual: true,
        }];
        quantile_normalize(&mut scores, &[true]);
        assert_eq!(scores[0].max_score, 0.0); // rank 0 of 1
    }

    #[test]
    fn rebalance_caps_group_negatives() {
        let samples: Vec<SampleRef> = (0..40)
            .map(|i| SampleRef {
                drive_index: i,
                day: 0,
                label: i < 4, // 4 positives, 36 negatives
            })
            .collect();
        let sampling = SamplingConfig {
            downsample_ratio: Some(2.0),
            ..SamplingConfig::default()
        };
        let kept = rebalance(&samples, &sampling).unwrap();
        let pos = kept.iter().filter(|s| s.label).count();
        let neg = kept.len() - pos;
        assert_eq!(pos, 4, "all positives kept");
        assert!(neg <= 8, "negatives capped at 2x positives, got {neg}");
    }

    #[test]
    fn rebalance_without_ratio_is_identity() {
        let samples: Vec<SampleRef> = (0..5)
            .map(|i| SampleRef {
                drive_index: i,
                day: 0,
                label: i == 0,
            })
            .collect();
        let sampling = SamplingConfig {
            downsample_ratio: None,
            ..SamplingConfig::default()
        };
        assert_eq!(rebalance(&samples, &sampling).unwrap(), samples);
    }

    #[test]
    fn restrict_scores_filters() {
        let scores = vec![
            DriveScore {
                drive_index: 1,
                max_score: 0.5,
                peak_day: 0,
                actual: true,
            },
            DriveScore {
                drive_index: 2,
                max_score: 0.4,
                peak_day: 0,
                actual: false,
            },
        ];
        let r = restrict_scores(&scores, &[2]);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].drive_index, 2);
    }
}
