//! Streaming matrix assembly: CSV shards straight into a base feature
//! matrix, without materialising the whole [`smart_dataset::Fleet`].
//!
//! Built on [`smart_dataset::ingest::stream_drive_batches`]: each
//! drive-aligned shard is parsed on a worker thread, its drives are folded
//! into the growing sample columns as the batch arrives in file order, and
//! the records are dropped immediately afterwards. Peak memory is the
//! matrix under construction plus the ingest pipeline's bounded shard
//! window, rather than matrix plus fleet.
//!
//! The result is bit-identical to importing the fleet and running
//! [`crate::matrix::collect_samples`] + [`crate::matrix::base_matrix`]
//! over it, because batches arrive in file order (which is fleet drive
//! order) and negatives are downsampled once at the end, exactly as the
//! materialised path does.

use crate::error::PipelineError;
use crate::label::labeled_days;
use crate::matrix::{base_features, SamplingConfig};
use smart_dataset::ingest::{stream_drive_batches, DriveBatch, IngestConfig, IngestStats};
use smart_dataset::{DriveModel, FeatureId, SmartAttribute, TroubleTicket};
use smart_stats::sampling::downsample_negatives;
use smart_stats::FeatureMatrix;
use std::io::BufRead;

/// A base matrix assembled directly from a CSV stream.
#[derive(Debug, Clone)]
pub struct StreamedMatrix {
    /// One column per raw/normalized attribute value of the model.
    pub matrix: FeatureMatrix,
    /// Failure-within-horizon label per sample row.
    pub labels: Vec<bool>,
    /// `MWI_N` per sample row (for wear-out grouping).
    pub mwi: Vec<f64>,
    /// Ingestion counters for the underlying sharded read.
    pub stats: IngestStats,
}

/// Stream a SMART-log CSV into the base-feature matrix of `model` for
/// samples in `[from_day, to_day]`.
///
/// # Errors
///
/// Returns [`PipelineError::Dataset`] for malformed CSV (same line numbers
/// and messages as the single-threaded importer) and
/// [`PipelineError::InvalidInput`] for a zero `neg_stride` or when the
/// window contains no samples of `model`.
pub fn streaming_base_matrix<R: BufRead + Send>(
    input: R,
    tickets: &[TroubleTicket],
    model: DriveModel,
    from_day: u32,
    to_day: u32,
    sampling: &SamplingConfig,
    ingest: &IngestConfig,
) -> Result<StreamedMatrix, PipelineError> {
    if sampling.neg_stride == 0 {
        return Err(PipelineError::invalid("neg_stride must be at least 1"));
    }
    let features = base_features(model);
    let names: Vec<String> = features.iter().map(FeatureId::name).collect();
    let mwi_feature = FeatureId::normalized(SmartAttribute::Mwi);

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); features.len()];
    let mut labels: Vec<bool> = Vec::new();
    let mut mwi: Vec<f64> = Vec::new();

    let stats = stream_drive_batches(input, tickets, ingest, |batch: DriveBatch| {
        for drive in &batch.drives {
            if drive.model != model {
                continue;
            }
            // drive_index is irrelevant here — the drive is already in
            // hand, so samples are folded away instead of referenced.
            for s in labeled_days(drive, 0, from_day, to_day, sampling.horizon) {
                if !s.label && (s.day - drive.deploy_day) % sampling.neg_stride != 0 {
                    continue;
                }
                for (col, f) in features.iter().enumerate() {
                    let v = drive.value_on(s.day, *f).ok_or_else(|| {
                        PipelineError::invalid(format!(
                            "drive {} lacks {f} on day {}",
                            drive.id, s.day
                        ))
                    })?;
                    columns[col].push(v);
                }
                labels.push(s.label);
                let mwi_value = drive.value_on(s.day, mwi_feature).ok_or_else(|| {
                    PipelineError::invalid(format!("drive {} lacks MWI on day {}", drive.id, s.day))
                })?;
                mwi.push(mwi_value);
            }
        }
        Ok::<(), PipelineError>(())
    })?;

    if labels.is_empty() {
        return Err(PipelineError::invalid(format!(
            "no samples of model {model} in days {from_day}..={to_day}"
        )));
    }
    if let Some(ratio) = sampling.downsample_ratio {
        let kept = downsample_negatives(&labels, ratio, sampling.seed)?;
        for col in &mut columns {
            *col = kept.iter().map(|&i| col[i]).collect();
        }
        labels = kept.iter().map(|&i| labels[i]).collect();
        mwi = kept.iter().map(|&i| mwi[i]).collect();
    }
    // `with_missing`: mirrors `base_matrix` — NaN cells from missing-
    // coverage fleets flow through; clean fleets build identically.
    let matrix =
        FeatureMatrix::from_columns_with_missing(names, columns).map_err(PipelineError::Stats)?;
    Ok(StreamedMatrix {
        matrix,
        labels,
        mwi,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{base_matrix, collect_samples};
    use smart_dataset::csv::{export_smart_csv, import_smart_csv};
    use smart_dataset::{tickets_from_summaries, Fleet, FleetConfig};

    fn fixture() -> (String, Vec<TroubleTicket>, FleetConfig) {
        let config = FleetConfig::builder()
            .days(400)
            .seed(5)
            .drives(DriveModel::Mc1, 30)
            .failure_scale(8.0)
            .build()
            .unwrap();
        let fleet = Fleet::generate(&config);
        let tickets = tickets_from_summaries(&fleet.summaries());
        let mut buf = Vec::new();
        export_smart_csv(&fleet, &mut buf).unwrap();
        (String::from_utf8(buf).unwrap(), tickets, config)
    }

    #[test]
    fn streaming_matches_materialised_path() {
        let (text, tickets, config) = fixture();
        let sampling = SamplingConfig::default();
        let imported = import_smart_csv(text.as_bytes(), &tickets, config).unwrap();
        let samples = collect_samples(&imported, DriveModel::Mc1, 0, 399, &sampling).unwrap();
        let (matrix, labels, mwi) = base_matrix(&imported, DriveModel::Mc1, &samples).unwrap();

        for workers in [1, 4] {
            let ingest = IngestConfig {
                shard_rows: 97,
                workers,
                max_queued_shards: 2,
                ..IngestConfig::default()
            };
            let streamed = streaming_base_matrix(
                text.as_bytes(),
                &tickets,
                DriveModel::Mc1,
                0,
                399,
                &sampling,
                &ingest,
            )
            .unwrap();
            assert_eq!(streamed.labels, labels, "workers={workers}");
            assert_eq!(streamed.mwi, mwi);
            assert_eq!(streamed.matrix.n_rows(), matrix.n_rows());
            assert_eq!(streamed.matrix.n_features(), matrix.n_features());
            for name in matrix.feature_names() {
                let a = matrix.column_index(name).unwrap();
                let b = streamed.matrix.column_index(name).unwrap();
                assert_eq!(matrix.column(a), streamed.matrix.column(b), "{name}");
            }
        }
    }

    #[test]
    fn absent_model_is_an_error() {
        let (text, tickets, _config) = fixture();
        let err = streaming_base_matrix(
            text.as_bytes(),
            &tickets,
            DriveModel::Ma1,
            0,
            399,
            &SamplingConfig::default(),
            &IngestConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::InvalidInput { .. }));
    }

    #[test]
    fn zero_stride_is_rejected() {
        let (text, tickets, _config) = fixture();
        let sampling = SamplingConfig {
            neg_stride: 0,
            ..SamplingConfig::default()
        };
        assert!(streaming_base_matrix(
            text.as_bytes(),
            &tickets,
            DriveModel::Mc1,
            0,
            399,
            &sampling,
            &IngestConfig::default(),
        )
        .is_err());
    }

    #[test]
    fn csv_errors_pass_through_with_line_numbers() {
        let (text, tickets, _config) = fixture();
        let mut lines: Vec<&str> = text.lines().collect();
        lines[10] = "garbage";
        let corrupt = lines.join("\n");
        let err = streaming_base_matrix(
            corrupt.as_bytes(),
            &tickets,
            DriveModel::Mc1,
            0,
            399,
            &SamplingConfig::default(),
            &IngestConfig {
                shard_rows: 16,
                workers: 2,
                max_queued_shards: 2,
                ..IngestConfig::default()
            },
        )
        .unwrap_err();
        match err {
            PipelineError::Dataset(smart_dataset::DatasetError::ParseCsv { line, .. }) => {
                assert_eq!(line, 11);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
