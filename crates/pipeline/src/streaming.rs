//! Streaming matrix assembly: drive batches straight into a base feature
//! matrix, without materialising the whole [`smart_dataset::Fleet`].
//!
//! Two sources feed the same fold. [`streaming_base_matrix`] consumes CSV
//! shards via [`smart_dataset::ingest::stream_drive_batches`];
//! [`generated_base_matrix`] consumes the simulator via
//! [`smart_dataset::gen::stream::stream_fleet_batches`] (DESIGN.md §12).
//! Either way each batch's drives are folded into the growing sample
//! columns as they arrive in drive order, and the records are dropped
//! immediately afterwards. Peak memory is the matrix under construction
//! plus the source's bounded batch window, rather than matrix plus fleet.
//!
//! The result is bit-identical to materialising the fleet and running
//! [`crate::matrix::collect_samples`] + [`crate::matrix::base_matrix`]
//! over it, because batches arrive in fleet drive order and negative
//! downsampling sees the same full label sequence as the materialised
//! path: the CSV source downsamples once at the end, and the generated
//! source — whose whole point is never holding all the columns — collects
//! the labels in a cheap first streaming pass, computes the kept rows, and
//! assembles only those in a second, bit-identical regeneration pass.

use crate::error::PipelineError;
use crate::label::labeled_days;
use crate::matrix::{base_features, SamplingConfig};
use smart_dataset::gen::stream::{stream_fleet_batches, GenConfig, GenStats};
use smart_dataset::ingest::{stream_drive_batches, DriveBatch, IngestConfig, IngestStats};
use smart_dataset::{
    Census, DriveModel, DriveRecord, DriveSummary, FeatureId, FleetConfig, SmartAttribute,
    TroubleTicket,
};
use smart_stats::sampling::downsample_negatives;
use smart_stats::FeatureMatrix;
use std::io::BufRead;

/// Visit the matrix sample days of one drive: `model`-filtered,
/// window-clipped, stride-thinned — exactly the rows
/// [`crate::matrix::collect_samples`] would emit for this drive. Shared by
/// the CSV and generated sources so the two folds cannot drift apart.
fn fold_drive_samples<E>(
    drive: &DriveRecord,
    model: DriveModel,
    from_day: u32,
    to_day: u32,
    sampling: &SamplingConfig,
    mut visit: impl FnMut(u32, bool) -> Result<(), E>,
) -> Result<(), E> {
    if drive.model != model {
        return Ok(());
    }
    // drive_index is irrelevant here — the drive is already in hand, so
    // samples are folded away instead of referenced.
    for s in labeled_days(drive, 0, from_day, to_day, sampling.horizon) {
        if !s.label && (s.day - drive.deploy_day) % sampling.neg_stride != 0 {
            continue;
        }
        visit(s.day, s.label)?;
    }
    Ok(())
}

/// Append one sample row (every base-feature value plus `MWI_N`) to the
/// growing columns.
fn push_row(
    drive: &DriveRecord,
    day: u32,
    features: &[FeatureId],
    mwi_feature: FeatureId,
    columns: &mut [Vec<f64>],
    mwi: &mut Vec<f64>,
) -> Result<(), PipelineError> {
    for (col, f) in features.iter().enumerate() {
        let v = drive.value_on(day, *f).ok_or_else(|| {
            PipelineError::invalid(format!("drive {} lacks {f} on day {}", drive.id, day))
        })?;
        columns[col].push(v);
    }
    let mwi_value = drive.value_on(day, mwi_feature).ok_or_else(|| {
        PipelineError::invalid(format!("drive {} lacks MWI on day {}", drive.id, day))
    })?;
    mwi.push(mwi_value);
    Ok(())
}

/// A base matrix assembled directly from a CSV stream.
#[derive(Debug, Clone)]
pub struct StreamedMatrix {
    /// One column per raw/normalized attribute value of the model.
    pub matrix: FeatureMatrix,
    /// Failure-within-horizon label per sample row.
    pub labels: Vec<bool>,
    /// `MWI_N` per sample row (for wear-out grouping).
    pub mwi: Vec<f64>,
    /// Ingestion counters for the underlying sharded read.
    pub stats: IngestStats,
}

/// Stream a SMART-log CSV into the base-feature matrix of `model` for
/// samples in `[from_day, to_day]`.
///
/// # Errors
///
/// Returns [`PipelineError::Dataset`] for malformed CSV (same line numbers
/// and messages as the single-threaded importer) and
/// [`PipelineError::InvalidInput`] for a zero `neg_stride` or when the
/// window contains no samples of `model`.
pub fn streaming_base_matrix<R: BufRead + Send>(
    input: R,
    tickets: &[TroubleTicket],
    model: DriveModel,
    from_day: u32,
    to_day: u32,
    sampling: &SamplingConfig,
    ingest: &IngestConfig,
) -> Result<StreamedMatrix, PipelineError> {
    if sampling.neg_stride == 0 {
        return Err(PipelineError::invalid("neg_stride must be at least 1"));
    }
    let features = base_features(model);
    let names: Vec<String> = features.iter().map(FeatureId::name).collect();
    let mwi_feature = FeatureId::normalized(SmartAttribute::Mwi);

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); features.len()];
    let mut labels: Vec<bool> = Vec::new();
    let mut mwi: Vec<f64> = Vec::new();

    let stats = stream_drive_batches(input, tickets, ingest, |batch: DriveBatch| {
        for drive in &batch.drives {
            fold_drive_samples(drive, model, from_day, to_day, sampling, |day, label| {
                push_row(drive, day, &features, mwi_feature, &mut columns, &mut mwi)?;
                labels.push(label);
                Ok::<(), PipelineError>(())
            })?;
        }
        Ok::<(), PipelineError>(())
    })?;

    if labels.is_empty() {
        return Err(PipelineError::invalid(format!(
            "no samples of model {model} in days {from_day}..={to_day}"
        )));
    }
    if let Some(ratio) = sampling.downsample_ratio {
        let kept = downsample_negatives(&labels, ratio, sampling.seed)?;
        for col in &mut columns {
            *col = kept.iter().map(|&i| col[i]).collect();
        }
        labels = kept.iter().map(|&i| labels[i]).collect();
        mwi = kept.iter().map(|&i| mwi[i]).collect();
    }
    // `with_missing`: mirrors `base_matrix` — NaN cells from missing-
    // coverage fleets flow through; clean fleets build identically.
    let matrix =
        FeatureMatrix::from_columns_with_missing(names, columns).map_err(PipelineError::Stats)?;
    Ok(StreamedMatrix {
        matrix,
        labels,
        mwi,
        stats,
    })
}

/// A base matrix assembled directly from the streaming generator, plus the
/// measured population census the run observed on the way.
#[derive(Debug, Clone)]
pub struct GeneratedMatrix {
    /// One column per raw/normalized attribute value of the model.
    pub matrix: FeatureMatrix,
    /// Failure-within-horizon label per sample row.
    pub labels: Vec<bool>,
    /// `MWI_N` per sample row (for wear-out grouping).
    pub mwi: Vec<f64>,
    /// Lifecycle census measured from every streamed drive (all models) —
    /// ready for [`crate::experiment::ExperimentConfig::with_population`].
    pub census: Census,
    /// Generation counters for the final streaming pass.
    pub stats: GenStats,
}

/// Stream the simulated fleet `config` describes straight into the base
/// feature matrix of `model` for samples in `[from_day, to_day]`, in
/// bounded memory — the generate → scenario → matrix leg of the paper-scale
/// pipeline, never materialising the fleet.
///
/// Negative downsampling needs the full label sequence before any row can
/// be kept, so when [`SamplingConfig::downsample_ratio`] is set the fleet
/// is streamed *twice*: a label-only pass (a few bytes per sample), then a
/// regeneration pass that assembles only the kept rows. Determinism makes
/// the two passes bit-identical; the fold still cross-checks every label
/// against the first pass and reports an internal error on any mismatch.
///
/// The result is bit-identical to materialising the fleet (plus scenario
/// post-pass) and running the `collect_samples` + `base_matrix` path.
///
/// # Errors
///
/// Returns [`PipelineError::Dataset`] for an invalid scenario and
/// [`PipelineError::InvalidInput`] for a zero `neg_stride` or when the
/// window contains no samples of `model`.
pub fn generated_base_matrix(
    config: &FleetConfig,
    gen: &GenConfig,
    model: DriveModel,
    from_day: u32,
    to_day: u32,
    sampling: &SamplingConfig,
) -> Result<GeneratedMatrix, PipelineError> {
    if sampling.neg_stride == 0 {
        return Err(PipelineError::invalid("neg_stride must be at least 1"));
    }
    let features = base_features(model);
    let names: Vec<String> = features.iter().map(FeatureId::name).collect();
    let mwi_feature = FeatureId::normalized(SmartAttribute::Mwi);
    let internal = || {
        PipelineError::invalid("generation passes disagree: streamed source is nondeterministic")
    };

    // Pass 1 (downsampling only): the label sequence, nothing else.
    let first_pass = match sampling.downsample_ratio {
        None => None,
        Some(ratio) => {
            let mut first_labels: Vec<bool> = Vec::new();
            stream_fleet_batches(config, gen, |batch: DriveBatch| {
                for drive in &batch.drives {
                    fold_drive_samples(drive, model, from_day, to_day, sampling, |_day, label| {
                        first_labels.push(label);
                        Ok::<(), PipelineError>(())
                    })?;
                }
                Ok::<(), PipelineError>(())
            })?;
            if first_labels.is_empty() {
                return Err(PipelineError::invalid(format!(
                    "no samples of model {model} in days {from_day}..={to_day}"
                )));
            }
            let kept = downsample_negatives(&first_labels, ratio, sampling.seed)?;
            let mut keep = vec![false; first_labels.len()];
            for &i in &kept {
                keep[i] = true;
            }
            Some((keep, first_labels))
        }
    };

    // Pass 2: regenerate (bit-identical by construction), keep only the
    // surviving rows, and measure the population census on the way.
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); features.len()];
    let mut labels: Vec<bool> = Vec::new();
    let mut mwi: Vec<f64> = Vec::new();
    let mut summaries: Vec<DriveSummary> = Vec::with_capacity(config.total_drives() as usize);
    let mut cursor = 0usize;
    let stats = stream_fleet_batches(config, gen, |batch: DriveBatch| {
        for drive in &batch.drives {
            summaries.push(drive.summary());
            fold_drive_samples(drive, model, from_day, to_day, sampling, |day, label| {
                let index = cursor;
                cursor += 1;
                if let Some((keep, first_labels)) = &first_pass {
                    match (keep.get(index), first_labels.get(index)) {
                        (Some(kept), Some(first)) if *first == label => {
                            if !kept {
                                return Ok(());
                            }
                        }
                        _ => return Err(internal()),
                    }
                }
                push_row(drive, day, &features, mwi_feature, &mut columns, &mut mwi)?;
                labels.push(label);
                Ok::<(), PipelineError>(())
            })?;
        }
        Ok::<(), PipelineError>(())
    })?;
    if first_pass
        .as_ref()
        .is_some_and(|(keep, _)| cursor != keep.len())
    {
        return Err(internal());
    }

    if labels.is_empty() {
        return Err(PipelineError::invalid(format!(
            "no samples of model {model} in days {from_day}..={to_day}"
        )));
    }
    // `with_missing`: mirrors `base_matrix` — NaN cells from missing-
    // coverage scenarios flow through; clean fleets build identically.
    let matrix =
        FeatureMatrix::from_columns_with_missing(names, columns).map_err(PipelineError::Stats)?;
    Ok(GeneratedMatrix {
        matrix,
        labels,
        mwi,
        census: Census::from_summaries(config.clone(), summaries),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{base_matrix, collect_samples};
    use smart_dataset::csv::{export_smart_csv, import_smart_csv};
    use smart_dataset::{tickets_from_summaries, Fleet, FleetConfig};

    fn fixture() -> (String, Vec<TroubleTicket>, FleetConfig) {
        let config = FleetConfig::builder()
            .days(400)
            .seed(5)
            .drives(DriveModel::Mc1, 30)
            .failure_scale(8.0)
            .build()
            .unwrap();
        let fleet = Fleet::generate(&config);
        let tickets = tickets_from_summaries(&fleet.summaries());
        let mut buf = Vec::new();
        export_smart_csv(&fleet, &mut buf).unwrap();
        (String::from_utf8(buf).unwrap(), tickets, config)
    }

    #[test]
    fn streaming_matches_materialised_path() {
        let (text, tickets, config) = fixture();
        let sampling = SamplingConfig::default();
        let imported = import_smart_csv(text.as_bytes(), &tickets, config).unwrap();
        let samples = collect_samples(&imported, DriveModel::Mc1, 0, 399, &sampling).unwrap();
        let (matrix, labels, mwi) = base_matrix(&imported, DriveModel::Mc1, &samples).unwrap();

        for workers in [1, 4] {
            let ingest = IngestConfig {
                shard_rows: 97,
                workers,
                max_queued_shards: 2,
                ..IngestConfig::default()
            };
            let streamed = streaming_base_matrix(
                text.as_bytes(),
                &tickets,
                DriveModel::Mc1,
                0,
                399,
                &sampling,
                &ingest,
            )
            .unwrap();
            assert_eq!(streamed.labels, labels, "workers={workers}");
            assert_eq!(streamed.mwi, mwi);
            assert_eq!(streamed.matrix.n_rows(), matrix.n_rows());
            assert_eq!(streamed.matrix.n_features(), matrix.n_features());
            for name in matrix.feature_names() {
                let a = matrix.column_index(name).unwrap();
                let b = streamed.matrix.column_index(name).unwrap();
                assert_eq!(matrix.column(a), streamed.matrix.column(b), "{name}");
            }
        }
    }

    #[test]
    fn generated_matches_materialised_path() {
        let config = FleetConfig::builder()
            .days(400)
            .seed(5)
            .drives(DriveModel::Mc1, 30)
            .failure_scale(8.0)
            .build()
            .unwrap();
        let fleet = Fleet::generate(&config);
        for sampling in [
            SamplingConfig::default(),
            SamplingConfig {
                downsample_ratio: None,
                ..SamplingConfig::default()
            },
        ] {
            let samples = collect_samples(&fleet, DriveModel::Mc1, 0, 399, &sampling).unwrap();
            let (matrix, labels, mwi) = base_matrix(&fleet, DriveModel::Mc1, &samples).unwrap();
            let gen = GenConfig {
                chunk_drives: 7,
                workers: 3,
                max_queued_chunks: 2,
                scenario: None,
            };
            let generated =
                generated_base_matrix(&config, &gen, DriveModel::Mc1, 0, 399, &sampling).unwrap();
            let tag = format!("downsample={:?}", sampling.downsample_ratio);
            assert_eq!(generated.labels, labels, "{tag}");
            assert_eq!(generated.mwi, mwi, "{tag}");
            assert_eq!(generated.matrix.n_rows(), matrix.n_rows(), "{tag}");
            for name in matrix.feature_names() {
                let a = matrix.column_index(name).unwrap();
                let b = generated.matrix.column_index(name).unwrap();
                assert_eq!(matrix.column(a), generated.matrix.column(b), "{name}");
            }
            // The measured census rides along: one summary per drive, in
            // agreement with the materialised fleet.
            assert_eq!(generated.census.summaries(), fleet.summaries(), "{tag}");
            assert_eq!(generated.stats.drives, 30);
        }
    }

    #[test]
    fn generated_rejects_absent_model_and_zero_stride() {
        let config = FleetConfig::builder()
            .days(200)
            .seed(5)
            .drives(DriveModel::Mc1, 5)
            .build()
            .unwrap();
        let gen = GenConfig::default();
        let err = generated_base_matrix(
            &config,
            &gen,
            DriveModel::Ma1,
            0,
            199,
            &SamplingConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::InvalidInput { .. }));
        let sampling = SamplingConfig {
            neg_stride: 0,
            ..SamplingConfig::default()
        };
        assert!(generated_base_matrix(&config, &gen, DriveModel::Mc1, 0, 199, &sampling).is_err());
    }

    #[test]
    fn absent_model_is_an_error() {
        let (text, tickets, _config) = fixture();
        let err = streaming_base_matrix(
            text.as_bytes(),
            &tickets,
            DriveModel::Ma1,
            0,
            399,
            &SamplingConfig::default(),
            &IngestConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::InvalidInput { .. }));
    }

    #[test]
    fn zero_stride_is_rejected() {
        let (text, tickets, _config) = fixture();
        let sampling = SamplingConfig {
            neg_stride: 0,
            ..SamplingConfig::default()
        };
        assert!(streaming_base_matrix(
            text.as_bytes(),
            &tickets,
            DriveModel::Mc1,
            0,
            399,
            &sampling,
            &IngestConfig::default(),
        )
        .is_err());
    }

    #[test]
    fn csv_errors_pass_through_with_line_numbers() {
        let (text, tickets, _config) = fixture();
        let mut lines: Vec<&str> = text.lines().collect();
        lines[10] = "garbage";
        let corrupt = lines.join("\n");
        let err = streaming_base_matrix(
            corrupt.as_bytes(),
            &tickets,
            DriveModel::Mc1,
            0,
            399,
            &SamplingConfig::default(),
            &IngestConfig {
                shard_rows: 16,
                workers: 2,
                max_queued_shards: 2,
                ..IngestConfig::default()
            },
        )
        .unwrap_err();
        match err {
            PipelineError::Dataset(smart_dataset::DatasetError::ParseCsv { line, .. }) => {
                assert_eq!(line, 11);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
