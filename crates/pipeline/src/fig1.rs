//! Fig. 1 survival census report — the measured (streamed) population's
//! survival rate over `MWI_N`, per model, with the paper's change-point
//! verdict attached (§III-C / Fig. 1 of the paper).
//!
//! This is the golden artifact pinned at a fixed paper-mix seed: the
//! report is fully determined by `(FleetConfig, GenConfig)` because the
//! streaming generator is bit-identical at every chunk-size/worker
//! setting, so `results/census_fig1.json` regenerates byte-identically
//! on any machine (like `flame_quickstart.svg`). The integration golden
//! test recomputes it in-process; `bench_gen_stream --out` rewrites it.

use smart_changepoint::survival::SurvivalCurve;
use smart_dataset::gen::stream::GenConfig;
use smart_dataset::{Census, DriveModel, FleetConfig};

use crate::error::PipelineError;

/// Census population of the pinned report: large enough that every model's
/// curve has a populated wear range, small enough that the committed JSON
/// stays compact and CI can regenerate it in seconds on one core.
pub const FIG1_CENSUS_TOTAL: u32 = 2_000;

/// Fixed seed of the pinned report.
pub const FIG1_SEED: u64 = 2021;

/// Minimum drives per MWI bucket before a survival point is reported —
/// keeps the tails of small per-model populations out of the curve.
pub const FIG1_MIN_BUCKET: usize = 5;

/// One survival point: of `total` drives that ended the window at this
/// `MWI_N`, `survivors` never failed.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Point {
    /// Wear bucket (rounded `MWI_N`, 1..=100).
    pub mwi: u32,
    /// Drives whose final `MWI_N` rounds into this bucket.
    pub total: usize,
    /// Of those, drives that survived the whole window.
    pub survivors: usize,
    /// `survivors / total`.
    pub rate: f64,
}

json::impl_to_json!(Fig1Point {
    mwi,
    total,
    survivors,
    rate
});

/// The detected survival change point of one model's curve, when the
/// ±2.5 z-score rule finds one.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1ChangePoint {
    /// `MWI_N` bucket where the survival rate shifts.
    pub mwi_threshold: u32,
    /// BOCPD change probability at that bucket.
    pub probability: f64,
    /// Z-score of that probability against the curve's background.
    pub z_score: f64,
}

json::impl_to_json!(Fig1ChangePoint {
    mwi_threshold,
    probability,
    z_score
});

/// One model's measured survival curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1ModelCurve {
    /// Model name (paper spelling, e.g. `"MC1"`).
    pub model: String,
    /// Drives of this model in the census.
    pub drives: usize,
    /// Of those, drives that failed inside the window.
    pub failures: usize,
    /// Change point detected on the curve, when significant.
    pub change_point: Option<Fig1ChangePoint>,
    /// Survival points, descending `MWI_N` (healthy wear first).
    pub points: Vec<Fig1Point>,
}

json::impl_to_json!(Fig1ModelCurve {
    model,
    drives,
    failures,
    change_point,
    points
});

/// The full Fig. 1 report: the generating parameters plus one curve per
/// model, in paper order.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Report {
    /// Total census drives (paper population mix).
    pub census_total: u32,
    /// Dataset window length in days.
    pub days: u32,
    /// Fleet seed.
    pub seed: u64,
    /// Minimum drives per reported MWI bucket.
    pub min_bucket: usize,
    /// Per-model curves, in paper model order.
    pub models: Vec<Fig1ModelCurve>,
}

json::impl_to_json!(Fig1Report {
    census_total,
    days,
    seed,
    min_bucket,
    models
});

/// The pinned configuration behind `results/census_fig1.json`: the paper's
/// population mix at [`FIG1_CENSUS_TOTAL`] drives, seed [`FIG1_SEED`],
/// default two-year window.
///
/// # Errors
///
/// Returns [`PipelineError::Dataset`] if the preset is invalid (impossible
/// for the pinned constants; surfaced rather than unwrapped so callers
/// stay panic-free).
pub fn fig1_pinned_config() -> Result<FleetConfig, PipelineError> {
    Ok(FleetConfig::proportional(FIG1_CENSUS_TOTAL, FIG1_SEED)?)
}

/// Build the Fig. 1 report from a measured (streamed) census of `config`.
///
/// The result is independent of `gen`'s chunking and worker count — that
/// is the streaming generator's bit-identity guarantee, and the golden
/// test exercises it by regenerating the committed report under a
/// different `GenConfig`.
///
/// # Errors
///
/// Returns [`PipelineError::Dataset`] when generation fails and
/// [`PipelineError::InvalidInput`] when change-point detection rejects a
/// curve (degenerate survival data).
pub fn fig1_report(
    config: &FleetConfig,
    gen: &GenConfig,
    min_bucket: usize,
) -> Result<Fig1Report, PipelineError> {
    let census = Census::measured(config, gen)?;
    fig1_report_from_census(&census, min_bucket)
}

/// Build the Fig. 1 report from an already-measured census — the path the
/// benchmark uses so the paper-scale population is generated once.
///
/// # Errors
///
/// Returns [`PipelineError::InvalidInput`] when change-point detection
/// rejects a curve (degenerate survival data).
pub fn fig1_report_from_census(
    census: &Census,
    min_bucket: usize,
) -> Result<Fig1Report, PipelineError> {
    let config = census.config();
    let mut models = Vec::with_capacity(DriveModel::ALL.len());
    for model in DriveModel::ALL {
        if config.drives_for(model) == 0 {
            continue;
        }
        let summaries: Vec<_> = census.summaries_of_model(model).collect();
        let failures = summaries.iter().filter(|s| s.is_failed()).count();
        let curve = SurvivalCurve::from_drives(
            summaries.iter().map(|s| (s.final_mwi_n, s.is_failed())),
            min_bucket,
        );
        let change_point = curve
            .detect_change_point_default()
            .map_err(|e| PipelineError::invalid(format!("fig1 change point for {model}: {e}")))?
            .map(|cp| Fig1ChangePoint {
                mwi_threshold: cp.mwi_threshold,
                probability: cp.probability,
                z_score: cp.z_score,
            });
        models.push(Fig1ModelCurve {
            model: model.name().to_string(),
            drives: summaries.len(),
            failures,
            change_point,
            points: curve
                .points()
                .iter()
                .map(|p| Fig1Point {
                    mwi: p.mwi,
                    total: p.total,
                    survivors: p.survivors,
                    rate: p.rate,
                })
                .collect(),
        });
    }
    Ok(Fig1Report {
        census_total: config.total_drives(),
        days: config.days(),
        seed: config.seed(),
        min_bucket,
        models,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_independent_of_gen_config() {
        let config = FleetConfig::proportional(400, 7).expect("valid config");
        let a = fig1_report(&config, &GenConfig::default(), 3).expect("report");
        let b = fig1_report(
            &config,
            &GenConfig {
                chunk_drives: 17,
                workers: 3,
                max_queued_chunks: 2,
                scenario: None,
            },
            3,
        )
        .expect("report");
        assert_eq!(a, b);
        assert_eq!(crate::report::to_json(&a), crate::report::to_json(&b));
    }

    #[test]
    fn report_counts_are_consistent() {
        let config = FleetConfig::proportional(400, 7).expect("valid config");
        let report = fig1_report(&config, &GenConfig::default(), 3).expect("report");
        assert_eq!(report.census_total, config.total_drives());
        assert_eq!(report.models.len(), DriveModel::ALL.len());
        let drives: usize = report.models.iter().map(|m| m.drives).sum();
        assert_eq!(drives, config.total_drives() as usize);
        for curve in &report.models {
            assert!(curve.failures <= curve.drives, "{}", curve.model);
            for point in &curve.points {
                assert!(point.total >= 3, "{} bucket {}", curve.model, point.mwi);
                assert!(point.survivors <= point.total);
                let expected = point.survivors as f64 / point.total as f64;
                assert!((point.rate - expected).abs() < 1e-12);
            }
            // Points run healthy-to-worn: descending MWI.
            for pair in curve.points.windows(2) {
                assert!(pair[0].mwi > pair[1].mwi, "{}", curve.model);
            }
        }
    }
}
