//! Drive-level evaluation at fixed recall (§V-A): a drive is flagged at the
//! *first* test day its score crosses the decision threshold; precision /
//! recall / F0.5 are computed over drives, with the threshold chosen so
//! that recall matches the per-model operating point the paper reports.

use crate::error::PipelineError;
use crate::label::SampleRef;
use crate::train::FailurePredictor;
use smart_dataset::{DriveModel, Fleet};

/// The per-drive outcome of scoring one test phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriveScore {
    /// Index of the drive within the fleet's drive list.
    pub drive_index: usize,
    /// Highest score across the drive's test days.
    pub max_score: f64,
    /// Test day on which `max_score` first crosses any given threshold is
    /// derivable; this is the day of the maximum (first occurrence).
    pub peak_day: u32,
    /// Whether the drive actually fails within the evaluation window
    /// (test period plus horizon).
    pub actual: bool,
}

/// Precision / recall / F0.5 with the underlying confusion counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalMetrics {
    /// True positives (drives).
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// `tp / (tp + fp)`.
    pub precision: f64,
    /// `tp / (tp + fn)`.
    pub recall: f64,
    /// F0.5-score (precision weighted twice as heavily as recall).
    pub f_half: f64,
}

json::impl_json!(EvalMetrics {
    tp,
    fp,
    fn_,
    precision,
    recall,
    f_half
});

impl EvalMetrics {
    /// Compute metrics from confusion counts.
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> EvalMetrics {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        EvalMetrics {
            tp,
            fp,
            fn_,
            precision,
            recall,
            f_half: f_beta(precision, recall, 0.5),
        }
    }

    /// Micro-average a set of per-phase or per-model metrics by summing
    /// confusion counts.
    pub fn micro_average<'a, I: IntoIterator<Item = &'a EvalMetrics>>(metrics: I) -> EvalMetrics {
        let (mut tp, mut fp, mut fn_) = (0, 0, 0);
        for m in metrics {
            tp += m.tp;
            fp += m.fp;
            fn_ += m.fn_;
        }
        EvalMetrics::from_counts(tp, fp, fn_)
    }
}

/// The Fβ score. β = 0.5 weighs precision twice as heavily as recall — the
/// paper's operating metric, because decommissioning a healthy drive costs
/// more than missing a failing one.
pub fn f_beta(precision: f64, recall: f64, beta: f64) -> f64 {
    let b2 = beta * beta;
    if precision <= 0.0 && recall <= 0.0 {
        return 0.0;
    }
    (1.0 + b2) * precision * recall / (b2 * precision + recall)
}

/// Score every drive of `model` over the test days `[test_start, test_end]`
/// and reduce to drive-level scores. `horizon` extends the actual-failure
/// window past the phase end (a drive failing a few days after the phase is
/// a correct catch for a 30-day-horizon prediction made inside it).
///
/// # Errors
///
/// Propagates scoring failures; returns [`PipelineError::InvalidInput`]
/// when no drive of the model is observed in the phase.
pub fn score_phase(
    predictor: &FailurePredictor,
    fleet: &Fleet,
    model: DriveModel,
    test_start: u32,
    test_end: u32,
    horizon: u32,
) -> Result<Vec<DriveScore>, PipelineError> {
    let span = telemetry::span!(
        "evaluate",
        model = model.to_string(),
        test_start = test_start,
        test_end = test_end,
        horizon = horizon,
    );
    let mut drive_scores = Vec::new();
    for (drive_index, drive) in fleet.drives().iter().enumerate() {
        if drive.model != model {
            continue;
        }
        // Drives that died before the phase are gone; drives deployed after
        // it are not observable.
        let start = test_start.max(drive.deploy_day);
        let end = test_end.min(drive.last_day());
        if start > end {
            continue;
        }
        let samples: Vec<SampleRef> = (start..=end)
            .map(|day| SampleRef {
                drive_index,
                day,
                label: false, // unused for scoring
            })
            .collect();
        let scores = predictor.score_samples(fleet, &samples)?;
        let (best_idx, best) =
            scores
                .iter()
                .enumerate()
                .fold((0, f64::NEG_INFINITY), |(bi, bv), (i, &v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                });
        let actual = drive
            .failure
            .is_some_and(|f| f.day >= test_start && f.day <= test_end.saturating_add(horizon));
        // Per-drive score distribution: its p50/p90/p99 in the run report
        // (and on /metrics) shows how separated the fleet is long before a
        // threshold is picked.
        telemetry::histogram_observe("evaluate.drive_score", best);
        drive_scores.push(DriveScore {
            drive_index,
            max_score: best,
            peak_day: samples[best_idx].day,
            actual,
        });
    }
    if drive_scores.is_empty() {
        return Err(PipelineError::invalid(format!(
            "no drives of {model} observed in test days {test_start}..={test_end}"
        )));
    }
    span.record("drives", drive_scores.len());
    span.record(
        "actual_failures",
        drive_scores.iter().filter(|s| s.actual).count(),
    );
    Ok(drive_scores)
}

/// Report a confusion outcome to telemetry: one info event plus cumulative
/// confusion counters (their totals across phases are the micro-average
/// numerators).
fn report_confusion(context: &str, metrics: &EvalMetrics, threshold: f64) {
    telemetry::info!(
        "evaluate",
        format!(
            "{context}: precision = {:.3}, recall = {:.3}",
            metrics.precision, metrics.recall
        ),
        tp = metrics.tp,
        fp = metrics.fp,
        fn_ = metrics.fn_,
        precision = metrics.precision,
        recall = metrics.recall,
        f_half = metrics.f_half,
        threshold = threshold,
    );
    telemetry::counter_add("evaluate.tp", metrics.tp as u64);
    telemetry::counter_add("evaluate.fp", metrics.fp as u64);
    telemetry::counter_add("evaluate.fn", metrics.fn_ as u64);
}

/// Choose the highest decision threshold achieving at least `target_recall`
/// and return the resulting metrics. This pins every method to the same
/// per-model recall (the fixed-recall rows of Tables VI/VII) so that
/// precision and F0.5 are comparable across methods.
///
/// # Errors
///
/// Returns [`PipelineError::InvalidInput`] when `scores` is empty, has no
/// actual positives, or `target_recall` is outside `(0, 1]`.
pub fn metrics_at_fixed_recall(
    scores: &[DriveScore],
    target_recall: f64,
) -> Result<(EvalMetrics, f64), PipelineError> {
    if scores.is_empty() {
        return Err(PipelineError::invalid("no drive scores"));
    }
    if !(0.0..=1.0).contains(&target_recall) || target_recall == 0.0 {
        return Err(PipelineError::invalid("target recall must be in (0, 1]"));
    }
    let positives = scores.iter().filter(|s| s.actual).count();
    if positives == 0 {
        return Err(PipelineError::invalid("no failed drives in the phase"));
    }

    // Candidate thresholds: the distinct drive scores, descending. Flagged
    // set = drives with score >= threshold.
    let mut order: Vec<&DriveScore> = scores.iter().collect();
    order.sort_by(|a, b| b.max_score.total_cmp(&a.max_score));

    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < order.len() {
        let threshold = order[i].max_score;
        // Consume the tie group.
        while i < order.len() && order[i].max_score == threshold {
            if order[i].actual {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        let recall = tp as f64 / positives as f64;
        if recall + 1e-12 >= target_recall {
            let metrics = EvalMetrics::from_counts(tp, fp, positives - tp);
            report_confusion("fixed-recall operating point", &metrics, threshold);
            return Ok((metrics, threshold));
        }
    }
    // All drives flagged: recall is 1.0 by construction.
    let metrics = EvalMetrics::from_counts(positives, scores.len() - positives, 0);
    report_confusion("fixed-recall operating point", &metrics, f64::NEG_INFINITY);
    Ok((metrics, f64::NEG_INFINITY))
}

/// Metrics at an explicit decision threshold (flag drives with
/// `score >= threshold`). Unlike [`metrics_at_fixed_recall`] this tolerates
/// score sets without positives — used for per-phase diagnostics once the
/// pooled threshold has been fixed.
pub fn metrics_at_threshold(scores: &[DriveScore], threshold: f64) -> EvalMetrics {
    let mut tp = 0;
    let mut fp = 0;
    let mut fn_ = 0;
    for s in scores {
        let flagged = s.max_score >= threshold;
        match (flagged, s.actual) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let metrics = EvalMetrics::from_counts(tp, fp, fn_);
    report_confusion("explicit threshold", &metrics, threshold);
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(i: usize, score: f64, actual: bool) -> DriveScore {
        DriveScore {
            drive_index: i,
            max_score: score,
            peak_day: 0,
            actual,
        }
    }

    #[test]
    fn f_beta_known_values() {
        assert!((f_beta(1.0, 1.0, 0.5) - 1.0).abs() < 1e-12);
        assert_eq!(f_beta(0.0, 0.0, 0.5), 0.0);
        // F0.5 with P=0.6, R=0.3: 1.25*0.18/(0.15+0.3) = 0.5
        assert!((f_beta(0.6, 0.3, 0.5) - 0.5).abs() < 1e-12);
        // F0.5 weighs precision more: P=0.8,R=0.2 beats P=0.2,R=0.8.
        assert!(f_beta(0.8, 0.2, 0.5) > f_beta(0.2, 0.8, 0.5));
    }

    #[test]
    fn fixed_recall_picks_minimal_flag_set() {
        let scores = vec![
            ds(0, 0.9, true),
            ds(1, 0.8, false),
            ds(2, 0.7, true),
            ds(3, 0.6, false),
            ds(4, 0.5, true),
            ds(5, 0.4, false),
        ];
        // Target recall 2/3: threshold lands at 0.7 -> tp=2, fp=1.
        let (m, threshold) = metrics_at_fixed_recall(&scores, 0.66).unwrap();
        assert_eq!(threshold, 0.7);
        assert_eq!((m.tp, m.fp, m.fn_), (2, 1, 1));
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-9);
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_separation_gives_perfect_precision() {
        let scores = vec![
            ds(0, 0.9, true),
            ds(1, 0.8, true),
            ds(2, 0.1, false),
            ds(3, 0.2, false),
        ];
        let (m, _) = metrics_at_fixed_recall(&scores, 1.0).unwrap();
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f_half, 1.0);
    }

    #[test]
    fn recall_one_always_achievable() {
        let scores = vec![ds(0, 0.1, true), ds(1, 0.9, false)];
        let (m, _) = metrics_at_fixed_recall(&scores, 1.0).unwrap();
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.fp, 1);
    }

    #[test]
    fn ties_are_flagged_together() {
        let scores = vec![
            ds(0, 0.5, true),
            ds(1, 0.5, false),
            ds(2, 0.5, false),
            ds(3, 0.1, true),
        ];
        let (m, threshold) = metrics_at_fixed_recall(&scores, 0.5).unwrap();
        assert_eq!(threshold, 0.5);
        assert_eq!((m.tp, m.fp), (1, 2));
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(metrics_at_fixed_recall(&[], 0.5).is_err());
        let no_pos = vec![ds(0, 0.5, false)];
        assert!(metrics_at_fixed_recall(&no_pos, 0.5).is_err());
        let ok = vec![ds(0, 0.5, true)];
        assert!(metrics_at_fixed_recall(&ok, 0.0).is_err());
        assert!(metrics_at_fixed_recall(&ok, 1.5).is_err());
    }

    #[test]
    fn threshold_metrics_tolerate_no_positives() {
        let scores = vec![ds(0, 0.9, false), ds(1, 0.2, false)];
        let m = metrics_at_threshold(&scores, 0.5);
        assert_eq!((m.tp, m.fp, m.fn_), (0, 1, 0));
        let m = metrics_at_threshold(&[], 0.5);
        assert_eq!((m.tp, m.fp, m.fn_), (0, 0, 0));
    }

    #[test]
    fn threshold_metrics_match_fixed_recall_at_same_threshold() {
        let scores = vec![
            ds(0, 0.9, true),
            ds(1, 0.8, false),
            ds(2, 0.7, true),
            ds(3, 0.6, false),
        ];
        let (fixed, threshold) = metrics_at_fixed_recall(&scores, 1.0).unwrap();
        let at = metrics_at_threshold(&scores, threshold);
        assert_eq!(fixed, at);
    }

    #[test]
    fn micro_average_sums_counts() {
        let a = EvalMetrics::from_counts(2, 1, 2);
        let b = EvalMetrics::from_counts(3, 2, 1);
        let m = EvalMetrics::micro_average([&a, &b]);
        assert_eq!((m.tp, m.fp, m.fn_), (5, 3, 3));
        assert!((m.precision - 5.0 / 8.0).abs() < 1e-12);
        assert!((m.recall - 5.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn from_counts_handles_zeroes() {
        let m = EvalMetrics::from_counts(0, 0, 0);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f_half, 0.0);
    }
}
