//! Sample labeling: a drive-day is positive when the drive fails within the
//! prediction horizon (30 days in the paper, §II-B).

use smart_dataset::DriveRecord;

/// The paper's prediction horizon in days.
pub const PAPER_HORIZON_DAYS: u32 = 30;

/// A reference to one drive-day sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRef {
    /// Index of the drive within the fleet's drive list.
    pub drive_index: usize,
    /// Dataset day of the sample.
    pub day: u32,
    /// Failure-within-horizon label.
    pub label: bool,
}

/// Whether the drive-day `(drive, day)` is a positive sample for `horizon`:
/// the drive fails at most `horizon` days later (and has not failed yet).
pub fn is_positive(drive: &DriveRecord, day: u32, horizon: u32) -> bool {
    match drive.failure {
        Some(f) => day <= f.day && f.day - day <= horizon,
        None => false,
    }
}

/// Iterate all labeled drive-days of one drive within `[from_day, to_day]`
/// (inclusive), clipped to the drive's observation window.
pub fn labeled_days<'a>(
    drive: &'a DriveRecord,
    drive_index: usize,
    from_day: u32,
    to_day: u32,
    horizon: u32,
) -> impl Iterator<Item = SampleRef> + 'a {
    let start = from_day.max(drive.deploy_day);
    let end = to_day.min(drive.last_day());
    (start..=end.max(start))
        .filter(move |&d| d <= end)
        .map(move |day| SampleRef {
            drive_index,
            day,
            label: is_positive(drive, day, horizon),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_dataset::{DriveModel, Fleet, FleetConfig};

    fn fleet() -> Fleet {
        let config = FleetConfig::builder()
            .days(400)
            .seed(11)
            .drives(DriveModel::Mc1, 40)
            .failure_scale(8.0)
            .build()
            .unwrap();
        Fleet::generate(&config)
    }

    #[test]
    fn positive_window_is_horizon_before_failure() {
        let fleet = fleet();
        let failed = fleet
            .drives()
            .iter()
            .find(|d| d.is_failed() && d.failure.unwrap().day > d.deploy_day + 60)
            .expect("some failure");
        let f_day = failed.failure.unwrap().day;
        assert!(is_positive(failed, f_day, 30));
        assert!(is_positive(failed, f_day.saturating_sub(30), 30));
        assert!(!is_positive(failed, f_day.saturating_sub(31), 30));
    }

    #[test]
    fn healthy_drive_is_never_positive() {
        let fleet = fleet();
        let healthy = fleet.drives().iter().find(|d| !d.is_failed()).unwrap();
        for day in healthy.deploy_day..=healthy.last_day() {
            assert!(!is_positive(healthy, day, 30));
        }
    }

    #[test]
    fn labeled_days_clip_to_observation() {
        let fleet = fleet();
        let drive = &fleet.drives()[0];
        let samples: Vec<SampleRef> = labeled_days(drive, 0, 0, 10_000, 30).collect();
        assert_eq!(samples.len() as u32, drive.n_days());
        assert_eq!(samples[0].day, drive.deploy_day);
        assert_eq!(samples.last().unwrap().day, drive.last_day());
    }

    #[test]
    fn labeled_days_respect_range() {
        let fleet = fleet();
        let drive = fleet
            .drives()
            .iter()
            .find(|d| d.deploy_day == 0 && d.n_days() > 100)
            .unwrap();
        let samples: Vec<SampleRef> = labeled_days(drive, 3, 50, 59, 30).collect();
        assert_eq!(samples.len(), 10);
        assert!(samples.iter().all(|s| (50..=59).contains(&s.day)));
        assert!(samples.iter().all(|s| s.drive_index == 3));
    }

    #[test]
    fn positive_count_matches_horizon() {
        let fleet = fleet();
        for drive in fleet.drives().iter().filter(|d| d.is_failed()) {
            let f_day = drive.failure.unwrap().day;
            let positives = labeled_days(drive, 0, 0, 10_000, 30)
                .filter(|s| s.label)
                .count() as u32;
            let expected = (f_day - drive.deploy_day + 1).min(31);
            assert_eq!(positives, expected, "drive {}", drive.id);
        }
    }
}
