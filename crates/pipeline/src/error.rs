//! Error type for the prediction pipeline.

use smart_dataset::DatasetError;
use smart_stats::StatsError;
use smart_trees::TreesError;
use std::fmt;
use wefr_core::WefrError;

/// Errors produced by the failure-prediction pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// Dataset-layer failure.
    Dataset(DatasetError),
    /// Statistics-layer failure.
    Stats(StatsError),
    /// Tree-learner failure.
    Trees(TreesError),
    /// Feature-selection failure.
    Wefr(WefrError),
    /// The pipeline was asked to run on degenerate data.
    InvalidInput {
        /// Description of the violation.
        message: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Dataset(e) => write!(f, "dataset error: {e}"),
            PipelineError::Stats(e) => write!(f, "statistics error: {e}"),
            PipelineError::Trees(e) => write!(f, "tree learner error: {e}"),
            PipelineError::Wefr(e) => write!(f, "feature selection error: {e}"),
            PipelineError::InvalidInput { message } => write!(f, "invalid input: {message}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Dataset(e) => Some(e),
            PipelineError::Stats(e) => Some(e),
            PipelineError::Trees(e) => Some(e),
            PipelineError::Wefr(e) => Some(e),
            PipelineError::InvalidInput { .. } => None,
        }
    }
}

impl From<DatasetError> for PipelineError {
    fn from(e: DatasetError) -> Self {
        PipelineError::Dataset(e)
    }
}

impl From<StatsError> for PipelineError {
    fn from(e: StatsError) -> Self {
        PipelineError::Stats(e)
    }
}

impl From<TreesError> for PipelineError {
    fn from(e: TreesError) -> Self {
        PipelineError::Trees(e)
    }
}

impl From<WefrError> for PipelineError {
    fn from(e: WefrError) -> Self {
        PipelineError::Wefr(e)
    }
}

impl PipelineError {
    /// Shorthand for [`PipelineError::InvalidInput`].
    pub fn invalid(message: impl Into<String>) -> Self {
        PipelineError::InvalidInput {
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = PipelineError::from(StatsError::empty("mean"));
        assert!(e.to_string().contains("mean"));
        assert!(e.source().is_some());
        assert!(PipelineError::invalid("x").source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PipelineError>();
    }
}
