#![forbid(unsafe_code)]
//! End-to-end SSD failure-prediction pipeline (§II-B / §V-A of the paper):
//! from a simulated fleet's SMART logs to precision/recall/F0.5 at a fixed
//! per-model recall.
//!
//! The stages mirror the paper's offline workflow:
//!
//! 1. **Labeling** ([`label`]) — a drive-day is positive when the drive
//!    fails within the next 30 days.
//! 2. **Sampling & matrices** ([`matrix`]) — positives kept, negatives
//!    strided and downsampled; base matrices for feature selection and
//!    expanded matrices for learning.
//! 3. **Feature generation** ([`features`]) — each base feature expands to
//!    13 learning features (current value + 6 statistics × 2 windows).
//! 4. **Splits** ([`split`]) — test months 22/23/24, trained on everything
//!    before, 8:2 train/validation by day.
//! 5. **Training** ([`train`]) — Random Forest, 100 trees, depth 13.
//! 6. **Evaluation** ([`evaluate`]) — drive-level first-prediction scoring
//!    at the paper's fixed per-model recall; F0.5 as the headline metric.
//! 7. **Experiments** ([`experiment`]) — the method matrix of Tables VI and
//!    VII: no selection, five selectors (fixed or validation-tuned
//!    percentage), WEFR, and WEFR without wear-out updating.
//!
//! # Example
//!
//! ```no_run
//! use smart_dataset::{DriveModel, Fleet, FleetConfig};
//! use smart_pipeline::experiment::{run_method, ExperimentConfig, Method};
//!
//! # fn main() -> Result<(), smart_pipeline::PipelineError> {
//! let fleet = Fleet::generate(&FleetConfig::balanced(250, 42).expect("valid config"));
//! let result = run_method(
//!     &fleet,
//!     DriveModel::Mc1,
//!     Method::Wefr,
//!     &ExperimentConfig::default(),
//! )?;
//! println!("MC1 WEFR: P={:.2} F0.5={:.2}", result.overall.precision, result.overall.f_half);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod evaluate;
pub mod experiment;
pub mod features;
pub mod fig1;
pub mod label;
pub mod matrix;
pub mod report;
pub mod split;
pub mod streaming;
pub mod train;

pub use error::PipelineError;
pub use evaluate::{metrics_at_fixed_recall, score_phase, DriveScore, EvalMetrics};
pub use experiment::{
    paper_target_recall, run_method, ExperimentConfig, Method, MethodResult, SelectorKind,
};
pub use fig1::{
    fig1_pinned_config, fig1_report, fig1_report_from_census, Fig1ModelCurve, Fig1Report,
    FIG1_CENSUS_TOTAL, FIG1_MIN_BUCKET, FIG1_SEED,
};
pub use label::{SampleRef, PAPER_HORIZON_DAYS};
pub use matrix::{base_features, base_matrix, collect_samples, survival_pairs, SamplingConfig};
pub use split::{paper_phases, Phase};
pub use streaming::{
    generated_base_matrix, streaming_base_matrix, GeneratedMatrix, StreamedMatrix,
};
pub use train::{FailurePredictor, PredictorConfig};
