#![forbid(unsafe_code)]
//! The `smart-serve` daemon binary.
//!
//! ```text
//! smart-serve --smoke
//! smart-serve <smart.csv> [tickets.csv]
//! ```
//!
//! `--smoke` runs the deterministic CI transcript: generate a fixed-seed
//! fleet in memory, replay it through the daemon, open the listener on an
//! ephemeral port, drive a scripted query session, and print every
//! request and response to stdout. CI diffs the output against
//! `results/serve_smoke.txt`, so the transcript must not contain clocks,
//! ports, or machine-dependent values.
//!
//! The file mode ingests a SMART-log CSV (plus an optional trouble-ticket
//! CSV as written by `export_tickets_csv`), replays it to the end, and
//! serves queries on `WEFR_SERVE_ADDR` (default `127.0.0.1:9185`) until
//! stdin reaches EOF. `WEFR_SERVE_PERIOD_DAYS` overrides the update
//! cadence; `WEFR_SERVE_MODEL` picks the model (default MC1).

use std::io::{BufRead, BufReader, Cursor};
use std::process::ExitCode;

use serve::daemon::{CycleReport, Daemon, ServeConfig, ENV_SERVE_ADDR};
use serve::listener;
use smart_dataset::csv::{export_smart_csv, import_tickets_csv};
use smart_dataset::{
    tickets_from_summaries, DriveModel, DriveRecord, Fleet, FleetConfig, IngestConfig,
    TroubleTicket,
};
use sync::{Arc, Mutex};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("--smoke") => smoke(),
        Some(csv_path) => file_mode(csv_path, args.get(1).map(String::as_str)),
        None => {
            eprintln!("usage: smart-serve --smoke | smart-serve <smart.csv> [tickets.csv]");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ERROR: {message}");
            ExitCode::FAILURE
        }
    }
}

/// The fixed-seed fleet the smoke transcript replays.
fn smoke_fleet() -> Result<Fleet, String> {
    let config = FleetConfig::builder()
        .days(160)
        .seed(11)
        .drives(DriveModel::Mc1, 32)
        .failure_scale(8.0)
        .build()
        .map_err(|e| e.to_string())?;
    Ok(Fleet::generate(&config))
}

/// The smoke daemon configuration: short cadence, small forest, one
/// training thread — determinism over speed, speed over realism.
fn smoke_config() -> ServeConfig {
    let mut config = ServeConfig::from_env();
    config.period_days = 14;
    config.predictor.n_trees = 20;
    config.predictor.max_depth = 6;
    config.predictor.seed = 1;
    config.predictor.n_threads = Some(1);
    config
}

fn print_cycles(reports: &[CycleReport]) {
    for r in reports {
        match (&r.skipped, r.decision) {
            (Some(reason), _) => println!("cycle day={} skipped ({reason})", r.day),
            (None, decision) => println!(
                "cycle day={} decision={:?} threshold={} reselected={}",
                r.day,
                decision,
                r.threshold
                    .map_or_else(|| "none".to_string(), |t| t.to_string()),
                r.reselected
            ),
        }
    }
}

fn smoke() -> Result<(), String> {
    let fleet = smoke_fleet()?;
    let mut csv = Vec::new();
    export_smart_csv(&fleet, &mut csv).map_err(|e| e.to_string())?;
    let summaries: Vec<_> = fleet.drives().iter().map(DriveRecord::summary).collect();
    let tickets = tickets_from_summaries(&summaries);
    let last = fleet
        .drives()
        .iter()
        .map(DriveRecord::last_day)
        .max()
        .ok_or("empty smoke fleet")?;

    let mut daemon = Daemon::new(smoke_config());
    let stats = daemon
        .ingest_csv(Cursor::new(csv), &tickets, &IngestConfig::from_env())
        .map_err(|e| e.to_string())?;
    println!("ingested drives={} rows={}", stats.drives, stats.rows);
    let reports = daemon.advance_to(last).map_err(|e| e.to_string())?;
    print_cycles(&reports);

    let daemon = Arc::new(Mutex::new(daemon));
    let server = listener::start("127.0.0.1:0", Arc::clone(&daemon), "serve-smoke")
        .map_err(|e| format!("binding smoke listener: {e}"))?;
    let script = [
        "STATUS",
        "FEATURES",
        "SCORE drive-000000",
        "SCORE drive-999999",
        "BOGUS",
        "QUIT",
    ];
    let responses = listener::query_session(server.addr(), &script).map_err(|e| e.to_string())?;
    for (command, response) in script.iter().zip(&responses) {
        println!("> {command}");
        println!("{response}");
    }
    let (status, body) = listener::http_get(server.addr(), "/report").map_err(|e| e.to_string())?;
    if !status.contains("200") {
        return Err(format!("GET /report answered {status}"));
    }
    let report: telemetry::RunReport =
        json::from_str(&body).map_err(|e| format!("parsing /report body: {e}"))?;
    report
        .validate_tree()
        .map_err(|e| format!("inconsistent /report span tree: {e}"))?;
    // Durations and counters are machine-dependent; only the verdict is
    // part of the transcript.
    println!("report ok");
    server.stop();
    Ok(())
}

fn file_mode(csv_path: &str, tickets_path: Option<&str>) -> Result<(), String> {
    let mut config = ServeConfig::from_env();
    if let Ok(name) = std::env::var("WEFR_SERVE_MODEL") {
        config.model = DriveModel::from_name(&name)
            .ok_or_else(|| format!("unknown model {name:?} in WEFR_SERVE_MODEL"))?;
    }
    let tickets: Vec<TroubleTicket> = match tickets_path {
        Some(path) => {
            let file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
            import_tickets_csv(BufReader::new(file)).map_err(|e| e.to_string())?
        }
        None => Vec::new(),
    };
    let file = std::fs::File::open(csv_path).map_err(|e| format!("opening {csv_path}: {e}"))?;
    let mut daemon = Daemon::new(config);
    let stats = daemon
        .ingest_csv(BufReader::new(file), &tickets, &IngestConfig::from_env())
        .map_err(|e| e.to_string())?;
    eprintln!(
        "ingested drives={} rows={} (model {})",
        stats.drives,
        stats.rows,
        daemon.config().model
    );
    let last = daemon.last_observed_day().unwrap_or(0);
    let reports = daemon.advance_to(last).map_err(|e| e.to_string())?;
    print_cycles(&reports);

    let addr = std::env::var(ENV_SERVE_ADDR).unwrap_or_else(|_| "127.0.0.1:9185".to_string());
    let daemon = Arc::new(Mutex::new(daemon));
    let server = listener::start(&addr, daemon, "serve")
        .map_err(|e| format!("binding listener on {addr}: {e}"))?;
    eprintln!("serving on {} — EOF on stdin stops", server.addr());
    // Block until the operator closes stdin; the listener thread answers
    // queries in the background.
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    server.stop();
    Ok(())
}
