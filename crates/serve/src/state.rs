//! Incremental per-drive window state: the serving-side replacement for
//! re-expanding a drive's history on every score request.

use smart_dataset::{DriveRecord, FeatureId};
use smart_pipeline::features::WINDOW_WIDTHS;
use smart_stats::window::IncrementalWindow;

use crate::error::ServeError;

/// One tracked drive: its record plus one [`IncrementalWindow`] per
/// `(base feature, window width)` pair, fed day by day as the daemon's
/// replay cursor advances.
///
/// The windows cover *all* base features of the drive's model, not just
/// the currently selected ones — a re-selection changes which columns a
/// score reads, and must not force a window rebuild over drive history.
#[derive(Debug, Clone)]
pub struct DriveState {
    record: DriveRecord,
    /// Windows indexed `[feature × WINDOW_WIDTHS.len() + width]`, in the
    /// order of the base-feature list the daemon was built with.
    windows: Vec<IncrementalWindow>,
    /// The last day fed into the windows, if any.
    fed_through: Option<u32>,
}

impl DriveState {
    /// Track `record`, with empty windows for every base feature.
    ///
    /// # Errors
    ///
    /// Propagates [`IncrementalWindow::new`] errors (zero widths — the
    /// pipeline's widths are compile-time nonzero).
    pub fn new(record: DriveRecord, base: &[FeatureId]) -> Result<Self, ServeError> {
        let mut windows = Vec::with_capacity(base.len() * WINDOW_WIDTHS.len());
        for _ in base {
            for w in WINDOW_WIDTHS {
                windows.push(
                    IncrementalWindow::new(w as usize).map_err(|e| {
                        ServeError::Pipeline(smart_pipeline::PipelineError::Stats(e))
                    })?,
                );
            }
        }
        Ok(DriveState {
            record,
            windows,
            fed_through: None,
        })
    }

    /// The underlying record.
    pub fn record(&self) -> &DriveRecord {
        &self.record
    }

    /// Feed `day`'s measurements into the windows. Days the drive is not
    /// observed on (before deployment, after failure/retirement) are
    /// no-ops, matching the batch path's truncated trailing windows.
    pub fn feed(&mut self, day: u32, base: &[FeatureId]) {
        if !self.record.observed_on(day) {
            return;
        }
        for (i, f) in base.iter().enumerate() {
            // Unreported attributes cannot occur: `base` is derived from
            // the drive's own model. A missing value would be a NaN cell.
            let v = self.record.value_on(day, *f).unwrap_or(f64::NAN);
            for (j, _) in WINDOW_WIDTHS.iter().enumerate() {
                if let Some(w) = self.windows.get_mut(i * WINDOW_WIDTHS.len() + j) {
                    w.push(v);
                }
            }
        }
        self.fed_through = Some(day);
    }

    /// The expanded feature row (current value + six statistics per
    /// window width, in [`smart_pipeline::features::expanded_feature_names`]
    /// order) for the `selected` base features on `day`, read from the
    /// incremental windows.
    ///
    /// `selected` must be a subset of the base list the state was built
    /// with; `indices` maps each selected feature to its position there.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::NotReady`] when the drive is not observed on
    /// `day` or the windows have not been fed through `day` yet.
    pub fn expanded_row(
        &self,
        day: u32,
        selected_indices: &[usize],
        base: &[FeatureId],
    ) -> Result<Vec<f64>, ServeError> {
        if !self.record.observed_on(day) {
            return Err(ServeError::not_ready(format!(
                "drive {} is not observed on day {day} (last day {})",
                self.record.id,
                self.record.last_day()
            )));
        }
        if self.fed_through != Some(day) {
            return Err(ServeError::not_ready(format!(
                "drive {} windows are fed through {:?}, not day {day}",
                self.record.id, self.fed_through
            )));
        }
        let width_count = WINDOW_WIDTHS.len();
        let mut row = Vec::with_capacity(selected_indices.len() * (1 + 6 * width_count));
        for &i in selected_indices {
            let f = base.get(i).copied().ok_or_else(|| {
                ServeError::not_ready(format!("selected feature index {i} out of range"))
            })?;
            row.push(self.record.value_on(day, f).unwrap_or(f64::NAN));
            for j in 0..width_count {
                let stats = self
                    .windows
                    .get(i * width_count + j)
                    .ok_or_else(|| {
                        ServeError::not_ready(format!("window index {i}×{j} out of range"))
                    })?
                    .stats()
                    .map_err(|e| ServeError::Pipeline(smart_pipeline::PipelineError::Stats(e)))?;
                row.extend_from_slice(&stats.to_array());
            }
        }
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_dataset::{DriveModel, Fleet, FleetConfig};
    use smart_pipeline::base_features;
    use smart_pipeline::features::expand_sample;

    fn drive() -> DriveRecord {
        let config = FleetConfig::builder()
            .days(150)
            .seed(9)
            .drives(DriveModel::Mc1, 1)
            .build()
            .unwrap();
        Fleet::generate(&config).drives()[0].clone()
    }

    #[test]
    fn incremental_row_matches_batch_expansion() {
        let d = drive();
        let base = base_features(d.model);
        let mut state = DriveState::new(d.clone(), &base).unwrap();
        let all: Vec<usize> = (0..base.len()).collect();
        for day in d.deploy_day..=d.last_day() {
            state.feed(day, &base);
            let row = state.expanded_row(day, &all, &base).unwrap();
            let batch = expand_sample(&d, day, &base).unwrap();
            assert_eq!(row.len(), batch.len());
            for (a, b) in row.iter().zip(&batch) {
                assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                    "day {day}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn unobserved_day_is_not_ready() {
        let d = drive();
        let base = base_features(d.model);
        let last = d.last_day();
        let mut state = DriveState::new(d, &base).unwrap();
        let all: Vec<usize> = (0..base.len()).collect();
        state.feed(last, &base);
        assert!(state.expanded_row(last + 1, &all, &base).is_err());
        // Feeding past the record's end changes nothing.
        state.feed(last + 1, &base);
        assert!(state.expanded_row(last, &all, &base).is_ok());
    }
}
