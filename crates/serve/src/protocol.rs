//! The line protocol: one request per line, one response block per
//! request, each block terminated by a blank line.
//!
//! Grammar (case-insensitive command word):
//!
//! ```text
//! SCORE <drive>    drive = "drive-000042" or bare "42"
//! FEATURES
//! STATUS
//! QUIT
//! ```
//!
//! Responses are deterministic text: `ok`-prefixed payload lines on
//! success, a single `ERR <message>` line on failure. Scores print with
//! `{:.9}` — enough digits to expose any nondeterminism in CI transcript
//! diffs while keeping the golden file stable across formatting quirks.

use smart_dataset::DriveId;

use crate::daemon::Daemon;

/// A parsed line-protocol request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Score one drive on the current day.
    Score(DriveId),
    /// List the selected base-feature names.
    Features,
    /// Daemon status.
    Status,
    /// Close the connection.
    Quit,
}

/// Parse one request line.
///
/// # Errors
///
/// Returns the `ERR` message for unknown commands or malformed drive ids.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_whitespace();
    let command = words.next().ok_or_else(|| "empty request".to_string())?;
    let arg = words.next();
    if words.next().is_some() {
        return Err(format!("too many arguments for {command}"));
    }
    match (command.to_ascii_uppercase().as_str(), arg) {
        ("SCORE", Some(drive)) => parse_drive_id(drive).map(Request::Score),
        ("SCORE", None) => Err("SCORE needs a drive id".to_string()),
        ("FEATURES", None) => Ok(Request::Features),
        ("STATUS", None) => Ok(Request::Status),
        ("QUIT", None) => Ok(Request::Quit),
        (other, _) => Err(format!("unknown command {other}")),
    }
}

/// Parse `drive-000042` or bare `42`.
fn parse_drive_id(text: &str) -> Result<DriveId, String> {
    let digits = text.strip_prefix("drive-").unwrap_or(text);
    digits
        .parse::<u32>()
        .map(DriveId)
        .map_err(|_| format!("bad drive id {text}"))
}

/// Answer a request against the daemon. Every response is a list of
/// lines; the listener adds the terminating blank line.
pub fn respond(daemon: &Daemon, request: Request) -> Vec<String> {
    match request {
        Request::Score(id) => match daemon.score(id) {
            Ok(score) => vec![format!("ok score {id} {score:.9}")],
            Err(e) => vec![format!("ERR {e}")],
        },
        Request::Features => match daemon.features() {
            Ok(names) => {
                let mut lines = vec![format!("ok features {}", names.len())];
                lines.extend(names.iter().cloned());
                lines
            }
            Err(e) => vec![format!("ERR {e}")],
        },
        Request::Status => {
            let mut lines = vec!["ok status".to_string()];
            lines.extend(daemon.status_lines());
            lines
        }
        Request::Quit => vec!["ok bye".to_string()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::ServeConfig;

    #[test]
    fn parses_each_command() {
        assert_eq!(
            parse_request("SCORE drive-000042"),
            Ok(Request::Score(DriveId(42)))
        );
        assert_eq!(parse_request("score 7"), Ok(Request::Score(DriveId(7))));
        assert_eq!(parse_request("FEATURES"), Ok(Request::Features));
        assert_eq!(parse_request("  status "), Ok(Request::Status));
        assert_eq!(parse_request("quit"), Ok(Request::Quit));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("").is_err());
        assert!(parse_request("SCORE").is_err());
        assert!(parse_request("SCORE drive-xyz").is_err());
        assert!(parse_request("STATUS now").is_err());
        assert!(parse_request("PING").is_err());
    }

    #[test]
    fn empty_daemon_answers_every_request() {
        let daemon = Daemon::new(ServeConfig::default());
        assert!(respond(&daemon, Request::Score(DriveId(1)))[0].starts_with("ERR "));
        assert!(respond(&daemon, Request::Features)[0].starts_with("ERR "));
        let status = respond(&daemon, Request::Status);
        assert_eq!(status[0], "ok status");
        assert!(status.contains(&"selection none".to_string()));
        assert_eq!(respond(&daemon, Request::Quit), vec!["ok bye".to_string()]);
    }
}
