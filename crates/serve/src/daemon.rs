//! The daemon core: replay cursor, update cycle, and query handlers.
//!
//! The daemon is deliberately socket-free — [`crate::listener`] owns the
//! TCP side and calls in here under a lock. Everything below is pure
//! state machine, which is what makes the golden-transcript CI smoke and
//! the worker-count determinism test possible.

use std::collections::BTreeMap;
use std::io::BufRead;

use smart_dataset::{
    stream_drive_batches, DriveBatch, DriveId, DriveModel, Fleet, FleetConfig, IngestConfig,
    IngestStats, TroubleTicket,
};
use smart_pipeline::{
    base_features, base_matrix, collect_samples, survival_pairs, FailurePredictor, PredictorConfig,
    SamplingConfig,
};
use wefr_core::wearout::detect_wearout_threshold;
use wefr_core::{SelectionInput, UpdateDecision, UpdateMonitor, Wefr, WefrConfig, WefrError};

use crate::error::ServeError;
use crate::state::DriveState;

/// Environment knob overriding the update-cycle cadence in days.
pub const ENV_SERVE_PERIOD_DAYS: &str = "WEFR_SERVE_PERIOD_DAYS";

/// Environment knob naming the listen address (used by the binary; the
/// library never reads it).
pub const ENV_SERVE_ADDR: &str = "WEFR_SERVE_ADDR";

/// Daemon configuration: which model to serve and how the update cycle,
/// sampling, selection, and predictor behave.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The drive model this daemon tracks (one daemon per model, as the
    /// paper trains per-model predictors).
    pub model: DriveModel,
    /// Days between scheduled change-point checks (paper: 7).
    pub period_days: u32,
    /// Threshold moves of at most this many MWI points are noise.
    pub tolerance: u32,
    /// Sampling policy for cycle training sets.
    pub sampling: SamplingConfig,
    /// Failure-predictor training configuration.
    pub predictor: PredictorConfig,
    /// WEFR selection configuration.
    pub wefr: WefrConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            model: DriveModel::Mc1,
            period_days: 7,
            tolerance: 1,
            sampling: SamplingConfig::default(),
            predictor: PredictorConfig::default(),
            wefr: WefrConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Default configuration with [`ENV_SERVE_PERIOD_DAYS`] applied from
    /// `get` (mirrors [`IngestConfig::from_lookup`]).
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> ServeConfig {
        let mut config = ServeConfig::default();
        if let Some(days) = get(ENV_SERVE_PERIOD_DAYS)
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&v| v > 0)
        {
            config.period_days = days;
        }
        config
    }

    /// [`ServeConfig::from_lookup`] over the process environment.
    pub fn from_env() -> ServeConfig {
        // lint:allow(side-effects) the documented contract of this
        // constructor is reading the WEFR_SERVE_PERIOD_DAYS knob;
        // everything else must take the config as a parameter
        ServeConfig::from_lookup(|name| std::env::var(name).ok())
    }
}

/// What one scheduled update cycle did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleReport {
    /// The day the cycle ran on.
    pub day: u32,
    /// The change-point check's outcome, when the cycle had enough data
    /// to run one (`None` = skipped, see `skipped`).
    pub decision: Option<UpdateDecision>,
    /// The wear-out threshold detected this cycle, if any.
    pub threshold: Option<u32>,
    /// Whether feature selection and predictor training re-ran.
    pub reselected: bool,
    /// Why the cycle was skipped without recording a check (insufficient
    /// labeled data). A skipped cycle leaves the monitor due, so the
    /// daemon retries on the next day.
    pub skipped: Option<String>,
}

/// The product of a re-selection: what to score with until the next one.
#[derive(Debug)]
struct SelectionState {
    /// Indices of the selected base features in the daemon's base list.
    selected_indices: Vec<usize>,
    /// Names of the selected base features, best first.
    selected_names: Vec<String>,
    /// Predictor trained on the selected features.
    predictor: FailurePredictor,
    /// The day the selection ran.
    selected_at_day: u32,
    /// The wear-out threshold the selection acted upon.
    threshold: Option<u32>,
}

/// The continuous-selection daemon: tracked drives, replay cursor, update
/// monitor, and the active selection.
#[derive(Debug)]
pub struct Daemon {
    config: ServeConfig,
    base: Vec<smart_dataset::FeatureId>,
    drives: BTreeMap<DriveId, DriveState>,
    day: Option<u32>,
    monitor: UpdateMonitor,
    /// Last day a cycle was *attempted* (recorded or skipped). Skipped
    /// checks never reach the monitor, so without this a data-starved
    /// daemon would retry daily instead of on the configured cadence.
    last_attempt_day: Option<u32>,
    selection: Option<SelectionState>,
}

impl Daemon {
    /// A daemon with no drives and no selection.
    pub fn new(config: ServeConfig) -> Self {
        let base = base_features(config.model);
        let monitor = UpdateMonitor::new(config.period_days, config.tolerance);
        Daemon {
            config,
            base,
            drives: BTreeMap::new(),
            day: None,
            monitor,
            last_attempt_day: None,
            selection: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The replay cursor: the last day advanced to.
    pub fn day(&self) -> Option<u32> {
        self.day
    }

    /// Number of tracked drives.
    pub fn n_drives(&self) -> usize {
        self.drives.len()
    }

    /// The last observed day across all tracked drives — how far
    /// [`Daemon::advance_to`] can usefully replay.
    pub fn last_observed_day(&self) -> Option<u32> {
        self.drives.values().map(|s| s.record().last_day()).max()
    }

    /// Ingest a SMART-log CSV through the sharded reader, registering
    /// every drive of the daemon's model.
    ///
    /// # Errors
    ///
    /// Propagates CSV parse errors and window-construction failures.
    pub fn ingest_csv<R: BufRead + Send>(
        &mut self,
        input: R,
        tickets: &[TroubleTicket],
        config: &IngestConfig,
    ) -> Result<IngestStats, ServeError> {
        let span = telemetry::span!("serve.ingest");
        let stats = stream_drive_batches(input, tickets, config, |batch| self.ingest_batch(batch))?;
        span.record("drives", stats.drives);
        telemetry::counter_add("serve.ingest.drives", stats.drives);
        Ok(stats)
    }

    /// Register one batch of drive records (the `stream_drive_batches`
    /// consumer). Re-ingesting a drive replaces its record and windows.
    ///
    /// Drives registered after the cursor has advanced are caught up
    /// immediately, so late registration and replay order commute.
    ///
    /// # Errors
    ///
    /// Propagates window-construction failures.
    pub fn ingest_batch(&mut self, batch: DriveBatch) -> Result<(), ServeError> {
        for record in batch.drives {
            if record.model != self.config.model {
                continue;
            }
            let id = record.id;
            let mut state = DriveState::new(record, &self.base)?;
            if let Some(day) = self.day {
                for d in 0..=day {
                    state.feed(d, &self.base);
                }
            }
            self.drives.insert(id, state);
        }
        Ok(())
    }

    /// Advance the replay cursor to `target` (inclusive), feeding every
    /// tracked drive day by day and running the update cycle whenever the
    /// monitor says one is due. Returns one report per cycle attempted.
    ///
    /// # Errors
    ///
    /// Propagates selection and training failures; the cursor stops on
    /// the failing day.
    pub fn advance_to(&mut self, target: u32) -> Result<Vec<CycleReport>, ServeError> {
        let start = match self.day {
            Some(d) if d >= target => return Ok(Vec::new()),
            Some(d) => d + 1,
            None => 0,
        };
        let mut reports = Vec::new();
        for d in start..=target {
            for state in self.drives.values_mut() {
                state.feed(d, &self.base);
            }
            self.day = Some(d);
            let attempt_due = self
                .last_attempt_day
                .is_none_or(|l| d.saturating_sub(l) >= self.config.period_days);
            if self.monitor.due(d) && attempt_due {
                self.last_attempt_day = Some(d);
                reports.push(self.run_cycle(d)?);
            }
        }
        Ok(reports)
    }

    /// One scheduled update cycle on day `d`: survival analysis,
    /// change-point check, and (when the decision calls for it) feature
    /// re-selection plus predictor retraining.
    fn run_cycle(&mut self, d: u32) -> Result<CycleReport, ServeError> {
        let span = telemetry::span!("serve.cycle", day = d);
        telemetry::counter_add("serve.cycles", 1);

        // Labels are only knowable once the horizon has fully elapsed:
        // sampling past `d - horizon` would peek at future failures.
        let label_to = d.saturating_sub(self.config.sampling.horizon);
        let fleet = self.snapshot_fleet()?;
        let samples = match collect_samples(
            &fleet,
            self.config.model,
            0,
            label_to,
            &self.config.sampling,
        ) {
            Ok(s) if !s.is_empty() => s,
            _ => {
                return Ok(self.skipped_cycle(d, "no labeled samples yet"));
            }
        };
        let (matrix, labels, mwi) = base_matrix(&fleet, self.config.model, &samples)?;
        if !labels.iter().any(|&l| l) || labels.iter().all(|&l| l) {
            return Ok(self.skipped_cycle(d, "training set has a single class"));
        }

        let survival = survival_pairs(&fleet, self.config.model, d);
        let threshold = detect_wearout_threshold(
            &survival,
            &self.config.wefr.bocpd,
            self.config.wefr.z_threshold,
            self.config.wefr.survival_min_bucket,
        )
        .map_err(WefrError::from)?
        .map(|cp| cp.mwi_threshold);

        let decision = self.monitor.record_check(d, threshold);
        span.record("reselected", u64::from(decision.requires_reselection()));
        let mut reselected = false;
        if decision.requires_reselection() {
            let input = SelectionInput {
                data: &matrix,
                labels: &labels,
                mwi_per_sample: Some(&mwi),
                survival: Some(&survival),
            };
            let selection = Wefr::new(self.config.wefr.clone()).select(&input)?;
            let selected_indices = selection.global.selected.clone();
            let selected: Vec<_> = selected_indices
                .iter()
                .filter_map(|&i| self.base.get(i).copied())
                .collect();
            let predictor =
                FailurePredictor::train(&fleet, &samples, &selected, &self.config.predictor)?;
            self.selection = Some(SelectionState {
                selected_indices,
                selected_names: selection.global.selected_names.clone(),
                predictor,
                selected_at_day: d,
                threshold,
            });
            telemetry::counter_add("serve.reselections", 1);
            reselected = true;
        }
        Ok(CycleReport {
            day: d,
            decision: Some(decision),
            threshold,
            reselected,
            skipped: None,
        })
    }

    fn skipped_cycle(&self, d: u32, reason: &str) -> CycleReport {
        telemetry::counter_add("serve.cycles_skipped", 1);
        CycleReport {
            day: d,
            decision: None,
            threshold: None,
            reselected: false,
            skipped: Some(reason.to_string()),
        }
    }

    /// A [`Fleet`] view over the tracked records, for the batch-path
    /// sampling and training entry points.
    fn snapshot_fleet(&self) -> Result<Fleet, ServeError> {
        let records: Vec<_> = self.drives.values().map(|s| s.record().clone()).collect();
        let count = u32::try_from(records.len().max(1)).unwrap_or(u32::MAX);
        // `from_records` keeps the records verbatim; the config is only
        // carried for provenance, so any valid one will do.
        let config = FleetConfig::builder()
            .days(self.day.unwrap_or(0).saturating_add(1).max(120))
            .seed(0)
            .drives(self.config.model, count)
            .build()?;
        Ok(Fleet::from_records(config, records))
    }

    /// Score `id` on the current day with the active selection: the
    /// failure probability from the incrementally maintained feature row.
    ///
    /// # Errors
    ///
    /// [`ServeError::NotReady`] when no selection is trained yet, the
    /// drive is unknown, or it is not observed on the current day.
    pub fn score(&self, id: DriveId) -> Result<f64, ServeError> {
        let day = self
            .day
            .ok_or_else(|| ServeError::not_ready("no days ingested yet"))?;
        let sel = self
            .selection
            .as_ref()
            .ok_or_else(|| ServeError::not_ready("no feature selection trained yet"))?;
        let state = self
            .drives
            .get(&id)
            .ok_or_else(|| ServeError::not_ready(format!("unknown drive {id}")))?;
        let row = state.expanded_row(day, &sel.selected_indices, &self.base)?;
        let scores = sel.predictor.score_rows(std::slice::from_ref(&row))?;
        telemetry::counter_add("serve.scores", 1);
        Ok(scores[0])
    }

    /// The selected base-feature names, best first.
    ///
    /// # Errors
    ///
    /// [`ServeError::NotReady`] before the first selection.
    pub fn features(&self) -> Result<&[String], ServeError> {
        self.selection
            .as_ref()
            .map(|s| s.selected_names.as_slice())
            .ok_or_else(|| ServeError::not_ready("no feature selection trained yet"))
    }

    /// Deterministic status lines: model, cursor, drive count, and the
    /// active selection's provenance. Deliberately free of clocks and
    /// request counters so two daemons fed the same logs agree.
    pub fn status_lines(&self) -> Vec<String> {
        let mut lines = vec![
            format!("model {}", self.config.model),
            format!(
                "day {}",
                self.day
                    .map_or_else(|| "none".to_string(), |d| d.to_string())
            ),
            format!("drives {}", self.drives.len()),
            format!("period_days {}", self.config.period_days),
        ];
        match &self.selection {
            None => lines.push("selection none".to_string()),
            Some(s) => {
                lines.push(format!(
                    "selection day={} features={} threshold={}",
                    s.selected_at_day,
                    s.selected_names.len(),
                    s.threshold
                        .map_or_else(|| "none".to_string(), |t| t.to_string()),
                ));
            }
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_dataset::csv::export_smart_csv;
    use smart_dataset::{tickets_from_summaries, DriveRecord};
    use std::io::Cursor;

    fn smoke_fleet() -> Fleet {
        let config = FleetConfig::builder()
            .days(160)
            .seed(11)
            .drives(DriveModel::Mc1, 32)
            .failure_scale(8.0)
            .build()
            .unwrap();
        Fleet::generate(&config)
    }

    fn smoke_config() -> ServeConfig {
        ServeConfig {
            period_days: 14,
            predictor: PredictorConfig {
                n_trees: 20,
                max_depth: 6,
                seed: 1,
                n_threads: Some(1),
                ..PredictorConfig::default()
            },
            ..ServeConfig::default()
        }
    }

    fn ingest(daemon: &mut Daemon, fleet: &Fleet, workers: usize) {
        let mut csv = Vec::new();
        export_smart_csv(fleet, &mut csv).unwrap();
        let summaries: Vec<_> = fleet.drives().iter().map(DriveRecord::summary).collect();
        let tickets = tickets_from_summaries(&summaries);
        let config = IngestConfig {
            workers,
            ..IngestConfig::default()
        };
        daemon
            .ingest_csv(Cursor::new(csv), &tickets, &config)
            .unwrap();
    }

    #[test]
    fn replay_reaches_a_selection_and_scores() {
        let fleet = smoke_fleet();
        let mut daemon = Daemon::new(smoke_config());
        ingest(&mut daemon, &fleet, 2);
        assert_eq!(daemon.n_drives(), 32);
        let last = fleet.drives().iter().map(|d| d.last_day()).max().unwrap();
        let reports = daemon.advance_to(last).unwrap();
        assert!(!reports.is_empty());
        assert!(
            reports.iter().any(|r| r.reselected),
            "no cycle reselected: {reports:?}"
        );
        daemon.features().unwrap();
        // Some drive observed on the final day must be scorable.
        let scored = fleet
            .drives()
            .iter()
            .filter(|d| d.observed_on(last))
            .any(|d| daemon.score(d.id).is_ok());
        assert!(scored);
        assert!(daemon.score(DriveId(9_999_999)).is_err());
    }

    #[test]
    fn worker_count_does_not_change_answers() {
        let fleet = smoke_fleet();
        let last = fleet.drives().iter().map(|d| d.last_day()).max().unwrap();
        let run = |workers: usize| {
            let mut daemon = Daemon::new(smoke_config());
            ingest(&mut daemon, &fleet, workers);
            daemon.advance_to(last).unwrap();
            let scores: Vec<String> = fleet
                .drives()
                .iter()
                .map(|d| format!("{:?}", daemon.score(d.id).map_err(|e| e.to_string())))
                .collect();
            (daemon.status_lines(), scores)
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn reingest_catch_up_matches_continuous_feeding() {
        // Re-ingesting mid-replay replaces every record and rebuilds its
        // windows through the cursor day; scores must be bit-identical to
        // a daemon that fed continuously.
        let fleet = smoke_fleet();
        let last = fleet.drives().iter().map(|d| d.last_day()).max().unwrap();
        let mut continuous = Daemon::new(smoke_config());
        ingest(&mut continuous, &fleet, 1);
        continuous.advance_to(last).unwrap();
        let mut reingested = Daemon::new(smoke_config());
        ingest(&mut reingested, &fleet, 1);
        reingested.advance_to(last / 2).unwrap();
        ingest(&mut reingested, &fleet, 1);
        reingested.advance_to(last).unwrap();
        for d in fleet.drives() {
            let a = continuous.score(d.id).map_err(|e| e.to_string());
            let b = reingested.score(d.id).map_err(|e| e.to_string());
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x.to_bits(), y.to_bits(), "drive {}", d.id),
                (a, b) => assert_eq!(a, b, "drive {}", d.id),
            }
        }
        assert_eq!(continuous.status_lines(), reingested.status_lines());
    }

    #[test]
    fn config_lookup_overrides_period() {
        let c = ServeConfig::from_lookup(|name| {
            (name == ENV_SERVE_PERIOD_DAYS).then(|| "3".to_string())
        });
        assert_eq!(c.period_days, 3);
        let d = ServeConfig::from_lookup(|_| None);
        assert_eq!(d.period_days, 7);
    }
}
