//! The TCP listener: line-protocol sessions plus a `GET /report` HTTP
//! route, with a [`StopFlag`]-handshake shutdown.
//!
//! This is the only file in the crate allowed to touch sockets (the
//! smart-lint `network_access` allowlist); everything else stays pure so
//! determinism tests can drive the daemon without a network. The client
//! helpers ([`query_session`], [`http_get`]) live here for the same
//! reason — binaries are subject to the socket rule too.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use sync::shutdown::StopFlag;
use sync::{Arc, Mutex, PoisonError};

use crate::daemon::Daemon;
use crate::protocol::{parse_request, respond, Request};

/// How long a connection may dawdle before the server gives up on it.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);

/// Handle to a running serve listener. Stop it explicitly with
/// [`ServeListener::stop`]; dropping the handle performs the same clean
/// shutdown (flag, loopback wake, join — the `MetricsServer` pattern,
/// with the flag upgraded to the model-checked [`StopFlag`]).
pub struct ServeListener {
    addr: SocketAddr,
    stop: Arc<StopFlag>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServeListener {
    /// The bound address — useful when started on port 0.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shut the listener down and join its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.stop();
        // The accept loop blocks in accept(); a throwaway connection is
        // the portable way to wake it so the stop flag is observed.
        if let Ok(stream) = TcpStream::connect_timeout(&self.addr, CLIENT_TIMEOUT) {
            drop(stream);
        }
        let _ = thread.join();
    }
}

impl Drop for ServeListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` and answer queries against `daemon` from a background
/// thread until the returned handle is stopped or dropped. `run` labels
/// the `GET /report` telemetry snapshot.
///
/// # Errors
///
/// Propagates bind and thread-spawn failures.
pub fn start(addr: &str, daemon: Arc<Mutex<Daemon>>, run: &str) -> std::io::Result<ServeListener> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(StopFlag::new());
    let flag = Arc::clone(&stop);
    let run = run.to_string();
    let thread = std::thread::Builder::new()
        .name("wefr-serve".to_string())
        .spawn(move || {
            for connection in listener.incoming() {
                if flag.is_stopped() {
                    break;
                }
                if let Ok(stream) = connection {
                    // One slow or broken client must not take the daemon
                    // down; errors just close that connection.
                    let _ = handle_connection(stream, &daemon, &run);
                }
            }
        })?;
    Ok(ServeListener {
        addr,
        stop,
        thread: Some(thread),
    })
}

fn handle_connection(
    stream: TcpStream,
    daemon: &Arc<Mutex<Daemon>>,
    run: &str,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(());
    }
    if line.starts_with("GET ") {
        // HTTP branch: drain the headers, answer once, close.
        let path = line
            .split_whitespace()
            .nth(1)
            .unwrap_or_default()
            .to_string();
        loop {
            // Headers end at an empty (\r\n) line.
            line.clear();
            if reader.read_line(&mut line)? <= 2 {
                break;
            }
        }
        return write_http(&mut writer, &path, run);
    }
    loop {
        telemetry::counter_add("serve.requests", 1);
        let response = match parse_request(&line) {
            Ok(request) => {
                let quit = request == Request::Quit;
                let lines = {
                    let guard = daemon.lock().unwrap_or_else(PoisonError::into_inner);
                    respond(&guard, request)
                };
                write_block(&mut writer, &lines)?;
                if quit {
                    return writer.flush();
                }
                Ok(())
            }
            Err(message) => write_block(&mut writer, &[format!("ERR {message}")]),
        };
        response?;
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return writer.flush();
        }
    }
}

/// Write one response block: the lines, then the terminating blank line.
fn write_block(writer: &mut TcpStream, lines: &[String]) -> std::io::Result<()> {
    let mut block = String::new();
    for l in lines {
        block.push_str(l);
        block.push('\n');
    }
    block.push('\n');
    telemetry::histogram_observe("serve.response_bytes", block.len() as f64);
    writer.write_all(block.as_bytes())?;
    writer.flush()
}

fn write_http(writer: &mut TcpStream, path: &str, run: &str) -> std::io::Result<()> {
    telemetry::counter_add("serve.requests", 1);
    let (status, content_type, body) = match path {
        "/report" => {
            let mut body = json::to_string_pretty(&telemetry::snapshot(run));
            body.push('\n');
            ("200 OK", "application/json; charset=utf-8", body)
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; routes: /report\n".to_string(),
        ),
    };
    let response = telemetry::serve::http_response(status, content_type, &body);
    telemetry::histogram_observe("serve.response_bytes", response.len() as f64);
    writer.write_all(response.as_bytes())?;
    writer.flush()
}

/// Open one line-protocol session, send each command, and collect each
/// response block (lines joined with `\n`, terminator stripped).
///
/// # Errors
///
/// Propagates connection and read/write failures.
pub fn query_session(addr: SocketAddr, commands: &[&str]) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect_timeout(&addr, CLIENT_TIMEOUT)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut responses = Vec::with_capacity(commands.len());
    for command in commands {
        writer.write_all(command.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut block = Vec::new();
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            block.push(trimmed.to_string());
        }
        responses.push(block.join("\n"));
    }
    Ok(responses)
}

/// `GET path` from `addr`, returning `(status line, body)`.
///
/// # Errors
///
/// Propagates connection and read/write failures.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, CLIENT_TIMEOUT)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: wefr\r\n\r\n").as_bytes())?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw.lines().next().unwrap_or_default().to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::ServeConfig;

    fn start_empty() -> (ServeListener, Arc<Mutex<Daemon>>) {
        let daemon = Arc::new(Mutex::new(Daemon::new(ServeConfig::default())));
        let listener = start("127.0.0.1:0", Arc::clone(&daemon), "listener-test").unwrap();
        (listener, daemon)
    }

    #[test]
    fn session_round_trips_and_shuts_down() {
        let (listener, _daemon) = start_empty();
        let responses = query_session(
            listener.addr(),
            &["STATUS", "SCORE drive-000001", "BOGUS", "QUIT"],
        )
        .unwrap();
        assert_eq!(responses.len(), 4);
        assert!(responses[0].starts_with("ok status\n"));
        assert!(responses[1].starts_with("ERR "));
        assert!(responses[2].starts_with("ERR unknown command"));
        assert_eq!(responses[3], "ok bye");
        listener.stop();
    }

    #[test]
    fn http_report_route_answers_json() {
        let (listener, _daemon) = start_empty();
        let (status, body) = http_get(listener.addr(), "/report").unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(body.trim_start().starts_with('{'), "{body}");
        let (status, _) = http_get(listener.addr(), "/nope").unwrap();
        assert!(status.contains("404"), "{status}");
        listener.stop();
    }
}
