//! The daemon's error type: data-plane failures and bad requests.

use smart_dataset::DatasetError;
use smart_pipeline::PipelineError;
use wefr_core::WefrError;

/// Everything that can go wrong inside the daemon.
#[derive(Debug)]
pub enum ServeError {
    /// Ingest-side failure (CSV parse, I/O).
    Dataset(DatasetError),
    /// Feature expansion / training / scoring failure.
    Pipeline(PipelineError),
    /// Feature-selection failure.
    Wefr(WefrError),
    /// The query is well-formed but cannot be answered in the current
    /// state (no selection yet, unknown drive, drive not observed today).
    NotReady {
        /// Operator-facing explanation.
        message: String,
    },
}

impl ServeError {
    /// A [`ServeError::NotReady`] with the given message.
    pub fn not_ready(message: impl Into<String>) -> Self {
        ServeError::NotReady {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Dataset(e) => write!(f, "ingest: {e}"),
            ServeError::Pipeline(e) => write!(f, "pipeline: {e}"),
            ServeError::Wefr(e) => write!(f, "selection: {e}"),
            ServeError::NotReady { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Dataset(e) => Some(e),
            ServeError::Pipeline(e) => Some(e),
            ServeError::Wefr(e) => Some(e),
            ServeError::NotReady { .. } => None,
        }
    }
}

impl From<DatasetError> for ServeError {
    fn from(e: DatasetError) -> Self {
        ServeError::Dataset(e)
    }
}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        ServeError::Pipeline(e)
    }
}

impl From<WefrError> for ServeError {
    fn from(e: WefrError) -> Self {
        ServeError::Wefr(e)
    }
}
