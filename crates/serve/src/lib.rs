#![forbid(unsafe_code)]
//! The continuous-selection daemon (DESIGN.md §14, ROADMAP item 1).
//!
//! Every experiment binary in this workspace rebuilds the world from
//! scratch; the paper instead runs WEFR as a *weekly cycle on a live
//! fleet* (§IV-D). This crate is that long-lived process:
//!
//! 1. **Ingest** — SMART logs arrive through the existing
//!    [`smart_dataset::stream_drive_batches`] seam, so the daemon shares
//!    the sharded reader's determinism guarantee: any worker count
//!    produces the same state.
//! 2. **Incremental state** ([`state`]) — each tracked drive carries one
//!    [`smart_stats::window::IncrementalWindow`] per base feature and
//!    window width, updated in O(1) per observation as the replay cursor
//!    advances; scoring never re-expands drive history.
//! 3. **Update cycle** ([`daemon`]) — a [`wefr_core::UpdateMonitor`]
//!    schedules change-point checks on the paper's cadence; when the
//!    wear-out threshold appears, disappears, or moves past tolerance,
//!    the daemon re-runs [`wefr_core::Wefr::select`] and retrains the
//!    failure predictor, emitting one telemetry span per cycle.
//! 4. **Queries** ([`protocol`], [`listener`]) — a line-protocol TCP
//!    listener answers `SCORE <drive>`, `FEATURES`, and `STATUS`, plus an
//!    HTTP-ish `GET /report` that returns the smart-json run report. The
//!    listener is the only file in the crate allowed to touch sockets
//!    (the smart-lint `network_access` allowlist), and shuts down through
//!    the [`smart_sync::shutdown::StopFlag`] handshake.
//!
//! All query output is deterministic: state lives in `BTreeMap`s, scores
//! come from the deterministic forest, and responses carry no clocks or
//! request counters — two daemons fed the same logs answer byte-for-byte
//! identically, regardless of ingest worker count.
//!
//! [`smart_sync::shutdown::StopFlag`]: sync::shutdown::StopFlag
//! [`smart_dataset::stream_drive_batches`]: smart_dataset::stream_drive_batches

pub mod daemon;
pub mod error;
pub mod listener;
pub mod protocol;
pub mod state;

pub use daemon::{CycleReport, Daemon, ServeConfig};
pub use error::ServeError;
pub use listener::ServeListener;
pub use protocol::Request;
