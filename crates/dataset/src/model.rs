//! Drive-model catalog: the six drive models of the paper (Table I / II)
//! and their simulation profiles.

use crate::attr::SmartAttribute;
use crate::mechanism::{FailureMechanism, MechanismWeight};
use std::fmt;

/// NAND flash technology of a drive model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlashTech {
    /// Multi-level cell.
    Mlc,
    /// Triple-level cell.
    Tlc,
}

json::impl_json_enum!(FlashTech { Mlc => "MLC", Tlc => "TLC" });

impl fmt::Display for FlashTech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FlashTech::Mlc => "MLC",
            FlashTech::Tlc => "TLC",
        })
    }
}

/// SSD vendor (anonymized as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vendor {
    /// Vendor MA.
    Ma,
    /// Vendor MB.
    Mb,
    /// Vendor MC.
    Mc,
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Vendor::Ma => "MA",
            Vendor::Mb => "MB",
            Vendor::Mc => "MC",
        })
    }
}

/// The six drive models studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DriveModel {
    /// Vendor MA, model 1 (MLC).
    Ma1,
    /// Vendor MA, model 2 (MLC).
    Ma2,
    /// Vendor MB, model 1 (MLC).
    Mb1,
    /// Vendor MB, model 2 (MLC).
    Mb2,
    /// Vendor MC, model 1 (TLC) — the most numerous model.
    Mc1,
    /// Vendor MC, model 2 (TLC).
    Mc2,
}

json::impl_json_enum!(DriveModel {
    Ma1 => "MA1",
    Ma2 => "MA2",
    Mb1 => "MB1",
    Mb2 => "MB2",
    Mc1 => "MC1",
    Mc2 => "MC2",
});

impl fmt::Display for DriveModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl DriveModel {
    /// All six models, in Table I order.
    pub const ALL: [DriveModel; 6] = [
        DriveModel::Ma1,
        DriveModel::Ma2,
        DriveModel::Mb1,
        DriveModel::Mb2,
        DriveModel::Mc1,
        DriveModel::Mc2,
    ];

    /// Model name as used in the paper (`"MA1"` … `"MC2"`).
    pub fn name(self) -> &'static str {
        match self {
            DriveModel::Ma1 => "MA1",
            DriveModel::Ma2 => "MA2",
            DriveModel::Mb1 => "MB1",
            DriveModel::Mb2 => "MB2",
            DriveModel::Mc1 => "MC1",
            DriveModel::Mc2 => "MC2",
        }
    }

    /// Parse a model name (case-insensitive).
    pub fn from_name(name: &str) -> Option<DriveModel> {
        let upper = name.to_ascii_uppercase();
        DriveModel::ALL.iter().copied().find(|m| m.name() == upper)
    }

    /// The vendor of this model.
    pub fn vendor(self) -> Vendor {
        match self {
            DriveModel::Ma1 | DriveModel::Ma2 => Vendor::Ma,
            DriveModel::Mb1 | DriveModel::Mb2 => Vendor::Mb,
            DriveModel::Mc1 | DriveModel::Mc2 => Vendor::Mc,
        }
    }

    /// Flash technology (Table II).
    pub fn flash_tech(self) -> FlashTech {
        match self {
            DriveModel::Mc1 | DriveModel::Mc2 => FlashTech::Tlc,
            _ => FlashTech::Mlc,
        }
    }

    /// Fraction of the fleet population (Table II "Total %").
    pub fn population_share(self) -> f64 {
        match self {
            DriveModel::Ma1 => 0.100,
            DriveModel::Ma2 => 0.257,
            DriveModel::Mb1 => 0.089,
            DriveModel::Mb2 => 0.104,
            DriveModel::Mc1 => 0.404,
            DriveModel::Mc2 => 0.046,
        }
    }

    /// Target annualized failure rate in percent (Table II "AFR (%)").
    pub fn target_afr_percent(self) -> f64 {
        match self {
            DriveModel::Ma1 => 2.36,
            DriveModel::Ma2 => 0.46,
            DriveModel::Mb1 => 2.52,
            DriveModel::Mb2 => 0.71,
            DriveModel::Mc1 => 3.29,
            DriveModel::Mc2 => 3.92,
        }
    }

    /// The SMART attributes this model reports (Table I).
    ///
    /// Table I of the source text is partially garbled by OCR; ambiguous
    /// cells were reconstructed for consistency with Tables III–V (e.g. MB2
    /// must report REC because `REC_N` is its top-ranked feature in
    /// Table III).
    pub fn attributes(self) -> &'static [SmartAttribute] {
        use SmartAttribute as A;
        match self {
            DriveModel::Ma1 => &[
                A::Rsc,
                A::Poh,
                A::Pcc,
                A::Pfc,
                A::Efc,
                A::Mwi,
                A::Plp,
                A::Upl,
                A::Ars,
                A::Ete,
                A::Uce,
                A::Cmdt,
                A::Et,
                A::Aft,
                A::Rec,
                A::Psc,
                A::Oce,
                A::Cec,
            ],
            DriveModel::Ma2 => &[
                A::Rsc,
                A::Poh,
                A::Pcc,
                A::Pfc,
                A::Efc,
                A::Mwi,
                A::Plp,
                A::Upl,
                A::Ars,
                A::Dec,
                A::Ete,
                A::Uce,
                A::Et,
                A::Aft,
                A::Psc,
                A::Cec,
                A::Tlw,
                A::Tlr,
            ],
            DriveModel::Mb1 => &[
                A::Rsc,
                A::Poh,
                A::Pcc,
                A::Pfc,
                A::Efc,
                A::Mwi,
                A::Ars,
                A::Dec,
                A::Ete,
                A::Uce,
                A::Et,
                A::Aft,
                A::Psc,
                A::Cec,
                A::Tlw,
                A::Tlr,
            ],
            DriveModel::Mb2 => &[
                A::Rsc,
                A::Poh,
                A::Pcc,
                A::Pfc,
                A::Efc,
                A::Mwi,
                A::Ars,
                A::Dec,
                A::Ete,
                A::Uce,
                A::Et,
                A::Aft,
                A::Rec,
                A::Psc,
                A::Cec,
            ],
            DriveModel::Mc1 => &[
                A::Rer,
                A::Rsc,
                A::Poh,
                A::Pcc,
                A::Pfc,
                A::Efc,
                A::Mwi,
                A::Upl,
                A::Ars,
                A::Dec,
                A::Ete,
                A::Uce,
                A::Cmdt,
                A::Et,
                A::Aft,
                A::Rec,
                A::Psc,
                A::Oce,
                A::Cec,
            ],
            DriveModel::Mc2 => &[
                A::Rer,
                A::Rsc,
                A::Poh,
                A::Pcc,
                A::Efc,
                A::Mwi,
                A::Upl,
                A::Ars,
                A::Ete,
                A::Uce,
                A::Cmdt,
                A::Et,
                A::Aft,
                A::Rec,
                A::Psc,
                A::Oce,
                A::Cec,
            ],
        }
    }

    /// Whether this model reports `attr`.
    pub fn has_attribute(self, attr: SmartAttribute) -> bool {
        self.attributes().contains(&attr)
    }

    /// Index of `attr` within [`DriveModel::attributes`], if reported.
    pub fn attribute_index(self, attr: SmartAttribute) -> Option<usize> {
        self.attributes().iter().position(|&a| a == attr)
    }

    /// The simulation profile for this model.
    pub fn profile(self) -> ModelProfile {
        ModelProfile::for_model(self)
    }
}

/// Hazard multiplier applied as a function of a drive's projected end-of-life
/// wear-out (its final `MWI_N`): drives projected to wear past `knee_mwi`
/// have their failure probability scaled up linearly to `max_multiplier` at
/// `MWI_N = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearHazard {
    /// `MWI_N` below which the hazard multiplier starts to rise.
    pub knee_mwi: f64,
    /// Multiplier reached when `MWI_N` hits zero.
    pub max_multiplier: f64,
}

impl WearHazard {
    /// No wear-dependent hazard (flat multiplier of 1).
    pub const FLAT: WearHazard = WearHazard {
        knee_mwi: 0.0,
        max_multiplier: 1.0,
    };

    /// The multiplier at a given `MWI_N` value.
    ///
    /// Below the knee the hazard *jumps* to the midpoint of its range and
    /// then ramps linearly to `max_multiplier` at `MWI_N = 0`. The jump
    /// models threshold-triggered wear-out failures and gives the survival
    /// curve the kink at the knee that the paper's change-point analysis
    /// finds (Fig. 1).
    pub fn multiplier(&self, mwi_n: f64) -> f64 {
        if mwi_n >= self.knee_mwi || self.knee_mwi <= 0.0 {
            1.0
        } else {
            let frac = ((self.knee_mwi - mwi_n) / self.knee_mwi).clamp(0.0, 1.0);
            1.0 + (0.75 + 0.25 * frac) * (self.max_multiplier - 1.0)
        }
    }
}

/// MC2's early-firmware failure mode: *young* drives deployed before the
/// fix ship date suffer an elevated hazard of early-life `UCE`-signature
/// failures. Because the casualties die young, their final `MWI_N` is high
/// — the cause of the non-monotone survival curve in Fig. 1 and its change
/// point at `MWI_N ≈ 72`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FirmwareEra {
    /// Only drives deployed before this dataset day are affected.
    pub deploy_before_day: u32,
    /// Only drives with at most this much pre-window service age are
    /// affected (keeps the casualties' final wear-out in a tight high-MWI
    /// band).
    pub max_initial_age_days: u32,
    /// Probability that an affected drive develops the firmware failure
    /// (scaled by the fleet's global failure scale).
    pub failure_probability: f64,
    /// Defect onset occurs within this many days after deployment.
    pub onset_within_days: u32,
    /// The bug only manifests while the drive's `MWI_N` is above this value
    /// (the firmware path is exercised during early wear life), which gives
    /// the survival curve its sharp edge — the paper's change point at 72.
    pub min_mwi_at_failure: f64,
}

/// Simulation profile of a drive model: wear dynamics, background error
/// rates, failure-mechanism mix, and wear-dependent hazard.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Mean daily `MWI` consumption in percentage points.
    pub wear_rate_mean: f64,
    /// Lognormal sigma of the per-drive wear-rate draw.
    pub wear_rate_sigma: f64,
    /// Mean enclosure temperature (°C).
    pub temp_mean: f64,
    /// Mean daily written gigabytes (drives TLW and wear noise).
    pub daily_write_gb: f64,
    /// Mean daily read gigabytes (drives TLR).
    pub daily_read_gb: f64,
    /// Failure-mechanism mix (weights need not sum to 1; they are
    /// normalized at sampling time).
    pub mechanisms: Vec<MechanismWeight>,
    /// Wear-dependent hazard.
    pub wear_hazard: WearHazard,
    /// Divisor calibrating the ordinary failure probability so that the
    /// population-mean AFR matches the Table II target despite the
    /// wear-hazard multiplier inflating it (the multiplier's population
    /// mean exceeds 1 for models with a wear knee).
    pub afr_calibration: f64,
    /// Early-firmware era (MC2 only).
    pub firmware_era: Option<FirmwareEra>,
}

impl ModelProfile {
    /// The built-in profile for `model`.
    pub fn for_model(model: DriveModel) -> ModelProfile {
        use FailureMechanism as M;
        match model {
            DriveModel::Ma1 => ModelProfile {
                wear_rate_mean: 0.050,
                wear_rate_sigma: 0.95,
                temp_mean: 30.0,
                daily_write_gb: 220.0,
                daily_read_gb: 300.0,
                mechanisms: vec![
                    MechanismWeight::new(M::PowerLossProtection, 0.45),
                    MechanismWeight::new(M::WearOut, 0.28),
                    MechanismWeight::new(M::ReallocationStorm, 0.17),
                    MechanismWeight::new(M::AgeRelated, 0.10),
                ],
                wear_hazard: WearHazard {
                    knee_mwi: 38.0,
                    max_multiplier: 6.0,
                },
                afr_calibration: 1.55,
                firmware_era: None,
            },
            DriveModel::Ma2 => ModelProfile {
                wear_rate_mean: 0.034,
                wear_rate_sigma: 0.95,
                temp_mean: 29.0,
                daily_write_gb: 150.0,
                daily_read_gb: 520.0,
                mechanisms: vec![
                    MechanismWeight::new(M::AgeRelated, 0.35),
                    MechanismWeight::new(M::PowerLossProtection, 0.25),
                    MechanismWeight::new(M::ReadStress, 0.25),
                    MechanismWeight::new(M::WearOut, 0.15),
                ],
                wear_hazard: WearHazard {
                    knee_mwi: 34.0,
                    max_multiplier: 6.0,
                },
                afr_calibration: 1.48,
                firmware_era: None,
            },
            DriveModel::Mb1 => ModelProfile {
                wear_rate_mean: 0.0022,
                wear_rate_sigma: 0.30,
                temp_mean: 31.0,
                daily_write_gb: 40.0,
                daily_read_gb: 260.0,
                mechanisms: vec![
                    MechanismWeight::new(M::ReserveDepletion, 0.60),
                    MechanismWeight::new(M::UncorrectableMedia, 0.22),
                    MechanismWeight::new(M::AgeRelated, 0.18),
                ],
                wear_hazard: WearHazard::FLAT,
                afr_calibration: 1.05,
                firmware_era: None,
            },
            DriveModel::Mb2 => ModelProfile {
                wear_rate_mean: 0.0018,
                wear_rate_sigma: 0.30,
                temp_mean: 30.0,
                daily_write_gb: 35.0,
                daily_read_gb: 180.0,
                mechanisms: vec![
                    MechanismWeight::new(M::ReallocationStorm, 0.45),
                    MechanismWeight::new(M::AgeRelated, 0.30),
                    MechanismWeight::new(M::UncorrectableMedia, 0.25),
                ],
                wear_hazard: WearHazard::FLAT,
                afr_calibration: 1.24,
                firmware_era: None,
            },
            DriveModel::Mc1 => ModelProfile {
                wear_rate_mean: 0.060,
                wear_rate_sigma: 1.00,
                temp_mean: 33.0,
                daily_write_gb: 380.0,
                daily_read_gb: 450.0,
                mechanisms: vec![
                    MechanismWeight::new(M::MediaScanErrors, 0.50),
                    MechanismWeight::new(M::UncorrectableMedia, 0.30),
                    MechanismWeight::new(M::WearOut, 0.20),
                ],
                wear_hazard: WearHazard {
                    knee_mwi: 30.0,
                    max_multiplier: 4.0,
                },
                afr_calibration: 1.30,
                firmware_era: None,
            },
            DriveModel::Mc2 => ModelProfile {
                wear_rate_mean: 0.055,
                wear_rate_sigma: 0.90,
                temp_mean: 34.0,
                daily_write_gb: 340.0,
                daily_read_gb: 400.0,
                mechanisms: vec![
                    MechanismWeight::new(M::UncorrectableMedia, 0.52),
                    MechanismWeight::new(M::MediaScanErrors, 0.26),
                    MechanismWeight::new(M::WearOut, 0.22),
                ],
                wear_hazard: WearHazard {
                    knee_mwi: 40.0,
                    max_multiplier: 2.0,
                },
                afr_calibration: 1.93,
                firmware_era: Some(FirmwareEra {
                    deploy_before_day: 260,
                    max_initial_age_days: 280,
                    failure_probability: 0.08,
                    onset_within_days: 130,
                    min_mwi_at_failure: 72.0,
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::SmartAttribute;

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = DriveModel::ALL.iter().map(|m| m.population_share()).sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn tlc_models_have_higher_afr_than_mlc() {
        // The paper observes TLC AFRs exceed MLC AFRs.
        let max_mlc = DriveModel::ALL
            .iter()
            .filter(|m| m.flash_tech() == FlashTech::Mlc)
            .map(|m| m.target_afr_percent())
            .fold(0.0, f64::max);
        for m in [DriveModel::Mc1, DriveModel::Mc2] {
            assert!(m.target_afr_percent() > max_mlc);
        }
    }

    #[test]
    fn all_models_report_core_attributes() {
        // RSC, POH, PCC, EFC, MWI, UCE, PSC, CEC are reported by all six
        // models per Table I.
        for m in DriveModel::ALL {
            for attr in [
                SmartAttribute::Rsc,
                SmartAttribute::Poh,
                SmartAttribute::Pcc,
                SmartAttribute::Efc,
                SmartAttribute::Mwi,
                SmartAttribute::Uce,
                SmartAttribute::Psc,
                SmartAttribute::Cec,
            ] {
                assert!(m.has_attribute(attr), "{m} missing {attr}");
            }
        }
    }

    #[test]
    fn vendor_specific_attributes() {
        // PLP only on MA models.
        assert!(DriveModel::Ma1.has_attribute(SmartAttribute::Plp));
        assert!(DriveModel::Ma2.has_attribute(SmartAttribute::Plp));
        for m in [
            DriveModel::Mb1,
            DriveModel::Mb2,
            DriveModel::Mc1,
            DriveModel::Mc2,
        ] {
            assert!(!m.has_attribute(SmartAttribute::Plp));
        }
        // TLW/TLR only on MA2 and MB1.
        for m in DriveModel::ALL {
            let has_tlw = m.has_attribute(SmartAttribute::Tlw);
            assert_eq!(has_tlw, m == DriveModel::Ma2 || m == DriveModel::Mb1);
        }
        // OCE on MA1, MC1, MC2 (needed for Tables III/IV).
        for m in [DriveModel::Ma1, DriveModel::Mc1, DriveModel::Mc2] {
            assert!(m.has_attribute(SmartAttribute::Oce));
        }
    }

    #[test]
    fn mb2_reports_rec_for_table_iii_consistency() {
        assert!(DriveModel::Mb2.has_attribute(SmartAttribute::Rec));
    }

    #[test]
    fn attribute_index_consistent() {
        for m in DriveModel::ALL {
            for (i, &a) in m.attributes().iter().enumerate() {
                assert_eq!(m.attribute_index(a), Some(i));
            }
            assert_eq!(
                m.attribute_index(SmartAttribute::Plp).is_some(),
                m.has_attribute(SmartAttribute::Plp)
            );
        }
    }

    #[test]
    fn name_roundtrip() {
        for m in DriveModel::ALL {
            assert_eq!(DriveModel::from_name(m.name()), Some(m));
        }
        assert_eq!(DriveModel::from_name("mc1"), Some(DriveModel::Mc1));
        assert_eq!(DriveModel::from_name("XX9"), None);
    }

    #[test]
    fn wear_hazard_multiplier_shape() {
        let h = WearHazard {
            knee_mwi: 40.0,
            max_multiplier: 4.0,
        };
        assert_eq!(h.multiplier(80.0), 1.0);
        assert_eq!(h.multiplier(40.0), 1.0);
        // Just below the knee the hazard jumps to 75% of its range …
        assert!((h.multiplier(39.999) - 3.25).abs() < 1e-2);
        // … and ramps gently to the maximum at full wear.
        assert!((h.multiplier(20.0) - 3.625).abs() < 1e-12);
        assert!((h.multiplier(0.0) - 4.0).abs() < 1e-12);
        assert_eq!(WearHazard::FLAT.multiplier(0.0), 1.0);
    }

    #[test]
    fn profiles_have_visible_mechanism_signatures() {
        // The simulator skips ramps on attributes a model does not report
        // (vendors expose different telemetry), but every mechanism in a
        // model's mix must ramp at least one attribute that model reports —
        // otherwise its failures would be unpredictable by construction.
        for m in DriveModel::ALL {
            let profile = m.profile();
            for mw in &profile.mechanisms {
                let visible = mw
                    .mechanism
                    .ramps()
                    .iter()
                    .filter(|r| m.has_attribute(r.attr))
                    .count();
                assert!(
                    visible > 0,
                    "{m}: mechanism {:?} has no visible ramp attribute",
                    mw.mechanism
                );
            }
        }
    }

    #[test]
    fn only_mc2_has_firmware_era() {
        for m in DriveModel::ALL {
            assert_eq!(m.profile().firmware_era.is_some(), m == DriveModel::Mc2);
        }
    }

    #[test]
    fn mb_models_wear_slowly() {
        // MB1/MB2 must keep a narrow MWI range over two years (no change
        // point in Fig. 1). 730 days * rate must stay well under 5%.
        for m in [DriveModel::Mb1, DriveModel::Mb2] {
            assert!(m.profile().wear_rate_mean * 730.0 < 5.0);
        }
    }
}
