//! SMART attribute schema: the 22 attributes of the paper's Table I and the
//! raw/normalized learning-feature identifiers derived from them.

use std::fmt;
use std::str::FromStr;

/// The 22 SMART attributes collected across the six drive models (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum SmartAttribute {
    /// Raw Read Error Rate.
    Rer,
    /// Reallocated Sectors Count.
    Rsc,
    /// Power-On Hours.
    Poh,
    /// Power Cycle Count.
    Pcc,
    /// Program Fail Count.
    Pfc,
    /// Erase Fail Count.
    Efc,
    /// Media Wearout Indicator.
    Mwi,
    /// Power Loss Protection Failure.
    Plp,
    /// Unexpected Power Loss Count.
    Upl,
    /// Available Reserved Space.
    Ars,
    /// Downshift Error Count.
    Dec,
    /// End-to-End Error.
    Ete,
    /// Reported Uncorrectable Errors.
    Uce,
    /// Command Timeout.
    Cmdt,
    /// Enclosure Temperature.
    Et,
    /// Airflow Temperature.
    Aft,
    /// Reallocated Event Count.
    Rec,
    /// Current Pending Sector Count.
    Psc,
    /// Offline Scan Uncorrectable Error.
    Oce,
    /// UDMA CRC Error Count.
    Cec,
    /// Total LBAs Written.
    Tlw,
    /// Total LBAs Read.
    Tlr,
}

impl SmartAttribute {
    /// All 22 attributes, in Table I order.
    pub const ALL: [SmartAttribute; 22] = [
        SmartAttribute::Rer,
        SmartAttribute::Rsc,
        SmartAttribute::Poh,
        SmartAttribute::Pcc,
        SmartAttribute::Pfc,
        SmartAttribute::Efc,
        SmartAttribute::Mwi,
        SmartAttribute::Plp,
        SmartAttribute::Upl,
        SmartAttribute::Ars,
        SmartAttribute::Dec,
        SmartAttribute::Ete,
        SmartAttribute::Uce,
        SmartAttribute::Cmdt,
        SmartAttribute::Et,
        SmartAttribute::Aft,
        SmartAttribute::Rec,
        SmartAttribute::Psc,
        SmartAttribute::Oce,
        SmartAttribute::Cec,
        SmartAttribute::Tlw,
        SmartAttribute::Tlr,
    ];

    /// The short code used throughout the paper (e.g. `OCE`, `MWI`).
    pub fn code(self) -> &'static str {
        match self {
            SmartAttribute::Rer => "RER",
            SmartAttribute::Rsc => "RSC",
            SmartAttribute::Poh => "POH",
            SmartAttribute::Pcc => "PCC",
            SmartAttribute::Pfc => "PFC",
            SmartAttribute::Efc => "EFC",
            SmartAttribute::Mwi => "MWI",
            SmartAttribute::Plp => "PLP",
            SmartAttribute::Upl => "UPL",
            SmartAttribute::Ars => "ARS",
            SmartAttribute::Dec => "DEC",
            SmartAttribute::Ete => "ETE",
            SmartAttribute::Uce => "UCE",
            SmartAttribute::Cmdt => "CMDT",
            SmartAttribute::Et => "ET",
            SmartAttribute::Aft => "AFT",
            SmartAttribute::Rec => "REC",
            SmartAttribute::Psc => "PSC",
            SmartAttribute::Oce => "OCE",
            SmartAttribute::Cec => "CEC",
            SmartAttribute::Tlw => "TLW",
            SmartAttribute::Tlr => "TLR",
        }
    }

    /// Full attribute name as in Table I.
    pub fn full_name(self) -> &'static str {
        match self {
            SmartAttribute::Rer => "Raw Read Error Rate",
            SmartAttribute::Rsc => "Reallocated Sectors Count",
            SmartAttribute::Poh => "Power-On Hours",
            SmartAttribute::Pcc => "Power Cycle Count",
            SmartAttribute::Pfc => "Program Fail Count",
            SmartAttribute::Efc => "Erase Fail Count",
            SmartAttribute::Mwi => "Media Wearout Indicator",
            SmartAttribute::Plp => "Power Loss Protection Failure",
            SmartAttribute::Upl => "Unexpected Power Loss Count",
            SmartAttribute::Ars => "Available Reserved Space",
            SmartAttribute::Dec => "Downshift Error Count",
            SmartAttribute::Ete => "End-to-End Error",
            SmartAttribute::Uce => "Reported Uncorrectable Errors",
            SmartAttribute::Cmdt => "Command Timeout",
            SmartAttribute::Et => "Enclosure Temperature",
            SmartAttribute::Aft => "Airflow Temperature",
            SmartAttribute::Rec => "Reallocated Event Count",
            SmartAttribute::Psc => "Current Pending Sector Count",
            SmartAttribute::Oce => "Offline Scan Uncorrectable Error",
            SmartAttribute::Cec => "UDMA CRC Error Count",
            SmartAttribute::Tlw => "Total LBAs Written",
            SmartAttribute::Tlr => "Total LBAs Read",
        }
    }

    /// Parse a short code (case-insensitive), e.g. `"OCE"`.
    pub fn from_code(code: &str) -> Option<SmartAttribute> {
        let upper = code.to_ascii_uppercase();
        SmartAttribute::ALL
            .iter()
            .copied()
            .find(|a| a.code() == upper)
    }
}

impl fmt::Display for SmartAttribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Whether a learning feature is the raw or the vendor-normalized value of
/// its SMART attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueKind {
    /// The raw counter/gauge value (`_R` suffix in the paper).
    Raw,
    /// The vendor-normalized health value (`_N` suffix in the paper).
    Normalized,
}

impl ValueKind {
    /// Both kinds, raw first.
    pub const BOTH: [ValueKind; 2] = [ValueKind::Raw, ValueKind::Normalized];

    /// The suffix used in feature names (`R` or `N`).
    pub fn suffix(self) -> &'static str {
        match self {
            ValueKind::Raw => "R",
            ValueKind::Normalized => "N",
        }
    }
}

/// A learning feature: the raw or normalized value of one SMART attribute,
/// e.g. `OCE_R` or `MWI_N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FeatureId {
    /// The SMART attribute.
    pub attr: SmartAttribute,
    /// Raw or normalized.
    pub kind: ValueKind,
}

impl FeatureId {
    /// Construct the raw-value feature of `attr`.
    pub fn raw(attr: SmartAttribute) -> Self {
        FeatureId {
            attr,
            kind: ValueKind::Raw,
        }
    }

    /// Construct the normalized-value feature of `attr`.
    pub fn normalized(attr: SmartAttribute) -> Self {
        FeatureId {
            attr,
            kind: ValueKind::Normalized,
        }
    }

    /// The paper's feature name, e.g. `"OCE_R"`.
    pub fn name(&self) -> String {
        format!("{}_{}", self.attr.code(), self.kind.suffix())
    }
}

impl fmt::Display for FeatureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{}", self.attr.code(), self.kind.suffix())
    }
}

/// Error returned when parsing a feature name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFeatureIdError {
    input: String,
}

impl fmt::Display for ParseFeatureIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid feature name {:?} (expected e.g. \"OCE_R\" or \"MWI_N\")",
            self.input
        )
    }
}

impl std::error::Error for ParseFeatureIdError {}

impl FromStr for FeatureId {
    type Err = ParseFeatureIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseFeatureIdError {
            input: s.to_string(),
        };
        let (code, suffix) = s.rsplit_once('_').ok_or_else(err)?;
        let attr = SmartAttribute::from_code(code).ok_or_else(err)?;
        let kind = match suffix {
            "R" | "r" => ValueKind::Raw,
            "N" | "n" => ValueKind::Normalized,
            _ => return Err(err()),
        };
        Ok(FeatureId { attr, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_attributes_unique_codes() {
        let mut codes: Vec<&str> = SmartAttribute::ALL.iter().map(|a| a.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 22);
    }

    #[test]
    fn code_roundtrip() {
        for attr in SmartAttribute::ALL {
            assert_eq!(SmartAttribute::from_code(attr.code()), Some(attr));
        }
        assert_eq!(SmartAttribute::from_code("oce"), Some(SmartAttribute::Oce));
        assert_eq!(SmartAttribute::from_code("nope"), None);
    }

    #[test]
    fn feature_name_formatting() {
        let f = FeatureId::raw(SmartAttribute::Oce);
        assert_eq!(f.name(), "OCE_R");
        let f = FeatureId::normalized(SmartAttribute::Mwi);
        assert_eq!(f.to_string(), "MWI_N");
    }

    #[test]
    fn feature_parse_roundtrip() {
        for attr in SmartAttribute::ALL {
            for kind in ValueKind::BOTH {
                let f = FeatureId { attr, kind };
                let parsed: FeatureId = f.name().parse().unwrap();
                assert_eq!(parsed, f);
            }
        }
    }

    #[test]
    fn feature_parse_rejects_garbage() {
        assert!("OCE".parse::<FeatureId>().is_err());
        assert!("OCE_X".parse::<FeatureId>().is_err());
        assert!("ZZZ_R".parse::<FeatureId>().is_err());
        assert!("".parse::<FeatureId>().is_err());
    }

    #[test]
    fn full_names_are_nonempty() {
        for attr in SmartAttribute::ALL {
            assert!(!attr.full_name().is_empty());
        }
    }

    #[test]
    fn display_matches_code() {
        assert_eq!(SmartAttribute::Cmdt.to_string(), "CMDT");
    }
}
