//! CSV export/import in the spirit of the released Alibaba dataset: one
//! daily SMART-log table plus a trouble-ticket table.
//!
//! The SMART table has one row per drive-day with columns
//! `drive_id,model,day` followed by `<ATTR>_R,<ATTR>_N` for all 22
//! attributes; attributes a model does not report are left empty.

use crate::attr::SmartAttribute;
use crate::config::FleetConfig;
use crate::error::DatasetError;
use crate::fleet::Fleet;
use crate::mechanism::FailureMechanism;
use crate::model::DriveModel;
use crate::records::{DriveId, DriveRecord, FailureRecord};
use crate::tickets::{sort_tickets_by_drive, ticket_for_drive, TroubleTicket};
use std::io::{BufRead, Write};

/// Column count of the SMART-log CSV: `drive_id,model,day` plus a raw and a
/// normalized column per attribute.
pub(crate) fn expected_smart_cols() -> usize {
    3 + 2 * SmartAttribute::ALL.len()
}

/// Validate the SMART-log header row (line 1).
pub(crate) fn check_smart_header(header: &str) -> Result<(), DatasetError> {
    let expected_cols = expected_smart_cols();
    if header.split(',').count() != expected_cols {
        return Err(DatasetError::ParseCsv {
            line: 1,
            message: format!("expected {expected_cols} columns in header"),
        });
    }
    Ok(())
}

/// Write the fleet's daily SMART logs as CSV.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn export_smart_csv<W: Write>(fleet: &Fleet, out: &mut W) -> Result<(), DatasetError> {
    let mut header = String::from("drive_id,model,day");
    for attr in SmartAttribute::ALL {
        header.push_str(&format!(",{code}_R,{code}_N", code = attr.code()));
    }
    writeln!(out, "{header}")?;
    for drive in fleet.drives() {
        for day in drive.deploy_day..=drive.last_day() {
            let mut row = format!("{},{},{}", drive.id.0, drive.model, day);
            for attr in SmartAttribute::ALL {
                match drive.model.attribute_index(attr) {
                    Some(_) => {
                        let r = drive
                            .value_on(day, crate::attr::FeatureId::raw(attr))
                            // lint:allow(panic-free) day iterates deploy_day
                            // ..=last_day, exactly the range value_on covers
                            // for an attribute the model carries
                            .expect("observed day");
                        let n = drive
                            .value_on(day, crate::attr::FeatureId::normalized(attr))
                            // lint:allow(panic-free) same observed-day range
                            // as the raw read above
                            .expect("observed day");
                        row.push_str(&format!(",{r},{n}"));
                    }
                    None => row.push_str(",,"),
                }
            }
            writeln!(out, "{row}")?;
        }
    }
    Ok(())
}

/// Write the fleet's trouble tickets as CSV (`drive_id,model,day,mechanism`).
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn export_tickets_csv<W: Write>(
    tickets: &[TroubleTicket],
    out: &mut W,
) -> Result<(), DatasetError> {
    writeln!(out, "drive_id,model,day,mechanism")?;
    for t in tickets {
        writeln!(
            out,
            "{},{},{},{}",
            t.drive_id.0,
            t.model,
            t.day,
            t.mechanism.name()
        )?;
    }
    Ok(())
}

/// Read a trouble-ticket CSV (as written by [`export_tickets_csv`]) back
/// into a ticket list, preserving each ticket's failure mechanism.
///
/// # Errors
///
/// Returns [`DatasetError::ParseCsv`] on malformed rows, unknown models, or
/// unknown mechanism names.
pub fn import_tickets_csv<R: BufRead>(input: R) -> Result<Vec<TroubleTicket>, DatasetError> {
    let mut lines = input.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| DatasetError::ParseCsv {
        line: 1,
        message: "empty file".to_string(),
    })?;
    let header = header?;
    if header.split(',').count() != 4 {
        return Err(DatasetError::ParseCsv {
            line: 1,
            message: "expected 4 columns in header (drive_id,model,day,mechanism)".to_string(),
        });
    }
    let mut tickets = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let parse_err = |message: String| DatasetError::ParseCsv {
            line: line_no,
            message,
        };
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(parse_err(format!(
                "expected 4 fields, got {}",
                fields.len()
            )));
        }
        let id: u32 = fields[0]
            .parse()
            .map_err(|_| parse_err(format!("bad drive_id {:?}", fields[0])))?;
        let model = DriveModel::from_name(fields[1])
            .ok_or_else(|| parse_err(format!("unknown model {:?}", fields[1])))?;
        let day: u32 = fields[2]
            .parse()
            .map_err(|_| parse_err(format!("bad day {:?}", fields[2])))?;
        let mechanism = FailureMechanism::from_name(fields[3])
            .ok_or_else(|| parse_err(format!("unknown mechanism {:?}", fields[3])))?;
        tickets.push(TroubleTicket {
            drive_id: DriveId(id),
            model,
            day,
            mechanism,
        });
    }
    Ok(tickets)
}

/// Read a SMART-log CSV (as written by [`export_smart_csv`]) back into a
/// [`Fleet`]. `tickets` marks which drives failed on which day; `config` is
/// attached verbatim (only its `days` bound is validated against the data).
///
/// # Errors
///
/// Returns [`DatasetError::ParseCsv`] on malformed rows, non-contiguous day
/// sequences, or values for attributes the row's model does not report.
pub fn import_smart_csv<R: BufRead>(
    input: R,
    tickets: &[TroubleTicket],
    config: FleetConfig,
) -> Result<Fleet, DatasetError> {
    let mut lines = input.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| DatasetError::ParseCsv {
        line: 1,
        message: "empty file".to_string(),
    })?;
    let header = header?;
    check_smart_header(&header)?;
    let expected_cols = expected_smart_cols();

    struct Partial {
        id: DriveId,
        model: DriveModel,
        deploy_day: u32,
        next_day: u32,
        values: Vec<f32>,
        n_days: u32,
    }
    let mut partials: Vec<Partial> = Vec::new();

    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != expected_cols {
            return Err(DatasetError::ParseCsv {
                line: line_no,
                message: format!("expected {expected_cols} fields, got {}", fields.len()),
            });
        }
        let parse_err = |message: String| DatasetError::ParseCsv {
            line: line_no,
            message,
        };
        let id: u32 = fields[0]
            .parse()
            .map_err(|_| parse_err(format!("bad drive_id {:?}", fields[0])))?;
        let model = DriveModel::from_name(fields[1])
            .ok_or_else(|| parse_err(format!("unknown model {:?}", fields[1])))?;
        let day: u32 = fields[2]
            .parse()
            .map_err(|_| parse_err(format!("bad day {:?}", fields[2])))?;

        let partial = match partials.last_mut() {
            Some(p) if p.id == DriveId(id) => p,
            _ => {
                partials.push(Partial {
                    id: DriveId(id),
                    model,
                    deploy_day: day,
                    next_day: day,
                    values: Vec::new(),
                    n_days: 0,
                });
                // lint:allow(panic-free) the push on the line above makes
                // last_mut() Some
                partials.last_mut().expect("just pushed")
            }
        };
        if partial.model != model {
            return Err(parse_err(format!("drive {id} changes model mid-file")));
        }
        if day != partial.next_day {
            return Err(parse_err(format!(
                "drive {id}: expected day {}, got {day}",
                partial.next_day
            )));
        }

        for (a, attr) in SmartAttribute::ALL.iter().enumerate() {
            let raw = fields[3 + 2 * a];
            let norm = fields[4 + 2 * a];
            let reported = model.has_attribute(*attr);
            match (reported, raw.is_empty(), norm.is_empty()) {
                (true, false, false) => {
                    let r: f32 = raw
                        .parse()
                        .map_err(|_| parse_err(format!("bad {attr}_R value {raw:?}")))?;
                    let n: f32 = norm
                        .parse()
                        .map_err(|_| parse_err(format!("bad {attr}_N value {norm:?}")))?;
                    partial.values.push(r);
                    partial.values.push(n);
                }
                (false, true, true) => {}
                _ => {
                    return Err(parse_err(format!(
                        "drive {id}: attribute {attr} presence does not match model {model}"
                    )))
                }
            }
        }
        partial.next_day += 1;
        partial.n_days += 1;
    }

    // Sorted-slice binary search instead of a linear scan per drive: the
    // join is O((drives + tickets) log tickets) and stays deterministic
    // (HashMap iteration is banned in order-sensitive crates).
    let by_id = sort_tickets_by_drive(tickets);
    let drives = partials
        .into_iter()
        .map(|p| {
            let failure = ticket_for_drive(&by_id, p.id).map(|t| FailureRecord {
                day: t.day,
                mechanism: t.mechanism,
            });
            DriveRecord::from_flat_values(
                p.id,
                p.model,
                p.deploy_day,
                0,
                failure,
                p.values,
                p.n_days,
            )
        })
        .collect();
    Ok(Fleet::from_records(config, drives))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::FeatureId;
    use crate::tickets::tickets_from_summaries;

    fn small_fleet() -> Fleet {
        let config = FleetConfig::builder()
            .days(150)
            .seed(3)
            .drives(DriveModel::Ma1, 4)
            .drives(DriveModel::Mc2, 4)
            .build()
            .unwrap();
        Fleet::generate(&config)
    }

    #[test]
    fn export_then_import_roundtrips_values() {
        let fleet = small_fleet();
        let tickets = tickets_from_summaries(&fleet.summaries());
        let mut buf = Vec::new();
        export_smart_csv(&fleet, &mut buf).unwrap();
        let imported = import_smart_csv(buf.as_slice(), &tickets, fleet.config().clone()).unwrap();

        assert_eq!(imported.drives().len(), fleet.drives().len());
        for (orig, imp) in fleet.drives().iter().zip(imported.drives()) {
            assert_eq!(orig.id, imp.id);
            assert_eq!(orig.model, imp.model);
            assert_eq!(orig.n_days(), imp.n_days());
            assert_eq!(orig.is_failed(), imp.is_failed());
            let f = FeatureId::raw(SmartAttribute::Uce);
            assert_eq!(orig.series(f), imp.series(f));
        }
    }

    #[test]
    fn header_has_all_attribute_columns() {
        let fleet = small_fleet();
        let mut buf = Vec::new();
        export_smart_csv(&fleet, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let header = text.lines().next().unwrap();
        assert!(header.contains("OCE_R,OCE_N"));
        assert!(header.contains("MWI_R,MWI_N"));
        assert_eq!(header.split(',').count(), 3 + 44);
    }

    #[test]
    fn unreported_attributes_are_empty() {
        let fleet = small_fleet();
        let mut buf = Vec::new();
        export_smart_csv(&fleet, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // MA1 does not report TLW; find an MA1 row and check emptiness.
        let header: Vec<&str> = text.lines().next().unwrap().split(',').collect();
        let tlw_col = header.iter().position(|&c| c == "TLW_R").unwrap();
        let ma1_row = text.lines().find(|l| l.contains(",MA1,")).unwrap();
        let fields: Vec<&str> = ma1_row.split(',').collect();
        assert!(fields[tlw_col].is_empty());
    }

    #[test]
    fn tickets_csv_shape() {
        let fleet = small_fleet();
        let tickets = tickets_from_summaries(&fleet.summaries());
        let mut buf = Vec::new();
        export_tickets_csv(&tickets, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), tickets.len() + 1);
        assert!(text.starts_with("drive_id,model,day,mechanism\n"));
        for line in text.lines().skip(1) {
            assert_eq!(line.split(',').count(), 4, "{line:?}");
        }
    }

    #[test]
    fn tickets_csv_roundtrip_preserves_mechanisms() {
        let fleet = small_fleet();
        let tickets = tickets_from_summaries(&fleet.summaries());
        assert!(!tickets.is_empty(), "fixture fleet must have failures");
        let mut buf = Vec::new();
        export_tickets_csv(&tickets, &mut buf).unwrap();
        let imported = import_tickets_csv(buf.as_slice()).unwrap();
        assert_eq!(imported, tickets);
    }

    #[test]
    fn import_tickets_rejects_malformed_rows() {
        let cases = [
            ("", 1, "empty file"),
            ("drive_id,model,day\n", 1, "expected 4 columns"),
            (
                "drive_id,model,day,mechanism\n0,MA1,5",
                2,
                "expected 4 fields",
            ),
            (
                "drive_id,model,day,mechanism\nx,MA1,5,wear_out",
                2,
                "bad drive_id",
            ),
            (
                "drive_id,model,day,mechanism\n0,ZZ9,5,wear_out",
                2,
                "unknown model",
            ),
            (
                "drive_id,model,day,mechanism\n0,MA1,x,wear_out",
                2,
                "bad day",
            ),
            (
                "drive_id,model,day,mechanism\n0,MA1,5,gremlins",
                2,
                "unknown mechanism",
            ),
        ];
        for (text, line, needle) in cases {
            let err = import_tickets_csv(text.as_bytes()).unwrap_err();
            match err {
                DatasetError::ParseCsv { line: l, message } => {
                    assert_eq!(l, line, "{text:?}");
                    assert!(message.contains(needle), "{text:?}: {message}");
                }
                other => panic!("{text:?}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn import_smart_csv_preserves_ticket_mechanisms() {
        let fleet = small_fleet();
        let tickets = tickets_from_summaries(&fleet.summaries());
        assert!(!tickets.is_empty(), "fixture fleet must have failures");
        let mut buf = Vec::new();
        export_smart_csv(&fleet, &mut buf).unwrap();
        let imported = import_smart_csv(buf.as_slice(), &tickets, fleet.config().clone()).unwrap();
        for (orig, imp) in fleet.drives().iter().zip(imported.drives()) {
            assert_eq!(orig.failure, imp.failure, "drive {}", orig.id);
        }
    }

    #[test]
    fn import_rejects_malformed_rows() {
        let config = FleetConfig::builder()
            .days(150)
            .drives(DriveModel::Ma1, 1)
            .build()
            .unwrap();
        let bad = "drive_id,model,day\n0,MA1";
        assert!(import_smart_csv(bad.as_bytes(), &[], config.clone()).is_err());
        let bad_header = "a,b\n";
        assert!(import_smart_csv(bad_header.as_bytes(), &[], config.clone()).is_err());
        assert!(import_smart_csv(&b""[..], &[], config).is_err());
    }

    #[test]
    fn import_rejects_day_gaps() {
        let fleet = small_fleet();
        let mut buf = Vec::new();
        export_smart_csv(&fleet, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.remove(2); // punch a hole in drive 0's day sequence
        let holed = lines.join("\n");
        let err = import_smart_csv(holed.as_bytes(), &[], fleet.config().clone());
        assert!(err.is_err());
    }
}
