//! Adversarial-fleet scenario engine (DESIGN.md §11).
//!
//! A [`ScenarioConfig`] is a deterministic post-pass over a clean simulated
//! [`Fleet`]: it perturbs the *records* — never the simulator — so every
//! scenario stays bit-reproducible from `(fleet seed, scenario seed)` and
//! the clean baseline is always recoverable by switching the scenario off.
//! Three fleet-level perturbations model the operational chaos observed in
//! large SSD deployments:
//!
//! * [`FirmwareRollout`] — a mid-life firmware update re-maps an
//!   attribute's semantics for one model: raw values change units and/or
//!   the normalized scale flips orientation from the rollout day onward.
//! * [`MissingCoverage`] — a vendor batch that never reports one SMART
//!   attribute: the affected drives' cells become NaN (the
//!   missing-measurement marker the trees and rankers understand).
//! * [`ReplacementChurn`] — drives swapped out mid-window: the original
//!   record is truncated and the remaining telemetry re-appears under a
//!   fresh drive id deployed on the churn day.
//!
//! A separate, stream-level helper — [`inject_csv_chaos`] — corrupts an
//! exported CSV with duplicate, out-of-order and malformed rows and
//! returns the *exact* [`SkipCounts`] tolerant ingestion must report, so
//! the chaos suite can assert skip accounting to the row.

use crate::attr::{FeatureId, SmartAttribute, ValueKind};
use crate::config::FleetConfig;
use crate::error::DatasetError;
use crate::fleet::Fleet;
use crate::ingest::SkipCounts;
use crate::model::{DriveModel, Vendor};
use crate::records::{DriveId, DriveRecord, FailureRecord};
use rng::seq::sample_without_replacement;
use rng::{derive_seed, Rng, SeedableRng, StdRng};

/// A mid-life firmware update that re-maps one attribute's semantics for
/// every drive of one model, from `day` onward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FirmwareRollout {
    /// First dataset day the new firmware reports under the new semantics.
    pub day: u32,
    /// The model receiving the rollout.
    pub model: DriveModel,
    /// The attribute whose semantics change.
    pub attr: SmartAttribute,
    /// Unit change of the raw value (e.g. `512.0` for sectors → bytes).
    pub raw_scale: f32,
    /// Whether the normalized scale flips orientation (`n → 100 − n`).
    pub invert_norm: bool,
}

/// A vendor batch whose drives never report one SMART attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissingCoverage {
    /// The vendor whose batch is affected (all models of the vendor).
    pub vendor: Vendor,
    /// The attribute the batch fails to report. Must not be
    /// [`SmartAttribute::Mwi`] — the pipeline's wear-out grouping requires
    /// MWI on every drive.
    pub attr: SmartAttribute,
    /// Fraction of the vendor's drives in the bad batch, in `[0, 1]`;
    /// membership is a deterministic per-drive coin.
    pub batch_fraction: f64,
}

/// Drive replacement churn: a deterministic per-drive fraction of the
/// drives alive on `day` is swapped out that day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplacementChurn {
    /// The day the replacements happen. Only drives deployed before this
    /// day and still observed on it are eligible.
    pub day: u32,
    /// Fraction of eligible drives replaced, in `[0, 1]`.
    pub fraction: f64,
}

/// A full adversarial scenario: any combination of the three fleet
/// perturbations, applied in declaration order (firmware → missing →
/// churn) under one scenario seed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScenarioConfig {
    /// Seed for the per-drive scenario coins (batch membership, churn
    /// victims). Independent of the fleet seed.
    pub seed: u64,
    /// Optional firmware rollout.
    pub firmware: Option<FirmwareRollout>,
    /// Optional vendor-batch missing coverage.
    pub missing: Option<MissingCoverage>,
    /// Optional replacement churn.
    pub churn: Option<ReplacementChurn>,
}

/// Stream tags decorrelating the per-drive coins of the different
/// perturbations under one scenario seed.
const STREAM_MISSING: u64 = 0x4D49_5353; // "MISS"
const STREAM_CHURN: u64 = 0x4348_524E; // "CHRN"

/// The per-drive scenario RNG: seeded from the scenario seed, a
/// perturbation stream tag and the drive id, so adding or removing one
/// perturbation never re-rolls another's coins.
fn drive_coin(seed: u64, stream: u64, id: DriveId) -> StdRng {
    StdRng::seed_from_u64(derive_seed(derive_seed(seed, stream), u64::from(id.0)))
}

/// A drive record decomposed into parts the perturbations can edit.
struct EditableDrive {
    id: DriveId,
    model: DriveModel,
    deploy_day: u32,
    initial_age_days: u32,
    failure: Option<FailureRecord>,
    /// Day-major `[attr][raw, norm]` flat values, as stored by
    /// [`DriveRecord`].
    values: Vec<f32>,
    n_days: u32,
}

impl EditableDrive {
    /// Read a record back into its flat-value layout. The f64 → f32 round
    /// trip is exact: the record stores f32 and widens on read.
    fn from_record(d: &DriveRecord) -> EditableDrive {
        let attrs = d.model.attributes();
        let mut values = Vec::with_capacity(d.n_days() as usize * attrs.len() * 2);
        for day in d.deploy_day..=d.last_day() {
            for &attr in attrs {
                for &kind in &ValueKind::BOTH {
                    let v = d
                        .value_on(day, FeatureId { attr, kind })
                        .unwrap_or(f64::NAN);
                    // Narrowing an f64 that holds an
                    // exact f32 back to f32 is lossless
                    values.push(v as f32);
                }
            }
        }
        EditableDrive {
            id: d.id,
            model: d.model,
            deploy_day: d.deploy_day,
            initial_age_days: d.initial_age_days,
            failure: d.failure,
            values,
            n_days: d.n_days(),
        }
    }

    fn into_record(self) -> DriveRecord {
        DriveRecord::from_flat_values(
            self.id,
            self.model,
            self.deploy_day,
            self.initial_age_days,
            self.failure,
            self.values,
            self.n_days,
        )
    }

    /// Flat-value stride of one day.
    fn stride(&self) -> usize {
        2 * self.model.attributes().len()
    }

    /// Mutable `[raw, norm]` pair of `attr` on the day at `day_offset`.
    fn cells_mut(&mut self, day_offset: usize, attr_idx: usize) -> &mut [f32] {
        let base = day_offset * self.stride() + 2 * attr_idx;
        &mut self.values[base..base + 2]
    }
}

/// A churned-out drive's telemetry tail, waiting for its fresh id.
///
/// Every perturbation except the replacement's *id* is decidable per
/// drive, so the streaming generator can apply the scenario inside each
/// worker and only the id assignment (sequential, in victim order, past
/// the densest original id) happens at the in-order merge point.
#[derive(Debug)]
pub(crate) struct PendingReplacement {
    model: DriveModel,
    deploy_day: u32,
    failure: Option<FailureRecord>,
    values: Vec<f32>,
    n_days: u32,
}

impl PendingReplacement {
    /// Materialize the replacement under its assigned id. A replacement is
    /// a fresh drive in the same slot (`initial_age_days == 0`); the
    /// carried telemetry tail is a modelling shortcut, not a wear claim.
    pub(crate) fn into_record(self, id: DriveId) -> DriveRecord {
        DriveRecord::from_flat_values(
            id,
            self.model,
            self.deploy_day,
            0,
            self.failure,
            self.values,
            self.n_days,
        )
    }
}

/// Apply `scenario` to a single drive: the firmware → missing → churn
/// cascade, minus the replacement-id assignment (returned as a
/// [`PendingReplacement`] for the caller to number in victim order).
///
/// Every perturbation is drive-local — firmware and missing edit cells in
/// place, and the churn coin is a fresh per-drive RNG — so applying this
/// per drive (in any grouping) and then numbering the pending replacements
/// in drive order is *bit-identical* to the whole-fleet
/// [`apply_scenario`], which is itself built on this function.
///
/// The caller must have [`validate`]d the scenario.
pub(crate) fn apply_scenario_to_drive(
    record: &DriveRecord,
    scenario: &ScenarioConfig,
) -> (DriveRecord, Option<PendingReplacement>) {
    let mut drive = EditableDrive::from_record(record);
    if let Some(rollout) = &scenario.firmware {
        firmware_drive(&mut drive, rollout);
    }
    if let Some(missing) = &scenario.missing {
        missing_drive(&mut drive, missing, scenario.seed);
    }
    let pending = scenario
        .churn
        .as_ref()
        .and_then(|churn| churn_drive(&mut drive, churn, scenario.seed));
    (drive.into_record(), pending)
}

/// Apply `scenario` to `fleet`, returning the perturbed fleet. The input
/// fleet is untouched; an all-`None` scenario returns a bit-identical
/// copy.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] when a fraction lies outside
/// `[0, 1]`, when [`MissingCoverage::attr`] is `MWI`, or when a
/// [`FirmwareRollout::raw_scale`] is not finite.
pub fn apply_scenario(fleet: &Fleet, scenario: &ScenarioConfig) -> Result<Fleet, DatasetError> {
    validate(scenario)?;
    let mut records = Vec::with_capacity(fleet.drives().len());
    let mut pending = Vec::new();
    for record in fleet.drives() {
        let (out, replacement) = apply_scenario_to_drive(record, scenario);
        records.push(out);
        pending.extend(replacement);
    }
    // Replacement ids continue past the densest existing id, in victim
    // order, so the perturbed fleet's ids stay unique and deterministic.
    let mut next_id = records.iter().map(|d| d.id.0).max().map_or(0, |m| m + 1);
    for replacement in pending {
        records.push(replacement.into_record(DriveId(next_id)));
        next_id += 1;
    }
    Ok(Fleet::from_records(fleet.config().clone(), records))
}

pub(crate) fn validate(scenario: &ScenarioConfig) -> Result<(), DatasetError> {
    let invalid = |message: String| DatasetError::InvalidConfig { message };
    if let Some(r) = &scenario.firmware {
        if !r.raw_scale.is_finite() {
            return Err(invalid(format!(
                "firmware raw_scale must be finite, got {}",
                r.raw_scale
            )));
        }
    }
    if let Some(m) = &scenario.missing {
        if m.attr == SmartAttribute::Mwi {
            return Err(invalid(
                "missing coverage cannot target MWI: the pipeline's wear-out \
                 grouping reads it on every drive"
                    .to_string(),
            ));
        }
        if !(0.0..=1.0).contains(&m.batch_fraction) {
            return Err(invalid(format!(
                "missing batch_fraction must lie in [0, 1], got {}",
                m.batch_fraction
            )));
        }
    }
    if let Some(c) = &scenario.churn {
        if !(0.0..=1.0).contains(&c.fraction) {
            return Err(invalid(format!(
                "churn fraction must lie in [0, 1], got {}",
                c.fraction
            )));
        }
    }
    Ok(())
}

fn firmware_drive(drive: &mut EditableDrive, rollout: &FirmwareRollout) {
    if drive.model != rollout.model {
        return;
    }
    let Some(attr_idx) = drive.model.attribute_index(rollout.attr) else {
        return;
    };
    let first_offset = rollout.day.saturating_sub(drive.deploy_day) as usize;
    if rollout.day < drive.deploy_day {
        // Deployed after the rollout: the whole record is new-firmware.
    } else if first_offset >= drive.n_days as usize {
        return; // retired before the rollout
    }
    for day_offset in first_offset..drive.n_days as usize {
        let cells = drive.cells_mut(day_offset, attr_idx);
        cells[0] *= rollout.raw_scale;
        if rollout.invert_norm {
            cells[1] = 100.0 - cells[1];
        }
    }
}

fn missing_drive(drive: &mut EditableDrive, missing: &MissingCoverage, seed: u64) {
    if drive.model.vendor() != missing.vendor {
        return;
    }
    let Some(attr_idx) = drive.model.attribute_index(missing.attr) else {
        return;
    };
    let in_batch = drive_coin(seed, STREAM_MISSING, drive.id).random_bool(missing.batch_fraction);
    if !in_batch {
        return;
    }
    for day_offset in 0..drive.n_days as usize {
        drive.cells_mut(day_offset, attr_idx).fill(f32::NAN);
    }
}

fn churn_drive(
    drive: &mut EditableDrive,
    churn: &ReplacementChurn,
    seed: u64,
) -> Option<PendingReplacement> {
    let last_day = drive.deploy_day + drive.n_days.saturating_sub(1);
    let eligible = drive.deploy_day < churn.day && last_day >= churn.day;
    if !eligible || !drive_coin(seed, STREAM_CHURN, drive.id).random_bool(churn.fraction) {
        return None;
    }
    let keep_days = (churn.day - drive.deploy_day) as usize;
    let stride = drive.stride();
    let tail = drive.values.split_off(keep_days * stride);
    let tail_days = drive.n_days - keep_days as u32;
    drive.n_days = keep_days as u32;
    Some(PendingReplacement {
        model: drive.model,
        deploy_day: churn.day,
        failure: drive.failure.take(),
        values: tail,
        n_days: tail_days,
    })
}

/// The mixed-vendor fleet preset of the chaos suite: all three vendors,
/// four models, failure rates hot enough that a short window still holds
/// positives.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] if `days` is zero (propagated
/// from the fleet builder).
pub fn mixed_vendor_config(days: u32, seed: u64) -> Result<FleetConfig, DatasetError> {
    FleetConfig::builder()
        .days(days)
        .seed(seed)
        .drives(DriveModel::Ma1, 12)
        .drives(DriveModel::Mb2, 10)
        .drives(DriveModel::Mc1, 20)
        .drives(DriveModel::Mc2, 8)
        .failure_scale(8.0)
        .build()
}

/// Row-level corruption to inject into an exported SMART CSV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CsvChaos {
    /// Rows re-delivered immediately after themselves.
    pub duplicates: usize,
    /// Stale re-deliveries: a run's first row re-inserted later in the run.
    pub out_of_order: usize,
    /// Unparseable lines spliced between rows.
    pub malformed: usize,
}

/// Corrupt `csv` with `chaos` under `seed`, returning the corrupted text
/// and the exact [`SkipCounts`] tolerant ingestion reports for it.
///
/// Every insertion keeps drive runs shard-safe (inserted rows carry the
/// open run's id, or no id at all), so the returned counts hold at any
/// worker count and shard size; strict ingestion fails on the first
/// inserted fault.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] when `csv` has no data rows to
/// corrupt, or `out_of_order > 0` with no run of at least two rows.
pub fn inject_csv_chaos(
    csv: &str,
    chaos: &CsvChaos,
    seed: u64,
) -> Result<(String, SkipCounts), DatasetError> {
    let invalid = |message: &str| DatasetError::InvalidConfig {
        message: message.to_string(),
    };
    let lines: Vec<&str> = csv.lines().collect();
    if lines.len() < 2 {
        return Err(invalid("chaos injection needs at least one data row"));
    }
    let data = &lines[1..];
    // Leading drive id per data row; runs are maximal same-id stretches.
    let ids: Vec<Option<&str>> = data.iter().map(|l| l.split(',').next()).collect();
    let run_start: Vec<usize> = (0..data.len())
        .map(|i| {
            if i > 0 && ids[i] == ids[i - 1] {
                0 // patched below: carries the run's start index
            } else {
                i
            }
        })
        .collect();
    let mut run_start = run_start;
    for i in 1..run_start.len() {
        if ids[i] == ids[i - 1] {
            run_start[i] = run_start[i - 1];
        }
    }

    let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x4348_414F)); // "CHAO"
                                                                         // Anchors are data-row indices; the extra line goes right after its
                                                                         // anchor. Duplicates may anchor anywhere; out-of-order anchors need a
                                                                         // row that is not its run's first (so the re-inserted first row is
                                                                         // stale by ≥ 2 days, not a plain duplicate).
    let dup_anchors = pick(&mut rng, data.len(), chaos.duplicates)
        .ok_or_else(|| invalid("more duplicates requested than data rows"))?;
    let ooo_candidates: Vec<usize> = (0..data.len()).filter(|&i| run_start[i] != i).collect();
    let ooo_picks = pick(&mut rng, ooo_candidates.len(), chaos.out_of_order)
        .ok_or_else(|| invalid("out-of-order injection needs a run of at least two rows"))?;
    let mal_anchors = pick(&mut rng, data.len(), chaos.malformed)
        .ok_or_else(|| invalid("more malformed rows requested than data rows"))?;

    let mut extra: Vec<Vec<String>> = vec![Vec::new(); data.len()];
    for &i in &dup_anchors {
        extra[i].push(data[i].to_string());
    }
    for &p in &ooo_picks {
        let i = ooo_candidates[p];
        extra[i].push(data[run_start[i]].to_string());
    }
    for &i in &mal_anchors {
        extra[i].push("#chaos#".to_string());
    }

    let mut out = String::with_capacity(csv.len() + 64 * (chaos.total()));
    out.push_str(lines[0]);
    out.push('\n');
    for (i, line) in data.iter().enumerate() {
        out.push_str(line);
        out.push('\n');
        for inserted in &extra[i] {
            out.push_str(inserted);
            out.push('\n');
        }
    }

    let expected = SkipCounts {
        duplicate_rows: chaos.duplicates as u64,
        out_of_order_rows: chaos.out_of_order as u64,
        malformed_rows: chaos.malformed as u64,
        backfilled_days: 0,
    };
    Ok((out, expected))
}

impl CsvChaos {
    /// Total inserted lines.
    pub fn total(&self) -> usize {
        self.duplicates + self.out_of_order + self.malformed
    }
}

/// `k` distinct indices below `n`, or `None` when `k > n` (always `Some`
/// for `k == 0`).
fn pick(rng: &mut StdRng, n: usize, k: usize) -> Option<Vec<usize>> {
    if k == 0 {
        return Some(Vec::new());
    }
    if k > n {
        return None;
    }
    Some(sample_without_replacement(rng, n, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::SmartAttribute;
    use crate::csv::export_smart_csv;
    use crate::ingest::{import_smart_csv_sharded_with_stats, IngestConfig, IngestTolerance};
    use crate::tickets::tickets_from_summaries;

    fn small_fleet() -> Fleet {
        let config = mixed_vendor_config(150, 3).unwrap();
        Fleet::generate(&config)
    }

    #[test]
    fn empty_scenario_is_identity() {
        let fleet = small_fleet();
        let out = apply_scenario(&fleet, &ScenarioConfig::default()).unwrap();
        assert_eq!(out, fleet);
    }

    #[test]
    fn scenarios_are_deterministic() {
        let fleet = small_fleet();
        let scenario = ScenarioConfig {
            seed: 9,
            firmware: Some(FirmwareRollout {
                day: 60,
                model: DriveModel::Mc1,
                attr: SmartAttribute::Rsc,
                raw_scale: 512.0,
                invert_norm: true,
            }),
            missing: Some(MissingCoverage {
                vendor: Vendor::Ma,
                attr: SmartAttribute::Uce,
                batch_fraction: 0.5,
            }),
            churn: Some(ReplacementChurn {
                day: 75,
                fraction: 0.3,
            }),
        };
        let a = apply_scenario(&fleet, &scenario).unwrap();
        let b = apply_scenario(&fleet, &scenario).unwrap();
        // NaN cells defeat PartialEq; CSV export (where NaN prints
        // stably) is the byte-faithful comparison.
        let csv = |f: &Fleet| {
            let mut buf = Vec::new();
            export_smart_csv(f, &mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        };
        assert_eq!(csv(&a), csv(&b));
        assert_eq!(a.summaries(), b.summaries());
        assert_ne!(csv(&a), csv(&fleet));
    }

    #[test]
    fn firmware_rollout_rescales_from_day_onward() {
        let fleet = small_fleet();
        let scenario = ScenarioConfig {
            firmware: Some(FirmwareRollout {
                day: 60,
                model: DriveModel::Mc1,
                attr: SmartAttribute::Rsc,
                raw_scale: 512.0,
                invert_norm: true,
            }),
            ..ScenarioConfig::default()
        };
        let out = apply_scenario(&fleet, &scenario).unwrap();
        let raw = FeatureId::raw(SmartAttribute::Rsc);
        let norm = FeatureId::normalized(SmartAttribute::Rsc);
        let mut checked_pre = false;
        let mut checked_post = false;
        for (before, after) in fleet.drives().iter().zip(out.drives()) {
            if before.model != DriveModel::Mc1 {
                assert_eq!(before, after);
                continue;
            }
            for day in before.deploy_day..=before.last_day() {
                let (b_raw, a_raw) = (
                    before.value_on(day, raw).unwrap(),
                    after.value_on(day, raw).unwrap(),
                );
                let (b_norm, a_norm) = (
                    before.value_on(day, norm).unwrap(),
                    after.value_on(day, norm).unwrap(),
                );
                if day < 60 {
                    assert_eq!(b_raw, a_raw);
                    assert_eq!(b_norm, a_norm);
                    checked_pre = true;
                } else {
                    // f32 arithmetic widened to f64: compare in f32.
                    // Test-side exactness check.
                    assert_eq!((b_raw as f32) * 512.0, a_raw as f32, "day {day}");
                    assert_eq!(100.0 - (b_norm as f32), a_norm as f32);
                    checked_post = true;
                }
            }
        }
        assert!(checked_pre && checked_post);
    }

    #[test]
    fn missing_coverage_blanks_a_batch_only() {
        let fleet = small_fleet();
        let scenario = ScenarioConfig {
            seed: 4,
            missing: Some(MissingCoverage {
                vendor: Vendor::Mc,
                attr: SmartAttribute::Uce,
                batch_fraction: 0.5,
            }),
            ..ScenarioConfig::default()
        };
        let out = apply_scenario(&fleet, &scenario).unwrap();
        let raw = FeatureId::raw(SmartAttribute::Uce);
        let mut blanked = 0usize;
        let mut intact = 0usize;
        for (before, after) in fleet.drives().iter().zip(out.drives()) {
            if before.model.vendor() != Vendor::Mc {
                assert_eq!(before, after);
                continue;
            }
            let first = after.value_on(after.deploy_day, raw).unwrap();
            if first.is_nan() {
                blanked += 1;
                // Every day of the drive is blanked, raw and normalized.
                for day in after.deploy_day..=after.last_day() {
                    assert!(after.value_on(day, raw).unwrap().is_nan());
                    assert!(after
                        .value_on(day, FeatureId::normalized(SmartAttribute::Uce))
                        .unwrap()
                        .is_nan());
                }
            } else {
                intact += 1;
                assert_eq!(before, after);
            }
        }
        assert!(blanked > 0 && intact > 0, "{blanked} / {intact}");
    }

    #[test]
    fn missing_mwi_is_rejected() {
        let fleet = small_fleet();
        let scenario = ScenarioConfig {
            missing: Some(MissingCoverage {
                vendor: Vendor::Mc,
                attr: SmartAttribute::Mwi,
                batch_fraction: 0.5,
            }),
            ..ScenarioConfig::default()
        };
        assert!(apply_scenario(&fleet, &scenario).is_err());
    }

    #[test]
    fn churn_splits_victims_and_preserves_telemetry() {
        let fleet = small_fleet();
        let scenario = ScenarioConfig {
            seed: 2,
            churn: Some(ReplacementChurn {
                day: 75,
                fraction: 0.4,
            }),
            ..ScenarioConfig::default()
        };
        let out = apply_scenario(&fleet, &scenario).unwrap();
        let n = fleet.drives().len();
        assert!(out.drives().len() > n, "no drive churned");
        let mwi = FeatureId::normalized(SmartAttribute::Mwi);
        for replacement in &out.drives()[n..] {
            assert_eq!(replacement.deploy_day, 75);
            assert_eq!(replacement.initial_age_days, 0);
            // The replacement's telemetry equals the original tail.
            let original = fleet
                .drives()
                .iter()
                .find(|d| {
                    d.observed_on(75)
                        && d.value_on(75, mwi) == replacement.value_on(75, mwi)
                        && d.model == replacement.model
                })
                .expect("matching original");
            assert_eq!(original.last_day(), replacement.last_day());
            // And its truncated front keeps no failure.
            let front = &out.drives()[original.id.0 as usize];
            assert!(front.failure.is_none());
            assert_eq!(front.last_day(), 74);
        }
        // Total observed days are conserved.
        let days = |f: &Fleet| {
            f.drives()
                .iter()
                .map(|d| u64::from(d.n_days()))
                .sum::<u64>()
        };
        assert_eq!(days(&fleet), days(&out));
    }

    #[test]
    fn fraction_bounds_are_validated() {
        let fleet = small_fleet();
        for fraction in [-0.1, 1.1] {
            let scenario = ScenarioConfig {
                churn: Some(ReplacementChurn { day: 10, fraction }),
                ..ScenarioConfig::default()
            };
            assert!(apply_scenario(&fleet, &scenario).is_err(), "{fraction}");
        }
    }

    #[test]
    fn csv_chaos_counts_are_exact_under_tolerant_ingest() {
        let fleet = small_fleet();
        let tickets = tickets_from_summaries(&fleet.summaries());
        let mut buf = Vec::new();
        export_smart_csv(&fleet, &mut buf).unwrap();
        let clean = String::from_utf8(buf).unwrap();
        let chaos = CsvChaos {
            duplicates: 5,
            out_of_order: 3,
            malformed: 4,
        };
        let (dirty, expected) = inject_csv_chaos(&clean, &chaos, 17).unwrap();
        for workers in [1, 4] {
            let ingest = IngestConfig {
                shard_rows: 37,
                workers,
                tolerance: IngestTolerance::Tolerant,
                ..IngestConfig::default()
            };
            let (recovered, stats) = import_smart_csv_sharded_with_stats(
                dirty.as_bytes(),
                &tickets,
                fleet.config().clone(),
                &ingest,
            )
            .unwrap();
            assert_eq!(stats.skipped, expected, "workers={workers}");
            assert_eq!(recovered.drives().len(), fleet.drives().len());
        }
    }

    #[test]
    fn csv_chaos_is_rejected_by_strict_ingest() {
        let fleet = small_fleet();
        let tickets = tickets_from_summaries(&fleet.summaries());
        let mut buf = Vec::new();
        export_smart_csv(&fleet, &mut buf).unwrap();
        let clean = String::from_utf8(buf).unwrap();
        let chaos = CsvChaos {
            duplicates: 1,
            out_of_order: 1,
            malformed: 1,
        };
        let (dirty, _) = inject_csv_chaos(&clean, &chaos, 17).unwrap();
        let err = import_smart_csv_sharded_with_stats(
            dirty.as_bytes(),
            &tickets,
            fleet.config().clone(),
            &IngestConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, DatasetError::ParseCsv { .. }));
    }
}
