//! Day-by-day SMART trajectory simulation for one planned drive.

use crate::attr::SmartAttribute;
use crate::gen::noise::{bernoulli, poisson};
use crate::gen::plan::DrivePlan;
use crate::mechanism::FailureMechanism;
use crate::records::{DriveId, DriveRecord, FailureRecord};
use rng::Rng;
use smart_stats::gaussian::sample_normal;

/// Probability per day that a healthy drive emits a transient error burst —
/// the "scare events" that create hard negatives for the predictor.
const SCARE_PROBABILITY: f64 = 0.0015;

/// Simulate the full daily SMART history of one planned drive over a window
/// of `window_days`, consuming randomness from `rng`.
pub fn simulate_drive<R: Rng + ?Sized>(
    id: DriveId,
    plan: &DrivePlan,
    window_days: u32,
    rng: &mut R,
) -> DriveRecord {
    let model = plan.model;
    let profile = model.profile();
    let attrs = model.attributes();
    let stride = 2 * attrs.len();
    let last_day = plan.last_day(window_days);
    let n_days = last_day - plan.deploy_day + 1;
    let mut values = Vec::with_capacity(n_days as usize * stride);

    let mut state = CounterState::default();
    // Pre-window history: drives deployed before the window accumulated
    // background errors and wear at their base rates.
    state.seed_history(plan, rng);

    let season_phase: f64 = rng.random::<f64>() * 365.0;

    for day in plan.deploy_day..=last_day {
        let in_service = plan.initial_age_days as f64 + (day - plan.deploy_day) as f64;

        // --- Wear ---
        let mut wear_today = plan.wear_rate * (0.7 + 0.6 * rng.random::<f64>());
        if let Some(d) = plan.destiny {
            if day >= d.onset_day {
                wear_today *= d.mechanism.wear_acceleration();
            }
        }
        state.mwi_consumed += wear_today;

        // --- Usage ---
        state.poh_hours = (in_service + 1.0) * 24.0;
        if day == plan.deploy_day || bernoulli(rng, 0.008) {
            state.pcc += 1.0;
        }
        let weekly = 1.0 + 0.15 * (2.0 * std::f64::consts::PI * day as f64 / 7.0).sin();
        state.tlw_gb += (profile.daily_write_gb
            * plan.write_intensity
            * weekly
            * (0.8 + 0.4 * rng.random::<f64>()))
        .max(0.0);
        state.tlr_gb += (profile.daily_read_gb
            * plan.read_intensity
            * weekly
            * (0.8 + 0.4 * rng.random::<f64>()))
        .max(0.0);

        // --- Temperatures ---
        let season = 2.0 * (2.0 * std::f64::consts::PI * (day as f64 + season_phase) / 365.0).sin();
        state.temp = plan.temp_base + season + sample_normal(rng, 0.0, 0.8);
        state.aft = state.temp - 2.0 + sample_normal(rng, 0.0, 0.5);

        // --- Background error processes ---
        let scan_day = day % 7 == plan.scan_offset;
        for &attr in attrs {
            let lambda = base_daily_rate(attr, scan_day);
            if lambda > 0.0 {
                state.add(attr, poisson(rng, lambda) as f64);
            }
        }
        // Pending sectors rise and clear.
        if state.counter(SmartAttribute::Psc) > 0.0 && bernoulli(rng, 0.15) {
            let cleared = poisson(rng, 1.5) as f64;
            state.sub_clamped(SmartAttribute::Psc, cleared);
        }
        // Transient scares on otherwise healthy days.
        let pre_onset = plan.destiny.is_none_or(|d| day < d.onset_day);
        if pre_onset && bernoulli(rng, SCARE_PROBABILITY) {
            state.add(SmartAttribute::Uce, poisson(rng, 3.0) as f64);
            state.add(SmartAttribute::Oce, poisson(rng, 2.0) as f64);
            state.add(SmartAttribute::Rer, poisson(rng, 5.0) as f64);
        }

        // --- Mechanism ramps ---
        if let Some(d) = plan.destiny {
            if day >= d.onset_day {
                let span = (d.failure_day - d.onset_day).max(1) as f64;
                let progress = (day - d.onset_day) as f64 / span;
                for ramp in d.mechanism.ramps() {
                    if model.has_attribute(ramp.attr) {
                        let expect = ramp.increment_at(progress);
                        state.add(ramp.attr, poisson(rng, expect) as f64);
                    }
                }
                if d.mechanism == FailureMechanism::ReserveDepletion {
                    state.ars_extra_depletion += 0.08 * progress;
                }
            }
        }

        // --- Emit the day's raw/normalized pairs ---
        for &attr in attrs {
            let raw = state.raw_value(attr);
            let norm = normalized_value(attr, raw, &state);
            values.push(raw as f32);
            values.push(norm as f32);
        }
    }

    let failure = plan.destiny.map(|d| FailureRecord {
        day: d.failure_day.min(last_day),
        mechanism: d.mechanism,
    });

    DriveRecord::from_flat_values(
        id,
        model,
        plan.deploy_day,
        plan.initial_age_days,
        failure,
        values,
        n_days,
    )
}

/// Mutable per-drive counter state.
#[derive(Debug, Default)]
struct CounterState {
    counters: [f64; 22],
    mwi_consumed: f64,
    poh_hours: f64,
    pcc: f64,
    tlw_gb: f64,
    tlr_gb: f64,
    temp: f64,
    aft: f64,
    ars_extra_depletion: f64,
}

impl CounterState {
    fn idx(attr: SmartAttribute) -> usize {
        SmartAttribute::ALL
            .iter()
            .position(|&a| a == attr)
            // lint:allow(panic-free) ALL enumerates every enum variant by
            // definition, so position() always finds attr
            .expect("attribute is in ALL")
    }

    fn counter(&self, attr: SmartAttribute) -> f64 {
        self.counters[Self::idx(attr)]
    }

    fn add(&mut self, attr: SmartAttribute, amount: f64) {
        self.counters[Self::idx(attr)] += amount;
    }

    fn sub_clamped(&mut self, attr: SmartAttribute, amount: f64) {
        let i = Self::idx(attr);
        self.counters[i] = (self.counters[i] - amount).max(0.0);
    }

    /// Accumulate pre-window background history for a drive that was already
    /// `initial_age_days` old when the window opened.
    fn seed_history<R: Rng + ?Sized>(&mut self, plan: &DrivePlan, rng: &mut R) {
        let age = plan.initial_age_days as f64;
        if age <= 0.0 {
            return;
        }
        self.mwi_consumed = age * plan.wear_rate;
        self.pcc = 1.0 + poisson(rng, age * 0.008) as f64;
        let profile = plan.model.profile();
        self.tlw_gb = profile.daily_write_gb * plan.write_intensity * age;
        self.tlr_gb = profile.daily_read_gb * plan.read_intensity * age;
        for &attr in plan.model.attributes() {
            // Weekly-scan attributes fire on ~1/7 of days.
            let rate = base_daily_rate(attr, false)
                + (base_daily_rate(attr, true) - base_daily_rate(attr, false)) / 7.0;
            if rate > 0.0 {
                self.counters[Self::idx(attr)] = poisson(rng, rate * age) as f64;
            }
        }
    }

    /// The raw SMART value of `attr` given current state.
    fn raw_value(&self, attr: SmartAttribute) -> f64 {
        use SmartAttribute as A;
        match attr {
            A::Mwi => (self.mwi_consumed * 30.0).round(),
            A::Poh => self.poh_hours.round(),
            A::Pcc => self.pcc,
            A::Tlw => self.tlw_gb.round(),
            A::Tlr => self.tlr_gb.round(),
            A::Et => round2(self.temp),
            A::Aft => round2(self.aft),
            A::Ars => {
                let n = self.ars_normalized();
                (n * 12.8).round()
            }
            _ => self.counter(attr),
        }
    }

    /// `ARS_N`: reserved space depleted by sector reallocation plus any
    /// mechanism-specific extra depletion.
    fn ars_normalized(&self) -> f64 {
        (100.0 - 0.6 * self.counter(SmartAttribute::Rsc) - self.ars_extra_depletion)
            .clamp(1.0, 100.0)
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Background daily Poisson rate of an attribute's raw counter. `scan_day`
/// gates attributes that only advance when the weekly offline media scan
/// runs.
fn base_daily_rate(attr: SmartAttribute, scan_day: bool) -> f64 {
    use SmartAttribute as A;
    match attr {
        A::Rer => 0.08,
        A::Rsc => 0.012,
        A::Pfc | A::Efc => 0.004,
        A::Plp => 0.0015,
        A::Upl => 0.004,
        A::Dec => 0.01,
        A::Ete => 0.0015,
        A::Uce => 0.01,
        A::Cmdt => 0.005,
        A::Rec => 0.006,
        A::Psc => 0.02,
        A::Cec => 0.004,
        A::Oce => {
            if scan_day {
                0.06
            } else {
                0.0
            }
        }
        // Gauges and usage attributes are not Poisson counters.
        A::Poh | A::Pcc | A::Mwi | A::Ars | A::Et | A::Aft | A::Tlw | A::Tlr => 0.0,
    }
}

/// The vendor-normalized value of `attr` given its raw value: a health gauge
/// on `1..=100` that decreases as the raw indicator worsens.
fn normalized_value(attr: SmartAttribute, raw: f64, state: &CounterState) -> f64 {
    use SmartAttribute as A;
    let n = match attr {
        A::Mwi => 100.0 - state.mwi_consumed,
        A::Ars => state.ars_normalized(),
        A::Poh => 100.0 - raw * 100.0 / 87_600.0, // 10-year scale
        A::Pcc => 100.0 - raw / 10.0,
        A::Et | A::Aft => 100.0 - raw,
        A::Tlw | A::Tlr => 100.0 - raw / 4000.0,
        A::Rer => 100.0 - 0.1 * raw,
        A::Psc => 100.0 - 2.0 * raw,
        _ => 100.0 - 0.8 * raw,
    };
    n.clamp(1.0, 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::FeatureId;
    use crate::config::FleetConfig;
    use crate::gen::plan::{plan_drive, Destiny};
    use crate::model::DriveModel;
    use rng::rngs::StdRng;
    use rng::SeedableRng;

    fn config() -> FleetConfig {
        FleetConfig::balanced(10, 1).unwrap()
    }

    fn simulate_one(model: DriveModel, seed: u64) -> DriveRecord {
        let config = config();
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = plan_drive(model, &config, &mut rng);
        simulate_drive(DriveId(1), &plan, config.days(), &mut rng)
    }

    fn forced_failure_plan(model: DriveModel, mechanism: FailureMechanism) -> DrivePlan {
        let config = config();
        let mut rng = StdRng::seed_from_u64(3);
        let mut plan = plan_drive(model, &config, &mut rng);
        plan.deploy_day = 0;
        plan.destiny = Some(Destiny {
            mechanism,
            onset_day: 600,
            failure_day: 660,
        });
        plan
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = simulate_one(DriveModel::Mc1, 5);
        let b = simulate_one(DriveModel::Mc1, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn record_spans_window_for_healthy_drive() {
        let config = config();
        let mut rng = StdRng::seed_from_u64(8);
        let mut plan = plan_drive(DriveModel::Ma1, &config, &mut rng);
        plan.destiny = None;
        let rec = simulate_drive(DriveId(2), &plan, config.days(), &mut rng);
        assert_eq!(rec.last_day(), config.days() - 1);
        assert!(!rec.is_failed());
    }

    #[test]
    fn failed_drive_truncates_at_failure() {
        let plan = forced_failure_plan(DriveModel::Mc1, FailureMechanism::MediaScanErrors);
        let mut rng = StdRng::seed_from_u64(4);
        let rec = simulate_drive(DriveId(3), &plan, config().days(), &mut rng);
        assert!(rec.is_failed());
        assert_eq!(rec.last_day(), 660);
        assert_eq!(rec.failure.unwrap().day, 660);
    }

    #[test]
    fn counters_are_monotone_nondecreasing() {
        let rec = simulate_one(DriveModel::Mc1, 7);
        for attr in [
            SmartAttribute::Uce,
            SmartAttribute::Rsc,
            SmartAttribute::Oce,
        ] {
            let s = rec.series(FeatureId::raw(attr)).unwrap();
            for w in s.windows(2) {
                assert!(w[1] >= w[0], "{attr} decreased: {} -> {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn mwi_n_is_monotone_nonincreasing() {
        let rec = simulate_one(DriveModel::Mc1, 9);
        let s = rec
            .series(FeatureId::normalized(SmartAttribute::Mwi))
            .unwrap();
        for w in s.windows(2) {
            assert!(w[1] <= w[0] + 1e-6);
        }
        assert!(s.iter().all(|&v| (1.0..=100.0).contains(&v)));
    }

    #[test]
    fn poh_grows_daily() {
        let rec = simulate_one(DriveModel::Ma2, 11);
        let s = rec.series(FeatureId::raw(SmartAttribute::Poh)).unwrap();
        assert!((s[1] - s[0] - 24.0).abs() < 1e-6);
    }

    #[test]
    fn mechanism_ramp_is_visible_before_failure() {
        let plan = forced_failure_plan(DriveModel::Mc1, FailureMechanism::MediaScanErrors);
        let mut rng = StdRng::seed_from_u64(21);
        let rec = simulate_drive(DriveId(4), &plan, config().days(), &mut rng);
        let oce = rec.series(FeatureId::raw(SmartAttribute::Oce)).unwrap();
        // OCE in the last 20 days must clearly exceed OCE 100 days earlier.
        let late = oce[oce.len() - 1];
        let early = oce[oce.len() - 100];
        assert!(
            late - early > 10.0,
            "OCE ramp invisible: early {early}, late {late}"
        );
    }

    #[test]
    fn reserve_depletion_lowers_ars() {
        let plan = forced_failure_plan(DriveModel::Mb1, FailureMechanism::ReserveDepletion);
        let mut rng = StdRng::seed_from_u64(23);
        let rec = simulate_drive(DriveId(5), &plan, config().days(), &mut rng);
        let ars = rec
            .series(FeatureId::normalized(SmartAttribute::Ars))
            .unwrap();
        let late = ars[ars.len() - 1];
        let early = ars[ars.len() - 100];
        assert!(
            late < early - 2.0,
            "ARS_N did not deplete: {early} -> {late}"
        );
    }

    #[test]
    fn normalized_values_stay_in_range() {
        let rec = simulate_one(DriveModel::Mc2, 13);
        for &attr in DriveModel::Mc2.attributes() {
            let s = rec.series(FeatureId::normalized(attr)).unwrap();
            for &v in &s {
                assert!((1.0..=100.0).contains(&v), "{attr}_N = {v}");
            }
        }
    }

    #[test]
    fn aged_drive_seeds_history() {
        let config = config();
        let mut rng = StdRng::seed_from_u64(31);
        let mut plan = plan_drive(DriveModel::Mc1, &config, &mut rng);
        plan.deploy_day = 0;
        plan.initial_age_days = 500;
        plan.destiny = None;
        let rec = simulate_drive(DriveId(6), &plan, config.days(), &mut rng);
        // POH on day 0 reflects 500 days of service.
        let poh0 = rec
            .value_on(0, FeatureId::raw(SmartAttribute::Poh))
            .unwrap();
        assert!((poh0 - 501.0 * 24.0).abs() < 1.0);
        // Wear reflects age too.
        let mwi0 = rec
            .value_on(0, FeatureId::normalized(SmartAttribute::Mwi))
            .unwrap();
        assert!(mwi0 < 100.0);
    }

    #[test]
    fn final_mwi_reported() {
        let rec = simulate_one(DriveModel::Mc1, 17);
        let m = rec.final_mwi_n().unwrap();
        assert!((1.0..=100.0).contains(&m));
    }
}
