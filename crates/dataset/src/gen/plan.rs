//! Per-drive lifecycle planning: deployment, workload, wear trajectory, and
//! (for defective drives) the failure destiny.
//!
//! Planning is shared by the cheap census path (lifecycle summaries only)
//! and the full SMART-log simulation, so both views of a fleet agree on who
//! fails, when, and why.

use crate::config::FleetConfig;
use crate::gen::noise::bernoulli;
use crate::mechanism::{sample_mechanism, DriveTraits, FailureMechanism};
use crate::model::DriveModel;
use rng::Rng;
use smart_stats::gaussian::sample_normal;

/// The planned failure of a defective drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Destiny {
    /// The failure mechanism.
    pub mechanism: FailureMechanism,
    /// Dataset day on which the defect starts ramping the mechanism's
    /// attributes.
    pub onset_day: u32,
    /// Dataset day on which the drive fails (last observed day).
    pub failure_day: u32,
}

/// The full lifecycle plan of one drive.
#[derive(Debug, Clone, PartialEq)]
pub struct DrivePlan {
    /// The drive model.
    pub model: DriveModel,
    /// First observed dataset day (0 when the drive predates the window).
    pub deploy_day: u32,
    /// Days in service before the window opened.
    pub initial_age_days: u32,
    /// Daily `MWI` consumption in percentage points.
    pub wear_rate: f64,
    /// Read workload relative to the model mean.
    pub read_intensity: f64,
    /// Write workload relative to the model mean.
    pub write_intensity: f64,
    /// Baseline enclosure temperature (°C).
    pub temp_base: f64,
    /// Day-of-week (0..7) on which the weekly offline media scan runs.
    pub scan_offset: u32,
    /// The failure destiny, or `None` for a drive that survives the window.
    pub destiny: Option<Destiny>,
}

impl DrivePlan {
    /// Last dataset day this drive is observed (failure day or window end).
    pub fn last_day(&self, window_days: u32) -> u32 {
        self.destiny
            .map_or(window_days - 1, |d| d.failure_day.min(window_days - 1))
    }

    /// `MWI_N` on a given dataset day, before daily noise (the deterministic
    /// wear trajectory).
    pub fn projected_mwi_n(&self, day: u32) -> f64 {
        let in_service = self.initial_age_days as f64 + day.saturating_sub(self.deploy_day) as f64;
        (100.0 - in_service * self.wear_rate).clamp(1.0, 100.0)
    }
}

/// Minimum number of observed days a mid-window arrival must have.
const MIN_OBSERVED_DAYS: u32 = 90;
/// Ramp duration bounds: a failing drive's counters accelerate for this many
/// days before failure. The 30-day prediction horizon sits inside this
/// window, so pre-failure signal exists but also bleeds slightly past the
/// labeling boundary — the realistic source of false positives.
const RAMP_MIN_DAYS: u32 = 25;
const RAMP_MAX_DAYS: u32 = 90;

/// Plan a single drive of `model` under `config`, consuming randomness from
/// `rng`.
pub fn plan_drive<R: Rng + ?Sized>(
    model: DriveModel,
    config: &FleetConfig,
    rng: &mut R,
) -> DrivePlan {
    let profile = model.profile();
    let days = config.days();

    // Deployment: most drives predate the window; the rest arrive during it
    // (leaving at least MIN_OBSERVED_DAYS of observation).
    let (deploy_day, initial_age_days) = if bernoulli(rng, config.arrival_fraction()) {
        let latest = days.saturating_sub(MIN_OBSERVED_DAYS).max(1);
        (rng.random_range(0..latest), 0)
    } else {
        (0, rng.random_range(0..=config.max_initial_age_days()))
    };

    // Per-drive workload and wear draws. The lognormal multiplier is
    // mean-normalized so the model's average wear rate matches its profile.
    let wear_mult = mean_one_lognormal(rng, profile.wear_rate_sigma);
    let wear_rate = profile.wear_rate_mean * wear_mult;
    let read_intensity = mean_one_lognormal(rng, 0.4);
    let write_intensity = mean_one_lognormal(rng, 0.4);
    let temp_base = sample_normal(rng, profile.temp_mean, 2.5);
    let scan_offset = rng.random_range(0..7);

    let mut plan = DrivePlan {
        model,
        deploy_day,
        initial_age_days,
        wear_rate,
        read_intensity,
        write_intensity,
        temp_base,
        scan_offset,
        destiny: None,
    };

    let observed_days = days - deploy_day;
    let projected_final_mwi = plan.projected_mwi_n(days - 1);
    let traits = DriveTraits {
        initial_age_days,
        read_intensity,
        projected_final_mwi,
    };

    // Early-firmware failures (MC2): an independent failure mode for drives
    // deployed before the fix shipped.
    let scale = config.effective_failure_scale(model);
    if let Some(era) = profile.firmware_era {
        if deploy_day < era.deploy_before_day
            && initial_age_days <= era.max_initial_age_days
            && plan.projected_mwi_n(deploy_day) > era.min_mwi_at_failure + 1.0
            && bernoulli(rng, era.failure_probability * config.failure_scale())
        {
            let onset_latest = era.onset_within_days.max(1);
            let onset_day = deploy_day + rng.random_range(0..onset_latest);
            let ramp = rng.random_range(RAMP_MIN_DAYS..=RAMP_MAX_DAYS);
            // The bug only fires while the drive is still young in wear
            // terms: cap the failure day at the last day with
            // MWI_N >= min_mwi_at_failure.
            let wear_cap_days = ((100.0 - era.min_mwi_at_failure) / wear_rate
                - initial_age_days as f64)
                .max(0.0) as u32;
            let failure_day = (onset_day + ramp)
                .min(days - 1)
                .min(deploy_day + wear_cap_days);
            if failure_day > onset_day {
                plan.destiny = Some(Destiny {
                    mechanism: FailureMechanism::FirmwareEarly,
                    onset_day,
                    failure_day,
                });
                return plan;
            }
        }
    }

    // Ordinary failures: a day-by-day hazard whose level tracks the model's
    // AFR and whose shape follows the wear multiplier at the drive's
    // *current* wear. Timing failures by this hazard is what puts wear-out
    // casualties at genuinely low final MWI_N — the structure the paper's
    // survival curves (Fig. 1) are built on.
    let base_daily = model.target_afr_percent() / 100.0 / 365.0 * scale / profile.afr_calibration;
    let mut cumulative = Vec::with_capacity(observed_days as usize);
    let mut total_hazard = 0.0;
    for day in deploy_day..days {
        total_hazard += base_daily * profile.wear_hazard.multiplier(plan.projected_mwi_n(day));
        cumulative.push(total_hazard);
    }
    let p_fail = 1.0 - (-total_hazard).exp();
    if bernoulli(rng, p_fail) {
        // Failure day sampled proportionally to the daily hazard, then
        // clamped so a pre-failure ramp fits inside the window.
        let target = rng.random::<f64>() * total_hazard;
        let idx = cumulative.partition_point(|&c| c < target) as u32;
        let earliest = (deploy_day + 10).min(days - 1);
        let failure_day = (deploy_day + idx).clamp(earliest, days - 1);
        // Mechanism choice reflects the drive's wear at failure time.
        let traits_at_failure = DriveTraits {
            projected_final_mwi: plan.projected_mwi_n(failure_day),
            ..traits
        };
        if let Some(mechanism) =
            sample_mechanism(&profile.mechanisms, &traits_at_failure, rng.random())
        {
            let ramp = rng.random_range(RAMP_MIN_DAYS..=RAMP_MAX_DAYS);
            let onset_day = failure_day.saturating_sub(ramp).max(deploy_day);
            if failure_day > onset_day {
                plan.destiny = Some(Destiny {
                    mechanism,
                    onset_day,
                    failure_day,
                });
            }
        }
    }
    plan
}

/// Lognormal multiplier with mean 1 (i.e. `exp(N(-σ²/2, σ²))`).
fn mean_one_lognormal<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    sample_normal(rng, -sigma * sigma / 2.0, sigma).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::rngs::StdRng;
    use rng::SeedableRng;

    fn test_config() -> FleetConfig {
        FleetConfig::balanced(50, 9).unwrap()
    }

    #[test]
    fn plans_are_deterministic() {
        let config = test_config();
        let a = plan_drive(DriveModel::Mc1, &config, &mut StdRng::seed_from_u64(5));
        let b = plan_drive(DriveModel::Mc1, &config, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn destiny_days_are_ordered_and_in_window() {
        let config = test_config();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..2000 {
            let model = DriveModel::ALL[i % 6];
            let plan = plan_drive(model, &config, &mut rng);
            if let Some(d) = plan.destiny {
                assert!(d.onset_day < d.failure_day, "onset before failure");
                assert!(d.onset_day >= plan.deploy_day, "onset after deploy");
                assert!(d.failure_day < config.days(), "failure inside window");
            }
        }
    }

    #[test]
    fn failure_rate_scales_with_config() {
        let lo = FleetConfig::builder()
            .drives(DriveModel::Mc1, 1)
            .failure_scale(1.0)
            .seed(2)
            .build()
            .unwrap();
        let hi = FleetConfig::builder()
            .drives(DriveModel::Mc1, 1)
            .failure_scale(8.0)
            .seed(2)
            .build()
            .unwrap();
        let count = |config: &FleetConfig| {
            let mut rng = StdRng::seed_from_u64(3);
            (0..3000)
                .filter(|_| {
                    plan_drive(DriveModel::Mc1, config, &mut rng)
                        .destiny
                        .is_some()
                })
                .count()
        };
        let n_lo = count(&lo);
        let n_hi = count(&hi);
        assert!(n_hi > n_lo * 4, "lo = {n_lo}, hi = {n_hi}");
    }

    #[test]
    fn worn_drives_fail_more_often() {
        // MC1 has a wear-hazard knee at MWI 30: drives projected to wear far
        // down must fail more often.
        let config = test_config();
        let mut rng = StdRng::seed_from_u64(11);
        let mut worn = (0usize, 0usize);
        let mut fresh = (0usize, 0usize);
        for _ in 0..6000 {
            let plan = plan_drive(DriveModel::Mc1, &config, &mut rng);
            let proj = plan.projected_mwi_n(config.days() - 1);
            let bucket = if proj < 25.0 {
                &mut worn
            } else if proj > 60.0 {
                &mut fresh
            } else {
                continue;
            };
            bucket.0 += 1;
            bucket.1 += usize::from(plan.destiny.is_some());
        }
        assert!(
            worn.0 > 50 && fresh.0 > 50,
            "buckets too small: {worn:?} {fresh:?}"
        );
        let worn_rate = worn.1 as f64 / worn.0 as f64;
        let fresh_rate = fresh.1 as f64 / fresh.0 as f64;
        assert!(
            worn_rate > 1.5 * fresh_rate,
            "worn {worn_rate:.3} vs fresh {fresh_rate:.3}"
        );
    }

    #[test]
    fn mc2_has_firmware_failures_only_early() {
        let config = test_config();
        let mut rng = StdRng::seed_from_u64(13);
        let mut firmware = 0;
        for _ in 0..8000 {
            let plan = plan_drive(DriveModel::Mc2, &config, &mut rng);
            if let Some(d) = plan.destiny {
                if d.mechanism == FailureMechanism::FirmwareEarly {
                    firmware += 1;
                    let era = plan.model.profile().firmware_era.unwrap();
                    assert!(plan.deploy_day < era.deploy_before_day);
                    assert!(d.onset_day <= plan.deploy_day + era.onset_within_days);
                }
            }
        }
        assert!(firmware > 20, "firmware failures = {firmware}");
    }

    #[test]
    fn non_mc2_models_never_fail_by_firmware() {
        let config = test_config();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..3000 {
            for model in [DriveModel::Ma1, DriveModel::Mb1, DriveModel::Mc1] {
                let plan = plan_drive(model, &config, &mut rng);
                if let Some(d) = plan.destiny {
                    assert_ne!(d.mechanism, FailureMechanism::FirmwareEarly);
                }
            }
        }
    }

    #[test]
    fn projected_mwi_decreases_with_time() {
        let config = test_config();
        let plan = plan_drive(DriveModel::Mc1, &config, &mut StdRng::seed_from_u64(19));
        let early = plan.projected_mwi_n(plan.deploy_day);
        let late = plan.projected_mwi_n(config.days() - 1);
        assert!(late <= early);
        assert!((1.0..=100.0).contains(&late));
    }

    #[test]
    fn mean_one_lognormal_has_mean_one() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 30_000;
        let mean: f64 = (0..n)
            .map(|_| mean_one_lognormal(&mut rng, 0.5))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.03, "mean = {mean}");
    }

    #[test]
    fn arrivals_have_enough_observation() {
        let config = FleetConfig::builder()
            .drives(DriveModel::Ma1, 1)
            .arrival_fraction(1.0)
            .seed(4)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..500 {
            let plan = plan_drive(DriveModel::Ma1, &config, &mut rng);
            assert_eq!(plan.initial_age_days, 0);
            assert!(config.days() - plan.deploy_day >= MIN_OBSERVED_DAYS);
        }
    }
}
