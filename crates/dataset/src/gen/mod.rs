//! Fleet generation: per-drive lifecycle planning and daily SMART
//! simulation.

pub mod drive;
pub mod noise;
pub mod plan;
pub mod scenario;

pub use drive::simulate_drive;
pub use plan::{plan_drive, Destiny, DrivePlan};
pub use scenario::{
    apply_scenario, inject_csv_chaos, mixed_vendor_config, CsvChaos, FirmwareRollout,
    MissingCoverage, ReplacementChurn, ScenarioConfig,
};
