//! Fleet generation: per-drive lifecycle planning and daily SMART
//! simulation.

pub mod drive;
pub mod noise;
pub mod plan;

pub use drive::simulate_drive;
pub use plan::{plan_drive, Destiny, DrivePlan};
