//! Fleet generation: per-drive lifecycle planning and daily SMART
//! simulation.

pub mod drive;
pub mod noise;
pub mod plan;
pub mod scenario;
pub mod stream;

pub use drive::simulate_drive;
pub use plan::{plan_drive, Destiny, DrivePlan};
pub use scenario::{
    apply_scenario, inject_csv_chaos, mixed_vendor_config, CsvChaos, FirmwareRollout,
    MissingCoverage, ReplacementChurn, ScenarioConfig,
};
pub use stream::{
    generate_drive_range, generate_fleet_streamed, stream_fleet_batches, GenConfig, GenStats,
    ENV_GEN_CHUNK_DRIVES,
};
