//! Streaming fleet generation with bounded memory (DESIGN.md §12).
//!
//! [`crate::fleet::Fleet::generate`] materializes every drive before the
//! pipeline sees the first one, capping experiments at toy fleet sizes.
//! This module turns the simulator into a *source* shaped exactly like the
//! sharded CSV reader: drive trajectories are generated on scoped worker
//! threads in contiguous-id chunks and delivered to the consumer as the
//! same [`DriveBatch`] unit [`crate::ingest::stream_drive_batches`]
//! produces, strictly in drive-id order:
//!
//! ```text
//! producer ──chunk descriptors──▶ BoundedQueue ──▶ workers ──▶ ReorderBuffer ──▶ merger
//!  (1 thread)                     (backpressure)   (N threads)  (id order)      (caller)
//! ```
//!
//! Chunk independence: a drive's entire trajectory is a function of
//! `(config, global_index)` only — `fleet::drive_rng` derives the
//! per-drive RNG stream from the master seed and the index, never from
//! fleet iteration state — so any contiguous id range can be generated
//! without touching the rest of the fleet. The merger restores id order,
//! which makes the concatenated output *bit-identical* to
//! [`crate::fleet::Fleet::generate`] at every chunk-size/worker setting.
//!
//! The adversarial scenario post-pass (DESIGN.md §11) is applied inside
//! the workers, per drive: every perturbation except the replacement-id
//! assignment is drive-local, and the merger numbers churn replacements in
//! victim order past the densest original id — matching the whole-fleet
//! [`crate::gen::scenario::apply_scenario`] bit for bit (replacement
//! batches trail the original population, exactly where `apply_scenario`
//! appends them).
//!
//! Memory stays bounded: at most `max_queued_chunks` chunk descriptors
//! wait in the work queue and at most `workers + max_queued_chunks`
//! generated chunks wait in the reorder window, so peak residency is a
//! fixed number of chunks regardless of fleet size.

use crate::config::FleetConfig;
use crate::error::DatasetError;
use crate::fleet::{drive_rng, Fleet};
use crate::gen::scenario::{self, apply_scenario_to_drive, PendingReplacement, ScenarioConfig};
use crate::gen::{plan_drive, simulate_drive};
use crate::ingest::{DriveBatch, SkipCounts, ENV_WORKERS};
use crate::model::DriveModel;
use crate::records::{DriveId, DriveRecord};
use sync::queue::{BoundedQueue, ReorderBuffer};

/// Environment knob: drives per generation chunk (see
/// [`GenConfig::from_env`]).
pub const ENV_GEN_CHUNK_DRIVES: &str = "WEFR_GEN_CHUNK_DRIVES";

/// Tuning for the streaming generator. The sizing knobs trade memory and
/// parallelism for latency only — the generated fleet is bit-identical for
/// every setting. `scenario` optionally applies the adversarial post-pass
/// in-stream.
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Drives per chunk: the unit of worker hand-off and of the consumer's
    /// batch size. Peak memory is proportional to
    /// `chunk_drives × (workers + max_queued_chunks)`.
    pub chunk_drives: usize,
    /// Generator worker threads.
    pub workers: usize,
    /// Chunk descriptors allowed to wait in the work queue before the
    /// producer stalls; also sized into the reorder window.
    pub max_queued_chunks: usize,
    /// Optional adversarial scenario applied per drive inside the workers.
    pub scenario: Option<ScenarioConfig>,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            // ~9 MiB of f32 telemetry per chunk at a 365-day window: big
            // enough to amortise hand-off costs, small enough that the
            // bounded reorder window stays a sliver of a paper-scale fleet.
            chunk_drives: 512,
            workers: 4,
            max_queued_chunks: 8,
            scenario: None,
        }
    }
}

impl GenConfig {
    /// Build a config from a key → value lookup, starting from defaults.
    /// Recognises [`ENV_GEN_CHUNK_DRIVES`] and the shared
    /// [`ENV_WORKERS`]; unparseable or zero values are ignored.
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> GenConfig {
        let mut config = GenConfig::default();
        let parsed = |name: &str| get(name).and_then(|v| v.trim().parse::<usize>().ok());
        if let Some(chunk) = parsed(ENV_GEN_CHUNK_DRIVES).filter(|&v| v > 0) {
            config.chunk_drives = chunk;
        }
        if let Some(workers) = parsed(ENV_WORKERS).filter(|&v| v > 0) {
            config.workers = workers;
        }
        config
    }

    /// [`GenConfig::from_lookup`] over the process environment.
    pub fn from_env() -> GenConfig {
        // lint:allow(side-effects) the documented contract of this
        // constructor is reading the WEFR_GEN_CHUNK_DRIVES / WEFR_WORKERS
        // knobs; everything else must take the config as a parameter
        GenConfig::from_lookup(|name| std::env::var(name).ok())
    }
}

/// Counters describing one streaming generation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Drive records delivered to the consumer (replacements included).
    pub drives: u64,
    /// Batches delivered (original chunks plus trailing replacement
    /// batches).
    pub chunks: u64,
    /// Drive-days delivered — the row count of the equivalent CSV body.
    pub rows: u64,
    /// Churn replacement drives appended after the original population.
    pub replacements: u64,
    /// Times the producer found the work queue full and had to wait.
    pub queue_full_stalls: u64,
    /// Largest single batch's f32 telemetry payload, in bytes: the unit of
    /// the bounded-memory argument (peak residency ≤ this ×
    /// `(workers + max_queued_chunks + 1)`).
    pub peak_batch_bytes: u64,
    /// Total f32 telemetry delivered, in bytes — what a materialized
    /// [`Fleet`] of this run would hold resident all at once.
    pub value_bytes: u64,
}

/// The f32 telemetry payload of one record, in bytes.
fn record_value_bytes(d: &DriveRecord) -> u64 {
    u64::from(d.n_days()) * 2 * d.model.attributes().len() as u64 * 4
}

/// Generate the contiguous drive-id range `start..start + len` of the
/// fleet `config` describes, exactly as [`Fleet::generate`] would — the
/// returned records are bit-identical to the corresponding slice of the
/// materialized fleet. This is the chunk primitive under
/// [`stream_fleet_batches`], exposed for the property suite's arbitrary
/// re-partitions.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] when the range reaches past
/// `config.total_drives()`.
pub fn generate_drive_range(
    config: &FleetConfig,
    start: u32,
    len: u32,
) -> Result<Vec<DriveRecord>, DatasetError> {
    let total = config.total_drives();
    let in_range = start.checked_add(len).is_some_and(|end| end <= total);
    if !in_range {
        return Err(DatasetError::InvalidConfig {
            message: format!("drive range {start}+{len} reaches past the fleet of {total} drives"),
        });
    }
    Ok(generate_range_clamped(config, start, start + len))
}

/// [`generate_drive_range`] with the bounds clamped to the fleet — total,
/// so the worker pool (whose producer only ever schedules in-range chunks)
/// stays panic- and error-free.
fn generate_range_clamped(config: &FleetConfig, start: u32, end: u32) -> Vec<DriveRecord> {
    let end = end.min(config.total_drives());
    let start = start.min(end);
    let mut drives = Vec::with_capacity((end - start) as usize);
    let mut first_of_model = 0u32;
    for model in DriveModel::ALL {
        let model_end = first_of_model + config.drives_for(model);
        let lo = start.max(first_of_model);
        let hi = end.min(model_end);
        for global_index in lo..hi {
            let mut rng = drive_rng(config.seed(), global_index);
            let plan = plan_drive(model, config, &mut rng);
            drives.push(simulate_drive(
                DriveId(global_index),
                &plan,
                config.days(),
                &mut rng,
            ));
        }
        first_of_model = model_end;
    }
    drives
}

/// One worker's output for one chunk: the (possibly scenario-perturbed)
/// records plus the churn tails awaiting merger-assigned ids.
struct Produced {
    drives: Vec<DriveRecord>,
    pending: Vec<PendingReplacement>,
}

/// Deliver one batch to the consumer, updating stats and the live
/// counters. `first_line` continues the CSV-equivalent numbering (header
/// is line 1) so generated batches are indistinguishable from ingested
/// ones downstream.
fn emit_batch<E, F>(
    consume: &mut F,
    stats: &mut GenStats,
    shard_index: &mut usize,
    drives: Vec<DriveRecord>,
) -> Result<(), E>
where
    F: FnMut(DriveBatch) -> Result<(), E>,
{
    let bytes: u64 = drives.iter().map(record_value_bytes).sum();
    let rows: u64 = drives.iter().map(|d| u64::from(d.n_days())).sum();
    let batch = DriveBatch {
        shard_index: *shard_index,
        first_line: 2 + stats.rows as usize,
        drives,
        skipped: SkipCounts::default(),
    };
    *shard_index += 1;
    stats.chunks += 1;
    stats.drives += batch.drives.len() as u64;
    stats.rows += rows;
    stats.value_bytes += bytes;
    stats.peak_batch_bytes = stats.peak_batch_bytes.max(bytes);
    // Counted per batch, not once at the end, so a live /metrics scrape
    // sees generation progress mid-run.
    telemetry::counter_add("gen.drives", batch.drives.len() as u64);
    telemetry::counter_add("gen.rows", rows);
    telemetry::counter_add("gen.chunks", 1);
    consume(batch)
}

/// Stream the fleet `config` describes through the chunked generator
/// pipeline, handing each chunk's drive records to `consume` strictly in
/// drive-id order — the streaming-source twin of
/// [`crate::ingest::stream_drive_batches`].
///
/// The concatenated records are bit-identical to
/// [`Fleet::generate`] (plus [`scenario::apply_scenario`] when
/// `gen.scenario` is set) at every chunk-size/worker setting; consumers
/// that fold batches away as they arrive never hold the whole fleet.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] for an invalid scenario, or
/// whatever `consume` returned; in the latter case the pipeline is aborted
/// and drained before returning.
pub fn stream_fleet_batches<E, F>(
    config: &FleetConfig,
    gen: &GenConfig,
    mut consume: F,
) -> Result<GenStats, E>
where
    E: From<DatasetError>,
    F: FnMut(DriveBatch) -> Result<(), E>,
{
    if let Some(s) = &gen.scenario {
        scenario::validate(s).map_err(E::from)?;
    }
    let workers = gen.workers.max(1);
    let queue_slots = gen.max_queued_chunks.max(1);
    let chunk_drives = gen.chunk_drives.max(1) as u32;
    let total = config.total_drives();
    let n_chunks = total.div_ceil(chunk_drives) as usize;
    let span = telemetry::span!(
        "gen_stream",
        workers = workers,
        chunk_drives = gen.chunk_drives
    );
    let span_id = span.id();

    let scenario = gen.scenario.as_ref();
    // The depth observer runs outside the queue lock (see the ingest twin).
    fn gen_queue_depth(depth: usize) {
        telemetry::gauge_set("gen.queue_depth", depth as f64);
    }
    let work: BoundedQueue<(usize, u32, u32)> =
        BoundedQueue::observed(queue_slots, gen_queue_depth);
    let done: ReorderBuffer<Produced> = ReorderBuffer::new(workers + queue_slots);
    // Unlike ingest, the chunk count is known before the first batch.
    done.set_total(n_chunks);

    let (stats, outcome) = sync::thread::scope(|scope| {
        let producer = scope.spawn(|| {
            for index in 0..n_chunks {
                let start = index as u32 * chunk_drives;
                let len = chunk_drives.min(total - start);
                if !work.push((index, start, len)) {
                    break; // aborted by the merger
                }
            }
            work.close();
        });

        for _ in 0..workers {
            let work = &work;
            let done = &done;
            scope.spawn(move || {
                while let Some((index, start, len)) = work.pop() {
                    let chunk_span = telemetry::span_child_of(span_id, "gen_chunk");
                    chunk_span.record("chunk", index);
                    chunk_span.record("drives", len);
                    let raw = generate_range_clamped(config, start, start + len);
                    let produced = match scenario {
                        None => Produced {
                            drives: raw,
                            pending: Vec::new(),
                        },
                        Some(s) => {
                            let mut drives = Vec::with_capacity(raw.len());
                            let mut pending = Vec::new();
                            for record in &raw {
                                let (out, replacement) = apply_scenario_to_drive(record, s);
                                drives.push(out);
                                pending.extend(replacement);
                            }
                            Produced { drives, pending }
                        }
                    };
                    drop(chunk_span);
                    let filed = done
                        .insert(index, produced)
                        // lint:allow(panic-free) chunk indices are handed out
                        // by the producer exactly once through the FIFO
                        // queue; a duplicate filing is a bug
                        .expect("chunk indices from the producer are unique");
                    if !filed {
                        break; // aborted by the merger
                    }
                }
            });
        }

        let mut stats = GenStats::default();
        let mut shard_index = 0usize;
        let mut pending_all: Vec<PendingReplacement> = Vec::new();
        let mut merge_outcome: Result<(), E> = Ok(());
        while let Some(produced) = done.take_next() {
            // Churn tails accumulate in victim (= drive-id) order; only
            // their count rides along until the population is complete.
            pending_all.extend(produced.pending);
            if let Err(e) = emit_batch(&mut consume, &mut stats, &mut shard_index, produced.drives)
            {
                merge_outcome = Err(e);
                break;
            }
        }
        if merge_outcome.is_ok() {
            // Replacement ids continue past the densest original id (ids
            // are dense, so that is `total`), in victim order — exactly
            // where and how `apply_scenario` numbers and appends them.
            stats.replacements = pending_all.len() as u64;
            let mut next_id = total;
            let mut tail: Vec<DriveRecord> = Vec::new();
            for replacement in pending_all {
                tail.push(replacement.into_record(DriveId(next_id)));
                next_id += 1;
                if tail.len() >= chunk_drives as usize {
                    let full = std::mem::take(&mut tail);
                    if let Err(e) = emit_batch(&mut consume, &mut stats, &mut shard_index, full) {
                        merge_outcome = Err(e);
                        break;
                    }
                }
            }
            if merge_outcome.is_ok() && !tail.is_empty() {
                merge_outcome = emit_batch(&mut consume, &mut stats, &mut shard_index, tail);
            }
        }
        if merge_outcome.is_err() {
            work.abort();
            done.abort();
        }

        if let Err(payload) = producer.join() {
            // lint:allow(panic-free) a producer panic is already a bug;
            // re-raising keeps the scoped-thread invariant visible instead
            // of reporting a bogus clean run
            std::panic::resume_unwind(payload);
        }
        stats.queue_full_stalls = work.stalls();
        (stats, merge_outcome)
    });

    telemetry::counter_add("gen.queue_full_stalls", stats.queue_full_stalls);
    telemetry::counter_add("gen.replacements", stats.replacements);
    span.record("drives", stats.drives);
    span.record("chunks", stats.chunks);
    span.record("stalls", stats.queue_full_stalls);
    outcome?;
    Ok(stats)
}

/// Materialize a streamed generation run into a [`Fleet`] — the
/// convenience wrapper holding the streamed and materialized paths equal:
/// with no scenario it matches [`Fleet::generate`], with one it matches
/// [`scenario::apply_scenario`] over that fleet, bit for bit.
///
/// # Errors
///
/// Exactly the errors of [`stream_fleet_batches`].
pub fn generate_fleet_streamed(
    config: &FleetConfig,
    gen: &GenConfig,
) -> Result<Fleet, DatasetError> {
    let mut drives = Vec::with_capacity(config.total_drives() as usize);
    stream_fleet_batches(config, gen, |batch: DriveBatch| {
        drives.extend(batch.drives);
        Ok::<(), DatasetError>(())
    })?;
    Ok(Fleet::from_records(config.clone(), drives))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::scenario::mixed_vendor_config;

    fn small_config() -> FleetConfig {
        FleetConfig::builder()
            .days(120)
            .seed(11)
            .drives(DriveModel::Ma1, 9)
            .drives(DriveModel::Mc1, 14)
            .build()
            .unwrap()
    }

    #[test]
    fn streamed_matches_materialized_across_settings() {
        let config = small_config();
        let reference = Fleet::generate(&config);
        for workers in [1, 3] {
            for chunk_drives in [1, 5, 1_000] {
                let gen = GenConfig {
                    chunk_drives,
                    workers,
                    max_queued_chunks: 2,
                    scenario: None,
                };
                let fleet = generate_fleet_streamed(&config, &gen).unwrap();
                assert_eq!(
                    fleet, reference,
                    "workers={workers} chunk_drives={chunk_drives}"
                );
            }
        }
    }

    #[test]
    fn batches_arrive_in_id_order_with_csv_line_numbering() {
        let config = small_config();
        let gen = GenConfig {
            chunk_drives: 4,
            workers: 4,
            max_queued_chunks: 2,
            scenario: None,
        };
        let mut next_index = 0usize;
        let mut next_line = 2usize;
        let mut next_id = 0u32;
        let stats = stream_fleet_batches(&config, &gen, |batch: DriveBatch| {
            assert_eq!(batch.shard_index, next_index);
            assert_eq!(batch.first_line, next_line);
            assert_eq!(batch.skipped, SkipCounts::default());
            for d in &batch.drives {
                assert_eq!(d.id, DriveId(next_id));
                next_id += 1;
                next_line += d.n_days() as usize;
            }
            next_index += 1;
            Ok::<(), DatasetError>(())
        })
        .unwrap();
        assert_eq!(stats.drives, 23);
        assert_eq!(stats.chunks, 6);
        assert_eq!(stats.rows as usize, next_line - 2);
        assert!(stats.value_bytes > 0);
        assert!(stats.peak_batch_bytes <= stats.value_bytes);
    }

    #[test]
    fn streamed_scenario_matches_whole_fleet_post_pass() {
        let config = mixed_vendor_config(150, 3).unwrap();
        let scenario = ScenarioConfig {
            seed: 9,
            firmware: Some(crate::gen::scenario::FirmwareRollout {
                day: 60,
                model: DriveModel::Mc1,
                attr: crate::attr::SmartAttribute::Rsc,
                raw_scale: 512.0,
                invert_norm: true,
            }),
            missing: Some(crate::gen::scenario::MissingCoverage {
                vendor: crate::model::Vendor::Ma,
                attr: crate::attr::SmartAttribute::Uce,
                batch_fraction: 0.5,
            }),
            churn: Some(crate::gen::scenario::ReplacementChurn {
                day: 75,
                fraction: 0.3,
            }),
        };
        let reference = scenario::apply_scenario(&Fleet::generate(&config), &scenario).unwrap();
        let gen = GenConfig {
            chunk_drives: 7,
            workers: 3,
            max_queued_chunks: 2,
            scenario: Some(scenario),
        };
        let streamed = generate_fleet_streamed(&config, &gen).unwrap();
        // NaN cells defeat PartialEq; CSV export (where NaN prints stably)
        // is the byte-faithful comparison.
        let csv = |f: &Fleet| {
            let mut buf = Vec::new();
            crate::csv::export_smart_csv(f, &mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        };
        assert_eq!(csv(&streamed), csv(&reference));
        assert_eq!(streamed.summaries(), reference.summaries());
    }

    #[test]
    fn drive_range_is_a_slice_of_the_fleet() {
        let config = small_config();
        let reference = Fleet::generate(&config);
        let range = generate_drive_range(&config, 7, 9).unwrap();
        assert_eq!(range.as_slice(), &reference.drives()[7..16]);
        assert!(generate_drive_range(&config, 20, 4).is_err());
        assert!(generate_drive_range(&config, u32::MAX, 2).is_err());
        assert_eq!(generate_drive_range(&config, 23, 0).unwrap(), []);
    }

    #[test]
    fn consumer_error_aborts_cleanly() {
        let config = small_config();
        let gen = GenConfig {
            chunk_drives: 2,
            workers: 2,
            max_queued_chunks: 1,
            scenario: None,
        };
        let mut seen = 0;
        let err = stream_fleet_batches(&config, &gen, |_b: DriveBatch| {
            seen += 1;
            Err(DatasetError::InvalidConfig {
                message: "stop".to_string(),
            })
        })
        .unwrap_err();
        assert_eq!(seen, 1);
        assert!(matches!(err, DatasetError::InvalidConfig { .. }));
    }

    #[test]
    fn invalid_scenario_is_rejected_before_spawning() {
        let config = small_config();
        let gen = GenConfig {
            scenario: Some(ScenarioConfig {
                churn: Some(crate::gen::scenario::ReplacementChurn {
                    day: 10,
                    fraction: 1.5,
                }),
                ..ScenarioConfig::default()
            }),
            ..GenConfig::default()
        };
        assert!(generate_fleet_streamed(&config, &gen).is_err());
    }

    #[test]
    fn config_from_lookup_reads_knobs() {
        let config = GenConfig::from_lookup(|name| match name {
            ENV_GEN_CHUNK_DRIVES => Some(" 96 ".to_string()),
            ENV_WORKERS => Some("3".to_string()),
            _ => None,
        });
        assert_eq!(config.chunk_drives, 96);
        assert_eq!(config.workers, 3);
        // Zero and garbage fall back to defaults.
        let config = GenConfig::from_lookup(|name| match name {
            ENV_GEN_CHUNK_DRIVES => Some("0".to_string()),
            ENV_WORKERS => Some("lots".to_string()),
            _ => None,
        });
        assert_eq!(config, GenConfig::default());
    }
}
