//! Small stochastic helpers for the simulator.

use rng::Rng;

/// Sample a Poisson-distributed count with rate `lambda` (Knuth's method —
/// fine for the small per-day rates the simulator uses).
///
/// Returns 0 for non-positive `lambda`.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    // For the simulator's lambdas (< 10) Knuth is both exact and fast.
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

/// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.random::<f64>() < p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::rngs::StdRng;
    use rng::SeedableRng;

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        for lambda in [0.1, 1.0, 4.0] {
            let total: u64 = (0..n).map(|_| poisson(&mut rng, lambda) as u64).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < 0.07 * lambda.max(1.0),
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!bernoulli(&mut rng, 0.0));
        assert!(bernoulli(&mut rng, 1.0));
    }

    #[test]
    fn bernoulli_rate_matches_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..20_000).filter(|_| bernoulli(&mut rng, 0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
    }
}
