//! Drive-aligned shard splitting of a SMART-log CSV byte stream.
//!
//! The splitter reads raw lines and groups them into [`Shard`]s of at least
//! `shard_rows` lines each, cutting only at a *drive boundary*: between two
//! lines whose leading `drive_id` fields both parse as integers and differ.
//! A drive's contiguous day-rows therefore never straddle a shard, so each
//! shard can be parsed independently and the per-shard drive runs
//! concatenate to exactly what the single-threaded reader builds.
//!
//! Lines that carry no parseable id (blank lines, malformed rows) are never
//! chosen as cut points; they stay attached to the current shard and are
//! diagnosed by the parser with their original line number.

use std::io::BufRead;

/// One contiguous slice of the input file, ready for independent parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(super) struct Shard {
    /// Position of this shard in file order; the merge key.
    pub index: usize,
    /// 1-based line number (in the whole file) of the first line of `text`.
    pub first_line: usize,
    /// The raw lines, newlines included, exactly as read.
    pub text: String,
    /// Number of lines in `text` (blank lines included).
    pub rows: usize,
}

/// The `drive_id` prefix of a CSV line, when it parses as an integer.
/// Mirrors the strictness of the row parser: no whitespace trimming.
fn leading_id(line: &str) -> Option<u32> {
    let end = line.find(',')?;
    line[..end].parse().ok()
}

/// Incremental reader that yields drive-aligned [`Shard`]s.
pub(super) struct ShardSplitter<R> {
    input: R,
    shard_rows: usize,
    /// 1-based line number of the next line to hand out (the carry line if
    /// one is stashed, otherwise the next line read from `input`).
    next_line: usize,
    next_index: usize,
    /// A line read past the current shard's cut point; it opens the next
    /// shard. Its id is cached so the run-tracking stays consistent.
    carry: Option<(String, Option<u32>)>,
    /// Byte size of the last shard, used to pre-size the next one.
    capacity_hint: usize,
    done: bool,
}

impl<R: BufRead> ShardSplitter<R> {
    /// `first_line` is the file line number of the first line `input` will
    /// yield (2 when the header has already been consumed).
    pub fn new(input: R, shard_rows: usize, first_line: usize) -> ShardSplitter<R> {
        ShardSplitter {
            input,
            shard_rows: shard_rows.max(1),
            next_line: first_line,
            next_index: 0,
            carry: None,
            capacity_hint: 0,
            done: false,
        }
    }

    /// Read the next shard. `Ok(None)` at end of input.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying reader.
    pub fn next_shard(&mut self) -> std::io::Result<Option<Shard>> {
        let first_line = self.next_line;
        let mut text = String::with_capacity(self.capacity_hint);
        let mut rows = 0usize;
        let mut prev_id: Option<u32> = None;

        if let Some((line, id)) = self.carry.take() {
            text.push_str(&line);
            rows += 1;
            prev_id = id;
        }

        while !self.done {
            // Lines are read straight into the shard text — one copy per
            // line; only the one line that overshoots the cut point is
            // copied out again (into the carry) and truncated away.
            let line_start = text.len();
            if self.input.read_line(&mut text)? == 0 {
                self.done = true;
                break;
            }
            let line = &text[line_start..];
            let id = leading_id(line);
            if rows >= self.shard_rows && id.is_some() && prev_id.is_some() && id != prev_id {
                self.carry = Some((line.to_string(), id));
                text.truncate(line_start);
                break;
            }
            rows += 1;
            if id.is_some() {
                prev_id = id;
            } else if !line.trim().is_empty() {
                // A malformed data line: its drive run is unknowable, so no
                // cut may follow until a parseable id re-anchors the run.
                prev_id = None;
            }
            // Blank lines belong to no drive: prev_id is left untouched so a
            // cut stays legal right after them.
        }

        self.capacity_hint = self.capacity_hint.max(text.len());
        self.next_line = first_line + rows;
        if rows == 0 {
            return Ok(None);
        }
        let index = self.next_index;
        self.next_index += 1;
        Ok(Some(Shard {
            index,
            first_line,
            text,
            rows,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(spec: &[(u32, u32)]) -> String {
        spec.iter()
            .map(|(id, day)| format!("{id},MA1,{day}\n"))
            .collect()
    }

    fn split_all(text: &str, shard_rows: usize) -> Vec<Shard> {
        let mut splitter = ShardSplitter::new(text.as_bytes(), shard_rows, 2);
        let mut shards = Vec::new();
        while let Some(shard) = splitter.next_shard().unwrap() {
            shards.push(shard);
        }
        shards
    }

    #[test]
    fn shards_never_split_a_drive_run() {
        let text = lines(&[(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (2, 0)]);
        let shards = split_all(&text, 2);
        // Drive 0 has 3 rows > shard_rows, but stays whole; each later
        // drive boundary past the threshold cuts a new shard.
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].rows, 3);
        assert!(shards[0].text.lines().all(|l| l.starts_with("0,")));
        assert_eq!(shards[1].rows, 2);
        assert_eq!(shards[1].first_line, 5);
        assert_eq!(shards[2].rows, 1);
        assert_eq!(shards[2].first_line, 7);
    }

    #[test]
    fn concatenation_is_lossless() {
        let text = lines(&[(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)]);
        for shard_rows in [1, 2, 3, 10] {
            let shards = split_all(&text, shard_rows);
            let joined: String = shards.iter().map(|s| s.text.as_str()).collect();
            assert_eq!(joined, text, "shard_rows={shard_rows}");
            let total: usize = shards.iter().map(|s| s.rows).sum();
            assert_eq!(total, 5);
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.index, i);
            }
        }
    }

    #[test]
    fn line_numbers_are_absolute() {
        let text = lines(&[(0, 0), (1, 0), (2, 0)]);
        let shards = split_all(&text, 1);
        let firsts: Vec<usize> = shards.iter().map(|s| s.first_line).collect();
        assert_eq!(firsts, vec![2, 3, 4]);
    }

    #[test]
    fn zero_padded_ids_compare_numerically() {
        // "007" and "7" are the same drive to the parser; the splitter must
        // not cut between them.
        let text = "007,MA1,0\n7,MA1,1\n8,MA1,0\n";
        let shards = split_all(text, 1);
        assert_eq!(shards[0].rows, 2, "{shards:?}");
    }

    #[test]
    fn malformed_id_blocks_the_cut() {
        let text = "0,MA1,0\nwhat,MA1,0\n1,MA1,0\n2,MA1,0\n";
        let shards = split_all(text, 1);
        // No cut directly after the malformed line; the next legal cut is
        // between drive 1 and drive 2.
        assert_eq!(shards[0].rows, 3);
        assert_eq!(shards[1].rows, 1);
    }

    #[test]
    fn blank_lines_do_not_block_cuts() {
        let text = "0,MA1,0\n\n1,MA1,0\n";
        let shards = split_all(text, 1);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].rows, 2); // drive 0 plus the blank line
        assert_eq!(shards[1].first_line, 4);
    }

    #[test]
    fn empty_input_yields_no_shards() {
        assert!(split_all("", 4).is_empty());
    }

    #[test]
    fn final_line_without_newline_is_kept() {
        let text = "0,MA1,0\n1,MA1,0";
        let shards = split_all(text, 1);
        let joined: String = shards.iter().map(|s| s.text.as_str()).collect();
        assert_eq!(joined, text);
    }
}
