//! Sharded streaming ingestion of SMART-log CSVs with bounded memory.
//!
//! The single-threaded [`crate::csv::import_smart_csv`] reads the whole
//! file line by line on one core. This module splits the same byte stream
//! into *drive-aligned shards* — a drive's contiguous day-rows never
//! straddle a shard boundary — and parses them on scoped worker threads:
//!
//! ```text
//! reader ──shards──▶ BoundedQueue ──▶ workers ──▶ ReorderBuffer ──▶ merger
//!   (1 thread)        (backpressure)   (N threads)  (file order)   (caller)
//! ```
//!
//! Memory stays bounded: at most `max_queued_shards` raw shards wait in the
//! work queue (the reader stalls when it is full) and at most
//! `workers + max_queued_shards` parsed shards wait in the reorder window.
//!
//! Determinism: shards are merged strictly in file order, so the resulting
//! drive sequence — and the first reported parse error — is bit-identical
//! to the single-threaded reader at any worker count or shard size.
//! [`crate::csv::import_smart_csv`] remains the reference implementation;
//! the integration suite holds the two paths equal.

mod parse;
mod shard;

use crate::config::FleetConfig;
use crate::csv::check_smart_header;
use crate::error::DatasetError;
use crate::fleet::Fleet;
use crate::records::DriveRecord;
use crate::tickets::{sort_tickets_by_drive, TroubleTicket};
use shard::{Shard, ShardSplitter};
use std::io::BufRead;
use sync::queue::{BoundedQueue, ReorderBuffer};

/// Environment knob: rows per shard (see [`IngestConfig::from_env`]).
pub const ENV_SHARD_ROWS: &str = "WEFR_INGEST_SHARD_ROWS";
/// Environment knob: parser worker threads (see [`IngestConfig::from_env`]).
pub const ENV_WORKERS: &str = "WEFR_WORKERS";
/// Environment knob: ingest tolerance mode, `"strict"` or `"tolerant"`
/// (see [`IngestConfig::from_env`]).
pub const ENV_TOLERANCE: &str = "WEFR_INGEST_TOLERANCE";

/// Tolerant mode gives up — with a `ParseCsv` error at the breaching line
/// — once a file has accumulated this many skipped malformed rows. Past
/// that point the input is garbage, not telemetry with warts, and
/// silently dropping more of it would hide a systemic problem.
pub const MAX_MALFORMED_ROWS: u64 = 1_000;

/// How the sharded reader treats bad rows (DESIGN.md §11).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IngestTolerance {
    /// Fail on the first bad row with exactly the single-threaded reader's
    /// error. The default; bit-identical to the pre-tolerance pipeline.
    #[default]
    Strict,
    /// Skip-and-count duplicate and out-of-order rows, skip malformed rows
    /// up to [`MAX_MALFORMED_ROWS`] per file, and backfill small day gaps
    /// with NaN (missing-measurement) days. On clean input this mode
    /// produces a fleet bit-identical to strict mode.
    Tolerant,
}

/// Rows the tolerant reader dropped or synthesised, by reason. Always all
/// zero under [`IngestTolerance::Strict`], and independent of worker count
/// and shard size under [`IngestTolerance::Tolerant`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SkipCounts {
    /// Re-deliveries of a drive run's most recent day (dropped).
    pub duplicate_rows: u64,
    /// Rows of an open run older than its most recent day by more than one
    /// (dropped).
    pub out_of_order_rows: u64,
    /// Structurally broken rows: unsplittable lines, bad fields, model or
    /// attribute-presence mismatches, day jumps past the backfill bound
    /// (dropped).
    pub malformed_rows: u64,
    /// NaN days synthesised to keep a run contiguous across a small day
    /// gap (added).
    pub backfilled_days: u64,
}

impl SkipCounts {
    /// Field-wise accumulate `other` into `self`.
    pub fn merge(&mut self, other: SkipCounts) {
        self.duplicate_rows += other.duplicate_rows;
        self.out_of_order_rows += other.out_of_order_rows;
        self.malformed_rows += other.malformed_rows;
        self.backfilled_days += other.backfilled_days;
    }
}

/// Tuning for the sharded reader. The sizing knobs trade memory and
/// parallelism for latency only — the ingested fleet is identical for
/// every setting. `tolerance` selects the error policy; see
/// [`IngestTolerance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestConfig {
    /// Minimum rows per shard; a shard grows past this until the next
    /// drive boundary.
    pub shard_rows: usize,
    /// Parser worker threads.
    pub workers: usize,
    /// Raw shards allowed to wait in the work queue before the reader
    /// stalls.
    pub max_queued_shards: usize,
    /// Error policy for bad rows.
    pub tolerance: IngestTolerance,
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig {
            // ~1.4 MiB of CSV at typical row widths: big enough to amortise
            // hand-off costs, small enough that a shard still fits in cache
            // when the worker parses what the reader just copied.
            shard_rows: 4_096,
            workers: 4,
            max_queued_shards: 8,
            tolerance: IngestTolerance::Strict,
        }
    }
}

impl IngestConfig {
    /// Build a config from a key → value lookup, starting from defaults.
    /// Recognises [`ENV_SHARD_ROWS`], [`ENV_WORKERS`] and
    /// [`ENV_TOLERANCE`]; unparseable, zero or unknown values are ignored.
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> IngestConfig {
        let mut config = IngestConfig::default();
        let parsed = |name: &str| get(name).and_then(|v| v.trim().parse::<usize>().ok());
        if let Some(rows) = parsed(ENV_SHARD_ROWS).filter(|&v| v > 0) {
            config.shard_rows = rows;
        }
        if let Some(workers) = parsed(ENV_WORKERS).filter(|&v| v > 0) {
            config.workers = workers;
        }
        match get(ENV_TOLERANCE).as_deref().map(str::trim) {
            Some("strict") => config.tolerance = IngestTolerance::Strict,
            Some("tolerant") => config.tolerance = IngestTolerance::Tolerant,
            _ => {}
        }
        config
    }

    /// [`IngestConfig::from_lookup`] over the process environment.
    pub fn from_env() -> IngestConfig {
        // lint:allow(side-effects) the documented contract of this
        // constructor is reading the WEFR_INGEST_* / WEFR_WORKERS knobs;
        // everything else must take the config as a parameter
        IngestConfig::from_lookup(|name| std::env::var(name).ok())
    }
}

/// Counters describing one streaming run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// CSV lines dispatched to parsers (header excluded, blanks included).
    pub rows: u64,
    /// Shards cut from the input.
    pub shards: u64,
    /// Drive runs delivered to the consumer.
    pub drives: u64,
    /// Times the reader found the work queue full and had to wait — a
    /// nonzero value means parsing, not I/O, was the bottleneck.
    pub queue_full_stalls: u64,
    /// Rows dropped or synthesised by tolerant mode (all zero when strict).
    pub skipped: SkipCounts,
}

/// One shard's worth of fully-built drive records, delivered in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveBatch {
    /// Position of the originating shard in file order.
    pub shard_index: usize,
    /// 1-based file line number of the shard's first row.
    pub first_line: usize,
    /// Drive records in file order, tickets already joined.
    pub drives: Vec<DriveRecord>,
    /// Tolerant-mode skip accounting for this shard alone.
    pub skipped: SkipCounts,
}

/// Stream a SMART-log CSV through the sharded pipeline, handing each
/// shard's drive records to `consume` strictly in file order.
///
/// This is the bounded-memory primitive under
/// [`import_smart_csv_sharded`]; consumers that can fold batches away as
/// they arrive (e.g. direct feature-matrix assembly) never hold the whole
/// fleet.
///
/// # Errors
///
/// Returns the first error in file order — `ParseCsv` with the same line
/// number and message the single-threaded reader emits, an I/O error from
/// `input`, or whatever `consume` returned; in every case the pipeline is
/// aborted and drained before returning.
pub fn stream_drive_batches<R, E, F>(
    input: R,
    tickets: &[TroubleTicket],
    config: &IngestConfig,
    mut consume: F,
) -> Result<IngestStats, E>
where
    R: BufRead + Send,
    E: From<DatasetError>,
    F: FnMut(DriveBatch) -> Result<(), E>,
{
    let workers = config.workers.max(1);
    let queue_slots = config.max_queued_shards.max(1);
    let span = telemetry::span!("ingest", workers = workers, shard_rows = config.shard_rows);
    let span_id = span.id();

    let mut input = input;
    let mut header = String::new();
    let bytes = input.read_line(&mut header).map_err(DatasetError::Io)?;
    if bytes == 0 {
        return Err(E::from(DatasetError::ParseCsv {
            line: 1,
            message: "empty file".to_string(),
        }));
    }
    let trimmed = header.trim_end_matches('\n').trim_end_matches('\r');
    check_smart_header(trimmed)?;

    let by_id = sort_tickets_by_drive(tickets);
    let tolerance = config.tolerance;
    // The depth observer runs outside the queue lock; the watchdog samples
    // this gauge into a histogram, turning backpressure into a distribution.
    fn ingest_queue_depth(depth: usize) {
        telemetry::gauge_set("ingest.queue_depth", depth as f64);
    }
    let work: BoundedQueue<Shard> = BoundedQueue::observed(queue_slots, ingest_queue_depth);
    // Each parsed shard travels with the absolute line numbers of its
    // malformed skips, so the merger can enforce the cap in file order.
    type ParsedBatch = Result<(DriveBatch, Vec<usize>), DatasetError>;
    let done: ReorderBuffer<ParsedBatch> = ReorderBuffer::new(workers + queue_slots);

    let (stats, outcome) = sync::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            let read_span = telemetry::span_child_of(span_id, "ingest_read");
            let mut splitter = ShardSplitter::new(input, config.shard_rows, 2);
            let mut rows = 0u64;
            let mut shards = 0u64;
            let outcome = loop {
                match splitter.next_shard() {
                    Ok(Some(shard)) => {
                        rows += shard.rows as u64;
                        shards += 1;
                        // Counted per shard, not once at the end, so a live
                        // /metrics scrape sees ingest progress mid-run.
                        telemetry::counter_add("ingest.rows", shard.rows as u64);
                        telemetry::counter_add("ingest.shards", 1);
                        if !work.push(shard) {
                            break Ok(()); // aborted by the merger
                        }
                    }
                    Ok(None) => break Ok(()),
                    Err(e) => break Err(DatasetError::Io(e)),
                }
            };
            work.close();
            done.set_total(shards as usize);
            read_span.record("rows", rows);
            read_span.record("shards", shards);
            (rows, shards, outcome)
        });

        for _ in 0..workers {
            let by_id = &by_id;
            let work = &work;
            let done = &done;
            scope.spawn(move || {
                while let Some(shard) = work.pop() {
                    let parse_span = telemetry::span_child_of(span_id, "ingest_parse");
                    parse_span.record("shard", shard.index);
                    parse_span.record("rows", shard.rows);
                    let batch = parse::parse_shard(&shard.text, shard.first_line, tolerance).map(
                        |outcome| {
                            let batch = DriveBatch {
                                shard_index: shard.index,
                                first_line: shard.first_line,
                                drives: outcome
                                    .drives
                                    .into_iter()
                                    .map(|r| r.into_record(by_id))
                                    .collect(),
                                skipped: outcome.skipped,
                            };
                            (batch, outcome.malformed_lines)
                        },
                    );
                    drop(parse_span);
                    let filed = done
                        .insert(shard.index, batch)
                        // lint:allow(panic-free) the splitter hands out
                        // strictly increasing shard indices and the FIFO
                        // queue delivers each exactly once; a duplicate is a bug
                        .expect("shard indices from the splitter are unique");
                    if !filed {
                        break; // aborted by the merger
                    }
                }
            });
        }

        let mut drives = 0u64;
        let mut skipped = SkipCounts::default();
        let mut malformed_seen = 0u64;
        let merge_outcome: Result<(), E> = loop {
            match done.take_next() {
                Some(Ok((batch, malformed_lines))) => {
                    // Enforce the malformed-row cap in file order, so the
                    // breaching line is the same at any worker count or
                    // shard size.
                    let mut breach: Option<usize> = None;
                    for &line in &malformed_lines {
                        malformed_seen += 1;
                        if malformed_seen > MAX_MALFORMED_ROWS {
                            breach = Some(line);
                            break;
                        }
                    }
                    if let Some(line) = breach {
                        break Err(E::from(DatasetError::ParseCsv {
                            line,
                            message: format!(
                                "tolerant ingest gave up: more than {MAX_MALFORMED_ROWS} \
                                 malformed rows"
                            ),
                        }));
                    }
                    skipped.merge(batch.skipped);
                    drives += batch.drives.len() as u64;
                    telemetry::counter_add("ingest.drives", batch.drives.len() as u64);
                    if let Err(e) = consume(batch) {
                        break Err(e);
                    }
                }
                Some(Err(e)) => break Err(E::from(e)),
                None => break Ok(()),
            }
        };
        if merge_outcome.is_err() {
            work.abort();
            done.abort();
        }

        let (rows, shards, read_outcome) = match reader.join() {
            Ok(result) => result,
            // lint:allow(panic-free) a reader panic is already a bug;
            // re-raising keeps the scoped-thread invariant visible instead
            // of reporting a bogus clean run
            Err(payload) => std::panic::resume_unwind(payload),
        };
        let outcome = merge_outcome.and(read_outcome.map_err(E::from));
        let stats = IngestStats {
            rows,
            shards,
            drives,
            queue_full_stalls: work.stalls(),
            skipped,
        };
        (stats, outcome)
    });

    // rows and shards were already counted live in the reader loop; the
    // rest is only known once the scope has drained.
    telemetry::counter_add("ingest.queue_full_stalls", stats.queue_full_stalls);
    telemetry::counter_add("ingest.skipped_duplicates", stats.skipped.duplicate_rows);
    telemetry::counter_add(
        "ingest.skipped_out_of_order",
        stats.skipped.out_of_order_rows,
    );
    telemetry::counter_add("ingest.skipped_malformed", stats.skipped.malformed_rows);
    telemetry::counter_add("ingest.backfilled_days", stats.skipped.backfilled_days);
    span.record("rows", stats.rows);
    span.record("shards", stats.shards);
    span.record("stalls", stats.queue_full_stalls);
    outcome?;
    Ok(stats)
}

/// Sharded, multi-threaded drop-in for [`crate::csv::import_smart_csv`]:
/// same inputs, bit-identical [`Fleet`], same errors — only the wall-clock
/// and peak transient memory differ.
///
/// # Errors
///
/// Exactly the errors of [`crate::csv::import_smart_csv`] on the same
/// input.
pub fn import_smart_csv_sharded<R: BufRead + Send>(
    input: R,
    tickets: &[TroubleTicket],
    config: FleetConfig,
    ingest: &IngestConfig,
) -> Result<Fleet, DatasetError> {
    import_smart_csv_sharded_with_stats(input, tickets, config, ingest).map(|(fleet, _)| fleet)
}

/// [`import_smart_csv_sharded`] that also returns the run's
/// [`IngestStats`] — the only way to observe tolerant-mode
/// [`SkipCounts`] when importing a whole fleet at once.
///
/// # Errors
///
/// Exactly the errors of [`import_smart_csv_sharded`] on the same input.
pub fn import_smart_csv_sharded_with_stats<R: BufRead + Send>(
    input: R,
    tickets: &[TroubleTicket],
    config: FleetConfig,
    ingest: &IngestConfig,
) -> Result<(Fleet, IngestStats), DatasetError> {
    let mut drives: Vec<DriveRecord> = Vec::new();
    let stats = stream_drive_batches(input, tickets, ingest, |batch: DriveBatch| {
        drives.extend(batch.drives);
        Ok::<(), DatasetError>(())
    })?;
    Ok((Fleet::from_records(config, drives), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::{export_smart_csv, import_smart_csv};
    use crate::model::DriveModel;
    use crate::tickets::tickets_from_summaries;

    /// The depth-observer wiring end to end: a queue observed through
    /// [`telemetry::gauge_set`] publishes its depth after every push/pop.
    /// (The queue itself lives in `smart-sync`, which has no telemetry
    /// dependency — the gauge glue is this crate's, so the test is too.)
    #[test]
    fn observed_queue_publishes_depth_gauge() {
        // Leave collection on afterwards: it only makes sibling tests
        // record telemetry they never read.
        telemetry::set_collect(true);
        fn test_depth(depth: usize) {
            telemetry::gauge_set("test.queue_depth.unit", depth as f64);
        }
        let q: BoundedQueue<u32> = BoundedQueue::observed(4, test_depth);
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(telemetry::gauge_value("test.queue_depth.unit"), Some(2.0));
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(telemetry::gauge_value("test.queue_depth.unit"), Some(1.0));
    }

    fn fixture() -> (String, Vec<TroubleTicket>, FleetConfig) {
        let config = FleetConfig::builder()
            .days(120)
            .seed(7)
            .drives(DriveModel::Ma1, 6)
            .drives(DriveModel::Mc2, 5)
            .build()
            .unwrap();
        let fleet = Fleet::generate(&config);
        let tickets = tickets_from_summaries(&fleet.summaries());
        let mut buf = Vec::new();
        export_smart_csv(&fleet, &mut buf).unwrap();
        (String::from_utf8(buf).unwrap(), tickets, config)
    }

    #[test]
    fn sharded_import_matches_single_threaded() {
        let (text, tickets, config) = fixture();
        let reference = import_smart_csv(text.as_bytes(), &tickets, config.clone()).unwrap();
        for workers in [1, 2, 4] {
            for shard_rows in [1, 7, 64, 1_000_000] {
                let ingest = IngestConfig {
                    shard_rows,
                    workers,
                    max_queued_shards: 3,
                    ..IngestConfig::default()
                };
                let fleet =
                    import_smart_csv_sharded(text.as_bytes(), &tickets, config.clone(), &ingest)
                        .unwrap();
                assert_eq!(
                    fleet.drives(),
                    reference.drives(),
                    "workers={workers} shard_rows={shard_rows}"
                );
            }
        }
    }

    #[test]
    fn stats_count_rows_shards_and_drives() {
        let (text, tickets, config) = fixture();
        let _ = config;
        let ingest = IngestConfig {
            shard_rows: 50,
            workers: 2,
            max_queued_shards: 2,
            ..IngestConfig::default()
        };
        let stats =
            stream_drive_batches(text.as_bytes(), &tickets, &ingest, |_batch: DriveBatch| {
                Ok::<(), DatasetError>(())
            })
            .unwrap();
        assert_eq!(stats.rows as usize, text.lines().count() - 1);
        assert_eq!(stats.drives, 11);
        assert!(stats.shards >= 2, "{stats:?}");
    }

    #[test]
    fn batches_arrive_in_file_order() {
        let (text, tickets, _config) = fixture();
        let ingest = IngestConfig {
            shard_rows: 10,
            workers: 4,
            max_queued_shards: 2,
            ..IngestConfig::default()
        };
        let mut last_index = None;
        let mut last_line = 0usize;
        stream_drive_batches(text.as_bytes(), &tickets, &ingest, |batch: DriveBatch| {
            if let Some(prev) = last_index {
                assert_eq!(batch.shard_index, prev + 1);
            } else {
                assert_eq!(batch.shard_index, 0);
            }
            assert!(batch.first_line > last_line);
            last_index = Some(batch.shard_index);
            last_line = batch.first_line;
            Ok::<(), DatasetError>(())
        })
        .unwrap();
        assert!(last_index.is_some());
    }

    #[test]
    fn first_error_in_file_order_wins() {
        let (text, tickets, config) = fixture();
        // Corrupt two rows: the earlier one must be the reported error even
        // though a later shard may finish parsing first.
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let a = lines.len() / 3;
        let b = 2 * lines.len() / 3;
        lines[a] = "broken".to_string();
        lines[b] = "also,broken".to_string();
        let corrupt = lines.join("\n");
        let reference = import_smart_csv(corrupt.as_bytes(), &tickets, config.clone());
        for shard_rows in [5, 40] {
            let ingest = IngestConfig {
                shard_rows,
                workers: 4,
                max_queued_shards: 2,
                ..IngestConfig::default()
            };
            let sharded =
                import_smart_csv_sharded(corrupt.as_bytes(), &tickets, config.clone(), &ingest);
            match (&reference, &sharded) {
                (
                    Err(DatasetError::ParseCsv {
                        line: l1,
                        message: m1,
                    }),
                    Err(DatasetError::ParseCsv {
                        line: l2,
                        message: m2,
                    }),
                ) => {
                    assert_eq!(l1, l2);
                    assert_eq!(m1, m2);
                    assert_eq!(*l1, a + 1);
                }
                other => panic!("expected matching ParseCsv errors, got {other:?}"),
            }
        }
    }

    #[test]
    fn consumer_error_aborts_cleanly() {
        let (text, tickets, _config) = fixture();
        let ingest = IngestConfig {
            shard_rows: 5,
            workers: 2,
            max_queued_shards: 1,
            ..IngestConfig::default()
        };
        let mut seen = 0;
        let err = stream_drive_batches(text.as_bytes(), &tickets, &ingest, |_b: DriveBatch| {
            seen += 1;
            Err(DatasetError::InvalidConfig {
                message: "stop".to_string(),
            })
        })
        .unwrap_err();
        assert_eq!(seen, 1);
        assert!(matches!(err, DatasetError::InvalidConfig { .. }));
    }

    #[test]
    fn empty_and_header_only_inputs() {
        let config = FleetConfig::builder()
            .days(120)
            .drives(DriveModel::Ma1, 1)
            .build()
            .unwrap();
        let ingest = IngestConfig::default();
        let err = import_smart_csv_sharded(&b""[..], &[], config.clone(), &ingest).unwrap_err();
        assert!(matches!(err, DatasetError::ParseCsv { line: 1, .. }));

        let mut header_only = Vec::new();
        let fleet = Fleet::generate(&config);
        export_smart_csv(&fleet, &mut header_only).unwrap();
        let header_only = String::from_utf8(header_only).unwrap();
        let header_line = header_only.lines().next().unwrap();
        let imported = import_smart_csv_sharded(
            format!("{header_line}\n").as_bytes(),
            &[],
            config.clone(),
            &ingest,
        )
        .unwrap();
        assert!(imported.drives().is_empty());
    }

    #[test]
    fn config_from_lookup_reads_knobs() {
        let config = IngestConfig::from_lookup(|name| match name {
            ENV_SHARD_ROWS => Some("128".to_string()),
            ENV_WORKERS => Some(" 3 ".to_string()),
            ENV_TOLERANCE => Some(" tolerant ".to_string()),
            _ => None,
        });
        assert_eq!(config.shard_rows, 128);
        assert_eq!(config.workers, 3);
        assert_eq!(config.tolerance, IngestTolerance::Tolerant);
        // Zero and garbage fall back to defaults.
        let config = IngestConfig::from_lookup(|name| match name {
            ENV_SHARD_ROWS => Some("0".to_string()),
            ENV_WORKERS => Some("many".to_string()),
            ENV_TOLERANCE => Some("lenient".to_string()),
            _ => None,
        });
        assert_eq!(config, IngestConfig::default());
    }

    /// Corrupt the fixture with one duplicate row, one out-of-order row and
    /// one unparseable line; return the text and the expected counts.
    fn chaotic_fixture() -> (String, Vec<TroubleTicket>, FleetConfig, SkipCounts) {
        let (text, tickets, config) = fixture();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        // Line 3 (drive 0, day 1) re-delivered right after itself: duplicate.
        lines.insert(4, lines[3].clone());
        // Drive 0's day-0 row re-delivered a few days later: out-of-order.
        lines.insert(8, lines[1].clone());
        // One unsplittable line mid-run: malformed, leaving a clean run
        // because the real row it displaces nothing from is still present.
        lines.insert(12, "###".to_string());
        (
            lines.join("\n"),
            tickets,
            config,
            SkipCounts {
                duplicate_rows: 1,
                out_of_order_rows: 1,
                malformed_rows: 1,
                backfilled_days: 0,
            },
        )
    }

    #[test]
    fn tolerant_counts_are_worker_and_shard_independent() {
        let (text, tickets, config, expected) = chaotic_fixture();
        let reference = {
            let (clean_text, _, _) = fixture();
            import_smart_csv(clean_text.as_bytes(), &tickets, config.clone()).unwrap()
        };
        for workers in [1, 2, 4] {
            for shard_rows in [1, 7, 64, 1_000_000] {
                let ingest = IngestConfig {
                    shard_rows,
                    workers,
                    max_queued_shards: 3,
                    tolerance: IngestTolerance::Tolerant,
                };
                let (fleet, stats) = import_smart_csv_sharded_with_stats(
                    text.as_bytes(),
                    &tickets,
                    config.clone(),
                    &ingest,
                )
                .unwrap();
                assert_eq!(
                    stats.skipped, expected,
                    "workers={workers} shard_rows={shard_rows}"
                );
                // Dropping the bad rows reconstructs the clean fleet exactly.
                assert_eq!(fleet.drives(), reference.drives());
            }
        }
    }

    #[test]
    fn strict_mode_still_errors_on_chaotic_input() {
        let (text, tickets, config, _) = chaotic_fixture();
        let err = import_smart_csv_sharded(
            text.as_bytes(),
            &tickets,
            config,
            &IngestConfig {
                shard_rows: 16,
                workers: 2,
                ..IngestConfig::default()
            },
        )
        .unwrap_err();
        // The first injected fault is the duplicated row at file line 5
        // (vector index 4): its day repeats the previous line's.
        match err {
            DatasetError::ParseCsv { line, message } => {
                assert_eq!(line, 5);
                assert!(message.contains("expected day"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn malformed_cap_errors_at_the_breaching_line() {
        let (text, tickets, config) = fixture();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        // Inject cap + 1 unsplittable lines right after the header; the
        // breach must be reported at the (cap + 1)-th, at any concurrency.
        let n_bad = MAX_MALFORMED_ROWS as usize + 1;
        for _ in 0..n_bad {
            lines.insert(1, "garbage".to_string());
        }
        let body = lines.join("\n");
        for (workers, shard_rows) in [(1, 1_000_000), (4, 17)] {
            let ingest = IngestConfig {
                shard_rows,
                workers,
                max_queued_shards: 3,
                tolerance: IngestTolerance::Tolerant,
            };
            let err = import_smart_csv_sharded(body.as_bytes(), &tickets, config.clone(), &ingest)
                .unwrap_err();
            match err {
                DatasetError::ParseCsv { line, message } => {
                    assert_eq!(line, 1 + n_bad, "workers={workers}");
                    assert!(message.contains("gave up"), "{message}");
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn tolerant_mode_is_bit_identical_on_clean_input() {
        let (text, tickets, config) = fixture();
        let strict = import_smart_csv(text.as_bytes(), &tickets, config.clone()).unwrap();
        let ingest = IngestConfig {
            shard_rows: 23,
            workers: 3,
            max_queued_shards: 2,
            tolerance: IngestTolerance::Tolerant,
        };
        let (fleet, stats) =
            import_smart_csv_sharded_with_stats(text.as_bytes(), &tickets, config, &ingest)
                .unwrap();
        assert_eq!(fleet.drives(), strict.drives());
        assert_eq!(stats.skipped, SkipCounts::default());
    }
}
