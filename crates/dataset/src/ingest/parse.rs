//! Independent parsing of one drive-aligned shard.
//!
//! Byte-for-byte compatible with [`crate::csv::import_smart_csv`]: the same
//! rows produce the same drive runs, and the same malformed input produces
//! the same `ParseCsv` message at the same absolute line number. It is also
//! the fast path — fields are walked with a borrowing iterator instead of
//! collecting a `Vec<&str>` per row, and lines borrow from the shard text
//! instead of allocating a `String` each.

use super::{IngestTolerance, SkipCounts};
use crate::attr::SmartAttribute;
use crate::csv::expected_smart_cols;
use crate::error::DatasetError;
use crate::model::DriveModel;
use crate::records::{DriveId, DriveRecord, FailureRecord};
use crate::tickets::{ticket_for_drive, TroubleTicket};

/// One contiguous run of day-rows for a single drive, as found in a shard.
#[derive(Debug, Clone, PartialEq)]
pub(super) struct ParsedDrive {
    pub id: DriveId,
    pub model: DriveModel,
    pub deploy_day: u32,
    pub values: Vec<f32>,
    pub n_days: u32,
}

impl ParsedDrive {
    /// Attach the drive's trouble ticket (if any) and freeze into a record.
    /// `sorted_tickets` must come from
    /// [`crate::tickets::sort_tickets_by_drive`].
    pub fn into_record(self, sorted_tickets: &[TroubleTicket]) -> DriveRecord {
        let failure = ticket_for_drive(sorted_tickets, self.id).map(|t| FailureRecord {
            day: t.day,
            mechanism: t.mechanism,
        });
        DriveRecord::from_flat_values(
            self.id,
            self.model,
            self.deploy_day,
            0,
            failure,
            self.values,
            self.n_days,
        )
    }
}

/// Everything a shard hands back: the drive runs plus the tolerant-mode
/// skip accounting (all zeros under [`IngestTolerance::Strict`]).
#[derive(Debug, Clone, PartialEq)]
pub(super) struct ShardOutcome {
    pub drives: Vec<ParsedDrive>,
    pub skipped: SkipCounts,
    /// Absolute line numbers of malformed skipped lines, in shard order —
    /// the merger walks these in file order to enforce the malformed-row
    /// cap with worker- and shard-size-independent diagnostics.
    pub malformed_lines: Vec<usize>,
}

/// Column count of the SMART-log CSV, as a constant so rows can be split
/// into a stack array instead of a heap `Vec<&str>` per row.
const EXPECTED_COLS: usize = 3 + 2 * SmartAttribute::ALL.len();

/// Longest forward day-gap the tolerant mode will backfill with NaN days;
/// anything wider means the day field itself is garbage, so the row is
/// counted malformed instead of allocating an absurd run.
const MAX_BACKFILL_DAYS: u32 = 1_024;

/// One structurally valid row: id/model/day parsed, fields split.
struct RawRow<'a> {
    id: u32,
    model: DriveModel,
    day: u32,
    fields: [&'a str; EXPECTED_COLS],
}

/// Split one line and parse its identity columns. Error strings carry no
/// line number; callers attach it (strict) or count the skip (tolerant).
fn split_row(line: &str) -> Result<RawRow<'_>, String> {
    let expected_cols = expected_smart_cols();
    debug_assert_eq!(expected_cols, EXPECTED_COLS);
    // Split into a stack array in one pass (the single-threaded reader
    // heap-collects a `Vec<&str>` per row). Field-count mismatches take
    // the cold path: recount to report the true total, keeping the
    // error text identical.
    let mut fields = [""; EXPECTED_COLS];
    let mut n_fields = 0usize;
    for field in line.split(',') {
        if n_fields == EXPECTED_COLS {
            n_fields += 1;
            break;
        }
        fields[n_fields] = field;
        n_fields += 1;
    }
    if n_fields != expected_cols {
        let n_fields = line.split(',').count();
        return Err(format!("expected {expected_cols} fields, got {n_fields}"));
    }

    let field = fields[0];
    let id: u32 = field
        .parse()
        .map_err(|_| format!("bad drive_id {field:?}"))?;
    let field = fields[1];
    let model = DriveModel::from_name(field).ok_or_else(|| format!("unknown model {field:?}"))?;
    let field = fields[2];
    let day: u32 = field.parse().map_err(|_| format!("bad day {field:?}"))?;
    Ok(RawRow {
        id,
        model,
        day,
        fields,
    })
}

/// Parse one row's attribute values into `buf` (cleared first), validating
/// presence against the model. Error strings carry no line number.
fn parse_row_values(row: &RawRow<'_>, buf: &mut Vec<f32>) -> Result<(), String> {
    buf.clear();
    for (a, attr) in SmartAttribute::ALL.into_iter().enumerate() {
        let raw = row.fields[3 + 2 * a];
        let norm = row.fields[4 + 2 * a];
        let reported = row.model.has_attribute(attr);
        match (reported, raw.is_empty(), norm.is_empty()) {
            (true, false, false) => {
                let r: f32 = raw
                    .parse()
                    .map_err(|_| format!("bad {attr}_R value {raw:?}"))?;
                let n: f32 = norm
                    .parse()
                    .map_err(|_| format!("bad {attr}_N value {norm:?}"))?;
                buf.push(r);
                buf.push(n);
            }
            (false, true, true) => {}
            _ => {
                return Err(format!(
                    "drive {}: attribute {attr} presence does not match model {}",
                    row.id, row.model
                ))
            }
        }
    }
    Ok(())
}

/// Parse one shard's raw text into drive runs. `first_line` is the 1-based
/// file line number of the shard's first line, so every diagnostic carries
/// its absolute position.
///
/// # Errors
///
/// Under [`IngestTolerance::Strict`], returns [`DatasetError::ParseCsv`]
/// for the first malformed row in shard order, with the same message the
/// single-threaded reader would emit. Under [`IngestTolerance::Tolerant`],
/// bad rows are skipped and counted instead (see
/// [`parse_shard_tolerant`]); only I/O-level impossibilities remain errors.
pub(super) fn parse_shard(
    text: &str,
    first_line: usize,
    tolerance: IngestTolerance,
) -> Result<ShardOutcome, DatasetError> {
    match tolerance {
        IngestTolerance::Strict => parse_shard_strict(text, first_line),
        IngestTolerance::Tolerant => Ok(parse_shard_tolerant(text, first_line)),
    }
}

fn parse_shard_strict(text: &str, first_line: usize) -> Result<ShardOutcome, DatasetError> {
    let mut drives: Vec<ParsedDrive> = Vec::new();
    let mut next_day: u32 = 0;
    let mut row_buf: Vec<f32> = Vec::new();

    for (i, raw_line) in text.split('\n').enumerate() {
        let line = raw_line.strip_suffix('\r').unwrap_or(raw_line);
        if line.trim().is_empty() {
            continue;
        }
        let line_no = first_line + i;
        let parse_err = |message: String| DatasetError::ParseCsv {
            line: line_no,
            message,
        };

        let row = split_row(line).map_err(parse_err)?;
        let same_run = drives.last().is_some_and(|d| d.id == DriveId(row.id));
        if !same_run {
            drives.push(ParsedDrive {
                id: DriveId(row.id),
                model: row.model,
                deploy_day: row.day,
                values: Vec::new(),
                n_days: 0,
            });
            next_day = row.day;
        }
        // lint:allow(panic-free) non-empty by the push above when no run
        // was open
        let drive = drives.last_mut().expect("run just opened");
        if drive.model != row.model {
            return Err(parse_err(format!(
                "drive {} changes model mid-file",
                row.id
            )));
        }
        if row.day != next_day {
            return Err(parse_err(format!(
                "drive {}: expected day {next_day}, got {}",
                row.id, row.day
            )));
        }
        parse_row_values(&row, &mut row_buf).map_err(parse_err)?;
        drive.values.extend_from_slice(&row_buf);
        drive.n_days += 1;
        next_day += 1;
    }
    Ok(ShardOutcome {
        drives,
        skipped: SkipCounts::default(),
        malformed_lines: Vec::new(),
    })
}

/// The tolerant counterpart of [`parse_shard_strict`]: instead of failing
/// on the first bad row, classify and skip it.
///
/// * **duplicate** — a row of the open run re-reporting the run's most
///   recent day (`day == next_day − 1`), the telemetry re-delivery case.
/// * **out-of-order** — a row of the open run for any older day.
/// * **malformed** — everything else: unsplittable lines, bad identity or
///   value fields, attribute/model presence mismatches, mid-run model
///   changes, and day jumps wider than [`MAX_BACKFILL_DAYS`].
///
/// A *small* forward day-gap inside a run (the usual residue of a corrupted
/// or lost row) is not an error: the missing days are backfilled with NaN
/// values — the missing-measurement marker the rest of the pipeline
/// understands (DESIGN.md §11) — and counted as `backfilled_days`.
///
/// Classification is per drive run, and the shard splitter never lets a
/// run straddle shards, so these counts are independent of worker count
/// and shard size. Cross-run reordering (a stray row of an earlier drive
/// after another drive started) is out of scope: it opens a fresh run,
/// exactly as the strict reader would have errored on it.
fn parse_shard_tolerant(text: &str, first_line: usize) -> ShardOutcome {
    let mut drives: Vec<ParsedDrive> = Vec::new();
    let mut next_day: u32 = 0;
    let mut skipped = SkipCounts::default();
    let mut malformed_lines: Vec<usize> = Vec::new();
    let mut row_buf: Vec<f32> = Vec::new();

    for (i, raw_line) in text.split('\n').enumerate() {
        let line = raw_line.strip_suffix('\r').unwrap_or(raw_line);
        if line.trim().is_empty() {
            continue;
        }
        let line_no = first_line + i;

        let Ok(row) = split_row(line) else {
            skipped.malformed_rows += 1;
            malformed_lines.push(line_no);
            continue;
        };
        let same_run = drives.last().is_some_and(|d| d.id == DriveId(row.id));
        if same_run {
            // lint:allow(panic-free) same_run implies a last element
            let drive = drives.last_mut().expect("open run");
            if drive.model != row.model {
                skipped.malformed_rows += 1;
                malformed_lines.push(line_no);
                continue;
            }
            if row.day < next_day {
                if row.day + 1 == next_day {
                    skipped.duplicate_rows += 1;
                } else {
                    skipped.out_of_order_rows += 1;
                }
                continue;
            }
            let gap = row.day - next_day;
            if gap > MAX_BACKFILL_DAYS {
                skipped.malformed_rows += 1;
                malformed_lines.push(line_no);
                continue;
            }
            if parse_row_values(&row, &mut row_buf).is_err() {
                skipped.malformed_rows += 1;
                malformed_lines.push(line_no);
                continue;
            }
            let stride = row.model.attributes().len() * 2;
            for _ in 0..gap {
                drive.values.extend(std::iter::repeat_n(f32::NAN, stride));
                drive.n_days += 1;
                skipped.backfilled_days += 1;
            }
            drive.values.extend_from_slice(&row_buf);
            drive.n_days += 1;
            next_day = row.day + 1;
        } else {
            if parse_row_values(&row, &mut row_buf).is_err() {
                skipped.malformed_rows += 1;
                malformed_lines.push(line_no);
                continue;
            }
            drives.push(ParsedDrive {
                id: DriveId(row.id),
                model: row.model,
                deploy_day: row.day,
                values: row_buf.clone(),
                n_days: 1,
            });
            next_day = row.day + 1;
        }
    }
    ShardOutcome {
        drives,
        skipped,
        malformed_lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FleetConfig;
    use crate::csv::export_smart_csv;
    use crate::fleet::Fleet;

    fn fixture_csv() -> String {
        let config = FleetConfig::builder()
            .days(120)
            .seed(11)
            .drives(DriveModel::Ma1, 3)
            .drives(DriveModel::Mc1, 2)
            .build()
            .unwrap();
        let fleet = Fleet::generate(&config);
        let mut buf = Vec::new();
        export_smart_csv(&fleet, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    fn strict(text: &str, first_line: usize) -> Result<ShardOutcome, DatasetError> {
        parse_shard(text, first_line, IngestTolerance::Strict)
    }

    fn tolerant(text: &str, first_line: usize) -> ShardOutcome {
        // lint:allow(panic-free) tolerant parsing is infallible; test glue
        parse_shard(text, first_line, IngestTolerance::Tolerant).unwrap()
    }

    #[test]
    fn parses_exported_rows_into_runs() {
        let text = fixture_csv();
        let body = text.split_once('\n').unwrap().1;
        let outcome = strict(body, 2).unwrap();
        assert_eq!(outcome.drives.len(), 5);
        for (i, d) in outcome.drives.iter().enumerate() {
            assert_eq!(d.id, DriveId(i as u32));
            assert!(d.n_days > 0);
        }
        assert_eq!(outcome.skipped, SkipCounts::default());
        assert!(outcome.malformed_lines.is_empty());
    }

    #[test]
    fn error_line_numbers_are_absolute() {
        // A shard starting at file line 1000 reports errors there, not at
        // its local offset: duplicate drive 0's first row so the second
        // copy breaks day contiguity.
        let text = fixture_csv();
        let row = text.lines().nth(1).unwrap();
        let day: u32 = row.split(',').nth(2).unwrap().parse().unwrap();
        let bad = format!("{row}\n{row}\n");
        let err = strict(&bad, 1000).unwrap_err();
        match err {
            DatasetError::ParseCsv { line, message } => {
                assert_eq!(line, 1001);
                assert_eq!(
                    message,
                    format!("drive 0: expected day {}, got {day}", day + 1)
                );
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn crlf_lines_parse_like_lf() {
        let text = fixture_csv();
        let body = text.split_once('\n').unwrap().1;
        let crlf = body.replace('\n', "\r\n");
        assert_eq!(strict(&crlf, 2).unwrap(), strict(body, 2).unwrap());
    }

    #[test]
    fn tolerant_matches_strict_on_clean_input() {
        let text = fixture_csv();
        let body = text.split_once('\n').unwrap().1;
        assert_eq!(tolerant(body, 2), strict(body, 2).unwrap());
    }

    #[test]
    fn tolerant_skips_duplicate_rows() {
        let text = fixture_csv();
        let clean = strict(text.split_once('\n').unwrap().1, 2).unwrap();
        // Re-deliver the second row of the file (day 1 of drive 0).
        let mut lines: Vec<&str> = text.lines().skip(1).collect();
        let dup = lines[1];
        lines.insert(2, dup);
        let body = lines.join("\n");
        let outcome = tolerant(&body, 2);
        assert_eq!(outcome.drives, clean.drives);
        assert_eq!(outcome.skipped.duplicate_rows, 1);
        assert_eq!(outcome.skipped.out_of_order_rows, 0);
        assert_eq!(outcome.skipped.malformed_rows, 0);
        assert_eq!(outcome.skipped.backfilled_days, 0);
        assert!(outcome.malformed_lines.is_empty());
    }

    #[test]
    fn tolerant_skips_out_of_order_rows() {
        let text = fixture_csv();
        let clean = strict(text.split_once('\n').unwrap().1, 2).unwrap();
        // Re-deliver drive 0's day-0 row after day 4: older than the most
        // recent day by more than one, so it is out-of-order, not a dup.
        let mut lines: Vec<&str> = text.lines().skip(1).collect();
        let stale = lines[0];
        lines.insert(5, stale);
        let body = lines.join("\n");
        let outcome = tolerant(&body, 2);
        assert_eq!(outcome.drives, clean.drives);
        assert_eq!(outcome.skipped.out_of_order_rows, 1);
        assert_eq!(outcome.skipped.duplicate_rows, 0);
        assert_eq!(outcome.skipped.malformed_rows, 0);
    }

    #[test]
    fn tolerant_backfills_small_day_gaps_with_nan() {
        let text = fixture_csv();
        // Drop drive 0's day-2 row: day 3 now follows day 1, a gap of one.
        let lines: Vec<&str> = text
            .lines()
            .skip(1)
            .enumerate()
            .filter_map(|(i, l)| (i != 2).then_some(l))
            .collect();
        let body = lines.join("\n");
        let outcome = tolerant(&body, 2);
        assert_eq!(outcome.skipped.backfilled_days, 1);
        assert_eq!(outcome.skipped.malformed_rows, 0);
        let d0 = &outcome.drives[0];
        let clean = strict(text.split_once('\n').unwrap().1, 2).unwrap();
        assert_eq!(d0.n_days, clean.drives[0].n_days);
        let stride = d0.model.attributes().len() * 2;
        // Day 2's cells are NaN; every other day's cells match the clean run.
        for (i, (got, want)) in d0.values.iter().zip(&clean.drives[0].values).enumerate() {
            if i / stride == 2 {
                assert!(got.is_nan(), "cell {i}");
            } else {
                assert_eq!(got, want, "cell {i}");
            }
        }
    }

    #[test]
    fn tolerant_counts_malformed_rows_with_lines() {
        let text = fixture_csv();
        let clean = strict(text.split_once('\n').unwrap().1, 2).unwrap();
        let mut lines: Vec<String> = text.lines().skip(1).map(String::from).collect();
        lines.insert(3, "garbage".to_string());
        let body = lines.join("\n");
        let outcome = tolerant(&body, 10);
        assert_eq!(outcome.drives, clean.drives);
        assert_eq!(outcome.skipped.malformed_rows, 1);
        // Shard starts at file line 10; the injected line is its 4th row.
        assert_eq!(outcome.malformed_lines, vec![13]);
    }

    #[test]
    fn tolerant_rejects_absurd_day_jumps_as_malformed() {
        let text = fixture_csv();
        let mut lines: Vec<String> = text.lines().skip(1).map(String::from).collect();
        // Rewrite drive 0's day-1 row to a day far past the backfill cap.
        let mut fields: Vec<&str> = lines[1].split(',').collect();
        let day: u32 = fields[2].parse().unwrap();
        let far = format!("{}", day + MAX_BACKFILL_DAYS + 2);
        fields[2] = &far;
        let bad = fields.join(",");
        lines[1] = bad;
        let body = lines.join("\n");
        let outcome = tolerant(&body, 2);
        assert_eq!(outcome.skipped.malformed_rows, 1);
        // The skipped day-1 row leaves a one-day hole before day 2, which
        // is backfilled as usual.
        assert_eq!(outcome.skipped.backfilled_days, 1);
        assert_eq!(outcome.malformed_lines, vec![3]);
    }
}
