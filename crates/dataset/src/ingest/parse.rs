//! Independent parsing of one drive-aligned shard.
//!
//! Byte-for-byte compatible with [`crate::csv::import_smart_csv`]: the same
//! rows produce the same drive runs, and the same malformed input produces
//! the same `ParseCsv` message at the same absolute line number. It is also
//! the fast path — fields are walked with a borrowing iterator instead of
//! collecting a `Vec<&str>` per row, and lines borrow from the shard text
//! instead of allocating a `String` each.

use crate::attr::SmartAttribute;
use crate::csv::expected_smart_cols;
use crate::error::DatasetError;
use crate::model::DriveModel;
use crate::records::{DriveId, DriveRecord, FailureRecord};
use crate::tickets::{ticket_for_drive, TroubleTicket};

/// One contiguous run of day-rows for a single drive, as found in a shard.
#[derive(Debug, Clone, PartialEq)]
pub(super) struct ParsedDrive {
    pub id: DriveId,
    pub model: DriveModel,
    pub deploy_day: u32,
    pub values: Vec<f32>,
    pub n_days: u32,
}

impl ParsedDrive {
    /// Attach the drive's trouble ticket (if any) and freeze into a record.
    /// `sorted_tickets` must come from
    /// [`crate::tickets::sort_tickets_by_drive`].
    pub fn into_record(self, sorted_tickets: &[TroubleTicket]) -> DriveRecord {
        let failure = ticket_for_drive(sorted_tickets, self.id).map(|t| FailureRecord {
            day: t.day,
            mechanism: t.mechanism,
        });
        DriveRecord::from_flat_values(
            self.id,
            self.model,
            self.deploy_day,
            0,
            failure,
            self.values,
            self.n_days,
        )
    }
}

/// Parse one shard's raw text into drive runs. `first_line` is the 1-based
/// file line number of the shard's first line, so every diagnostic carries
/// its absolute position.
///
/// # Errors
///
/// Returns [`DatasetError::ParseCsv`] for the first malformed row in shard
/// order, with the same message the single-threaded reader would emit.
/// Column count of the SMART-log CSV, as a constant so rows can be split
/// into a stack array instead of a heap `Vec<&str>` per row.
const EXPECTED_COLS: usize = 3 + 2 * SmartAttribute::ALL.len();

pub(super) fn parse_shard(text: &str, first_line: usize) -> Result<Vec<ParsedDrive>, DatasetError> {
    let expected_cols = expected_smart_cols();
    debug_assert_eq!(expected_cols, EXPECTED_COLS);
    let mut drives: Vec<ParsedDrive> = Vec::new();
    let mut next_day: u32 = 0;

    for (i, raw_line) in text.split('\n').enumerate() {
        let line = raw_line.strip_suffix('\r').unwrap_or(raw_line);
        if line.trim().is_empty() {
            continue;
        }
        let line_no = first_line + i;
        let parse_err = |message: String| DatasetError::ParseCsv {
            line: line_no,
            message,
        };

        // Split into a stack array in one pass (the single-threaded reader
        // heap-collects a `Vec<&str>` per row). Field-count mismatches take
        // the cold path: recount to report the true total, keeping the
        // error text identical.
        let mut fields = [""; EXPECTED_COLS];
        let mut n_fields = 0usize;
        for field in line.split(',') {
            if n_fields == EXPECTED_COLS {
                n_fields += 1;
                break;
            }
            fields[n_fields] = field;
            n_fields += 1;
        }
        if n_fields != expected_cols {
            let n_fields = line.split(',').count();
            return Err(parse_err(format!(
                "expected {expected_cols} fields, got {n_fields}"
            )));
        }

        let field = fields[0];
        let id: u32 = field
            .parse()
            .map_err(|_| parse_err(format!("bad drive_id {field:?}")))?;
        let field = fields[1];
        let model = DriveModel::from_name(field)
            .ok_or_else(|| parse_err(format!("unknown model {field:?}")))?;
        let field = fields[2];
        let day: u32 = field
            .parse()
            .map_err(|_| parse_err(format!("bad day {field:?}")))?;

        let same_run = drives.last().is_some_and(|d| d.id == DriveId(id));
        if !same_run {
            drives.push(ParsedDrive {
                id: DriveId(id),
                model,
                deploy_day: day,
                values: Vec::new(),
                n_days: 0,
            });
            next_day = day;
        }
        // lint:allow(panic-free) non-empty by the push above when no run
        // was open
        let drive = drives.last_mut().expect("run just opened");
        if drive.model != model {
            return Err(parse_err(format!("drive {id} changes model mid-file")));
        }
        if day != next_day {
            return Err(parse_err(format!(
                "drive {id}: expected day {next_day}, got {day}"
            )));
        }

        for (a, attr) in SmartAttribute::ALL.into_iter().enumerate() {
            let raw = fields[3 + 2 * a];
            let norm = fields[4 + 2 * a];
            let reported = model.has_attribute(attr);
            match (reported, raw.is_empty(), norm.is_empty()) {
                (true, false, false) => {
                    let r: f32 = raw
                        .parse()
                        .map_err(|_| parse_err(format!("bad {attr}_R value {raw:?}")))?;
                    let n: f32 = norm
                        .parse()
                        .map_err(|_| parse_err(format!("bad {attr}_N value {norm:?}")))?;
                    drive.values.push(r);
                    drive.values.push(n);
                }
                (false, true, true) => {}
                _ => {
                    return Err(parse_err(format!(
                        "drive {id}: attribute {attr} presence does not match model {model}"
                    )))
                }
            }
        }
        drive.n_days += 1;
        next_day += 1;
    }
    Ok(drives)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FleetConfig;
    use crate::csv::export_smart_csv;
    use crate::fleet::Fleet;

    fn fixture_csv() -> String {
        let config = FleetConfig::builder()
            .days(120)
            .seed(11)
            .drives(DriveModel::Ma1, 3)
            .drives(DriveModel::Mc1, 2)
            .build()
            .unwrap();
        let fleet = Fleet::generate(&config);
        let mut buf = Vec::new();
        export_smart_csv(&fleet, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn parses_exported_rows_into_runs() {
        let text = fixture_csv();
        let body = text.split_once('\n').unwrap().1;
        let drives = parse_shard(body, 2).unwrap();
        assert_eq!(drives.len(), 5);
        for (i, d) in drives.iter().enumerate() {
            assert_eq!(d.id, DriveId(i as u32));
            assert!(d.n_days > 0);
        }
    }

    #[test]
    fn error_line_numbers_are_absolute() {
        // A shard starting at file line 1000 reports errors there, not at
        // its local offset: duplicate drive 0's first row so the second
        // copy breaks day contiguity.
        let text = fixture_csv();
        let row = text.lines().nth(1).unwrap();
        let day: u32 = row.split(',').nth(2).unwrap().parse().unwrap();
        let bad = format!("{row}\n{row}\n");
        let err = parse_shard(&bad, 1000).unwrap_err();
        match err {
            DatasetError::ParseCsv { line, message } => {
                assert_eq!(line, 1001);
                assert_eq!(
                    message,
                    format!("drive 0: expected day {}, got {day}", day + 1)
                );
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn crlf_lines_parse_like_lf() {
        let text = fixture_csv();
        let body = text.split_once('\n').unwrap().1;
        let crlf = body.replace('\n', "\r\n");
        assert_eq!(
            parse_shard(&crlf, 2).unwrap(),
            parse_shard(body, 2).unwrap()
        );
    }
}
