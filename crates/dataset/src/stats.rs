//! Fleet-level summary statistics (the paper's Table II).

use crate::model::{DriveModel, FlashTech};
use crate::records::DriveSummary;

/// Per-model summary statistics in the shape of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStats {
    /// The drive model.
    pub model: DriveModel,
    /// Flash technology.
    pub flash: FlashTech,
    /// Number of drives of this model.
    pub drives: usize,
    /// Number of failed drives of this model.
    pub failures: usize,
    /// Share of the whole population ("Total %").
    pub population_share: f64,
    /// Share of all failures ("Failures %").
    pub failure_share: f64,
    /// Annualized failure rate in percent, using the paper's formula
    /// `AFR(%) = f × 365 × 100 / Σᵢ nᵢ` where `nᵢ` counts operational drives
    /// on day `i` (equivalently, total drive-days).
    pub afr_percent: f64,
}

json::impl_json!(ModelStats {
    model,
    flash,
    drives,
    failures,
    population_share,
    failure_share,
    afr_percent,
});

/// Compute Table II statistics from drive summaries. Models with zero drives
/// are omitted. Rows are in [`DriveModel::ALL`] order.
pub fn summarize(summaries: &[DriveSummary]) -> Vec<ModelStats> {
    let total_drives = summaries.len();
    let total_failures = summaries.iter().filter(|s| s.is_failed()).count();
    DriveModel::ALL
        .iter()
        .filter_map(|&model| {
            let of_model: Vec<&DriveSummary> =
                summaries.iter().filter(|s| s.model == model).collect();
            if of_model.is_empty() {
                return None;
            }
            let drives = of_model.len();
            let failures = of_model.iter().filter(|s| s.is_failed()).count();
            let drive_days: u64 = of_model.iter().map(|s| s.observed_days as u64).sum();
            let afr_percent = if drive_days == 0 {
                0.0
            } else {
                failures as f64 * 365.0 * 100.0 / drive_days as f64
            };
            Some(ModelStats {
                model,
                flash: model.flash_tech(),
                drives,
                failures,
                population_share: drives as f64 / total_drives as f64,
                failure_share: if total_failures == 0 {
                    0.0
                } else {
                    failures as f64 / total_failures as f64
                },
                afr_percent,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::FailureMechanism;
    use crate::records::{DriveId, FailureRecord};

    fn summary(id: u32, model: DriveModel, observed: u32, failed: bool) -> DriveSummary {
        DriveSummary {
            id: DriveId(id),
            model,
            deploy_day: 0,
            initial_age_days: 0,
            observed_days: observed,
            final_mwi_n: 90.0,
            failure: failed.then_some(FailureRecord {
                day: observed - 1,
                mechanism: FailureMechanism::WearOut,
            }),
        }
    }

    #[test]
    fn afr_formula_matches_paper() {
        // 1 failure over 2 drives × 365 days = 730 drive-days:
        // AFR = 1 × 365 × 100 / 730 = 50%.
        let stats = summarize(&[
            summary(0, DriveModel::Ma1, 365, true),
            summary(1, DriveModel::Ma1, 365, false),
        ]);
        assert_eq!(stats.len(), 1);
        assert!((stats[0].afr_percent - 50.0).abs() < 1e-9);
    }

    #[test]
    fn shares_partition() {
        let stats = summarize(&[
            summary(0, DriveModel::Ma1, 100, true),
            summary(1, DriveModel::Ma1, 100, false),
            summary(2, DriveModel::Mc1, 100, true),
            summary(3, DriveModel::Mc1, 100, true),
        ]);
        let pop: f64 = stats.iter().map(|s| s.population_share).sum();
        let fail: f64 = stats.iter().map(|s| s.failure_share).sum();
        assert!((pop - 1.0).abs() < 1e-9);
        assert!((fail - 1.0).abs() < 1e-9);
        let mc1 = stats.iter().find(|s| s.model == DriveModel::Mc1).unwrap();
        assert!((mc1.failure_share - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_failures_handled() {
        let stats = summarize(&[summary(0, DriveModel::Mb1, 200, false)]);
        assert_eq!(stats[0].failures, 0);
        assert_eq!(stats[0].failure_share, 0.0);
        assert_eq!(stats[0].afr_percent, 0.0);
    }

    #[test]
    fn empty_models_omitted() {
        let stats = summarize(&[summary(0, DriveModel::Mb1, 200, false)]);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].model, DriveModel::Mb1);
    }

    #[test]
    fn flash_tech_reported() {
        let stats = summarize(&[
            summary(0, DriveModel::Ma1, 10, false),
            summary(1, DriveModel::Mc2, 10, false),
        ]);
        assert_eq!(stats[0].flash, FlashTech::Mlc);
        assert_eq!(stats[1].flash, FlashTech::Tlc);
    }
}
