//! Failure mechanisms: how a defective drive's SMART counters accelerate in
//! the weeks before it fails.
//!
//! Each drive destined to fail is assigned one mechanism. From the defect
//! *onset* day until the failure day, the mechanism's ramp attributes grow
//! super-linearly (`rate · progressᵉˣᵖ` per day), producing the learnable
//! pre-failure signature that gives each drive model its characteristic
//! top-ranked features (Table III of the paper).

use crate::attr::SmartAttribute;
use std::fmt;

/// One attribute ramp of a failure mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttrRamp {
    /// The attribute whose raw counter accelerates.
    pub attr: SmartAttribute,
    /// Daily increment at full progress (raw counter units per day).
    pub daily_rate: f64,
    /// Progress exponent: 1 = linear build-up (Pearson-friendly), ≥2 =
    /// accelerating build-up (rank/tree-friendly).
    pub exponent: f64,
}

impl AttrRamp {
    const fn new(attr: SmartAttribute, daily_rate: f64, exponent: f64) -> Self {
        AttrRamp {
            attr,
            daily_rate,
            exponent,
        }
    }

    /// The expected raw-counter increment on a day at `progress ∈ [0, 1]`
    /// through the onset→failure window.
    pub fn increment_at(&self, progress: f64) -> f64 {
        self.daily_rate * progress.clamp(0.0, 1.0).powf(self.exponent)
    }
}

/// The failure mechanisms the simulator models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FailureMechanism {
    /// Power-loss-protection capacitor degradation (MA vendor signature).
    PowerLossProtection,
    /// Old-age failures: hazard grows with power-on hours.
    AgeRelated,
    /// Read-intensive workload stress (MA2's `TLR` signature).
    ReadStress,
    /// Spare-block exhaustion: reallocations deplete reserved space (MB1's
    /// `ARS_N`/`RSC_N` signature).
    ReserveDepletion,
    /// Bursts of sector reallocation events (MB2's `REC_N` signature).
    ReallocationStorm,
    /// Media defects surfaced by offline scans (MC1's `OCE_R` signature).
    MediaScanErrors,
    /// Host-visible uncorrectable errors (MC2's `UCE_R` signature).
    UncorrectableMedia,
    /// Flash wear-out: erase/program failures at low remaining endurance.
    WearOut,
    /// MC2's early-firmware bug: bursty uncorrectable errors early in life
    /// on drives deployed before the fix.
    FirmwareEarly,
}

impl fmt::Display for FailureMechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FailureMechanism {
    /// All mechanisms.
    pub const ALL: [FailureMechanism; 9] = [
        FailureMechanism::PowerLossProtection,
        FailureMechanism::AgeRelated,
        FailureMechanism::ReadStress,
        FailureMechanism::ReserveDepletion,
        FailureMechanism::ReallocationStorm,
        FailureMechanism::MediaScanErrors,
        FailureMechanism::UncorrectableMedia,
        FailureMechanism::WearOut,
        FailureMechanism::FirmwareEarly,
    ];

    /// Stable snake_case name, used by the tickets CSV (`mechanism` column)
    /// and log output. Round-trips through [`FailureMechanism::from_name`].
    pub fn name(self) -> &'static str {
        match self {
            FailureMechanism::PowerLossProtection => "power_loss_protection",
            FailureMechanism::AgeRelated => "age_related",
            FailureMechanism::ReadStress => "read_stress",
            FailureMechanism::ReserveDepletion => "reserve_depletion",
            FailureMechanism::ReallocationStorm => "reallocation_storm",
            FailureMechanism::MediaScanErrors => "media_scan_errors",
            FailureMechanism::UncorrectableMedia => "uncorrectable_media",
            FailureMechanism::WearOut => "wear_out",
            FailureMechanism::FirmwareEarly => "firmware_early",
        }
    }

    /// Parse a mechanism from its [`name`](FailureMechanism::name)
    /// (case-insensitive). Returns `None` for unknown names.
    pub fn from_name(name: &str) -> Option<FailureMechanism> {
        let lower = name.trim().to_ascii_lowercase();
        FailureMechanism::ALL
            .into_iter()
            .find(|m| m.name() == lower)
    }

    /// The attribute ramps of this mechanism. The simulator applies only the
    /// ramps whose attribute the drive model reports.
    pub fn ramps(self) -> &'static [AttrRamp] {
        use SmartAttribute as A;
        const POWER_LOSS: &[AttrRamp] = &[
            AttrRamp::new(A::Plp, 0.8, 2.0),
            AttrRamp::new(A::Upl, 0.5, 1.0),
            AttrRamp::new(A::Rsc, 0.3, 2.0),
        ];
        const AGE_RELATED: &[AttrRamp] = &[
            AttrRamp::new(A::Uce, 0.6, 1.0),
            AttrRamp::new(A::Rsc, 0.6, 1.0),
            AttrRamp::new(A::Rec, 0.35, 1.0),
        ];
        const READ_STRESS: &[AttrRamp] = &[
            AttrRamp::new(A::Dec, 2.0, 2.0),
            AttrRamp::new(A::Uce, 0.75, 2.0),
            AttrRamp::new(A::Cec, 0.5, 1.0),
        ];
        const RESERVE_DEPLETION: &[AttrRamp] = &[
            AttrRamp::new(A::Rsc, 2.0, 2.0),
            AttrRamp::new(A::Dec, 0.5, 1.0),
            AttrRamp::new(A::Pfc, 0.3, 2.0),
            AttrRamp::new(A::Efc, 0.3, 2.0),
        ];
        const REALLOCATION_STORM: &[AttrRamp] = &[
            AttrRamp::new(A::Rec, 1.5, 2.0),
            AttrRamp::new(A::Rsc, 1.2, 2.0),
            AttrRamp::new(A::Psc, 0.8, 1.0),
            AttrRamp::new(A::Uce, 0.2, 1.0),
        ];
        const MEDIA_SCAN: &[AttrRamp] = &[
            AttrRamp::new(A::Oce, 2.5, 2.0),
            AttrRamp::new(A::Uce, 0.8, 2.0),
            AttrRamp::new(A::Rer, 0.6, 1.0),
            AttrRamp::new(A::Cmdt, 0.15, 1.0),
        ];
        const UNCORRECTABLE: &[AttrRamp] = &[
            AttrRamp::new(A::Uce, 2.2, 2.0),
            AttrRamp::new(A::Oce, 0.8, 2.0),
            AttrRamp::new(A::Cmdt, 0.4, 1.5),
            AttrRamp::new(A::Rer, 0.3, 1.0),
        ];
        const WEAR_OUT: &[AttrRamp] = &[
            AttrRamp::new(A::Efc, 1.2, 2.0),
            AttrRamp::new(A::Pfc, 1.0, 2.0),
            AttrRamp::new(A::Rsc, 0.5, 1.0),
        ];
        const FIRMWARE_EARLY: &[AttrRamp] = &[
            AttrRamp::new(A::Uce, 3.0, 1.0),
            AttrRamp::new(A::Cmdt, 0.8, 1.0),
            AttrRamp::new(A::Rec, 0.3, 1.0),
        ];
        match self {
            FailureMechanism::PowerLossProtection => POWER_LOSS,
            FailureMechanism::AgeRelated => AGE_RELATED,
            FailureMechanism::ReadStress => READ_STRESS,
            FailureMechanism::ReserveDepletion => RESERVE_DEPLETION,
            FailureMechanism::ReallocationStorm => REALLOCATION_STORM,
            FailureMechanism::MediaScanErrors => MEDIA_SCAN,
            FailureMechanism::UncorrectableMedia => UNCORRECTABLE,
            FailureMechanism::WearOut => WEAR_OUT,
            FailureMechanism::FirmwareEarly => FIRMWARE_EARLY,
        }
    }

    /// Extra daily `MWI` consumption multiplier after onset (wear-out
    /// failures burn endurance faster).
    pub fn wear_acceleration(self) -> f64 {
        match self {
            FailureMechanism::WearOut => 3.0,
            _ => 1.0,
        }
    }

    /// The window — as a fraction of the drive's observed lifetime — within
    /// which the defect onset is drawn.
    pub fn onset_window(self) -> (f64, f64) {
        match self {
            FailureMechanism::WearOut => (0.55, 0.95),
            FailureMechanism::AgeRelated => (0.45, 0.95),
            FailureMechanism::FirmwareEarly => (0.02, 0.35),
            _ => (0.15, 0.90),
        }
    }

    /// Drive-specific affinity multiplier applied to the mechanism weight
    /// when sampling which mechanism a defective drive develops.
    pub fn affinity(self, traits: &DriveTraits) -> f64 {
        match self {
            FailureMechanism::AgeRelated => 0.4 + traits.initial_age_days as f64 / 365.0,
            FailureMechanism::ReadStress => traits.read_intensity.clamp(0.2, 5.0).powf(1.5),
            FailureMechanism::WearOut => {
                // Strongly favored on drives that are actually worn down,
                // negligible on fresh drives — this is what makes `MWI_N`
                // and `POH_R` rank high within low-MWI groups (Table V).
                ((75.0 - traits.projected_final_mwi) / 25.0).max(0.1)
            }
            _ => 1.0,
        }
    }
}

/// A weighted entry in a drive model's mechanism mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MechanismWeight {
    /// The mechanism.
    pub mechanism: FailureMechanism,
    /// Base sampling weight (normalized at sampling time).
    pub weight: f64,
}

impl MechanismWeight {
    /// Construct a weighted mechanism entry.
    pub const fn new(mechanism: FailureMechanism, weight: f64) -> Self {
        MechanismWeight { mechanism, weight }
    }
}

/// Drive-level traits that bias mechanism selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriveTraits {
    /// Days the drive had been in service before the dataset window opened.
    pub initial_age_days: u32,
    /// Read workload relative to the model mean (1.0 = average).
    pub read_intensity: f64,
    /// Projected `MWI_N` at the end of the dataset window.
    pub projected_final_mwi: f64,
}

/// Sample a mechanism from `mix` for a drive with the given traits, using a
/// uniform draw `u ∈ [0, 1)`.
///
/// Weights are multiplied by per-drive affinities and normalized. Returns
/// `None` when `mix` is empty or all effective weights are zero.
pub fn sample_mechanism(
    mix: &[MechanismWeight],
    traits: &DriveTraits,
    u: f64,
) -> Option<FailureMechanism> {
    let effective: Vec<f64> = mix
        .iter()
        .map(|mw| mw.weight.max(0.0) * mw.mechanism.affinity(traits))
        .collect();
    let total: f64 = effective.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut cursor = u.clamp(0.0, 1.0 - f64::EPSILON) * total;
    for (mw, w) in mix.iter().zip(&effective) {
        if cursor < *w {
            return Some(mw.mechanism);
        }
        cursor -= w;
    }
    mix.last().map(|mw| mw.mechanism)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traits() -> DriveTraits {
        DriveTraits {
            initial_age_days: 180,
            read_intensity: 1.0,
            projected_final_mwi: 70.0,
        }
    }

    #[test]
    fn mechanism_names_roundtrip() {
        for m in FailureMechanism::ALL {
            assert_eq!(FailureMechanism::from_name(m.name()), Some(m), "{m:?}");
            assert_eq!(m.to_string(), m.name());
        }
        assert_eq!(
            FailureMechanism::from_name(" Wear_Out "),
            Some(FailureMechanism::WearOut)
        );
        assert_eq!(FailureMechanism::from_name("meteor_strike"), None);
    }

    #[test]
    fn ramp_increment_shape() {
        let ramp = AttrRamp::new(SmartAttribute::Uce, 2.0, 2.0);
        assert_eq!(ramp.increment_at(0.0), 0.0);
        assert!((ramp.increment_at(0.5) - 0.5).abs() < 1e-12);
        assert!((ramp.increment_at(1.0) - 2.0).abs() < 1e-12);
        // Clamped outside [0, 1].
        assert_eq!(ramp.increment_at(2.0), 2.0);
        assert_eq!(ramp.increment_at(-1.0), 0.0);
    }

    #[test]
    fn every_mechanism_has_ramps() {
        for m in FailureMechanism::ALL {
            assert!(!m.ramps().is_empty(), "{m:?} has no ramps");
        }
    }

    #[test]
    fn onset_windows_are_valid_fractions() {
        for m in FailureMechanism::ALL {
            let (lo, hi) = m.onset_window();
            assert!(lo < hi && lo >= 0.0 && hi <= 1.0, "{m:?}: ({lo}, {hi})");
        }
    }

    #[test]
    fn wearout_affinity_rises_with_wear() {
        let worn = DriveTraits {
            projected_final_mwi: 10.0,
            ..traits()
        };
        let fresh = DriveTraits {
            projected_final_mwi: 90.0,
            ..traits()
        };
        assert!(
            FailureMechanism::WearOut.affinity(&worn) > FailureMechanism::WearOut.affinity(&fresh)
        );
    }

    #[test]
    fn read_stress_affinity_rises_with_reads() {
        let heavy = DriveTraits {
            read_intensity: 3.0,
            ..traits()
        };
        assert!(
            FailureMechanism::ReadStress.affinity(&heavy)
                > FailureMechanism::ReadStress.affinity(&traits())
        );
    }

    #[test]
    fn sample_mechanism_respects_weights() {
        let mix = [
            MechanismWeight::new(FailureMechanism::PowerLossProtection, 1.0),
            MechanismWeight::new(FailureMechanism::MediaScanErrors, 0.0),
        ];
        for u in [0.0, 0.3, 0.7, 0.999] {
            assert_eq!(
                sample_mechanism(&mix, &traits(), u),
                Some(FailureMechanism::PowerLossProtection)
            );
        }
    }

    #[test]
    fn sample_mechanism_empty_mix() {
        assert_eq!(sample_mechanism(&[], &traits(), 0.5), None);
    }

    #[test]
    fn sample_mechanism_splits_by_u() {
        let mix = [
            MechanismWeight::new(FailureMechanism::PowerLossProtection, 1.0),
            MechanismWeight::new(FailureMechanism::MediaScanErrors, 1.0),
        ];
        assert_eq!(
            sample_mechanism(&mix, &traits(), 0.0),
            Some(FailureMechanism::PowerLossProtection)
        );
        assert_eq!(
            sample_mechanism(&mix, &traits(), 0.99),
            Some(FailureMechanism::MediaScanErrors)
        );
    }

    #[test]
    fn prop_sample_always_from_mix() {
        rng::prop_check!(|g| {
            let u = g.f64_in(0.0, 1.0);
            let age = g.u64_in(0, 699) as u32;
            let mwi = g.f64_in(0.0, 100.0);
            let mix = [
                MechanismWeight::new(FailureMechanism::WearOut, 0.5),
                MechanismWeight::new(FailureMechanism::AgeRelated, 0.3),
                MechanismWeight::new(FailureMechanism::ReadStress, 0.2),
            ];
            let t = DriveTraits {
                initial_age_days: age,
                read_intensity: 1.0,
                projected_final_mwi: mwi,
            };
            let got = sample_mechanism(&mix, &t, u).unwrap();
            assert!(mix.iter().any(|mw| mw.mechanism == got));
        });
    }

    #[test]
    fn prop_ramp_monotone_in_progress() {
        rng::prop_check!(|g| {
            let p1 = g.f64_in(0.0, 1.0);
            let p2 = g.f64_in(0.0, 1.0);
            let rate = g.f64_in(0.01, 10.0);
            let exp = g.f64_in(0.5, 3.0);
            let ramp = AttrRamp::new(SmartAttribute::Uce, rate, exp);
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            assert!(ramp.increment_at(lo) <= ramp.increment_at(hi) + 1e-12);
        });
    }
}
