//! Trouble tickets: the failure reports the maintenance system raises.

use crate::mechanism::FailureMechanism;
use crate::model::DriveModel;
use crate::records::{DriveId, DriveSummary};

/// One trouble ticket: a drive failure detected by the rule-based monitoring
/// daemons (§II-A of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TroubleTicket {
    /// The failed drive.
    pub drive_id: DriveId,
    /// The drive's model.
    pub model: DriveModel,
    /// Dataset day of the failure.
    pub day: u32,
    /// The failure mechanism recorded on the ticket.
    pub mechanism: FailureMechanism,
}

/// Extract the trouble tickets from drive summaries, ordered by day then
/// drive id.
pub fn tickets_from_summaries(summaries: &[DriveSummary]) -> Vec<TroubleTicket> {
    let mut tickets: Vec<TroubleTicket> = summaries
        .iter()
        .filter_map(|s| {
            s.failure.map(|f| TroubleTicket {
                drive_id: s.id,
                model: s.model,
                day: f.day,
                mechanism: f.mechanism,
            })
        })
        .collect();
    tickets.sort_by_key(|t| (t.day, t.drive_id));
    tickets
}

/// Copy `tickets` into a slice sorted by drive id, suitable for
/// [`ticket_for_drive`] binary-search joins. The sort is stable, so among
/// several tickets for one drive the first in input order stays first.
pub fn sort_tickets_by_drive(tickets: &[TroubleTicket]) -> Vec<TroubleTicket> {
    let mut by_id = tickets.to_vec();
    by_id.sort_by_key(|t| t.drive_id);
    by_id
}

/// Look up the ticket for `id` in a slice produced by
/// [`sort_tickets_by_drive`] — O(log n) instead of a linear scan. When a
/// drive has several tickets, returns the first in the original input order
/// (matching what a linear `find` over the unsorted input would return).
pub fn ticket_for_drive(sorted: &[TroubleTicket], id: DriveId) -> Option<&TroubleTicket> {
    let first = sorted.partition_point(|t| t.drive_id < id);
    sorted.get(first).filter(|t| t.drive_id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::FailureRecord;

    fn summary(id: u32, day: Option<u32>) -> DriveSummary {
        DriveSummary {
            id: DriveId(id),
            model: DriveModel::Ma1,
            deploy_day: 0,
            initial_age_days: 0,
            observed_days: 100,
            final_mwi_n: 90.0,
            failure: day.map(|d| FailureRecord {
                day: d,
                mechanism: FailureMechanism::WearOut,
            }),
        }
    }

    #[test]
    fn only_failures_get_tickets() {
        let tickets =
            tickets_from_summaries(&[summary(0, None), summary(1, Some(50)), summary(2, None)]);
        assert_eq!(tickets.len(), 1);
        assert_eq!(tickets[0].drive_id, DriveId(1));
        assert_eq!(tickets[0].day, 50);
        assert_eq!(tickets[0].mechanism, FailureMechanism::WearOut);
    }

    #[test]
    fn tickets_sorted_by_day_then_id() {
        let tickets = tickets_from_summaries(&[
            summary(3, Some(80)),
            summary(1, Some(20)),
            summary(2, Some(20)),
        ]);
        let order: Vec<u32> = tickets.iter().map(|t| t.drive_id.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input_gives_no_tickets() {
        assert!(tickets_from_summaries(&[]).is_empty());
    }

    fn ticket(id: u32, day: u32, mechanism: FailureMechanism) -> TroubleTicket {
        TroubleTicket {
            drive_id: DriveId(id),
            model: DriveModel::Ma1,
            day,
            mechanism,
        }
    }

    #[test]
    fn binary_search_join_matches_linear_find() {
        let tickets = vec![
            ticket(9, 10, FailureMechanism::WearOut),
            ticket(2, 20, FailureMechanism::AgeRelated),
            ticket(5, 30, FailureMechanism::ReadStress),
        ];
        let sorted = sort_tickets_by_drive(&tickets);
        for id in 0..12 {
            let fast = ticket_for_drive(&sorted, DriveId(id)).copied();
            let slow = tickets.iter().find(|t| t.drive_id == DriveId(id)).copied();
            assert_eq!(fast, slow, "drive {id}");
        }
    }

    #[test]
    fn duplicate_tickets_keep_first_in_input_order() {
        let tickets = vec![
            ticket(4, 50, FailureMechanism::WearOut),
            ticket(4, 60, FailureMechanism::AgeRelated),
        ];
        let sorted = sort_tickets_by_drive(&tickets);
        let hit = ticket_for_drive(&sorted, DriveId(4)).expect("present");
        assert_eq!(hit.day, 50);
        assert_eq!(hit.mechanism, FailureMechanism::WearOut);
    }

    #[test]
    fn prop_join_agrees_with_linear_scan() {
        rng::prop_check!(|g| {
            let n = g.u64_in(0, 30) as usize;
            let tickets: Vec<TroubleTicket> = (0..n)
                .map(|_| {
                    let id = g.u64_in(0, 15) as u32;
                    let day = g.u64_in(0, 400) as u32;
                    ticket(id, day, FailureMechanism::UncorrectableMedia)
                })
                .collect();
            let sorted = sort_tickets_by_drive(&tickets);
            for id in 0..16 {
                let fast = ticket_for_drive(&sorted, DriveId(id)).map(|t| t.day);
                let slow = tickets
                    .iter()
                    .find(|t| t.drive_id == DriveId(id))
                    .map(|t| t.day);
                assert_eq!(fast, slow);
            }
        });
    }
}
