//! Trouble tickets: the failure reports the maintenance system raises.

use crate::model::DriveModel;
use crate::records::{DriveId, DriveSummary};

/// One trouble ticket: a drive failure detected by the rule-based monitoring
/// daemons (§II-A of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TroubleTicket {
    /// The failed drive.
    pub drive_id: DriveId,
    /// The drive's model.
    pub model: DriveModel,
    /// Dataset day of the failure.
    pub day: u32,
}

/// Extract the trouble tickets from drive summaries, ordered by day then
/// drive id.
pub fn tickets_from_summaries(summaries: &[DriveSummary]) -> Vec<TroubleTicket> {
    let mut tickets: Vec<TroubleTicket> = summaries
        .iter()
        .filter_map(|s| {
            s.failure.map(|f| TroubleTicket {
                drive_id: s.id,
                model: s.model,
                day: f.day,
            })
        })
        .collect();
    tickets.sort_by_key(|t| (t.day, t.drive_id));
    tickets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::FailureMechanism;
    use crate::records::FailureRecord;

    fn summary(id: u32, day: Option<u32>) -> DriveSummary {
        DriveSummary {
            id: DriveId(id),
            model: DriveModel::Ma1,
            deploy_day: 0,
            initial_age_days: 0,
            observed_days: 100,
            final_mwi_n: 90.0,
            failure: day.map(|d| FailureRecord {
                day: d,
                mechanism: FailureMechanism::WearOut,
            }),
        }
    }

    #[test]
    fn only_failures_get_tickets() {
        let tickets =
            tickets_from_summaries(&[summary(0, None), summary(1, Some(50)), summary(2, None)]);
        assert_eq!(tickets.len(), 1);
        assert_eq!(tickets[0].drive_id, DriveId(1));
        assert_eq!(tickets[0].day, 50);
    }

    #[test]
    fn tickets_sorted_by_day_then_id() {
        let tickets = tickets_from_summaries(&[
            summary(3, Some(80)),
            summary(1, Some(20)),
            summary(2, Some(20)),
        ]);
        let order: Vec<u32> = tickets.iter().map(|t| t.drive_id.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input_gives_no_tickets() {
        assert!(tickets_from_summaries(&[]).is_empty());
    }
}
