#![forbid(unsafe_code)]
//! Synthetic SSD fleet simulator: the dataset substrate of the WEFR
//! reproduction.
//!
//! The paper evaluates on ~500 K production SSDs at Alibaba (six drive
//! models, three vendors, two years of daily SMART logs plus trouble
//! tickets). This crate replaces that proprietary-scale dataset with a
//! simulator that reproduces its *statistical structure*:
//!
//! * the per-model SMART attribute coverage of Table I ([`DriveModel`]),
//! * the population mix and AFR ordering of Table II ([`stats::summarize`]),
//! * per-model failure *mechanisms* whose pre-failure counter ramps give
//!   each model its characteristic important features (Table III),
//! * wear-out-dependent failure modes, including MC2's early-firmware bug,
//!   producing the survival-rate-vs-`MWI_N` shapes of Fig. 1.
//!
//! # Quick start
//!
//! ```
//! use smart_dataset::{Fleet, FleetConfig, DriveModel};
//!
//! # fn main() -> Result<(), smart_dataset::DatasetError> {
//! let config = FleetConfig::builder()
//!     .days(365)
//!     .drives(DriveModel::Mc1, 50)
//!     .seed(42)
//!     .build()?;
//! let fleet = Fleet::generate(&config);
//! println!("{} drives, {} failures", fleet.drives().len(), fleet.n_failures());
//! # Ok(())
//! # }
//! ```
//!
//! For fleet-scale lifecycle statistics (AFR, survival curves) use the much
//! cheaper [`Census`], which shares per-drive randomness with [`Fleet`] and
//! therefore agrees with it drive-for-drive on failures.

pub mod attr;
pub mod config;
pub mod csv;
pub mod error;
pub mod fleet;
pub mod gen;
pub mod ingest;
pub mod mechanism;
pub mod model;
pub mod records;
pub mod stats;
pub mod tickets;

pub use attr::{FeatureId, SmartAttribute, ValueKind};
pub use config::FleetConfig;
pub use error::DatasetError;
pub use fleet::{Census, Fleet};
pub use gen::scenario::{
    apply_scenario, inject_csv_chaos, mixed_vendor_config, CsvChaos, FirmwareRollout,
    MissingCoverage, ReplacementChurn, ScenarioConfig,
};
pub use gen::stream::{
    generate_drive_range, generate_fleet_streamed, stream_fleet_batches, GenConfig, GenStats,
};
pub use ingest::{
    import_smart_csv_sharded, import_smart_csv_sharded_with_stats, stream_drive_batches,
    DriveBatch, IngestConfig, IngestStats, IngestTolerance, SkipCounts,
};
pub use mechanism::FailureMechanism;
pub use model::{DriveModel, FlashTech, Vendor};
pub use records::{DriveId, DriveRecord, DriveSummary, FailureRecord};
pub use tickets::{tickets_from_summaries, TroubleTicket};
